(* taqp — time-constrained aggregate query processing from the shell.

     taqp gen --dir data --workload join          # synthesize relations
     taqp query --dir data --quota 2.5 "count(join[r1.key = r2.key](r1, r2))"
     taqp exact --dir data "count(select[sel < 1000](r1))"
     taqp explain --dir data "..."                # terms + cost curve
     taqp serve --dir data --jobs batch.jobs --policy edf --admission
     taqp serve --dir data --listen 7447 --admission --max-queue 8
     taqp submit --port 7447 --jobs batch.jobs --drain *)

open Cmdliner
module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Aggregate = Taqp_core.Aggregate
module Staged = Taqp_core.Staged
module Stopping = Taqp_timecontrol.Stopping
module Strategy = Taqp_timecontrol.Strategy
module Csv_io = Taqp_storage.Csv_io
module Catalog = Taqp_storage.Catalog
module Heap_file = Taqp_storage.Heap_file
module Paper_setup = Taqp_workload.Paper_setup
module Sink = Taqp_obs.Sink
module Metrics = Taqp_obs.Metrics
module Fault_plan = Taqp_fault.Fault_plan
module Executor = Taqp_core.Executor
module Query_journal = Taqp_recover.Query_journal
module Checkpoint = Taqp_recover.Checkpoint
module Sched_journal = Taqp_sched.Sched_journal
module Json = Taqp_obs.Json
module Ledger = Taqp_audit.Ledger
module Meter = Taqp_audit.Meter
module Drift = Taqp_audit.Drift
module Forensics = Taqp_audit.Forensics
module Slo = Taqp_audit.Slo
module Cache = Taqp_cache.Cache

let fail fmt = Fmt.kstr (fun s -> `Error (false, s)) fmt

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)

let dir_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Directory of relation CSV files.")

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY"
        ~doc:
          "RA query, e.g. 'count(select[sel < 1000](r))'. The count(...) \
           wrapper is optional.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

(* --cache MB|off, shared by query/explain/serve. [None] (off) leaves
   every code path bit-identical to the cache-less engine. *)
let cache_budget_conv =
  let parse s =
    if s = "off" then Ok None
    else
      match float_of_string_opt s with
      | Some mb when mb > 0.0 -> Ok (Some mb)
      | _ -> Error (`Msg "expected a positive megabyte budget or 'off'")
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "off"
    | Some mb -> Format.fprintf ppf "%g" mb
  in
  Arg.conv (parse, print)

let cache_arg =
  Arg.(
    value
    & opt cache_budget_conv None
    & info [ "cache" ] ~docv:"MB|off"
        ~doc:
          "Shared block & sample cache: a budget in megabytes, or $(b,off) \
           (the default). Queries draw from shared per-relation sample \
           prefixes, so repeated and concurrent queries over hot relations \
           serve each other's blocks and stage summaries at probe price; \
           see docs/CACHING.md. With $(b,off) the run is bit-identical to \
           a cache-less build.")

let make_cache ~seed = Option.map (fun mb -> Cache.create ~budget_mb:mb ~seed ())

(* --domains N, shared by query/serve. Defaults to Config.default's
   value, i.e. the TAQP_DOMAINS env var or 1. Any N yields bit-identical
   estimates, CIs, virtual costs, traces and ledgers — only wall time
   changes (docs/PARALLELISM.md). *)
let domains_arg =
  Arg.(
    value
    & opt int Config.default.Config.domains
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains (OCaml 5 parallelism) for per-stage sampling \
           compute. The answer — estimate, confidence interval, virtual \
           cost, trace, budget ledger — is bit-identical for every $(docv); \
           only wall-clock time changes. Defaults to $(b,TAQP_DOMAINS) or 1.")

let load_catalog dir = Csv_io.load_dir dir

let parse_query q =
  match Taqp.parse q with
  | e -> Ok e
  | exception Taqp_relational.Parser.Parse_error { position; message } ->
      Error (Fmt.str "parse error at offset %d: %s" position message)

(* The journaled twin of [Taqp.aggregate_within]: the same rng-stream
   discipline (the sampling stream is split for jitter before anything
   else draws), but driven through the explicit executor loop so a
   checkpoint is appended at every stage boundary. The journal-free
   query path still calls [Taqp.aggregate_within] itself, so runs
   without --journal are bit-identical to previous releases. *)
let run_journaled ~config ~seed ?sink ?metrics ~fault_plan ?fault_seed ?cache
    ~aggregate ~catalog ~quota ~path expr =
  let params = Taqp_storage.Cost_params.default in
  let rng = Taqp_rng.Prng.create seed in
  let clock = Taqp_storage.Clock.create_virtual () in
  let tracer =
    Option.map
      (fun sink ->
        Taqp_obs.Tracer.make
          ~now:(fun () -> Taqp_storage.Clock.now clock)
          ~sink)
      sink
  in
  let fault_seed = Option.value fault_seed ~default:seed in
  let faults =
    match fault_plan with
    | None -> None
    | Some plan when Fault_plan.is_none plan -> None
    | Some plan -> Some (Taqp_fault.Injector.create ~seed:fault_seed plan)
  in
  let device =
    Taqp_storage.Device.create ~params ~jitter_rng:(Taqp_rng.Prng.split rng)
      ?metrics ?tracer ?faults clock
  in
  let journal =
    Query_journal.create ~path ~device
      {
        Checkpoint.m_query = expr;
        m_aggregate = aggregate;
        m_config = config;
        m_quota = quota;
        m_seed = seed;
        m_params = params;
        m_fault_plan = Option.value fault_plan ~default:Fault_plan.none;
        m_fault_seed = fault_seed;
      }
  in
  (match (cache, metrics) with
  | Some c, Some m -> Cache.bind_metrics c m
  | _ -> ());
  match
    let h =
      Executor.start ~config ~aggregate ?cache ~device ~catalog ~rng ~quota
        expr
    in
    Query_journal.checkpoint journal h;
    let rec loop () =
      match Executor.step h with
      | `Continue ->
          Query_journal.checkpoint journal h;
          loop ()
      | `Done r -> r
    in
    loop ()
  with
  | report ->
      Query_journal.close journal;
      (match (cache, tracer) with
      | Some c, Some t -> Cache.emit_counters c t
      | _ -> ());
      Option.iter Taqp_obs.Tracer.close tracer;
      report
  | exception e ->
      (* A [Crashed] fault is a simulated kill: every journal record is
         already flushed, exactly as a real crash would leave the file.
         Only the descriptor needs closing before the caller reports. *)
      (try Query_journal.close journal with _ -> ());
      raise e

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)

let gen_cmd =
  let workload_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("selection", `Selection);
               ("join", `Join);
               ("intersection", `Intersection);
               ("projection", `Projection);
               ("select-join", `Select_join);
               ("union", `Union);
             ])
          `Selection
      & info [ "w"; "workload" ] ~docv:"KIND"
          ~doc:
            "Workload kind: $(b,selection), $(b,join), $(b,intersection), \
             $(b,projection), $(b,select-join) or $(b,union).")
  in
  let out_dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory (created).")
  in
  let tuples_arg =
    Arg.(
      value & opt int 10_000
      & info [ "tuples" ] ~docv:"N" ~doc:"Tuples per relation.")
  in
  let run workload dir tuples seed =
    let spec = { Taqp_workload.Generator.paper_spec with n_tuples = tuples } in
    let wl =
      match workload with
      | `Selection -> Paper_setup.selection ~spec ~seed ()
      | `Join -> Paper_setup.join ~spec ~seed ()
      | `Intersection -> Paper_setup.intersection ~spec ~seed ()
      | `Projection -> Paper_setup.projection ~spec ~seed ()
      | `Select_join -> Paper_setup.select_join ~spec ~seed ()
      | `Union -> Paper_setup.union_of_selects ~spec ~seed ()
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun name ->
        let path = Filename.concat dir (name ^ ".csv") in
        Csv_io.save (Catalog.find wl.Paper_setup.catalog name) path;
        Fmt.pr "wrote %s@." path)
      (Catalog.names wl.Paper_setup.catalog);
    Fmt.pr "workload: %s@." wl.Paper_setup.description;
    Fmt.pr "query:    count(%a)@." Taqp_relational.Ra.pp wl.Paper_setup.query;
    Fmt.pr "exact:    %d@." wl.Paper_setup.exact;
    `Ok ()
  in
  let term =
    Term.(ret (const run $ workload_arg $ out_dir_arg $ tuples_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic workload as CSV relations.")
    term

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let query_cmd =
  let quota_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "q"; "quota" ] ~docv:"SECONDS"
          ~doc:"Time quota in (simulated) seconds.")
  in
  let aggregate_arg =
    Arg.(
      value & opt string "count"
      & info [ "a"; "aggregate" ] ~docv:"AGG"
          ~doc:"Aggregate: $(b,count), $(b,sum(attr)) or $(b,avg(attr)).")
  in
  let d_beta_arg =
    Arg.(
      value & opt float 1.645
      & info [ "d-beta" ] ~docv:"D"
          ~doc:"Per-operator risk deviate of the One-at-a-Time strategy.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt (enum [ ("one-at-a-time", `O); ("single-interval", `S); ("heuristic", `H) ]) `O
      & info [ "strategy" ] ~docv:"NAME" ~doc:"Time-control strategy.")
  in
  let observe_arg =
    Arg.(
      value & flag
      & info [ "observe" ]
          ~doc:
            "ERAM's measurement mode: let the final stage finish and report \
             the overspend instead of aborting at the deadline.")
  in
  let physical_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("sort", Config.Sort_merge);
               ("hash", Config.Hash);
               ("adaptive", Config.Adaptive);
             ])
          Config.Sort_merge
      & info [ "physical" ] ~docv:"PATH"
          ~doc:
            "Physical path for equi-key joins/intersections: $(b,sort) \
             (sorted-file pairing merges, the paper's plan), $(b,hash) \
             (retained per-side hash indexes, probed only with each stage's \
             delta), or $(b,adaptive) (per operator per stage, whichever \
             the fitted cost model predicts cheaper). The estimate is \
             identical either way; only the evaluation cost changes.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "t"; "trace" ]
          ~doc:
            "Print an end-of-run trace summary (per-stage lines and \
             per-layer time totals, derived from the span stream).")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the full event trace to $(docv).")
  in
  let trace_format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Trace file format: $(b,jsonl) (one event per line) or \
             $(b,chrome) (a chrome://tracing / Perfetto-loadable \
             trace_event array).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry (io.* counters, stage histograms).")
  in
  let groups_arg =
    Arg.(
      value & opt int 0
      & info [ "groups" ] ~docv:"N"
          ~doc:
            "For projection queries, also print the N largest estimated              group counts.")
  in
  let error_bound_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "error-bound" ] ~docv:"PCT"
          ~doc:
            "Also stop when the 95% interval is within PCT percent of the \
             estimate (error-constrained evaluation).")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SCENARIO"
          ~doc:
            (Fmt.str
               "Inject storage faults: a preset (%s) or a DSL rule list such \
                as 'read_error:p=0.05;latency:p=0.1,factor=4;retries=5' — \
                see docs/ROBUSTNESS.md. The run stays deterministic given \
                $(b,--fault-seed); recoverable faults cost retries and \
                backoff on the virtual clock, unrecoverable ones end the run \
                in a degraded partial report."
               (String.concat ", " Fault_plan.preset_names)))
  in
  let fault_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "Seed of the fault injector's own random stream (default: \
             $(b,--seed)). Changing it re-rolls the faults without changing \
             which tuples are sampled.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write a crash-safe stage journal to $(docv): one checkpoint \
             per stage boundary, each write charged to the virtual clock. \
             A killed run is resumed with $(b,taqp resume); see \
             docs/RECOVERY.md.")
  in
  let run dir query quota aggregate d_beta strategy physical domains observe
      trace trace_out trace_format metrics groups error_bound faults
      fault_seed journal cache_mb seed =
    if domains < 1 then fail "--domains must be >= 1"
    else
    match parse_query query with
    | Error e -> fail "%s" e
    | Ok expr -> (
        match
          match faults with
          | None -> Ok None
          | Some s -> Result.map Option.some (Fault_plan.of_string s)
        with
        | Error m -> fail "bad --faults scenario: %s" m
        | Ok faults -> (
        match Aggregate.parse aggregate with
        | exception Invalid_argument m -> fail "%s" m
        | aggregate -> (
            let catalog = load_catalog dir in
            let strategy =
              match strategy with
              | `O -> Strategy.one_at_a_time ~d_beta ()
              | `S -> Strategy.single_interval ~d_alpha:d_beta ()
              | `H -> Strategy.heuristic ~split:0.5
            in
            let deadline =
              if observe then Stopping.Soft_deadline { grace = 1e9 }
              else Stopping.Hard_deadline
            in
            let stopping =
              match error_bound with
              | None -> deadline
              | Some pct ->
                  Stopping.All
                    [
                      deadline;
                      Stopping.Error_bound { relative = pct /. 100.0; level = 0.95 };
                    ]
            in
            let config =
              { Config.default with Config.strategy; stopping; physical; domains }
            in
            (* Assemble the event sinks: a file stream (JSONL or Chrome
               trace_event) and/or the stdout summary. The sinks are
               closed by [aggregate_within] before the report comes
               back, so the summary prints first and file buffers are
               complete; we only close the channel afterwards. *)
            let out_channel = ref None in
            match
              Option.map
                (fun file ->
                  try Ok (open_out file) with Sys_error m -> Error m)
                trace_out
            with
            | Some (Error m) -> fail "cannot open trace file: %s" m
            | opened ->
            let file_sink =
              match opened with
              | None -> []
              | Some (Ok oc) ->
                  out_channel := Some oc;
                  [
                    (match trace_format with
                    | `Jsonl -> Sink.jsonl (Sink.to_channel oc)
                    | `Chrome -> Sink.chrome (Sink.to_channel oc));
                  ]
              | Some (Error _) -> assert false
            in
            let summary_sink =
              if trace then [ Sink.summary Fmt.stdout ] else []
            in
            let sink =
              match file_sink @ summary_sink with
              | [] -> None
              | [ s ] -> Some s
              | sinks -> Some (Sink.tee sinks)
            in
            let registry = if metrics then Some (Metrics.create ()) else None in
            let cache = make_cache ~seed cache_mb in
            let close_file () = Option.iter close_out !out_channel in
            match
              match journal with
              | None ->
                  Taqp.aggregate_within ~config ~seed ?sink ?metrics:registry
                    ?faults ?fault_seed ?cache ~aggregate catalog ~quota expr
              | Some path ->
                  run_journaled ~config ~seed ?sink ?metrics:registry
                    ~fault_plan:faults ?fault_seed ?cache ~aggregate ~catalog
                    ~quota ~path expr
            with
            | report ->
                close_file ();
                Fmt.pr "%a@." Report.pp report;
                Option.iter (fun m -> Fmt.pr "%a@." Metrics.pp m) registry;
                if groups > 0 then begin
                  match report.Report.groups with
                  | [] -> Fmt.pr "(no group estimates: not a plain projection)@."
                  | gs ->
                      Fmt.pr "largest estimated groups:@.";
                      List.iteri
                        (fun i (label, est) ->
                          if i < groups then Fmt.pr "  %-24s %10.0f@." label est)
                        gs
                end;
                `Ok ()
            | exception Staged.Compile_error m ->
                close_file ();
                fail "%s" m
            | exception Taqp_relational.Ra.Type_error m ->
                close_file ();
                fail "type error: %s" m
            | exception Taqp_fault.Injector.Crashed { op; at } ->
                close_file ();
                let hint =
                  match journal with
                  | Some p ->
                      Fmt.str " — resume with: taqp resume --dir %s --journal %s"
                        dir p
                  | None -> ""
                in
                fail "crash fault killed the run during %s at t=%.3f%s" op at
                  hint)))
  in
  let term =
    Term.(
      ret
        (const run $ dir_arg $ query_arg $ quota_arg $ aggregate_arg
       $ d_beta_arg $ strategy_arg $ physical_arg $ domains_arg $ observe_arg
       $ trace_arg $ trace_out_arg $ trace_format_arg $ metrics_arg
       $ groups_arg $ error_bound_arg $ faults_arg $ fault_seed_arg
       $ journal_arg $ cache_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Estimate an aggregate within a time quota (simulated device).")
    term

(* ------------------------------------------------------------------ *)
(* resume                                                              *)

let resume_cmd =
  let journal_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Stage journal written by $(b,taqp query --journal).")
  in
  let downtime_arg =
    Arg.(
      value & opt float 0.0
      & info [ "downtime" ] ~docv:"SECONDS"
          ~doc:
            "Virtual seconds lost between the last checkpoint and the \
             restart. 0 resumes boundary-exact — bit-identical to the \
             uninterrupted run; anything larger burns quota against the \
             original absolute deadline and forces a degraded, widened \
             report.")
  in
  let continue_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "continue" ] ~docv:"FILE"
          ~doc:
            "Keep checkpointing the resumed run into a fresh continuation \
             journal (same per-boundary clock charge as the original run, \
             so a journaled-and-resumed run stays bit-identical to a \
             journaled uninterrupted one). The first post-resume boundary \
             opens the new journal's coverage; a crash before it is still \
             recoverable from the original journal.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "t"; "trace" ] ~doc:"Print an end-of-run trace summary.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the resumed run's event trace to $(docv) — the exact \
             continuation of the crashed run's stream.")
  in
  let trace_format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:"Trace file format: $(b,jsonl) or $(b,chrome).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry (recover.* counters included).")
  in
  let run dir journal continue_to downtime trace trace_out trace_format metrics
      =
    if downtime < 0.0 then fail "--downtime must be >= 0"
    else if continue_to = Some journal then
      fail "--continue cannot overwrite the journal being recovered"
    else
      match Query_journal.load journal with
      | Error m -> fail "%s" m
      | Ok loaded -> (
          let catalog = load_catalog dir in
          let out_channel = ref None in
          match
            Option.map
              (fun file -> try Ok (open_out file) with Sys_error m -> Error m)
              trace_out
          with
          | Some (Error m) -> fail "cannot open trace file: %s" m
          | opened ->
              let file_sink =
                match opened with
                | None -> []
                | Some (Ok oc) ->
                    out_channel := Some oc;
                    [
                      (match trace_format with
                      | `Jsonl -> Sink.jsonl (Sink.to_channel oc)
                      | `Chrome -> Sink.chrome (Sink.to_channel oc));
                    ]
                | Some (Error _) -> assert false
              in
              let summary_sink =
                if trace then [ Sink.summary Fmt.stdout ] else []
              in
              let sink =
                match file_sink @ summary_sink with
                | [] -> None
                | [ s ] -> Some s
                | sinks -> Some (Sink.tee sinks)
              in
              let registry =
                if metrics then Some (Metrics.create ()) else None
              in
              let close_file () = Option.iter close_out !out_channel in
              let now =
                if downtime = 0.0 then None
                else
                  match List.rev loaded.Query_journal.l_checkpoints with
                  | [] -> None
                  | last :: _ -> Some (last.Checkpoint.c_at +. downtime)
              in
              Option.iter
                (fun t -> Fmt.epr "note: journal %s (tail discarded)@." t)
                loaded.Query_journal.l_torn;
              match
                Query_journal.resume_last ?sink ?metrics:registry ?now ~catalog
                  loaded
              with
              | Error m ->
                  close_file ();
                  fail "%s" m
              | Ok (device, h) -> (
                  let continuation =
                    Option.map
                      (fun path ->
                        Query_journal.create ~path ~device
                          loaded.Query_journal.l_meta)
                      continue_to
                  in
                  let close_continuation () =
                    Option.iter Query_journal.close continuation
                  in
                  match
                    let rec loop () =
                      match Executor.step h with
                      | `Continue ->
                          Option.iter
                            (fun j -> Query_journal.checkpoint j h)
                            continuation;
                          loop ()
                      | `Done r -> r
                    in
                    loop ()
                  with
                  | report ->
                      close_continuation ();
                      Taqp_obs.Tracer.close (Taqp_storage.Device.tracer device);
                      close_file ();
                      Fmt.pr "%a@." Report.pp report;
                      Option.iter (fun m -> Fmt.pr "%a@." Metrics.pp m) registry;
                      `Ok ()
                  | exception Taqp_relational.Ra.Type_error m ->
                      close_continuation ();
                      close_file ();
                      fail "type error: %s" m))
  in
  let term =
    Term.(
      ret
        (const run $ dir_arg $ journal_arg $ continue_arg $ downtime_arg
       $ trace_arg $ trace_out_arg $ trace_format_arg $ metrics_arg))
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume a killed time-constrained query from its stage journal: \
          re-armed at the original absolute deadline, the downtime lost, \
          nothing replayed.")
    term

(* ------------------------------------------------------------------ *)
(* exact                                                               *)

let exact_cmd =
  let aggregate_arg =
    Arg.(
      value & opt string "count"
      & info [ "a"; "aggregate" ] ~docv:"AGG" ~doc:"Aggregate to compute.")
  in
  let run dir query aggregate =
    match parse_query query with
    | Error e -> fail "%s" e
    | Ok expr -> (
        match Aggregate.parse aggregate with
        | exception Invalid_argument m -> fail "%s" m
        | aggregate -> (
            let catalog = load_catalog dir in
            let clock = Taqp_storage.Clock.create_virtual () in
            let device = Taqp_storage.Device.create clock in
            match Taqp.aggregate_exact ~device catalog ~aggregate expr with
            | v ->
                Fmt.pr "%a = %g@." Aggregate.pp aggregate v;
                Fmt.pr
                  "(an unconstrained evaluation would cost %.1f simulated \
                   seconds on the default device)@."
                  (Taqp_storage.Clock.now clock);
                `Ok ()
            | exception Taqp_relational.Ra.Type_error m -> fail "type error: %s" m))
  in
  let term = Term.(ret (const run $ dir_arg $ query_arg $ aggregate_arg)) in
  Cmd.v
    (Cmd.info "exact" ~doc:"Evaluate the aggregate exactly (ground truth).")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

(* The static half of explain: compiled terms and the untrained cost
   curve, unchanged from previous releases. *)
let explain_static catalog expr =
  match Taqp_estimators.Inclusion_exclusion.rewrite expr with
  | terms ->
      Fmt.pr "relations:@.";
      List.iter
        (fun name ->
          let f = Catalog.find catalog name in
          Fmt.pr "  %-12s %6d tuples  %5d blocks  schema %a@." name
            (Heap_file.n_tuples f) (Heap_file.n_blocks f)
            Taqp_data.Schema.pp (Heap_file.schema f))
        (Catalog.names catalog);
      Fmt.pr "result schema: %a@." Taqp_data.Schema.pp
        (Taqp_relational.Ra.infer_catalog catalog expr);
      Fmt.pr "inclusion-exclusion terms (%d):@." (List.length terms);
      List.iter
        (fun (sign, t) ->
          Fmt.pr "  %c %a@."
            (if sign > 0 then '+' else '-')
            Taqp_relational.Ra.pp t)
        terms;
      let cm = Taqp_timecost.Cost_model.create () in
      let staged =
        Staged.compile ~catalog ~config:Config.default
          ~rng:(Taqp_rng.Prng.create 1) ~cost_model:cm expr
      in
      Fmt.pr "predicted first-stage cost (untrained cost model):@.";
      List.iter
        (fun f ->
          Fmt.pr "  f = %-6g -> %8.2f s@." f
            (Staged.predicted_cost staged ~f ~mode:Staged.Plain))
        [ 0.001; 0.01; 0.05; 0.1; 0.5 ];
      `Ok ()
  | exception Taqp_estimators.Inclusion_exclusion.Unsupported m -> fail "%s" m
  | exception Taqp_relational.Ra.Type_error m -> fail "type error: %s" m

(* The audited half: actually run the query with a budget ledger on the
   device's spend listener and a drift monitor on the executor's cost
   observations, then account for every virtual second. Same rng-stream
   discipline as [Taqp.aggregate_within] (both hooks are observational),
   so the report matches a plain [taqp query] run bit for bit. *)
let run_audited ~config ~seed ~fault_plan ~fault_seed ?cache ~catalog ~quota
    expr =
  let params = Taqp_storage.Cost_params.default in
  let rng = Taqp_rng.Prng.create seed in
  let clock = Taqp_storage.Clock.create_virtual () in
  let fault_seed = Option.value fault_seed ~default:seed in
  let faults =
    match fault_plan with
    | None -> None
    | Some plan when Fault_plan.is_none plan -> None
    | Some plan -> Some (Taqp_fault.Injector.create ~seed:fault_seed plan)
  in
  let device =
    Taqp_storage.Device.create ~params ~jitter_rng:(Taqp_rng.Prng.split rng)
      ?faults clock
  in
  let ledger = Ledger.create () in
  Taqp_storage.Device.set_spend_listener device (Some (Ledger.on_spend ledger));
  let drift = Drift.create () in
  let h =
    Executor.start ~config ~aggregate:Aggregate.Count ?cache ~device ~catalog
      ~rng ~quota expr
  in
  Executor.on_cost_observation h (Drift.observer drift);
  let rec loop () =
    match Executor.step h with `Continue -> loop () | `Done r -> r
  in
  let report = loop () in
  (report, ledger, drift)

let explain_audited ~config ~seed ~fault_plan ~fault_seed ?cache ~catalog
    ~quota ~json query expr =
  match
    run_audited ~config ~seed ~fault_plan ~fault_seed ?cache ~catalog ~quota
      expr
  with
  | exception Staged.Compile_error m -> fail "%s" m
  | exception Taqp_relational.Ra.Type_error m -> fail "type error: %s" m
  | exception Taqp_fault.Injector.Crashed { op; at } ->
      fail "crash fault killed the run during %s at t=%.3f" op at
  | report, ledger, drift ->
      let reconciliation = Ledger.reconcile ~quota ledger in
      let drift_report = Drift.report drift in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("query", Json.Str query);
                  ("quota", Json.Num quota);
                  ("seed", Json.Num (float_of_int seed));
                  ( "outcome",
                    Json.Str (Report.outcome_name report.Report.outcome) );
                  ("estimate", Json.Num report.Report.estimate);
                  ("elapsed", Json.Num report.Report.elapsed);
                  ("degraded", Json.Bool report.Report.degraded);
                  ("fault_time", Json.Num report.Report.fault_time);
                  ("ledger", Ledger.reconciliation_json reconciliation);
                  ("drift", Drift.report_json drift_report);
                  ( "cache",
                    match cache with
                    | None -> Json.Null
                    | Some c -> Cache.stats_json c );
                ]))
      else begin
        Fmt.pr "%a@." Report.pp report;
        Fmt.pr "@.budget ledger (every virtual second, attributed):@.";
        Fmt.pr "%a@." Ledger.pp_reconciliation reconciliation;
        Option.iter
          (fun c ->
            let s = Cache.stats c in
            Fmt.pr "@.cache: %d hits, %d misses (ratio %.2f), %d evictions, \
                    %d bytes@."
              s.Cache.hits s.Cache.misses (Cache.hit_ratio c)
              s.Cache.evictions s.Cache.bytes)
          cache;
        Fmt.pr "@.cost-model drift:@.%a@." Drift.pp_report drift_report
      end;
      `Ok ()

let explain_workload ~policy ~admission ~fault_plan ~fault_seed ?cache ~catalog
    ~json jobs_file =
  let lines = In_channel.with_open_text jobs_file In_channel.input_lines in
  match Taqp_sched.Job.of_lines ~catalog lines with
  | Error m -> fail "%s: %s" jobs_file m
  | Ok [] -> fail "%s: no jobs" jobs_file
  | Ok jobs -> (
      let faults =
        Option.map
          (fun plan -> Taqp_fault.Injector.create ~seed:fault_seed plan)
          fault_plan
      in
      let meter = Meter.create () in
      let drift = Drift.create () in
      match
        Taqp_sched.Scheduler.run ~policy ?admission ?faults
          ~on_device:(Meter.attach meter)
          ~account:(Meter.set_account meter)
          ~on_dispatch:(fun _ h ->
            Executor.on_cost_observation h (Drift.observer drift))
          ?cache jobs
      with
      | exception Taqp_relational.Ra.Type_error m -> fail "type error: %s" m
      | exception Staged.Compile_error m -> fail "%s" m
      | exception Taqp_fault.Injector.Crashed { op; at } ->
          fail "crash fault killed the workload during %s at t=%.3f" op at
      | result ->
          let reports = result.Taqp_sched.Scheduler.reports in
          (* Advisory forensics evidence for cache-on runs: the seconds
             of this job's sample IO the cache's observed hit ratio
             says a warmer cache would have served at probe price. *)
          let miss_inflation_of (jr : Taqp_sched.Scheduler.job_report) =
            match cache with
            | None -> 0.0
            | Some c ->
                let id = jr.Taqp_sched.Scheduler.job.Taqp_sched.Job.id in
                if List.mem id (Meter.job_ids meter) then
                  let p = Taqp_storage.Cost_params.default in
                  Ledger.spend (Meter.ledger meter id) Ledger.Sample_io
                  *. Cache.hit_ratio c
                  *. (1.0
                     -. p.Taqp_storage.Cost_params.cache_probe
                        /. p.Taqp_storage.Cost_params.block_read)
                else 0.0
          in
          let classify jr =
            Forensics.classify ~cache_miss_inflation:(miss_inflation_of jr) jr
          in
          let verdicts = List.filter_map classify reports in
          let breakdown = Forensics.breakdown verdicts in
          let reconciliation_of (jr : Taqp_sched.Scheduler.job_report) =
            let id = jr.Taqp_sched.Scheduler.job.Taqp_sched.Job.id in
            if List.mem id (Meter.job_ids meter) then
              Some
                (Ledger.reconcile ?quota:jr.Taqp_sched.Scheduler.quota
                   (Meter.ledger meter id))
            else None
          in
          let drift_report = Drift.report drift in
          if json then
            print_endline
              (Json.to_string
                 (Json.Obj
                    [
                      ( "jobs",
                        Json.List
                          (List.map
                             (fun jr ->
                               let base =
                                 match
                                   Taqp_sched.Scheduler.job_report_json jr
                                 with
                                 | Json.Obj fields -> fields
                                 | j -> [ ("report", j) ]
                               in
                               Json.Obj
                                 (base
                                 @ [
                                     ( "cause",
                                       match classify jr with
                                       | None -> Json.Null
                                       | Some v -> Forensics.verdict_json v );
                                     ( "ledger",
                                       match reconciliation_of jr with
                                       | None -> Json.Null
                                       | Some r ->
                                           Ledger.reconciliation_json r );
                                   ]))
                             reports) );
                      ("forensics", Forensics.breakdown_json breakdown);
                      ("drift", Drift.report_json drift_report);
                      ( "summary",
                        Taqp_sched.Scheduler.summary_json
                          result.Taqp_sched.Scheduler.summary );
                    ]))
          else begin
            List.iter
              (fun (jr : Taqp_sched.Scheduler.job_report) ->
                let late = jr.Taqp_sched.Scheduler.lateness in
                match classify jr with
                | Some v ->
                    Fmt.pr "%-16s %-16s late=%6.2fs  %a@."
                      jr.Taqp_sched.Scheduler.job.Taqp_sched.Job.label
                      (Taqp_sched.Scheduler.outcome_name jr)
                      late Forensics.pp_verdict v
                | None ->
                    Fmt.pr "%-16s %-16s %s@."
                      jr.Taqp_sched.Scheduler.job.Taqp_sched.Job.label
                      (Taqp_sched.Scheduler.outcome_name jr)
                      (if jr.Taqp_sched.Scheduler.admitted then "met deadline"
                       else "not admitted"))
              reports;
            Fmt.pr "@.forensics: %d missed@." breakdown.Forensics.b_missed;
            List.iter
              (fun (c, n) ->
                if n > 0 then
                  Fmt.pr "  %-24s %d@." (Forensics.cause_name c) n)
              breakdown.Forensics.b_by_cause;
            let inexact =
              List.filter
                (fun jr ->
                  match reconciliation_of jr with
                  | Some r -> not r.Ledger.r_exact
                  | None -> false)
                reports
            in
            (if inexact = [] then
               Fmt.pr
                 "@.budget ledgers: all %d metered jobs reconcile bit-exactly@."
                 (List.length (Meter.job_ids meter))
             else
               List.iter
                 (fun (jr : Taqp_sched.Scheduler.job_report) ->
                   Fmt.pr "@.LEDGER NOT EXACT for %s@."
                     jr.Taqp_sched.Scheduler.job.Taqp_sched.Job.label)
                 inexact);
            Fmt.pr "@.cost-model drift:@.%a@." Drift.pp_report drift_report;
            Fmt.pr "@.%a@." Taqp_sched.Scheduler.pp_summary
              result.Taqp_sched.Scheduler.summary
          end;
          `Ok ())

let explain_cmd =
  let query_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "RA query, e.g. 'count(select[sel < 1000](r))'. Required unless \
             $(b,--jobs) is given.")
  in
  let quota_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "q"; "quota" ] ~docv:"SECONDS"
          ~doc:
            "Audit an actual run: evaluate the query within this quota with \
             a budget ledger attached, then print where every virtual \
             second went and how the cost model is drifting.")
  in
  let physical_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("sort", Config.Sort_merge);
               ("hash", Config.Hash);
               ("adaptive", Config.Adaptive);
             ])
          Config.Sort_merge
      & info [ "physical" ] ~docv:"PATH"
          ~doc:"Physical path for the audited run: $(b,sort), $(b,hash) or \
                $(b,adaptive).")
  in
  let observe_arg =
    Arg.(
      value & flag
      & info [ "observe" ]
          ~doc:
            "Audit in ERAM's measurement mode: let the final stage finish \
             and account the overspend instead of aborting at the deadline.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SCENARIO"
          ~doc:
            "Inject storage faults into the audited run (preset or DSL, see \
             docs/ROBUSTNESS.md); the ledger attributes their cost to the \
             fault category.")
  in
  let fault_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"Seed of the fault injector's random stream (default: \
                $(b,--seed)).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "j"; "jobs" ] ~docv:"FILE"
          ~doc:
            "Miss forensics over a whole workload: run the job file through \
             the scheduler with per-job budget ledgers and name a root \
             cause for every missed deadline (same file format as \
             $(b,taqp serve)).")
  in
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             (List.map (fun p -> (Taqp_sched.Policy.name p, p))
                Taqp_sched.Policy.all))
          Taqp_sched.Policy.Edf
      & info [ "policy" ] ~docv:"NAME"
          ~doc:"With $(b,--jobs): scheduling policy.")
  in
  let admission_arg =
    Arg.(
      value & flag
      & info [ "admission" ]
          ~doc:"With $(b,--jobs): admission control on arrivals.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the audit as one JSON object instead of prose.")
  in
  let run dir query quota physical observe faults fault_seed jobs policy
      admission json cache_mb seed =
    match
      match faults with
      | None -> Ok None
      | Some s -> Result.map Option.some (Fault_plan.of_string s)
    with
    | Error m -> fail "bad --faults scenario: %s" m
    | Ok fault_plan -> (
        let catalog = load_catalog dir in
        let admission =
          if admission then Some (Taqp_sched.Admission.make ()) else None
        in
        let cache = make_cache ~seed cache_mb in
        match (jobs, query, quota) with
        | Some jobs_file, None, _ ->
            let fault_seed = Option.value fault_seed ~default:seed in
            explain_workload ~policy ~admission ~fault_plan ~fault_seed ?cache
              ~catalog ~json jobs_file
        | Some _, Some _, _ -> fail "--jobs and a QUERY are exclusive"
        | None, None, _ -> fail "a QUERY (or --jobs FILE) is required"
        | None, Some q, Some quota -> (
            match parse_query q with
            | Error e -> fail "%s" e
            | Ok expr ->
                let stopping =
                  if observe then Stopping.Soft_deadline { grace = 1e9 }
                  else Stopping.Hard_deadline
                in
                let config =
                  {
                    Config.default with
                    Config.stopping;
                    physical;
                    trace = true;
                  }
                in
                explain_audited ~config ~seed ~fault_plan ~fault_seed ?cache
                  ~catalog ~quota ~json q expr)
        | None, Some q, None -> (
            match parse_query q with
            | Error e -> fail "%s" e
            | Ok expr -> explain_static catalog expr))
  in
  let term =
    Term.(
      ret
        (const run $ dir_arg $ query_arg $ quota_arg $ physical_arg
       $ observe_arg $ faults_arg $ fault_seed_arg $ jobs_arg $ policy_arg
       $ admission_arg $ json_arg $ cache_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a query (compiled terms, cost curve) — or, with \
          $(b,--quota) / $(b,--jobs), audit where the time went: budget \
          ledger, cost-model drift and per-miss root causes.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

(* The serving core shared by the batch and socket doors: one
   self-contained JSON line per job — journaled terminal lines first,
   then this run's reports — and the workload summary, so stdout is a
   JSONL stream a pipeline can consume with the same shape whichever
   door the jobs came through. Ends with the exit-code rule: nonzero
   iff an admitted job missed its hard deadline — rejected jobs were
   refused up front and do not fail the batch (docs/SERVING.md). *)
let serve_report ~slo ~slo_window ~cache ~registry ?(extra = []) ~journaled
    ~reports summary =
  List.iter
    (fun d ->
      print_endline
        (Taqp_obs.Json.to_string (Taqp_sched.Scheduler.done_record_json d)))
    journaled;
  List.iter
    (fun r ->
      print_endline
        (Taqp_obs.Json.to_string (Taqp_sched.Scheduler.job_report_json r)))
    reports;
  (* SLO monitor: every admitted terminal job, replayed in completion
     order through the rolling window *)
  let slo_fields =
    match slo with
    | None -> []
    | Some target ->
        let monitor =
          Slo.create ~window:slo_window ~target_miss_rate:target ()
        in
        let terminal =
          List.map
            (fun (d : Sched_journal.done_record) ->
              ( d.Sched_journal.d_finished_at,
                d.Sched_journal.d_admitted,
                d.Sched_journal.d_missed,
                d.Sched_journal.d_lateness ))
            journaled
          @ List.filter_map
              (fun (r : Taqp_sched.Scheduler.job_report) ->
                match r.Taqp_sched.Scheduler.outcome with
                | Taqp_sched.Scheduler.Rejected _ -> None
                | _ ->
                    Some
                      ( r.Taqp_sched.Scheduler.finished_at,
                        r.Taqp_sched.Scheduler.admitted,
                        r.Taqp_sched.Scheduler.missed,
                        r.Taqp_sched.Scheduler.lateness ))
              reports
        in
        List.iter
          (fun (_, admitted, missed, lateness) ->
            if admitted then Slo.observe monitor ~missed ~lateness)
          (List.sort
             (fun (a, _, _, _) (b, _, _, _) -> Float.compare a b)
             terminal);
        Fmt.epr "%a@." Slo.pp monitor;
        [ ("slo", Slo.to_json monitor) ]
  in
  let cache_fields =
    match cache with
    | None -> []
    | Some c -> [ ("cache", Cache.stats_json c) ]
  in
  print_endline
    (Taqp_obs.Json.to_string
       (Taqp_obs.Json.Obj
          (("summary", Taqp_sched.Scheduler.summary_json summary)
          :: (slo_fields @ cache_fields @ extra))));
  Fmt.epr "%a@." Taqp_sched.Scheduler.pp_summary summary;
  Option.iter (fun m -> Fmt.epr "%a@." Metrics.pp m) registry;
  if
    List.exists
      (fun (d : Sched_journal.done_record) ->
        d.Sched_journal.d_admitted && d.Sched_journal.d_missed)
      journaled
    || List.exists
         (fun (r : Taqp_sched.Scheduler.job_report) ->
           r.Taqp_sched.Scheduler.admitted && r.Taqp_sched.Scheduler.missed)
         reports
  then exit 1
  else `Ok ()

let serve_cmd =
  let jobs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "j"; "jobs" ] ~docv:"FILE"
          ~doc:
            "Job file, one job per line: 'arrival | deadline | query [| \
             key=value,...]' with options priority=INT, seed=INT, \
             label=STRING and min_rhw=FLOAT. Blank lines and # comments \
             are skipped. $(b,-) reads the job stream from stdin. \
             Required in batch mode; excluded by $(b,--listen).")
  in
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             (List.map (fun p -> (Taqp_sched.Policy.name p, p))
                Taqp_sched.Policy.all))
          Taqp_sched.Policy.Edf
      & info [ "policy" ] ~docv:"NAME"
          ~doc:
            "Scheduling policy: $(b,fifo), $(b,edf), $(b,llf) or $(b,wfq).")
  in
  let admission_arg =
    Arg.(
      value & flag
      & info [ "admission" ]
          ~doc:
            "Price each arrival with the executor's cost nodes and reject \
             (or degrade) jobs whose slack cannot cover their minimum \
             viable stage.")
  in
  let max_queue_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"With $(b,--admission): reject beyond N live jobs.")
  in
  let headroom_arg =
    Arg.(
      value & opt float 1.0
      & info [ "headroom" ] ~docv:"FACTOR"
          ~doc:
            "With $(b,--admission): demand FACTOR x the priced requirement \
             (>= 1).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry (sched.* counters) to stderr.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SCENARIO"
          ~doc:
            "Inject storage faults into the shared device (preset or DSL, \
             see docs/ROBUSTNESS.md). A faulted job degrades through the \
             executor's containment; the queue keeps draining.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"Seed of the fault injector's random stream.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal every admission decision, step and \
             terminal accounting line to $(docv), each write charged to \
             the shared clock. A killed serve is recovered with \
             $(b,--recover); see docs/RECOVERY.md.")
  in
  let recover_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "recover" ] ~docv:"FILE"
          ~doc:
            "Recover a killed serve from its journal: jobs whose terminal \
             record survived are reported from the journal, every other \
             job is re-run with whatever slack its absolute deadline still \
             leaves after $(b,--downtime). Run against the same job file.")
  in
  let downtime_arg =
    Arg.(
      value & opt float 0.0
      & info [ "downtime" ] ~docv:"SECONDS"
          ~doc:
            "With $(b,--recover): virtual seconds between the crash and \
             the restart. Deadlines that passed during the outage expire \
             at dispatch instead of wasting budget.")
  in
  let slo_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo" ] ~docv:"TARGET"
          ~doc:
            "Monitor the workload against a miss-rate SLO: TARGET in [0,1] \
             is the tolerated miss rate over the rolling window of the \
             most recent admitted jobs. Prints the burn rate (observed \
             miss rate over target — above 1.0 the error budget is \
             burning) to stderr and adds an $(b,slo) object to the \
             summary JSON line. 0 is a hard SLO: any miss is infinite \
             burn.")
  in
  let slo_window_arg =
    Arg.(
      value & opt int 20
      & info [ "slo-window" ] ~docv:"N"
          ~doc:"With $(b,--slo): rolling window size in jobs.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "Socket mode: bind the TAQPNET1 front door to \
             127.0.0.1:$(docv) (0 picks an ephemeral port, printed to \
             stderr) and take jobs over the wire instead of from a file \
             (submit them with $(b,taqp submit)). The per-job JSON lines, \
             summary object, SLO monitor and exit codes are identical to \
             batch mode; see docs/SERVING.md.")
  in
  let gate_arg =
    Arg.(
      value
      & opt (enum [ ("eager", `Eager); ("drain", `Drain) ]) `Eager
      & info [ "gate" ] ~docv:"MODE"
          ~doc:
            "With $(b,--listen): $(b,eager) steps the scheduler whenever \
             it has work (real serving); $(b,drain) freezes the virtual \
             clock until a client sends DRAIN, so a whole arrival \
             schedule queues first and the run is bit-identical to the \
             same jobs through batch mode.")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 4096
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "With $(b,--listen): refuse SUBMITs at the door beyond \
             $(docv) not-yet-terminal jobs (the memory bound; refusals \
             carry a priced retry_after).")
  in
  let quota_capacity_arg =
    Arg.(
      value & opt float 64.0
      & info [ "quota-capacity" ] ~docv:"TOKENS"
          ~doc:
            "With $(b,--listen): per-connection token-bucket burst \
             capacity — one token per SUBMIT, buckets start full.")
  in
  let quota_refill_arg =
    Arg.(
      value & opt float 4.0
      & info [ "quota-refill" ] ~docv:"RATE"
          ~doc:
            "With $(b,--listen): token-bucket refill, in tokens per \
             virtual second on the server's clock.")
  in
  let run dir jobs_file policy admission max_queue headroom metrics faults
      fault_seed journal recover downtime slo slo_window cache_mb domains
      listen gate max_pending quota_capacity quota_refill =
    if domains < 1 then fail "--domains must be >= 1"
    else
    match
      match faults with
      | None -> Ok None
      | Some s -> Result.map Option.some (Fault_plan.of_string s)
    with
    | Error m -> fail "bad --faults scenario: %s" m
    | Ok fault_plan -> (
        match
          if admission then
            match Taqp_sched.Admission.make ?max_queue ~headroom () with
            | a -> Ok (Some a)
            | exception Invalid_argument m -> Error m
          else Ok None
        with
        | Error m -> fail "%s" m
        | Ok admission -> (
            if downtime < 0.0 then fail "--downtime must be >= 0"
            else if
              match slo with Some t -> t < 0.0 || t > 1.0 | None -> false
            then fail "--slo target must be in [0,1]"
            else if slo <> None && slo_window < 1 then
              fail "--slo-window must be >= 1"
            else if journal <> None && journal = recover then
              fail "--journal and --recover cannot name the same file"
            else if listen <> None && jobs_file <> None then
              fail
                "--jobs and --listen are mutually exclusive: socket jobs \
                 arrive over the wire ('taqp submit')"
            else if listen = None && jobs_file = None then
              fail "--jobs is required (or --listen PORT for the socket door)"
            else if max_pending < 1 then fail "--max-pending must be >= 1"
            else if quota_capacity <= 0.0 then
              fail "--quota-capacity must be > 0"
            else if quota_refill < 0.0 then fail "--quota-refill must be >= 0"
            else
            let catalog = load_catalog dir in
            let registry =
              if metrics then Some (Metrics.create ()) else None
            in
            let cache = make_cache ~seed:0 cache_mb in
            let faults =
              Option.map
                (fun plan -> Taqp_fault.Injector.create ~seed:fault_seed plan)
                fault_plan
            in
            match listen with
            | Some port -> (
                (* The socket door: same scheduler, same accounting,
                   same output shape — jobs arrive as wire frames and
                   the admission verdicts go back as priced REJECTs. *)
                match
                  match recover with
                  | None -> Ok None
                  | Some rpath -> (
                      match Sched_journal.load rpath with
                      | Error m -> Error m
                      | Ok { Sched_journal.records = []; _ } ->
                          Error (rpath ^ ": journal is empty")
                      | Ok { Sched_journal.records; torn } ->
                          Option.iter
                            (fun t ->
                              Fmt.epr "note: journal %s (tail discarded)@." t)
                            torn;
                          Ok (Some records))
                with
                | Error m -> fail "%s" m
                | Ok records -> (
                    (* A recovered serve never re-creates its own
                       killer: pending Crash rules are disabled,
                       everything else keeps firing. *)
                    if records <> None then
                      Option.iter Taqp_fault.Injector.disable_crashes faults;
                    let config = { Config.default with Config.domains } in
                    match
                      Taqp_net.Server.create ~policy ?admission
                        ?metrics:registry ?faults ?cache ~gate ~max_pending
                        ~quota_capacity ~quota_refill ?journal_path:journal
                        ?recover:records ~downtime ~catalog ~config ~port ()
                    with
                    | exception Unix.Unix_error (e, _, _) ->
                        fail "cannot listen on 127.0.0.1:%d: %s" port
                          (Unix.error_message e)
                    | exception Sys_error m -> fail "cannot open journal: %s" m
                    | server -> (
                        Fmt.epr "taqp: listening on 127.0.0.1:%d (%s gate)@."
                          (Taqp_net.Server.port server)
                          (match gate with
                          | `Eager -> "eager"
                          | `Drain -> "drain");
                        match Taqp_net.Server.run server with
                        | exception Taqp_fault.Injector.Crashed { op; at } ->
                            Taqp_net.Server.shutdown server;
                            let hint =
                              match journal with
                              | Some p ->
                                  Fmt.str
                                    " — recover with: taqp serve --dir %s \
                                     --listen %d --recover %s"
                                    dir port p
                              | None -> ""
                            in
                            fail
                              "crash fault killed the server during %s at \
                               t=%.3f%s"
                              op at hint
                        | stats ->
                            let n i = Json.Num (float_of_int i) in
                            serve_report ~slo ~slo_window ~cache ~registry
                              ~extra:
                                [ ( "net",
                                    Json.Obj
                                      [
                                        ( "max_live",
                                          n stats.Taqp_net.Server.max_live );
                                        ( "door_rejects",
                                          n stats.Taqp_net.Server.door_rejects
                                        );
                                      ] );
                                ]
                              ~journaled:stats.Taqp_net.Server.journaled
                              ~reports:
                                stats.Taqp_net.Server.result
                                  .Taqp_sched.Scheduler.reports
                              stats.Taqp_net.Server.summary)))
            | None -> (
                let src = Option.get jobs_file in
                let src_name = if src = "-" then "stdin" else src in
                match
                  if src = "-" then Taqp_sched.Job.of_channel ~catalog stdin
                  else
                    In_channel.with_open_text src
                      (Taqp_sched.Job.of_channel ~catalog)
                with
                | exception Sys_error m -> fail "%s" m
                | Error m -> fail "%s: %s" src_name m
                | Ok [] -> fail "%s: no jobs" src_name
                | Ok jobs -> (
                let jobs =
                  List.map
                    (fun (j : Taqp_sched.Job.t) ->
                      { j with config = { j.config with domains } })
                    jobs
                in
                match Option.map Taqp_recover.Journal.create journal with
                | exception Sys_error m -> fail "cannot open journal: %s" m
                | jwriter -> (
                let close_journal () =
                  Option.iter Taqp_recover.Journal.close jwriter
                in
                match recover with
                | None -> (
                    match
                      Taqp_sched.Scheduler.run ~policy ?admission
                        ?metrics:registry ?faults ?journal:jwriter ?cache jobs
                    with
                    | exception Taqp_relational.Ra.Type_error m ->
                        close_journal ();
                        fail "type error: %s" m
                    | exception Staged.Compile_error m ->
                        close_journal ();
                        fail "%s" m
                    | exception Taqp_fault.Injector.Crashed { op; at } ->
                        close_journal ();
                        let hint =
                          match journal with
                          | Some p ->
                              Fmt.str
                                " — recover with: taqp serve --dir %s --jobs \
                                 %s --recover %s"
                                dir src p
                          | None -> ""
                        in
                        fail
                          "crash fault killed the workload during %s at \
                           t=%.3f%s"
                          op at hint
                    | result ->
                        close_journal ();
                        serve_report ~slo ~slo_window ~cache ~registry
                          ~journaled:[]
                          ~reports:result.Taqp_sched.Scheduler.reports
                          result.Taqp_sched.Scheduler.summary)
                | Some rpath -> (
                    match Sched_journal.load rpath with
                    | Error m ->
                        close_journal ();
                        fail "%s" m
                    | Ok { Sched_journal.records = []; _ } ->
                        close_journal ();
                        fail "%s: journal is empty" rpath
                    | Ok { Sched_journal.records; torn } -> (
                        Option.iter
                          (fun t ->
                            Fmt.epr "note: journal %s (tail discarded)@." t)
                          torn;
                        (* A recovered serve never re-creates its own
                           killer: pending Crash rules are disabled,
                           everything else keeps firing. *)
                        Option.iter Taqp_fault.Injector.disable_crashes
                          faults;
                        match
                          Taqp_sched.Scheduler.recover ~policy ?admission
                            ?metrics:registry ?faults ?journal:jwriter ?cache
                            ~downtime ~records jobs
                        with
                        | exception Taqp_relational.Ra.Type_error m ->
                            close_journal ();
                            fail "type error: %s" m
                        | exception Staged.Compile_error m ->
                            close_journal ();
                            fail "%s" m
                        | recovery ->
                            close_journal ();
                            serve_report ~slo ~slo_window ~cache ~registry
                              ~journaled:
                                recovery.Taqp_sched.Scheduler.r_journaled
                              ~reports:
                                recovery.Taqp_sched.Scheduler.r_run
                                  .Taqp_sched.Scheduler.reports
                              recovery.Taqp_sched.Scheduler.r_summary)))))))
  in
  let term =
    Term.(
      ret
        (const run $ dir_arg $ jobs_arg $ policy_arg $ admission_arg
       $ max_queue_arg $ headroom_arg $ metrics_arg $ faults_arg
       $ fault_seed_arg $ journal_arg $ recover_arg $ downtime_arg $ slo_arg
       $ slo_window_arg $ cache_arg $ domains_arg $ listen_arg $ gate_arg
       $ max_pending_arg $ quota_capacity_arg $ quota_refill_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run deadline-constrained jobs through the multi-query scheduler — \
          from a job file ($(b,--jobs), $(b,-) for stdin) or over a socket \
          ($(b,--listen)) — one JSON line per job; exits nonzero iff an \
          admitted job missed its deadline (docs/SERVING.md).")
    term

(* ------------------------------------------------------------------ *)
(* submit                                                              *)

let submit_cmd =
  let port_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port of a $(b,taqp serve --listen) server (loopback).")
  in
  let jobs_arg =
    Arg.(
      value & opt string "-"
      & info [ "j"; "jobs" ] ~docv:"FILE"
          ~doc:
            "Job file with the same line grammar as $(b,serve --jobs); \
             arrival and deadline are offsets from the server's virtual \
             now. $(b,-) (the default) reads stdin.")
  in
  let drain_flag =
    Arg.(
      value & flag
      & info [ "drain" ]
          ~doc:
            "After submitting, send DRAIN: the server stops admitting, \
             executes its whole backlog, broadcasts the final summary \
             (printed as the last JSON line) and shuts down. The only way \
             to get results out of a $(b,--gate drain) server.")
  in
  let no_wait_flag =
    Arg.(
      value & flag
      & info [ "no-wait" ]
          ~doc:
            "Exit right after the door's QUEUED/REJECTED verdicts without \
             waiting for terminal records. The exit code then only \
             reflects the door.")
  in
  let connect_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Bound the TCP connect (wall seconds) and retry a refused or \
             timed-out dial a few times with backoff — for racing a server \
             or balancer that is still binding its port. Default: a single \
             blocking connect.")
  in
  let run port connect_timeout jobs_file do_drain no_wait =
    match
      if jobs_file = "-" then In_channel.input_lines stdin
      else In_channel.with_open_text jobs_file In_channel.input_lines
    with
    | exception Sys_error m -> fail "%s" m
    | raw_lines -> (
        let lines =
          List.filter
            (fun l ->
              let l = String.trim l in
              l <> "" && l.[0] <> '#')
            raw_lines
        in
        if lines = [] then fail "%s: no job lines" jobs_file
        else
          match
            match connect_timeout with
            | None -> Taqp_net.Client.connect ~port ()
            | Some _ ->
                Taqp_net.Client.connect_retry ?connect_timeout ~port ()
          with
          | exception Unix.Unix_error (e, _, _) ->
              fail "cannot connect to 127.0.0.1:%d: %s" port
                (Unix.error_message e)
          | exception Taqp_net.Client.Timed_out phase ->
              fail "connect to 127.0.0.1:%d timed out (%s)" port phase
          | exception Taqp_net.Client.Protocol_error m ->
              fail "handshake failed: %s" m
          | client -> (
              let event kind fields =
                print_endline
                  (Json.to_string
                     (Json.Obj (("event", Json.Str kind) :: fields)))
              in
              let finished = Hashtbl.create 16 in
              let refused = Hashtbl.create 4 in
              let harvest () =
                List.iter
                  (function
                    | Taqp_net.Client.Finished d ->
                        Hashtbl.replace finished d.Sched_journal.d_id d
                    | Taqp_net.Client.Refused { job_id; reason; retry_after }
                      ->
                        if not (Hashtbl.mem refused job_id) then (
                          Hashtbl.replace refused job_id ();
                          event "rejected"
                            [
                              ("id", Json.Num (float_of_int job_id));
                              ("reason", Json.Str reason);
                              ("retry_after", Json.Num retry_after);
                            ]))
                  (Taqp_net.Client.pushes client)
              in
              let terminal id =
                Hashtbl.mem finished id || Hashtbl.mem refused id
              in
              (* The whole exchange runs under one handler: the server
                 can hang up at any frame (a crash fault propagates the
                 moment the engine steps into it, even before a QUEUED
                 reply flushes). Door verdicts already printed stay
                 printed — partial progress is evidence. *)
              match
                let queued =
                  List.filter_map
                    (fun line ->
                      match Taqp_net.Client.submit client line with
                      | `Queued (id, arrival, deadline) ->
                          event "queued"
                            [
                              ("id", Json.Num (float_of_int id));
                              ("arrival", Json.Num arrival);
                              ("deadline", Json.Num deadline);
                            ];
                          Some id
                      | `Rejected (reason, retry_after) ->
                          event "door_rejected"
                            [
                              ("reason", Json.Str reason);
                              ("retry_after", Json.Num retry_after);
                            ];
                          None)
                    lines
                in
                if no_wait then `No_wait
                else
                  (* Wait for every queued job's terminal record: the
                     server pushes them to the owning connection; a
                     FETCH-poll covers records that raced the pushes. *)
                  let summary =
                    if do_drain then Some (Taqp_net.Client.drain client)
                    else None
                  in
                  harvest ();
                  let rec poll_rest = function
                    | [] -> ()
                    | id :: rest when terminal id -> poll_rest rest
                    | id :: rest -> (
                        match Taqp_net.Client.fetch client ~job_id:id with
                        | `Result d ->
                            Hashtbl.replace finished id d;
                            harvest ();
                            poll_rest rest
                        | `Pending _ ->
                            Unix.sleepf 0.05;
                            harvest ();
                            poll_rest (id :: rest))
                  in
                  if summary = None then poll_rest queued;
                  harvest ();
                  `Done (queued, summary)
              with
              | exception Taqp_net.Client.Server_closed ->
                  (try Taqp_net.Client.close client with _ -> ());
                  fail
                    "server hung up before every job was terminal (crash \
                     fault? recover it and FETCH the survivors)"
              | exception Taqp_net.Client.Protocol_error m ->
                  (try Taqp_net.Client.close client with _ -> ());
                  fail "protocol error: %s" m
              | `No_wait ->
                  Taqp_net.Client.close client;
                  `Ok ()
              | `Done (queued, summary) ->
                  List.iter
                    (fun id ->
                      match Hashtbl.find_opt finished id with
                      | Some d ->
                          print_endline
                            (Json.to_string
                               (Taqp_sched.Scheduler.done_record_json d))
                      | None -> ())
                    queued;
                  Option.iter
                    (fun s ->
                      print_endline
                        (Json.to_string
                           (Json.Obj
                              [
                                ( "summary",
                                  Taqp_sched.Scheduler.summary_json s );
                              ])))
                    summary;
                  Taqp_net.Client.close client;
                  (* Same rule as serve: nonzero iff an admitted job
                     missed its hard deadline. *)
                  if
                    Hashtbl.fold
                      (fun _ (d : Sched_journal.done_record) acc ->
                        acc
                        || (d.Sched_journal.d_admitted
                           && d.Sched_journal.d_missed))
                      finished false
                  then exit 1
                  else `Ok ()))
  in
  let term =
    Term.(
      ret
        (const run $ port_arg $ connect_timeout_arg $ jobs_arg $ drain_flag
       $ no_wait_flag))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit job lines to a running $(b,taqp serve --listen) server and \
          await their terminal records (one JSON line per event/record; \
          exits nonzero iff an admitted job missed its deadline). \
          $(b,--drain) additionally executes a drain-gated server's backlog \
          and prints the final summary.")
    term

(* ------------------------------------------------------------------ *)
(* balance                                                             *)

let balance_cmd =
  let listen_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:"Loopback TCP port to serve clients on (0 = ephemeral).")
  in
  let backends_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "backends" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated backend list: $(b,PORT) or \
             $(b,PORT=JOURNAL), e.g. \
             $(b,7601=/tmp/b1.jrn,7602=/tmp/b2.jrn). Each names a running \
             $(b,taqp serve --listen) process; a journal path enables \
             replay and job migration when that backend dies.")
  in
  let no_failover_flag =
    Arg.(
      value & flag
      & info [ "no-failover" ]
          ~doc:
            "Do not migrate a dead backend's unfinished journaled jobs to \
             survivors; write each off as a $(b,lost) terminal instead \
             (the control arm of the failover experiment).")
  in
  let downtime_arg =
    Arg.(
      value & opt float 0.0
      & info [ "downtime" ] ~docv:"SECONDS"
          ~doc:
            "Virtual seconds charged against a migrated job's remaining \
             slack — the failure-detection-plus-restart cost the paper's \
             time constraints must absorb.")
  in
  let parse_backends spec =
    String.split_on_char ',' spec
    |> List.filter_map (fun s ->
           let s = String.trim s in
           if s = "" then None
           else
             match String.index_opt s '=' with
             | None -> (
                 match int_of_string_opt s with
                 | Some p -> Some { Taqp_net.Balancer.Proxy.bs_port = p; bs_journal = None }
                 | None -> failwith ("bad backend port: " ^ s))
             | Some i -> (
                 let port = String.sub s 0 i in
                 let path = String.sub s (i + 1) (String.length s - i - 1) in
                 match int_of_string_opt (String.trim port) with
                 | Some p ->
                     Some
                       {
                         Taqp_net.Balancer.Proxy.bs_port = p;
                         bs_journal = Some (String.trim path);
                       }
                 | None -> failwith ("bad backend port: " ^ s)))
  in
  let run port backends_spec no_failover downtime =
    match parse_backends backends_spec with
    | exception Failure m -> fail "%s" m
    | [] -> fail "no backends in %S" backends_spec
    | backends -> (
        match
          Taqp_net.Balancer.Proxy.create ~failover:(not no_failover) ~downtime
            ~port ~backends ()
        with
        | exception Unix.Unix_error (e, _, ctx) ->
            fail "cannot start balancer: %s (%s)" (Unix.error_message e) ctx
        | proxy ->
            Fmt.epr "balancing 127.0.0.1:%d over %d backends@."
              (Taqp_net.Balancer.Proxy.port proxy)
              (List.length backends);
            let stats = Taqp_net.Balancer.Proxy.run proxy in
            List.iter
              (fun d ->
                print_endline
                  (Json.to_string (Taqp_sched.Scheduler.done_record_json d)))
              stats.Taqp_net.Balancer.Proxy.p_records;
            let n x = Json.Num (float_of_int x) in
            print_endline
              (Json.to_string
                 (Json.Obj
                    [
                      ( "summary",
                        Taqp_sched.Scheduler.summary_json
                          stats.Taqp_net.Balancer.Proxy.p_summary );
                      ( "balance",
                        Json.Obj
                          [
                            ("submitted", n stats.Taqp_net.Balancer.Proxy.p_submitted);
                            ( "door_rejects",
                              n stats.Taqp_net.Balancer.Proxy.p_door_rejects );
                            ("deaths", n stats.Taqp_net.Balancer.Proxy.p_deaths);
                            ("migrated", n stats.Taqp_net.Balancer.Proxy.p_migrated);
                            ("replayed", n stats.Taqp_net.Balancer.Proxy.p_replayed);
                            ("lost", n stats.Taqp_net.Balancer.Proxy.p_lost);
                          ] );
                    ]));
            (* Same verdict rule as serve/submit: nonzero iff an
               admitted job missed its hard deadline. *)
            if
              List.exists
                (fun (d : Sched_journal.done_record) ->
                  d.Sched_journal.d_admitted && d.Sched_journal.d_missed)
                stats.Taqp_net.Balancer.Proxy.p_records
            then exit 1
            else `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ listen_arg $ backends_arg $ no_failover_flag
       $ downtime_arg))
  in
  Cmd.v
    (Cmd.info "balance"
       ~doc:
         "Front several $(b,taqp serve --listen) backends with the \
          replicated serving tier: least-priced-backlog routing, \
          health-checked circuit breakers, and journal-backed failover \
          that migrates a dead backend's unfinished jobs to survivors \
          (docs/HA.md). Serves until a client drains the tier; prints one \
          JSON line per terminal record plus the cross-backend summary; \
          exits nonzero iff an admitted job missed its deadline.")
    term

(* ------------------------------------------------------------------ *)

let () =
  let doc = "time-constrained aggregate query processing (SIGMOD 1989)" in
  let info = Cmd.info "taqp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            query_cmd;
            resume_cmd;
            exact_cmd;
            explain_cmd;
            serve_cmd;
            submit_cmd;
            balance_cmd;
          ]))
