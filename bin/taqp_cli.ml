(* taqp — time-constrained aggregate query processing from the shell.

     taqp gen --dir data --workload join          # synthesize relations
     taqp query --dir data --quota 2.5 "count(join[r1.key = r2.key](r1, r2))"
     taqp exact --dir data "count(select[sel < 1000](r1))"
     taqp explain --dir data "..."                # terms + cost curve
     taqp serve --dir data --jobs batch.jobs --policy edf --admission *)

open Cmdliner
module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Aggregate = Taqp_core.Aggregate
module Staged = Taqp_core.Staged
module Stopping = Taqp_timecontrol.Stopping
module Strategy = Taqp_timecontrol.Strategy
module Csv_io = Taqp_storage.Csv_io
module Catalog = Taqp_storage.Catalog
module Heap_file = Taqp_storage.Heap_file
module Paper_setup = Taqp_workload.Paper_setup
module Sink = Taqp_obs.Sink
module Metrics = Taqp_obs.Metrics
module Fault_plan = Taqp_fault.Fault_plan

let fail fmt = Fmt.kstr (fun s -> `Error (false, s)) fmt

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)

let dir_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Directory of relation CSV files.")

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY"
        ~doc:
          "RA query, e.g. 'count(select[sel < 1000](r))'. The count(...) \
           wrapper is optional.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let load_catalog dir = Csv_io.load_dir dir

let parse_query q =
  match Taqp.parse q with
  | e -> Ok e
  | exception Taqp_relational.Parser.Parse_error { position; message } ->
      Error (Fmt.str "parse error at offset %d: %s" position message)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)

let gen_cmd =
  let workload_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("selection", `Selection);
               ("join", `Join);
               ("intersection", `Intersection);
               ("projection", `Projection);
               ("select-join", `Select_join);
               ("union", `Union);
             ])
          `Selection
      & info [ "w"; "workload" ] ~docv:"KIND"
          ~doc:
            "Workload kind: $(b,selection), $(b,join), $(b,intersection), \
             $(b,projection), $(b,select-join) or $(b,union).")
  in
  let out_dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory (created).")
  in
  let tuples_arg =
    Arg.(
      value & opt int 10_000
      & info [ "tuples" ] ~docv:"N" ~doc:"Tuples per relation.")
  in
  let run workload dir tuples seed =
    let spec = { Taqp_workload.Generator.paper_spec with n_tuples = tuples } in
    let wl =
      match workload with
      | `Selection -> Paper_setup.selection ~spec ~seed ()
      | `Join -> Paper_setup.join ~spec ~seed ()
      | `Intersection -> Paper_setup.intersection ~spec ~seed ()
      | `Projection -> Paper_setup.projection ~spec ~seed ()
      | `Select_join -> Paper_setup.select_join ~spec ~seed ()
      | `Union -> Paper_setup.union_of_selects ~spec ~seed ()
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun name ->
        let path = Filename.concat dir (name ^ ".csv") in
        Csv_io.save (Catalog.find wl.Paper_setup.catalog name) path;
        Fmt.pr "wrote %s@." path)
      (Catalog.names wl.Paper_setup.catalog);
    Fmt.pr "workload: %s@." wl.Paper_setup.description;
    Fmt.pr "query:    count(%a)@." Taqp_relational.Ra.pp wl.Paper_setup.query;
    Fmt.pr "exact:    %d@." wl.Paper_setup.exact;
    `Ok ()
  in
  let term =
    Term.(ret (const run $ workload_arg $ out_dir_arg $ tuples_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic workload as CSV relations.")
    term

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let query_cmd =
  let quota_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "q"; "quota" ] ~docv:"SECONDS"
          ~doc:"Time quota in (simulated) seconds.")
  in
  let aggregate_arg =
    Arg.(
      value & opt string "count"
      & info [ "a"; "aggregate" ] ~docv:"AGG"
          ~doc:"Aggregate: $(b,count), $(b,sum(attr)) or $(b,avg(attr)).")
  in
  let d_beta_arg =
    Arg.(
      value & opt float 1.645
      & info [ "d-beta" ] ~docv:"D"
          ~doc:"Per-operator risk deviate of the One-at-a-Time strategy.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt (enum [ ("one-at-a-time", `O); ("single-interval", `S); ("heuristic", `H) ]) `O
      & info [ "strategy" ] ~docv:"NAME" ~doc:"Time-control strategy.")
  in
  let observe_arg =
    Arg.(
      value & flag
      & info [ "observe" ]
          ~doc:
            "ERAM's measurement mode: let the final stage finish and report \
             the overspend instead of aborting at the deadline.")
  in
  let physical_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("sort", Config.Sort_merge);
               ("hash", Config.Hash);
               ("adaptive", Config.Adaptive);
             ])
          Config.Sort_merge
      & info [ "physical" ] ~docv:"PATH"
          ~doc:
            "Physical path for equi-key joins/intersections: $(b,sort) \
             (sorted-file pairing merges, the paper's plan), $(b,hash) \
             (retained per-side hash indexes, probed only with each stage's \
             delta), or $(b,adaptive) (per operator per stage, whichever \
             the fitted cost model predicts cheaper). The estimate is \
             identical either way; only the evaluation cost changes.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "t"; "trace" ]
          ~doc:
            "Print an end-of-run trace summary (per-stage lines and \
             per-layer time totals, derived from the span stream).")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the full event trace to $(docv).")
  in
  let trace_format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Trace file format: $(b,jsonl) (one event per line) or \
             $(b,chrome) (a chrome://tracing / Perfetto-loadable \
             trace_event array).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry (io.* counters, stage histograms).")
  in
  let groups_arg =
    Arg.(
      value & opt int 0
      & info [ "groups" ] ~docv:"N"
          ~doc:
            "For projection queries, also print the N largest estimated              group counts.")
  in
  let error_bound_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "error-bound" ] ~docv:"PCT"
          ~doc:
            "Also stop when the 95% interval is within PCT percent of the \
             estimate (error-constrained evaluation).")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SCENARIO"
          ~doc:
            (Fmt.str
               "Inject storage faults: a preset (%s) or a DSL rule list such \
                as 'read_error:p=0.05;latency:p=0.1,factor=4;retries=5' — \
                see docs/ROBUSTNESS.md. The run stays deterministic given \
                $(b,--fault-seed); recoverable faults cost retries and \
                backoff on the virtual clock, unrecoverable ones end the run \
                in a degraded partial report."
               (String.concat ", " Fault_plan.preset_names)))
  in
  let fault_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "Seed of the fault injector's own random stream (default: \
             $(b,--seed)). Changing it re-rolls the faults without changing \
             which tuples are sampled.")
  in
  let run dir query quota aggregate d_beta strategy physical observe trace
      trace_out trace_format metrics groups error_bound faults fault_seed seed =
    match parse_query query with
    | Error e -> fail "%s" e
    | Ok expr -> (
        match
          match faults with
          | None -> Ok None
          | Some s -> Result.map Option.some (Fault_plan.of_string s)
        with
        | Error m -> fail "bad --faults scenario: %s" m
        | Ok faults -> (
        match Aggregate.parse aggregate with
        | exception Invalid_argument m -> fail "%s" m
        | aggregate -> (
            let catalog = load_catalog dir in
            let strategy =
              match strategy with
              | `O -> Strategy.one_at_a_time ~d_beta ()
              | `S -> Strategy.single_interval ~d_alpha:d_beta ()
              | `H -> Strategy.heuristic ~split:0.5
            in
            let deadline =
              if observe then Stopping.Soft_deadline { grace = 1e9 }
              else Stopping.Hard_deadline
            in
            let stopping =
              match error_bound with
              | None -> deadline
              | Some pct ->
                  Stopping.All
                    [
                      deadline;
                      Stopping.Error_bound { relative = pct /. 100.0; level = 0.95 };
                    ]
            in
            let config =
              { Config.default with Config.strategy; stopping; physical }
            in
            (* Assemble the event sinks: a file stream (JSONL or Chrome
               trace_event) and/or the stdout summary. The sinks are
               closed by [aggregate_within] before the report comes
               back, so the summary prints first and file buffers are
               complete; we only close the channel afterwards. *)
            let out_channel = ref None in
            match
              Option.map
                (fun file ->
                  try Ok (open_out file) with Sys_error m -> Error m)
                trace_out
            with
            | Some (Error m) -> fail "cannot open trace file: %s" m
            | opened ->
            let file_sink =
              match opened with
              | None -> []
              | Some (Ok oc) ->
                  out_channel := Some oc;
                  [
                    (match trace_format with
                    | `Jsonl -> Sink.jsonl (Sink.to_channel oc)
                    | `Chrome -> Sink.chrome (Sink.to_channel oc));
                  ]
              | Some (Error _) -> assert false
            in
            let summary_sink =
              if trace then [ Sink.summary Fmt.stdout ] else []
            in
            let sink =
              match file_sink @ summary_sink with
              | [] -> None
              | [ s ] -> Some s
              | sinks -> Some (Sink.tee sinks)
            in
            let registry = if metrics then Some (Metrics.create ()) else None in
            let close_file () = Option.iter close_out !out_channel in
            match
              Taqp.aggregate_within ~config ~seed ?sink ?metrics:registry
                ?faults ?fault_seed ~aggregate catalog ~quota expr
            with
            | report ->
                close_file ();
                Fmt.pr "%a@." Report.pp report;
                Option.iter (fun m -> Fmt.pr "%a@." Metrics.pp m) registry;
                if groups > 0 then begin
                  match report.Report.groups with
                  | [] -> Fmt.pr "(no group estimates: not a plain projection)@."
                  | gs ->
                      Fmt.pr "largest estimated groups:@.";
                      List.iteri
                        (fun i (label, est) ->
                          if i < groups then Fmt.pr "  %-24s %10.0f@." label est)
                        gs
                end;
                `Ok ()
            | exception Staged.Compile_error m ->
                close_file ();
                fail "%s" m
            | exception Taqp_relational.Ra.Type_error m ->
                close_file ();
                fail "type error: %s" m)))
  in
  let term =
    Term.(
      ret
        (const run $ dir_arg $ query_arg $ quota_arg $ aggregate_arg
       $ d_beta_arg $ strategy_arg $ physical_arg $ observe_arg $ trace_arg
       $ trace_out_arg $ trace_format_arg $ metrics_arg $ groups_arg
       $ error_bound_arg $ faults_arg $ fault_seed_arg $ seed_arg))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Estimate an aggregate within a time quota (simulated device).")
    term

(* ------------------------------------------------------------------ *)
(* exact                                                               *)

let exact_cmd =
  let aggregate_arg =
    Arg.(
      value & opt string "count"
      & info [ "a"; "aggregate" ] ~docv:"AGG" ~doc:"Aggregate to compute.")
  in
  let run dir query aggregate =
    match parse_query query with
    | Error e -> fail "%s" e
    | Ok expr -> (
        match Aggregate.parse aggregate with
        | exception Invalid_argument m -> fail "%s" m
        | aggregate -> (
            let catalog = load_catalog dir in
            let clock = Taqp_storage.Clock.create_virtual () in
            let device = Taqp_storage.Device.create clock in
            match Taqp.aggregate_exact ~device catalog ~aggregate expr with
            | v ->
                Fmt.pr "%a = %g@." Aggregate.pp aggregate v;
                Fmt.pr
                  "(an unconstrained evaluation would cost %.1f simulated \
                   seconds on the default device)@."
                  (Taqp_storage.Clock.now clock);
                `Ok ()
            | exception Taqp_relational.Ra.Type_error m -> fail "type error: %s" m))
  in
  let term = Term.(ret (const run $ dir_arg $ query_arg $ aggregate_arg)) in
  Cmd.v
    (Cmd.info "exact" ~doc:"Evaluate the aggregate exactly (ground truth).")
    term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let run dir query =
    match parse_query query with
    | Error e -> fail "%s" e
    | Ok expr -> (
        let catalog = load_catalog dir in
        match Taqp_estimators.Inclusion_exclusion.rewrite expr with
        | terms ->
                Fmt.pr "relations:@.";
                List.iter
                  (fun name ->
                    let f = Catalog.find catalog name in
                    Fmt.pr "  %-12s %6d tuples  %5d blocks  schema %a@." name
                      (Heap_file.n_tuples f) (Heap_file.n_blocks f)
                      Taqp_data.Schema.pp (Heap_file.schema f))
                  (Catalog.names catalog);
                Fmt.pr "result schema: %a@." Taqp_data.Schema.pp
                  (Taqp_relational.Ra.infer_catalog catalog expr);
                Fmt.pr "inclusion-exclusion terms (%d):@." (List.length terms);
                List.iter
                  (fun (sign, t) ->
                    Fmt.pr "  %c %a@."
                      (if sign > 0 then '+' else '-')
                      Taqp_relational.Ra.pp t)
                  terms;
                let cm = Taqp_timecost.Cost_model.create () in
                let staged =
                  Staged.compile ~catalog ~config:Config.default
                    ~rng:(Taqp_rng.Prng.create 1) ~cost_model:cm expr
                in
                Fmt.pr "predicted first-stage cost (untrained cost model):@.";
                List.iter
                  (fun f ->
                    Fmt.pr "  f = %-6g -> %8.2f s@." f
                      (Staged.predicted_cost staged ~f ~mode:Staged.Plain))
                  [ 0.001; 0.01; 0.05; 0.1; 0.5 ];
            `Ok ()
        | exception Taqp_estimators.Inclusion_exclusion.Unsupported m ->
            fail "%s" m
        | exception Taqp_relational.Ra.Type_error m -> fail "type error: %s" m)
  in
  let term = Term.(ret (const run $ dir_arg $ query_arg)) in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the compiled terms and the untrained cost curve.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let jobs_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "j"; "jobs" ] ~docv:"FILE"
          ~doc:
            "Job file, one job per line: 'arrival | deadline | query [| \
             key=value,...]' with options priority=INT, seed=INT, \
             label=STRING and min_rhw=FLOAT. Blank lines and # comments \
             are skipped.")
  in
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             (List.map (fun p -> (Taqp_sched.Policy.name p, p))
                Taqp_sched.Policy.all))
          Taqp_sched.Policy.Edf
      & info [ "policy" ] ~docv:"NAME"
          ~doc:
            "Scheduling policy: $(b,fifo), $(b,edf), $(b,llf) or $(b,wfq).")
  in
  let admission_arg =
    Arg.(
      value & flag
      & info [ "admission" ]
          ~doc:
            "Price each arrival with the executor's cost nodes and reject \
             (or degrade) jobs whose slack cannot cover their minimum \
             viable stage.")
  in
  let max_queue_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"With $(b,--admission): reject beyond N live jobs.")
  in
  let headroom_arg =
    Arg.(
      value & opt float 1.0
      & info [ "headroom" ] ~docv:"FACTOR"
          ~doc:
            "With $(b,--admission): demand FACTOR x the priced requirement \
             (>= 1).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry (sched.* counters) to stderr.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SCENARIO"
          ~doc:
            "Inject storage faults into the shared device (preset or DSL, \
             see docs/ROBUSTNESS.md). A faulted job degrades through the \
             executor's containment; the queue keeps draining.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"Seed of the fault injector's random stream.")
  in
  let run dir jobs_file policy admission max_queue headroom metrics faults
      fault_seed =
    match
      match faults with
      | None -> Ok None
      | Some s -> Result.map Option.some (Fault_plan.of_string s)
    with
    | Error m -> fail "bad --faults scenario: %s" m
    | Ok fault_plan -> (
        match
          if admission then
            match Taqp_sched.Admission.make ?max_queue ~headroom () with
            | a -> Ok (Some a)
            | exception Invalid_argument m -> Error m
          else Ok None
        with
        | Error m -> fail "%s" m
        | Ok admission -> (
            let catalog = load_catalog dir in
            let lines =
              In_channel.with_open_text jobs_file In_channel.input_lines
            in
            match Taqp_sched.Job.of_lines ~catalog lines with
            | Error m -> fail "%s: %s" jobs_file m
            | Ok [] -> fail "%s: no jobs" jobs_file
            | Ok jobs ->
                let registry =
                  if metrics then Some (Metrics.create ()) else None
                in
                let faults =
                  Option.map
                    (fun plan ->
                      Taqp_fault.Injector.create ~seed:fault_seed plan)
                    fault_plan
                in
                match
                  Taqp_sched.Scheduler.run ~policy ?admission
                    ?metrics:registry ?faults jobs
                with
                | exception Taqp_relational.Ra.Type_error m ->
                    fail "type error: %s" m
                | exception Staged.Compile_error m -> fail "%s" m
                | result ->
                (* One self-contained JSON line per job, then the
                   workload summary — stdout is a JSONL stream a
                   pipeline can consume. *)
                List.iter
                  (fun r ->
                    print_endline
                      (Taqp_obs.Json.to_string
                         (Taqp_sched.Scheduler.job_report_json r)))
                  result.Taqp_sched.Scheduler.reports;
                print_endline
                  (Taqp_obs.Json.to_string
                     (Taqp_obs.Json.Obj
                        [
                          ( "summary",
                            Taqp_sched.Scheduler.summary_json
                              result.Taqp_sched.Scheduler.summary );
                        ]));
                Fmt.epr "%a@." Taqp_sched.Scheduler.pp_summary
                  result.Taqp_sched.Scheduler.summary;
                Option.iter (fun m -> Fmt.epr "%a@." Metrics.pp m) registry;
                (* Nonzero exit iff an admitted job missed its hard
                   deadline — rejected jobs were refused up front and
                   do not fail the batch. *)
                if
                  List.exists
                    (fun (r : Taqp_sched.Scheduler.job_report) ->
                      r.Taqp_sched.Scheduler.admitted
                      && r.Taqp_sched.Scheduler.missed)
                    result.Taqp_sched.Scheduler.reports
                then exit 1
                else `Ok ()))
  in
  let term =
    Term.(
      ret
        (const run $ dir_arg $ jobs_arg $ policy_arg $ admission_arg
       $ max_queue_arg $ headroom_arg $ metrics_arg $ faults_arg
       $ fault_seed_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a batch of deadline-constrained jobs through the multi-query \
          scheduler (one JSON line per job; exits nonzero iff an admitted \
          job missed its deadline).")
    term

(* ------------------------------------------------------------------ *)

let () =
  let doc = "time-constrained aggregate query processing (SIGMOD 1989)" in
  let info = Cmd.info "taqp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ gen_cmd; query_cmd; exact_cmd; explain_cmd; serve_cmd ]))
