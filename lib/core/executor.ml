module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Io_stats = Taqp_storage.Io_stats
module Injector = Taqp_fault.Injector
module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Metrics = Taqp_obs.Metrics
module Count_estimator = Taqp_estimators.Count_estimator
module Cost_model = Taqp_timecost.Cost_model
module Formulas = Taqp_timecost.Formulas
module Strategy = Taqp_timecontrol.Strategy
module Stopping = Taqp_timecontrol.Stopping
module Sample_size = Taqp_timecontrol.Sample_size

let src = Logs.Src.create "taqp.executor" ~doc:"time-constrained executor"

module Log = (val Logs.src_log src : Logs.LOG)

(* Sample-size determination is not free: the prototype counts it as
   per-stage overhead. Each bisection probe costs one QCOST evaluation,
   priced relative to the device's fixed per-stage overhead (planning
   runs on the same machine as the query). *)
let probe_cost device =
  0.01 *. (Device.params device).Taqp_storage.Cost_params.stage_overhead

let planning_cost device ~max_iterations =
  probe_cost device *. float_of_int (max_iterations + 2)

type loop_state = {
  mutable useful_time : float;  (** completed, in-quota stage time *)
  mutable stages_attempted : int;
  mutable stages_completed : int;
  mutable trace_rev : Report.stage list;
  mutable recent_estimates : float list;
  mutable last_good : Count_estimator.t option;
  mutable useful_blocks : int;
  residuals : Taqp_stats.Summary.t;
      (** relative stage-cost prediction errors (actual/predicted - 1);
          late stage budgets are shrunk by twice their spread so that
          cost-model noise — which the selectivity-based d_beta margin
          cannot see — does not tip a marginal final stage over the
          quota *)
}

let f_floor = 1e-9
let min_fraction = f_floor

(* The Single-Interval strategy needs sqrt(Var(QCOST)) at a candidate
   f: delta-method over the per-operator selectivity variances, with
   numeric gradients (cross-operator covariances approximated as 0 —
   see DESIGN.md). *)
let qcost_std staged cost_model ~f =
  let plans = Staged.plan staged ~f ~mode:Staged.Plain in
  let base =
    Cost_model.total cost_model
      (List.map (fun p -> (p.Staged.plan_id, p.Staged.plan_measures)) plans)
  in
  let acc = ref 0.0 in
  List.iter
    (fun p ->
      let open Staged in
      if p.sel_variance > 0.0 then begin
        let delta = Float.max 1e-6 (0.01 *. Float.max p.sel_plain 1e-4) in
        let perturbed =
          Staged.predicted_cost staged ~f
            ~mode:(Staged.Override [ (p.plan_op_id, p.sel_plain +. delta) ])
        in
        let grad = (perturbed -. base) /. delta in
        acc := !acc +. (grad *. grad *. p.sel_variance)
      end)
    plans;
  sqrt !acc

let determine_fraction staged cost_model device ~strategy ~budget ~eps
    ~max_iterations =
  ignore cost_model;
  (* Planning is paid for up front, at its worst case, so the budget
     handed to the bisection is exactly the time that will remain when
     the stage starts (no hidden safety margin). *)
  let planning = planning_cost device ~max_iterations in
  Device.planning device planning;
  let budget = budget -. planning in
  if budget <= 0.0 then Sample_size.Budget_too_small { f_min_cost = infinity }
  else
  let outcome =
    match (strategy : Strategy.t) with
    | Strategy.One_at_a_time { d_beta; zero_beta } ->
        Sample_size.bisect
          ~cost_at:(fun f ->
            Staged.predicted_cost staged ~f
              ~mode:(Staged.Inflated { d_beta; zero_beta }))
          ~budget ~f_min:f_floor ~f_max:1.0 ~eps ~max_iterations ()
    | Strategy.Single_interval { d_alpha; zero_beta } ->
        ignore zero_beta;
        Sample_size.with_deviation
          ~mean_at:(fun f -> Staged.predicted_cost staged ~f ~mode:Staged.Plain)
          ~std_at:(fun f -> qcost_std staged cost_model ~f)
          ~d_alpha ~budget ~f_min:f_floor ~f_max:1.0 ~eps ~max_iterations ()
    | Strategy.Heuristic { split } -> (
        let stage_budget = split *. budget in
        let run budget =
          Sample_size.bisect
            ~cost_at:(fun f ->
              Staged.predicted_cost staged ~f ~mode:Staged.Plain)
            ~budget ~f_min:f_floor ~f_max:1.0 ~eps ~max_iterations ()
        in
        match run stage_budget with
        | Sample_size.Budget_too_small _ ->
            (* The geometric slice is too thin; fall back to the whole
               remaining budget before giving up. *)
            run budget
        | outcome -> outcome)
  in
  outcome

let finalize ~staged ~state ~quota ~start ~clock ~io_before ~device
    ~faults_before ~fault_time_before ~forced_degraded ~outcome
    ~(config : Config.t) =
  let elapsed = Clock.now clock -. start in
  let estimate =
    match (state.last_good, Staged.current_estimate staged) with
    | Some e, _ -> e
    | None, Some e -> e
    | None, None ->
        Count_estimator.of_sample ~hits:0.0 ~points:1.0
          ~total_points:(Float.max 1.0 (Staged.total_points staged))
  in
  let overspend =
    match outcome with
    | Report.Overspent -> Float.max 0.0 (elapsed -. quota)
    | Report.Finished | Report.Quota_exhausted | Report.Aborted_mid_stage
    | Report.Exact | Report.Faulted ->
        0.0
  in
  let waste = Float.max 0.0 (Float.max quota elapsed -. state.useful_time -. overspend) in
  let utilization = if quota > 0.0 then state.useful_time /. quota else 0.0 in
  let io = Io_stats.diff (Io_stats.copy (Device.stats device)) io_before in
  let degraded =
    forced_degraded
    ||
    match outcome with
    | Report.Aborted_mid_stage | Report.Faulted -> true
    | Report.Finished | Report.Quota_exhausted | Report.Overspent
    | Report.Exact ->
        false
  in
  let confidence =
    let base = Count_estimator.confidence ~level:config.confidence_level estimate in
    if not degraded then base
    else begin
      (* A degraded answer is the last good estimate, so its sampling
         interval understates the real uncertainty: widen it by how
         much of the quota the run could not turn into useful stages
         (bounded at 2x — see docs/ROBUSTNESS.md). *)
      let factor =
        Report.widening_factor ~quota ~useful_time:state.useful_time
      in
      { base with Taqp_stats.Confidence.half_width = base.half_width *. factor }
    end
  in
  let faults =
    if faults_before = 0 then Device.fault_log device
    else List.filteri (fun i _ -> i >= faults_before) (Device.fault_log device)
  in
  {
    Report.estimate = estimate.Count_estimator.estimate;
    variance = estimate.Count_estimator.variance;
    confidence;
    exact = estimate.Count_estimator.is_exact && state.stages_completed > 0;
    outcome;
    quota;
    elapsed;
    useful_time = state.useful_time;
    overspend;
    waste;
    utilization;
    stages_completed = state.stages_completed;
    stage_aborted =
      (match outcome with
      | Report.Aborted_mid_stage | Report.Overspent | Report.Faulted -> true
      | Report.Finished | Report.Quota_exhausted | Report.Exact -> false);
    degraded;
    faults;
    fault_time = Device.fault_time device -. fault_time_before;
    blocks_read = Io_stats.blocks_read io;
    useful_blocks = state.useful_blocks;
    io;
    trace = List.rev state.trace_rev;
    groups =
      (match Staged.group_estimates staged with
      | None -> []
      | Some gs ->
          List.map
            (fun (tuple, est) ->
              (Fmt.str "%a" Taqp_data.Tuple.pp tuple, est))
            gs);
  }

(* ------------------------------------------------------------------ *)
(* The resumable handle                                                 *)

type handle = {
  staged : Staged.t;
  cost_model : Cost_model.t;
  device : Device.t;
  clock : Clock.t;
  tracer : Tracer.t;
  config : Config.t;
  expr : Taqp_relational.Ra.t;  (** the compiled query, kept for {!snapshot} *)
  aggregate : Aggregate.t;
  quota : float;
  start : float;  (** clock reading when the handle was created *)
  deadline_at : float;  (** absolute: [start +. quota] *)
  deadline_mode : Clock.deadline_mode;
  io_before : Io_stats.t;
  faults_before : int;
  fault_time_before : float;
  state : loop_state;
  stage_predicted_h : Metrics.Histogram.t;
  stage_actual_h : Metrics.Histogram.t;
  overspend_h : Metrics.Histogram.t;
  mutable forced_degraded : bool;
      (** set on a dirty resume (crash landed mid-stage): the report
          must carry [degraded] whatever its outcome, because quota was
          burned without a checkpoint to show for it *)
  mutable result : Report.t option;
}

let start ?(config = Config.default) ?(aggregate = Aggregate.Count) ?cache
    ~device ~catalog ~rng ~quota expr =
  if quota <= 0.0 then invalid_arg "Executor.start: non-positive quota";
  Config.validate config;
  let cost_model =
    Cost_model.create ~adaptive:config.adaptive_cost
      ~initial_scale:config.initial_cost_scale ()
  in
  let staged =
    Staged.compile ~aggregate ?cache ~catalog ~config ~rng ~cost_model expr
  in
  let clock = Device.clock device in
  let tracer = Device.tracer device in
  let metrics = Device.metrics device in
  (* Histograms live in the device's registry whether or not a tracer
     is attached: observing them never touches the clock, so they are
     behavior-neutral. *)
  let stage_predicted_h = Metrics.histogram metrics "stage.predicted_cost" in
  let stage_actual_h = Metrics.histogram metrics "stage.actual_cost" in
  let overspend_h = Metrics.histogram metrics "query.overspend" in
  let start = Clock.now clock in
  let io_before = Io_stats.copy (Device.stats device) in
  let faults_before = List.length (Device.fault_log device) in
  let fault_time_before = Device.fault_time device in
  let deadline_mode = Stopping.deadline_mode config.stopping in
  if Tracer.enabled tracer then
    Tracer.span_begin tracer ~cat:"query" "query"
      ~args:[ ("quota", Event.Float quota) ];
  Clock.arm clock ~mode:deadline_mode ~at:(start +. quota);
  {
    staged;
    cost_model;
    device;
    clock;
    tracer;
    config;
    expr;
    aggregate;
    quota;
    start;
    deadline_at = start +. quota;
    deadline_mode;
    io_before;
    faults_before;
    fault_time_before;
    state =
      {
        useful_time = 0.0;
        stages_attempted = 0;
        stages_completed = 0;
        trace_rev = [];
        recent_estimates = [];
        last_good = None;
        useful_blocks = 0;
        residuals = Taqp_stats.Summary.create ();
      };
    stage_predicted_h;
    stage_actual_h;
    overspend_h;
    forced_degraded = false;
    result = None;
  }

let report h = h.result
let finished h = h.result <> None
let quota h = h.quota

let on_cost_observation h f = Cost_model.set_observer h.cost_model f
let started_at h = h.start
let deadline_at h = h.deadline_at
let remaining h = h.deadline_at -. Clock.now h.clock

let min_stage_cost h =
  planning_cost h.device ~max_iterations:h.config.Config.max_bisect_iterations
  +. Staged.predicted_cost h.staged ~f:f_floor ~mode:Staged.Plain

let status h =
  let state = h.state and config = h.config in
  let rel_half_width =
    Option.bind state.last_good (fun e ->
        Taqp_stats.Confidence.relative_half_width
          (Count_estimator.confidence ~level:config.confidence_level e))
  in
  {
    Stopping.elapsed = Clock.now h.clock -. h.start;
    quota = h.quota;
    stages = state.stages_completed;
    estimate =
      (match state.last_good with
      | Some e -> e.Count_estimator.estimate
      | None -> 0.0);
    rel_half_width;
    recent_estimates = state.recent_estimates;
  }

(* Finalizing disarms the clock: the handle's deadline must never
   outlive it, or a scheduler sleeping to the next arrival would be
   interrupted on behalf of a job that already has its report. *)
let finish_with h outcome =
  Clock.disarm h.clock;
  let report =
    finalize ~staged:h.staged ~state:h.state ~quota:h.quota ~start:h.start
      ~clock:h.clock ~io_before:h.io_before ~device:h.device
      ~faults_before:h.faults_before ~fault_time_before:h.fault_time_before
      ~forced_degraded:h.forced_degraded ~outcome ~config:h.config
  in
  Metrics.Histogram.observe h.overspend_h report.Report.overspend;
  if Tracer.enabled h.tracer then begin
    Tracer.instant h.tracer ~cat:"query" "stop"
      ~args:[ ("reason", Event.String (Report.outcome_name outcome)) ];
    Tracer.span_end h.tracer ~cat:"query" "query"
      ~args:
        [
          ("outcome", Event.String (Report.outcome_name outcome));
          ("estimate", Event.Float report.Report.estimate);
          ("elapsed", Event.Float report.Report.elapsed);
          ("stages", Event.Int report.Report.stages_completed);
          ("blocks_read", Event.Int report.Report.blocks_read);
        ]
  end;
  h.result <- Some report;
  report

let step h =
  match h.result with
  | Some r -> `Done r
  | None ->
  let staged = h.staged and state = h.state and config = h.config in
  let clock = h.clock and device = h.device and tracer = h.tracer in
  let cost_model = h.cost_model and quota = h.quota and start = h.start in
  (* Re-arm only when another job's deadline (or none) is in place, so
     a solo run — where the deadline armed at [start] is still the
     handle's own — emits exactly the trace it did before handles
     existed. *)
  if Clock.armed clock <> Some (h.deadline_mode, h.deadline_at) then
    Clock.arm clock ~mode:h.deadline_mode ~at:h.deadline_at;
  let stage_predicted_h = h.stage_predicted_h
  and stage_actual_h = h.stage_actual_h
  and fault_time_before = h.fault_time_before in
  let finish outcome = `Done (finish_with h outcome) in
  let rec step_once () =
    if Staged.exhausted staged then finish Report.Exact
    else if state.stages_completed > 0 && Stopping.should_stop config.stopping (status h)
    then finish Report.Finished
    else begin
      let elapsed = Clock.now clock -. start in
      let remaining = quota -. elapsed in
      if
        remaining
        <= planning_cost device
             ~max_iterations:config.max_bisect_iterations
      then finish Report.Quota_exhausted
      else begin
        (* Budget shrinkage has two independent factors: the residual
           spread (cost-model noise) and, when a fault injector is
           installed, fault headroom — twice the larger of the plan's
           expected load and the inflation observed so far, so that a
           spike landing on the committed stage does not immediately
           overspend (see docs/ROBUSTNESS.md). Without an injector the
           factor is exactly 1 and the arithmetic is unchanged. *)
        let fault_headroom =
          match Device.fault_injector device with
          | None -> 1.0
          | Some inj ->
              let planned =
                Taqp_fault.Fault_plan.expected_load
                  ~charge_cost:
                    (Device.params device).Taqp_storage.Cost_params.block_read
                  (Injector.plan inj)
              in
              let injected = Device.fault_time device -. fault_time_before in
              let busy = Float.max 1e-9 (elapsed -. injected) in
              1.0 +. (2.0 *. Float.max planned (injected /. busy))
        in
        let budget =
          let shrink =
            (if Taqp_stats.Summary.count state.residuals >= 2 then
               1.0 +. (2.0 *. Taqp_stats.Summary.stddev state.residuals)
             else 1.0)
            *. fault_headroom
          in
          if shrink = 1.0 then remaining else remaining /. shrink
        in
        let eps = Float.max 1e-6 (config.bisect_eps_frac *. budget) in
        match
          determine_fraction staged cost_model device ~strategy:config.strategy
            ~budget ~eps
            ~max_iterations:config.max_bisect_iterations
        with
        | exception Clock.Deadline_exceeded _ ->
            (* The remaining sliver did not even cover the planning
               work; the timer fired while sizing the stage. *)
            finish Report.Quota_exhausted
        | Sample_size.Budget_too_small { f_min_cost } ->
            Log.debug (fun m ->
                m "stopping: minimal stage needs %.3fs, %.3fs left" f_min_cost
                  remaining);
            finish Report.Quota_exhausted
        | (Sample_size.Fraction _ | Sample_size.Take_everything _) as outcome ->
            let f, predicted =
              match outcome with
              | Sample_size.Take_everything { predicted } -> (1.0, predicted)
              | Sample_size.Fraction { f; predicted; _ } -> (f, predicted)
              | Sample_size.Budget_too_small _ -> assert false
            in
            let predicted_end = Clock.now clock -. start +. predicted in
            if
              not
                (Stopping.allows_stage config.stopping ~predicted_end ~quota)
            then finish Report.Quota_exhausted
            else run_one_stage ~f ~predicted
      end
    end
  and run_one_stage ~f ~predicted =
    let stage_start = Clock.now clock -. start in
    state.stages_attempted <- state.stages_attempted + 1;
    let stage_name = Printf.sprintf "stage-%d" state.stages_attempted in
    Metrics.Histogram.observe stage_predicted_h predicted;
    if Tracer.enabled tracer then
      Tracer.span_begin tracer ~cat:"stage" stage_name
        ~args:
          [
            ("index", Event.Int state.stages_attempted);
            ("fraction", Event.Float f);
            ("predicted", Event.Float predicted);
          ];
    (* The stage span's End event carries the full predicted-vs-actual
       record plus the stopping-criterion decision taken for it; the
       summary sink renders its per-stage lines from exactly this. *)
    let end_stage ~decision ?estimate () =
      if Tracer.enabled tracer then begin
        let actual = Clock.now clock -. start -. stage_start in
        let args =
          [
            ("index", Event.Int state.stages_attempted);
            ("fraction", Event.Float f);
            ("predicted", Event.Float predicted);
            ("actual", Event.Float actual);
            ("decision", Event.String decision);
          ]
        in
        let args =
          match estimate with
          | None -> args
          | Some e -> args @ [ ("estimate", Event.Float e) ]
        in
        Tracer.span_end tracer ~cat:"stage" stage_name ~args
      end
    in
    match
      Device.stage_overhead device;
      Staged.run_stage staged ~device ~f
    with
    | exception Clock.Deadline_exceeded _ ->
        Log.debug (fun m -> m "stage %d aborted by deadline" state.stages_attempted);
        Metrics.Histogram.observe stage_actual_h
          (Clock.now clock -. start -. stage_start);
        end_stage ~decision:"aborted" ();
        finish Report.Aborted_mid_stage
    | exception Injector.Unrecoverable { op; attempts; _ } ->
        Log.warn (fun m ->
            m "stage %d killed by unrecoverable %s fault after %d attempts"
              state.stages_attempted op attempts);
        Metrics.Histogram.observe stage_actual_h
          (Clock.now clock -. start -. stage_start);
        end_stage ~decision:"faulted" ();
        finish Report.Faulted
    | None ->
        end_stage ~decision:"exhausted" ();
        finish Report.Exact
    | Some result ->
        let stage_end = Clock.now clock -. start in
        let stage_time = stage_end -. stage_start in
        Metrics.Histogram.observe stage_actual_h stage_time;
        let overhead_observed =
          Float.max 0.0
            (stage_time -. result.Staged.nodes_elapsed
           -. result.Staged.scans_elapsed)
        in
        Cost_model.observe_step cost_model ~id:(Staged.overhead_id staged)
          ~step:Formulas.Step_fixed Formulas.zero_measures
          ~seconds:(Device.measure device overhead_observed);
        let estimate = result.Staged.estimate in
        let stage_record =
          {
            Report.index = state.stages_attempted;
            fraction = f;
            new_blocks = result.Staged.new_units;
            predicted_cost = predicted;
            actual_cost = stage_time;
            started_at = stage_start;
            finished_at = stage_end;
            estimate = estimate.Count_estimator.estimate;
            variance = estimate.Count_estimator.variance;
            ops = result.Staged.op_snapshots;
          }
        in
        if config.trace then state.trace_rev <- stage_record :: state.trace_rev;
        if stage_end > quota then begin
          (* Observe mode let the stage finish past the quota: the
             paper counts its whole time as wasted and reports the
             overshoot as ovsp. *)
          end_stage ~decision:"overspent"
            ~estimate:estimate.Count_estimator.estimate ();
          if state.last_good = None then state.last_good <- Some estimate;
          finish Report.Overspent
        end
        else begin
          end_stage ~decision:"completed"
            ~estimate:estimate.Count_estimator.estimate ();
          state.useful_time <- state.useful_time +. stage_time;
          state.stages_completed <- state.stages_completed + 1;
          state.useful_blocks <-
            state.useful_blocks
            + List.fold_left
                (fun acc (_, k) -> acc + k)
                0 result.Staged.new_units;
          if predicted > 0.0 then
            Taqp_stats.Summary.add state.residuals ((stage_time /. predicted) -. 1.0);
          state.last_good <- Some estimate;
          state.recent_estimates <-
            estimate.Count_estimator.estimate :: state.recent_estimates;
          `Continue
        end
  in
  step_once ()

let run ?config ?aggregate ?cache ~device ~catalog ~rng ~quota expr =
  let h =
    try start ?config ?aggregate ?cache ~device ~catalog ~rng ~quota expr
    with Invalid_argument m when m = "Executor.start: non-positive quota" ->
      invalid_arg "Executor.run: non-positive quota"
  in
  let rec go () = match step h with `Done r -> r | `Continue -> go () in
  go ()

let finish h =
  match h.result with
  | Some r -> r
  | None -> finish_with h Report.Quota_exhausted

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                        *)

type snapshot = {
  snap_query : Taqp_relational.Ra.t;
  snap_aggregate : Aggregate.t;
  snap_config : Config.t;
  snap_quota : float;
  snap_start : float;
  snap_staged : Staged.snapshot;
  snap_cost_model : Cost_model.dump;
  snap_useful_time : float;
  snap_stages_attempted : int;
  snap_stages_completed : int;
  snap_trace_rev : Report.stage list;
  snap_recent_estimates : float list;
  snap_last_good : Count_estimator.t option;
  snap_useful_blocks : int;
  snap_residuals : Taqp_stats.Summary.dump;
  snap_io_before : int list;
  snap_faults_before : int;
  snap_fault_time_before : float;
  snap_forced_degraded : bool;
}

let snapshot h =
  if h.result <> None then
    invalid_arg "Executor.snapshot: handle already finalized";
  {
    snap_query = h.expr;
    snap_aggregate = h.aggregate;
    snap_config = h.config;
    snap_quota = h.quota;
    snap_start = h.start;
    snap_staged = Staged.snapshot h.staged;
    snap_cost_model = Cost_model.dump h.cost_model;
    snap_useful_time = h.state.useful_time;
    snap_stages_attempted = h.state.stages_attempted;
    snap_stages_completed = h.state.stages_completed;
    snap_trace_rev = h.state.trace_rev;
    snap_recent_estimates = h.state.recent_estimates;
    snap_last_good = h.state.last_good;
    snap_useful_blocks = h.state.useful_blocks;
    snap_residuals = Taqp_stats.Summary.dump h.state.residuals;
    snap_io_before = Io_stats.values h.io_before;
    snap_faults_before = h.faults_before;
    snap_fault_time_before = h.fault_time_before;
    snap_forced_degraded = h.forced_degraded;
  }

let resume ~device ~catalog ?selectivity_oracle ?cache ?(dirty = false) snap =
  let config =
    match selectivity_oracle with
    | None -> snap.snap_config
    | Some _ -> { snap.snap_config with Config.selectivity_oracle }
  in
  let cost_model =
    Cost_model.create ~adaptive:config.Config.adaptive_cost
      ~initial_scale:config.Config.initial_cost_scale ()
  in
  (* The compile-time rng only seeds fresh per-scan sample streams, and
     [Staged.restore] overwrites every stream position from the
     snapshot, so a dummy generator is fine: nothing it produced
     survives the restore. *)
  let rng = Taqp_rng.Prng.create 0 in
  let staged =
    Staged.compile ~aggregate:snap.snap_aggregate ?cache ~catalog ~config ~rng
      ~cost_model snap.snap_query
  in
  Staged.restore staged snap.snap_staged;
  Cost_model.restore cost_model snap.snap_cost_model;
  let clock = Device.clock device in
  let tracer = Device.tracer device in
  let metrics = Device.metrics device in
  let stage_predicted_h = Metrics.histogram metrics "stage.predicted_cost" in
  let stage_actual_h = Metrics.histogram metrics "stage.actual_cost" in
  let overspend_h = Metrics.histogram metrics "query.overspend" in
  let io_before = Io_stats.create () in
  Io_stats.restore io_before snap.snap_io_before;
  let residuals = Taqp_stats.Summary.create () in
  Taqp_stats.Summary.restore residuals snap.snap_residuals;
  let deadline_mode = Stopping.deadline_mode config.Config.stopping in
  let deadline_at = snap.snap_start +. snap.snap_quota in
  (* Re-arm the ORIGINAL absolute deadline, silently: no
     [deadline.armed] instant and no fresh query span, so the resumed
     trace stream continues exactly where the crashed one stopped.
     Any gap between the checkpoint and the device clock's current
     reading (crash downtime, mid-stage progress that was lost) is
     quota already burned — the deadline does not move. *)
  Clock.restore_deadline clock ~mode:deadline_mode ~at:deadline_at;
  {
    staged;
    cost_model;
    device;
    clock;
    tracer;
    config;
    expr = snap.snap_query;
    aggregate = snap.snap_aggregate;
    quota = snap.snap_quota;
    start = snap.snap_start;
    deadline_at;
    deadline_mode;
    io_before;
    faults_before = snap.snap_faults_before;
    fault_time_before = snap.snap_fault_time_before;
    state =
      {
        useful_time = snap.snap_useful_time;
        stages_attempted = snap.snap_stages_attempted;
        stages_completed = snap.snap_stages_completed;
        trace_rev = snap.snap_trace_rev;
        recent_estimates = snap.snap_recent_estimates;
        last_good = snap.snap_last_good;
        useful_blocks = snap.snap_useful_blocks;
        residuals;
      };
    stage_predicted_h;
    stage_actual_h;
    overspend_h;
    forced_degraded = dirty || snap.snap_forced_degraded;
    result = None;
  }
