(** The compiled, stage-by-stage evaluable form of a COUNT(E) query.

    Compilation applies the inclusion-exclusion rewrite, builds one
    operator tree per signed SJIP term, assigns every operator (plus
    one Scan pseudo-operator per base relation and one Overhead node)
    an id in the adaptive {!Taqp_timecost.Cost_model}, and creates one
    {!Taqp_sampling.Stage_set} per base relation.

    The two halves of the interface mirror the two halves of each
    stage in Figure 3.1: {!plan} is the pure cost-prediction used by
    Sample-Size-Determine (called once per bisection probe), and
    {!run_stage} draws the new sample units, evaluates all terms
    incrementally under the configured fulfillment plan, feeds the
    observed selectivities and step timings back, and returns the
    improved estimate. *)

open Taqp_storage
open Taqp_relational

type t

exception Compile_error of string

val compile :
  ?aggregate:Aggregate.t ->
  ?cache:Taqp_cache.Cache.t ->
  catalog:Catalog.t ->
  config:Config.t ->
  rng:Taqp_rng.Prng.t ->
  cost_model:Taqp_timecost.Cost_model.t ->
  Ra.t ->
  t
(** [aggregate] defaults to COUNT; SUM/AVG additionally require a
    numeric attribute of the result schema and no Project root in any
    term. The per-stage estimate returned by {!run_stage} is then the
    requested aggregate's.

    [cache] attaches the shared cross-query cache: scans draw their
    units from the cache's per-relation sample prefix (so concurrent
    queries sample the {e same} units and hit each other's blocks),
    block reads and leaf-fed sort/hash summaries are served from the
    cache at {!Taqp_storage.Device.cache_probe} price on a hit, and
    stage plans count only the predicted {e miss} reads — which is how
    admission control prices the residual sample a hit leaves to
    fetch. Omitted (the default), every path is bit-identical to the
    cache-less engine.
    @raise Compile_error on unknown relations (or unsupported/ill-typed
    aggregates);
    @raise Ra.Type_error on ill-typed expressions;
    @raise Taqp_estimators.Inclusion_exclusion.Unsupported per the
    rewrite's limits. *)

val set_parallel_threshold : int -> unit
(** Minimum tuples of work before a stage region fans out over the
    config's worker domains (default 2048; process-wide). Purely a
    wall-time knob: both code paths produce bit-identical output, so
    tests lower it to force the parallel regions onto test-sized
    fixtures. See docs/PARALLELISM.md. *)

val term_count : t -> int
val total_points : t -> float
val stages_done : t -> int
val exhausted : t -> bool
(** Every base relation fully drawn: the next answer is exact. *)

val relations : t -> (string * int) list
(** Relation names with their unit-population sizes (blocks under the
    cluster plan, tuples under simple random sampling). *)

(** How operator selectivities are assumed during planning. *)
type sel_mode =
  | Plain  (** sel^{i-1} — the running estimates *)
  | Inflated of { d_beta : float; zero_beta : float }
      (** the One-at-a-Time sel+ values *)
  | Override of (int * float) list
      (** plain, with the listed op ids replaced (numeric gradients for
          the Single-Interval strategy) *)

type node_plan = {
  plan_id : int;
      (** cost-model id of the workload priced: the operator's own id,
          or — for a binary operator whose chosen physical path is the
          hash one — its hash-path cost-model id *)
  plan_op_id : int;
      (** the logical operator's id regardless of physical path: the
          key for {!sel_mode} overrides and {!op_ids} *)
  plan_kind : Taqp_timecost.Formulas.op_kind;
  plan_measures : Taqp_timecost.Formulas.measures;
  sel_used : float;  (** 1.0 for Scan nodes *)
  sel_plain : float;
  sel_variance : float;  (** Var_srs(sel_i) at this stage size *)
}

val plan : t -> f:float -> mode:sel_mode -> node_plan list
(** Predicted per-node workload of the {e next} stage at sample
    fraction [f] (scans first, then operators per term, then the
    Overhead node). Each binary operator contributes exactly one entry,
    priced for whichever physical path ({!Config.physical_operator})
    will run — under [Adaptive], whichever the fitted cost model
    predicts cheaper, including any catch-up cost of switching. The
    physical path never changes the estimate, only the cost.
    @raise Invalid_argument for [f] outside (0, 1]. *)

val predicted_cost : t -> f:float -> mode:sel_mode -> float
(** QCOST: the cost-model total over {!plan}. *)

val op_ids : t -> int list
(** Ids of RA operator nodes (excluding scans, overhead and the binary
    operators' hash-path cost-model ids). *)

val overhead_id : t -> int

type stage_result = {
  new_units : (string * int) list;  (** units drawn per relation *)
  estimate : Taqp_estimators.Count_estimator.t;
  op_snapshots : Report.op_snapshot list;
  nodes_elapsed : float;  (** clock time spent inside operators *)
  scans_elapsed : float;  (** clock time spent reading sample units *)
}

val run_stage : t -> device:Device.t -> f:float -> stage_result option
(** Execute one stage at fraction [f]: draw, evaluate, learn. [None]
    when no relation has units left to draw. Raises
    {!Clock.Deadline_exceeded} from inside if the device's clock is
    armed in abort mode and expires — the caller treats the stage as
    aborted (node state is then stale; do not run further stages). *)

val current_estimate : t -> Taqp_estimators.Count_estimator.t option
(** The estimate as of the last completed stage. *)

val group_estimates : t -> (Taqp_data.Tuple.t * float) list option
(** For a plain projection query (a single positive term rooted at
    Project): the estimated population count of every group observed in
    the sample, largest first — occupancy scaled by N/points_evaluated.
    [None] for other query shapes or before the first stage. *)

(** {2 Checkpointing}

    A {!snapshot} is the complete run-time-evolved state of the
    compiled query as plain data: sample-set histories and stream
    positions, per-operator selectivity records, retained binary
    deltas (with how far each physical path had processed them),
    projection group tables, aggregate moments and the per-term block
    counts. {!restore} writes a snapshot into a {e freshly compiled}
    instance of the same query (same text, config, aggregate and
    catalog) — derived structures (sorted files, hash indexes) are
    rebuilt deterministically from the deltas rather than serialized,
    and come back bit-identical, so a resumed run draws, evaluates,
    prices and estimates exactly as the uninterrupted one would have
    from that stage boundary on. See docs/RECOVERY.md. *)

type scan_snapshot = {
  sn_relation : string;
  sn_stage_tuples : int list;  (** tuples per stage, newest first *)
  sn_drawn_tuples : int;
  sn_units : Taqp_sampling.Stage_set.dump;
}

type node_state = {
  ns_id : int;  (** compile-order id, checked on restore *)
  ns_cum_out : float;
  ns_cum_points : float;
  ns_sel : Taqp_estimators.Selectivity.dump;
  ns_kind : node_kind_state;
}

and node_kind_state =
  | Ns_leaf
  | Ns_select of node_state
  | Ns_project of {
      np_groups : (Taqp_data.Tuple.t * int) list;
          (** distinct groups with occupancy counts, in reverse
              table-fold order (re-inserting in list order reproduces
              the original iteration order) *)
      np_child : node_state;
    }
  | Ns_binary of {
      nb_left : node_state;
      nb_right : node_state;
      nb_deltas_l : Taqp_data.Tuple.t array list;  (** oldest first *)
      nb_deltas_r : Taqp_data.Tuple.t array list;
      nb_files_l : int;  (** deltas already sorted into retained files *)
      nb_files_r : int;
      nb_hashed_l : int;  (** deltas already in the retained hash index *)
      nb_hashed_r : int;
    }

type term_snapshot = {
  tn_root : node_state;
  tn_moments : Aggregate.moments;
  tn_block_counts : float list;  (** newest first *)
}

type snapshot = {
  sn_stage : int;
  sn_last_estimate : Taqp_estimators.Count_estimator.t option;
  sn_scans : scan_snapshot list;  (** in relation-name order *)
  sn_terms : term_snapshot list;
}

val snapshot : t -> snapshot
(** Capture the current stage boundary. Cheap: shares the retained
    delta arrays (they are never mutated after creation). *)

val restore : t -> snapshot -> unit
(** Restore into a freshly compiled instance of the same query.
    @raise Invalid_argument if [t] has already run a stage or the
    snapshot's shape does not match the compiled tree. *)
