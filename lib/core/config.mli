(** Run configuration for the time-constrained executor — the
    implementation-decision table of Figure 3.2 in one record. *)

(** First-stage selectivity assumptions, overriding Figure 3.3's
    defaults (all [None] = maximum selectivity 1 for Select, Project
    and Join; 1/max(|r1|,|r2|) for Intersect). The paper's join
    experiment sets [join = Some 0.1]. *)
type initial_selectivities = {
  select : float option;
  join : float option;
  intersect : float option;
  project : float option;
}

type projection_estimator =
  | Goodman_unbiased  (** the exact alternating series, clamped *)
  | Goodman_first_order  (** the stabilized truncation *)
  | Scale_up  (** naive d * N/n, a baseline *)
  | Chao
      (** Chao's d + f1(f1-1)/(2(f2+1)) — the default: stable where the
          Goodman series is not (see the projection-estimator
          ablation) *)

type variance_estimator =
  | Srs_approximation
      (** the paper's choice: treat the evaluated points as a simple
          random sample — cheap, optimistic when blocks are internally
          correlated *)
  | Cluster_exact
      (** track per-disk-block output counts and use the exact cluster
          variance (Theorem 6 of [HoOT 88]); charged for the extra
          sorting/bookkeeping the paper deemed "too expensive".
          Implemented for single-relation Select chains (the paper's
          selection experiment); other shapes fall back to the
          approximation. Also feeds the measured design effect back
          into the sel+ inflation. *)

(** Physical evaluation path for equi-key Join and Intersect. Both
    paths produce the same output multiset per stage, so the estimate,
    variance and confidence interval are bit-identical; only the
    evaluation cost differs. *)
type physical_operator =
  | Sort_merge
      (** the paper's Figure 4.4/4.5 plan: sort each stage's delta into
          a retained file and re-merge one sorted-file pairing per
          (new, old) file pair — O(cumulative) re-reads per stage *)
  | Hash
      (** retained per-side hash indexes: insert each delta once, probe
          only with the opposite side's delta (symmetric-hash order) —
          O(delta) per stage, no re-reading of old sample units *)
  | Adaptive
      (** pick per operator at each stage's plan time, whichever path
          the fitted cost model predicts cheaper (switching cost — the
          catch-up work to bring the other path's retained state
          current — is included in the comparison) *)

type t = {
  strategy : Taqp_timecontrol.Strategy.t;
  stopping : Taqp_timecontrol.Stopping.t;
  plan : Taqp_sampling.Plan.t;
  confidence_level : float;
  bisect_eps_frac : float;
      (** Sample-Size-Determine tolerance as a fraction of the stage
          budget *)
  adaptive_cost : bool;  (** fit cost coefficients at run time *)
  initial_cost_scale : float;
      (** multiplier on the designer initial coefficients (misfit
          experiments) *)
  initial_selectivities : initial_selectivities;
  selectivity_oracle : (Taqp_relational.Ra.t -> float) option;
      (** Figure 3.2's "prestored" alternative to run-time estimation:
          when set, each operator's selectivity record is pre-seeded
          with the oracle's value for that operator's sub-expression
          (selectivity of the operator w.r.t. its input point space),
          so the time-control never has to learn it. The paper rejects
          this for general use — maintaining stored selectivities for
          every attribute/formula combination is unrealistic — but it
          is the right baseline for the strategy ablations. *)
  projection_estimator : projection_estimator;
  variance_estimator : variance_estimator;
  physical : physical_operator;
  max_bisect_iterations : int;
  trace : bool;  (** retain per-stage details in the report *)
  domains : int;
      (** Worker domains for per-stage sampling compute ([>= 1]). The
          engine's observable output — estimates, CIs, virtual costs,
          traces, ledgers — is bit-identical at every value; only wall
          time changes (see docs/PARALLELISM.md). [default] reads the
          [TAQP_DOMAINS] env var (unset/invalid = 1), mirroring
          [TAQP_PHYSICAL]. *)
}

val default : t
(** One-at-a-Time strategy at ~5% per-operator risk, hard deadline,
    cluster sampling with full fulfillment, 95% confidence, adaptive
    cost formulas, Figure 3.3 initial selectivities, Chao projection
    estimator. *)

val no_initial_overrides : initial_selectivities

val validate : t -> unit
(** @raise Invalid_argument on out-of-range fields. *)
