type op_snapshot = {
  op_id : int;
  op_label : string;
  selectivity : float;
  points_seen : float;
  tuples_seen : float;
}

type stage = {
  index : int;
  fraction : float;
  new_blocks : (string * int) list;
  predicted_cost : float;
  actual_cost : float;
  started_at : float;
  finished_at : float;
  estimate : float;
  variance : float;
  ops : op_snapshot list;
}

type outcome =
  | Finished
  | Quota_exhausted
  | Aborted_mid_stage
  | Overspent
  | Exact
  | Faulted

type t = {
  estimate : float;
  variance : float;
  confidence : Taqp_stats.Confidence.t;
  exact : bool;
  outcome : outcome;
  quota : float;
  elapsed : float;
  useful_time : float;
  overspend : float;
  waste : float;
  utilization : float;
  stages_completed : int;
  stage_aborted : bool;
  degraded : bool;
  faults : Taqp_fault.Injector.event list;
  fault_time : float;
  blocks_read : int;
  useful_blocks : int;
  io : Taqp_storage.Io_stats.t;
  trace : stage list;
  groups : (string * float) list;
}

let outcome_name = function
  | Finished -> "finished"
  | Quota_exhausted -> "quota-exhausted"
  | Aborted_mid_stage -> "aborted-mid-stage"
  | Overspent -> "overspent"
  | Exact -> "exact"
  | Faulted -> "faulted"

let pp_stage ppf s =
  Format.fprintf ppf
    "stage %d: f=%.4f blocks=[%s] predicted=%.3fs actual=%.3fs estimate=%.1f"
    s.index s.fraction
    (String.concat "; "
       (List.map (fun (r, k) -> Printf.sprintf "%s:%d" r k) s.new_blocks))
    s.predicted_cost s.actual_cost s.estimate

let pp ppf t =
  Format.fprintf ppf
    "@[<v>estimate %.1f (+/- %.1f at %.0f%%)%s%s@ outcome=%s stages=%d \
     elapsed=%.2fs/%.2fs useful=%.2fs ovsp=%.2fs waste=%.2fs util=%.0f%% \
     blocks=%d@]"
    t.estimate t.confidence.Taqp_stats.Confidence.half_width
    (100.0 *. t.confidence.Taqp_stats.Confidence.level)
    (if t.exact then " [exact]" else "")
    (if t.degraded then " [degraded]" else "")
    (outcome_name t.outcome) t.stages_completed t.elapsed t.quota
    t.useful_time t.overspend t.waste
    (100.0 *. t.utilization)
    t.blocks_read;
  if t.faults <> [] then
    let recovered =
      List.length (List.filter (fun e -> e.Taqp_fault.Injector.ev_recovered) t.faults)
    in
    Format.fprintf ppf "@ faults=%d (%d recovered) fault_time=%.2fs"
      (List.length t.faults) recovered t.fault_time

(* The degraded-CI widening factor (docs/ROBUSTNESS.md): a degraded
   answer is the last good estimate, so its sampling interval
   understates the real uncertainty. Widen by the fraction of the
   quota the run could not turn into useful stages, bounded at 2x;
   the degenerate zero-quota case maxes out. Monotone non-increasing
   in [useful_time], non-decreasing in unused quota, always in [1,2]. *)
let widening_factor ~quota ~useful_time =
  if quota > 0.0 then
    let unused = Float.max 0.0 (quota -. useful_time) in
    1.0 +. Float.min 1.0 (unused /. quota)
  else 2.0
