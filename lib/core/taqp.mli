(** The front door: time-constrained COUNT evaluation in two calls.

    {[
      let catalog = ... in
      let expr = Taqp_core.Taqp.parse "select[salary > 50000](emp)" in
      let report =
        Taqp_core.Taqp.count_within ~seed:42 catalog ~quota:10.0 expr
      in
      Fmt.pr "%a@." Taqp_core.Report.pp report
    ]}

    [count_within] runs on a fresh virtual clock and simulated device
    (deterministic given [seed]); [count_within_device] runs on a
    caller-supplied device — pass one built over {!Clock.create_wall}
    for real wall-clock deadlines. *)

open Taqp_storage
open Taqp_relational

val parse : string -> Ra.t
(** Parse the RA query syntax ({!Taqp_relational.Parser}). *)

val count_within :
  ?config:Config.t ->
  ?domains:int ->
  ?params:Cost_params.t ->
  ?seed:int ->
  ?sink:Taqp_obs.Sink.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?faults:Taqp_fault.Fault_plan.t ->
  ?fault_seed:int ->
  ?cache:Taqp_cache.Cache.t ->
  Catalog.t ->
  quota:float ->
  Ra.t ->
  Report.t
(** Evaluate COUNT(expr) within [quota] simulated seconds on a fresh
    virtual device. [seed] (default 1) drives both sampling and device
    jitter. Passing [sink] attaches a {!Taqp_obs.Tracer} keyed to the
    run's virtual clock — every storage charge, operator evaluation and
    executor stage is streamed to it, and it is closed before the
    report is returned. Passing [metrics] shares a registry with the
    device's [io.*] counters and the executor's stage histograms.
    Neither changes the run: tracing only reads the clock.
    [faults] installs a {!Taqp_fault.Injector} built from the plan into
    the device ({!Taqp_fault.Fault_plan.none} is a no-op), seeded by
    [fault_seed] (default: [seed]). The injector draws from its own
    PRNG stream, so a faulted run samples the same tuples as the
    fault-free run with the same [seed]; see docs/ROBUSTNESS.md.
    [cache] attaches a shared cross-query cache ({!Taqp_cache.Cache},
    see docs/CACHING.md): its counters are mirrored into [metrics] and
    emitted to [sink] before the trace closes. Omitted, the run is
    bit-identical to the cache-less engine.
    [domains] overrides [config.domains] (worker domains for per-stage
    compute): any value yields bit-identical reports and traces — only
    wall time changes (docs/PARALLELISM.md). *)

val aggregate_within :
  ?config:Config.t ->
  ?domains:int ->
  ?params:Cost_params.t ->
  ?seed:int ->
  ?sink:Taqp_obs.Sink.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?faults:Taqp_fault.Fault_plan.t ->
  ?fault_seed:int ->
  ?cache:Taqp_cache.Cache.t ->
  aggregate:Aggregate.t ->
  Catalog.t ->
  quota:float ->
  Ra.t ->
  Report.t
(** Like {!count_within} for SUM/AVG of a numeric result attribute —
    the "any aggregate, given an estimator" extension the paper
    sketches. *)

val count_within_device :
  ?config:Config.t ->
  ?aggregate:Aggregate.t ->
  device:Device.t ->
  rng:Taqp_rng.Prng.t ->
  Catalog.t ->
  quota:float ->
  Ra.t ->
  Report.t

val count_exact : ?device:Device.t -> Catalog.t -> Ra.t -> int
(** Ground truth (and what an unconstrained evaluation would cost, when
    a device is supplied). *)

val aggregate_exact :
  ?device:Device.t -> Catalog.t -> aggregate:Aggregate.t -> Ra.t -> float
(** Exact value of any supported aggregate (ground truth for tests and
    benches). *)

val estimate_error :
  report:Report.t -> exact:int -> float
(** |estimate - exact| / max(1, exact) — relative error of a run. *)
