module Tuple = Taqp_data.Tuple
module Schema = Taqp_data.Schema
module Prng = Taqp_rng.Prng
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Heap_file = Taqp_storage.Heap_file
module Catalog = Taqp_storage.Catalog
module Cost_params = Taqp_storage.Cost_params
module Ra = Taqp_relational.Ra
module Predicate = Taqp_relational.Predicate
module Ops = Taqp_relational.Ops
module Plan = Taqp_sampling.Plan
module Stage_set = Taqp_sampling.Stage_set
module Fulfillment = Taqp_sampling.Fulfillment
module Selectivity = Taqp_estimators.Selectivity
module Count_estimator = Taqp_estimators.Count_estimator
module Goodman = Taqp_estimators.Goodman
module Inclusion_exclusion = Taqp_estimators.Inclusion_exclusion
module Formulas = Taqp_timecost.Formulas
module Cost_model = Taqp_timecost.Cost_model
module Sel_plus = Taqp_timecontrol.Sel_plus
module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Cache = Taqp_cache.Cache

exception Compile_error of string

let compile_error fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Data structures                                                     *)

(* Where a scan's sample units come from. [Src_shared g] reads
   consecutive offsets of the cross-query sample prefix (generation [g]
   at adoption); an invalidation bumps the generation and the scan
   demotes itself — permanently — to [Src_fallback], drawing from its
   own untouched PRNG stream, which is a valid without-replacement
   continuation of the sample it already holds. [Src_private] is the
   cache-off path, bit-identical to the pre-cache engine. *)
type cache_src = Src_private | Src_shared of int | Src_fallback

(* One per base relation: the shared sample stream all terms read. *)
type scan = {
  scan_id : int;
  relation : string;
  file : Heap_file.t;
  units : Stage_set.t;
  unit_kind : Plan.unit_kind;
  mutable cache_src : cache_src;
  mutable stage_tuples : int list;  (** newest first: tuples per stage *)
  mutable drawn_tuples : int;
  mutable last_delta : Tuple.t array;
  mutable last_unit_deltas : Tuple.t array list;  (** per drawn unit *)
}

type node = {
  id : int;
  schema : Schema.t;
  out_bytes : int;  (** estimated output tuple width, for page math *)
  sel : Selectivity.t;
  subtree_points : float;  (** product of leaf cardinalities below *)
  mutable cum_out : float;
  mutable cum_points : float;
  kind : kind;
}

and kind =
  | Leaf of scan
  | Select_node of {
      comparisons : int;
      test : Tuple.t -> bool;
      child : node;
    }
  | Project_node of {
      positions : int list;
      names : string list;
      child : node;
      groups : (Tuple.t, int ref) Hashtbl.t;
    }
  | Binary_node of binary

(* Both physical paths' retained state lives side by side: the raw
   per-stage deltas are always kept (they are in memory regardless),
   the sorted files and the hash indexes only as far as their path has
   run — [files_*] may lag [deltas_*] under the hash path and
   [hashed_*] may lag under the sort path, and whichever path runs
   next catches its state up first (the priced switching cost). *)
and binary = {
  op : [ `Join | `Intersect ];
  key_l : int array;
  key_r : int array;
  cmp_l : Tuple.t -> Tuple.t -> int;  (** precompiled sort order *)
  cmp_r : Tuple.t -> Tuple.t -> int;
  residual : Tuple.t -> bool;
  residual_comparisons : int;
  left : node;
  right : node;
  hash_id : int;  (** cost-model node of the hash path *)
  mutable files_l : Tuple.t array list;  (** oldest first, sorted *)
  mutable files_r : Tuple.t array list;
  mutable deltas_l : Tuple.t array list;  (** oldest first, raw *)
  mutable deltas_r : Tuple.t array list;
  hash_l : Ops.Hash_index.t;  (** retained index over [deltas_l] *)
  hash_r : Ops.Hash_index.t;
  mutable hashed_l : int;  (** how many deltas are in [hash_l] *)
  mutable hashed_r : int;
}

type term = {
  sign : int;
  root : node;
  leaf_scans : scan list;
  agg_pos : int option;  (** attribute position for Sum/Avg *)
  mutable moments : Aggregate.moments;
  mutable block_counts : float list;
      (** per-sampled-unit output counts y_i, newest first — tracked
          only under [Cluster_exact] for single-relation Select chains *)
}

type t = {
  config : Config.t;
  cost_model : Cost_model.t;
  aggregate : Aggregate.t;
  terms : term list;
  scans : scan list;  (** one per distinct base relation *)
  overhead_id : int;
  block_bytes : int;
  cache : Cache.t option;  (** shared cross-query cache, when attached *)
  pool : Taqp_parallel.Pool.t option;
      (** worker domains for per-stage compute; [None] = domains 1,
          the historical sequential code path verbatim *)
  mutable stage : int;  (** completed stages *)
  mutable last_estimate : Count_estimator.t option;
}

(* ------------------------------------------------------------------ *)
(* Parallel regions (docs/PARALLELISM.md)

   Heavy pure compute — predicate filters, delta sorts, pairing merges,
   index probes — fans out over the pool, while every Device charge is
   issued by this domain in exactly the order the sequential code
   issues it (same calls, same arguments). Virtual time, jitter draws,
   deadline crossings, traces and ledgers are therefore bit-identical
   at any domain count; only wall time changes. Workers never touch a
   Clock, Device, Prng, Cache or tracer. *)

(* Below this many tuples a region stays sequential: fan-out overhead
   would dominate. A wall-time knob only — both paths produce the same
   bytes, so the exact value is not semantics-bearing. Settable so the
   bit-identity tests can force the parallel regions on on test-sized
   fixtures. *)
let par_threshold = ref 2048
let set_parallel_threshold n = par_threshold := Int.max 0 n

let par_chunks pool n =
  Taqp_parallel.Shard.ranges ~n ~k:(4 * Taqp_parallel.Pool.size pool)

(* Chunked filter: each range filters in index order, chunks concat in
   range order — extensionally equal to [Seq.filter] over the array. *)
let par_filter pool test arr =
  let ranges = par_chunks pool (Array.length arr) in
  let chunks =
    Taqp_parallel.Pool.run pool
      (Array.map
         (fun (r : Taqp_parallel.Shard.range) () ->
           let out = ref [] in
           for i = r.hi - 1 downto r.lo do
             if test arr.(i) then out := arr.(i) :: !out
           done;
           Array.of_list !out)
         ranges)
  in
  Array.concat (Array.to_list chunks)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

let bf_of_bytes ~block_bytes bytes = Int.max 1 (block_bytes / Int.max 1 bytes)

let xlog n = if n > 1.0 then n *. (log n /. log 2.0) else n

let pages ~bf n = ceil (Float.max 0.0 n /. float_of_int bf)

(* Prestored selectivities (Figure 3.2): seed the record with an
   overwhelming pseudo-sample at the oracle's value, so the run-time
   revision barely moves it and its variance is negligible. *)
let oracle_seed = 1e12

let apply_oracle (config : Config.t) node expr =
  match config.selectivity_oracle with
  | None -> ()
  | Some oracle ->
      let sel = Float.max 0.0 (Float.min 1.0 (oracle expr)) in
      Selectivity.set_cumulative node.sel ~points:oracle_seed
        ~tuples:(sel *. oracle_seed)

let initial_sel (config : Config.t) op =
  let ov = config.initial_selectivities in
  match op with
  | `Select -> Option.value ov.select ~default:(Selectivity.initial_for `Select)
  | `Join -> Option.value ov.join ~default:(Selectivity.initial_for `Join)
  | `Project ->
      Option.value ov.project ~default:(Selectivity.initial_for `Project)
  | `Intersect (n1, n2) ->
      Option.value ov.intersect
        ~default:(Selectivity.initial_for (`Intersect (n1, n2)))

let make_binary ~op ~key_l ~key_r ~residual ~residual_comparisons ~left ~right
    ~hash_id =
  {
    op;
    key_l;
    key_r;
    cmp_l = Ops.key_comparator ~arity:(Schema.arity left.schema) key_l;
    cmp_r = Ops.key_comparator ~arity:(Schema.arity right.schema) key_r;
    residual;
    residual_comparisons;
    left;
    right;
    hash_id;
    files_l = [];
    files_r = [];
    deltas_l = [];
    deltas_r = [];
    hash_l = Ops.Hash_index.create ~key:key_l;
    hash_r = Ops.Hash_index.create ~key:key_r;
    hashed_l = 0;
    hashed_r = 0;
  }

let compile ?(aggregate = Aggregate.Count) ?cache ~catalog ~config ~rng
    ~cost_model expr =
  Config.validate config;
  let lookup name =
    Option.map Heap_file.schema (Catalog.find_opt catalog name)
  in
  (* Fail fast on type errors before any state is created. *)
  ignore (Ra.infer ~lookup expr);
  let signed_terms = Inclusion_exclusion.rewrite expr in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let block_bytes = 1024 in
  let scans : (string, scan) Hashtbl.t = Hashtbl.create 8 in
  let scan_for name =
    match Hashtbl.find_opt scans name with
    | Some s -> s
    | None ->
        let file =
          match Catalog.find_opt catalog name with
          | Some f -> f
          | None -> compile_error "unknown relation %s" name
        in
        let n_units =
          match (config.plan : Plan.t).unit_kind with
          | Plan.Cluster -> Heap_file.n_blocks file
          | Plan.Simple_random -> Heap_file.n_tuples file
        in
        let scan_id = fresh_id () in
        Cost_model.register cost_model ~id:scan_id Formulas.Scan;
        let s =
          {
            scan_id;
            relation = name;
            file;
            units = Stage_set.create ~n_units (Prng.split rng);
            unit_kind = (config.plan : Plan.t).unit_kind;
            cache_src =
              (match cache with
              | None -> Src_private
              | Some c -> Src_shared (Cache.generation c file));
            stage_tuples = [];
            drawn_tuples = 0;
            last_delta = [||];
            last_unit_deltas = [];
          }
        in
        Hashtbl.replace scans name s;
        s
  in
  let with_oracle expr node leaves =
    apply_oracle config node expr;
    (node, leaves)
  in
  let rec build (e : Ra.t) : node * scan list =
    match e with
    | Ra.Relation { name; alias } ->
        let scan = scan_for name in
        let schema =
          Schema.qualify
            (Option.value alias ~default:name)
            (Heap_file.schema scan.file)
        in
        let tuples = Heap_file.n_tuples scan.file in
        ( {
            id = fresh_id ();
            schema;
            out_bytes = Heap_file.tuple_bytes scan.file;
            sel = Selectivity.create ~initial:1.0;
            subtree_points = float_of_int tuples;
            cum_out = 0.0;
            cum_points = 0.0;
            kind = Leaf scan;
          },
          [ scan ] )
    | Ra.Select (pred, c) ->
        let child, leaves = build c in
        let id = fresh_id () in
        Cost_model.register cost_model ~id Formulas.Select;
        with_oracle e
          {
            id;
            schema = child.schema;
            out_bytes = child.out_bytes;
            sel = Selectivity.create ~initial:(initial_sel config `Select);
            subtree_points = child.subtree_points;
            cum_out = 0.0;
            cum_points = 0.0;
            kind =
              Select_node
                {
                  comparisons = Predicate.comparisons pred;
                  test = Predicate.compile child.schema pred;
                  child;
                };
          }
          leaves
    | Ra.Project (names, c) ->
        let child, leaves = build c in
        let id = fresh_id () in
        Cost_model.register cost_model ~id Formulas.Project;
        let schema = Schema.project child.schema names in
        let positions =
          List.map (Schema.find child.schema) names
        in
        let out_bytes =
          Int.max 8
            (child.out_bytes * List.length names
            / Int.max 1 (Schema.arity child.schema))
        in
        with_oracle e
          {
            id;
            schema;
            out_bytes;
            sel = Selectivity.create ~initial:(initial_sel config `Project);
            subtree_points = child.subtree_points;
            cum_out = 0.0;
            cum_points = 0.0;
            kind =
              Project_node { positions; names; child; groups = Hashtbl.create 256 };
          }
          leaves
    | Ra.Join (pred, l, r) ->
        let left, ll = build l in
        let right, rl = build r in
        let id = fresh_id () in
        Cost_model.register cost_model ~id Formulas.Join;
        let hash_id = fresh_id () in
        Cost_model.register cost_model ~id:hash_id Formulas.Hash_join;
        let schema = Schema.concat left.schema right.schema in
        let (key_l, key_r), residual_pred =
          Ops.split_equi_pairs ~schema_l:left.schema ~schema_r:right.schema pred
        in
        with_oracle e
          {
            id;
            schema;
            out_bytes = left.out_bytes + right.out_bytes;
            sel = Selectivity.create ~initial:(initial_sel config `Join);
            subtree_points = left.subtree_points *. right.subtree_points;
            cum_out = 0.0;
            cum_points = 0.0;
            kind =
              Binary_node
                (make_binary ~op:`Join ~key_l ~key_r
                   ~residual:(Predicate.compile schema residual_pred)
                   ~residual_comparisons:(Predicate.comparisons residual_pred)
                   ~left ~right ~hash_id);
          }
          (ll @ rl)
    | Ra.Intersect (l, r) ->
        let left, ll = build l in
        let right, rl = build r in
        let id = fresh_id () in
        Cost_model.register cost_model ~id Formulas.Intersect;
        let hash_id = fresh_id () in
        Cost_model.register cost_model ~id:hash_id Formulas.Hash_intersect;
        let arity = Schema.arity left.schema in
        let key = Array.init arity (fun i -> i) in
        let n1 = int_of_float (Float.min 1e9 left.subtree_points) in
        let n2 = int_of_float (Float.min 1e9 right.subtree_points) in
        with_oracle e
          {
            id;
            schema = left.schema;
            out_bytes = left.out_bytes;
            sel =
              Selectivity.create ~initial:(initial_sel config (`Intersect (n1, n2)));
            subtree_points = left.subtree_points *. right.subtree_points;
            cum_out = 0.0;
            cum_points = 0.0;
            kind =
              Binary_node
                (make_binary ~op:`Intersect ~key_l:key ~key_r:key
                   ~residual:(fun _ -> true)
                   ~residual_comparisons:0 ~left ~right ~hash_id);
          }
          (ll @ rl)
    | Ra.Union (_, _) | Ra.Difference (_, _) ->
        compile_error
          "union/difference survived the inclusion-exclusion rewrite"
  in
  let terms =
    List.map
      (fun (sign, e) ->
        let root, leaf_scans = build e in
        let agg_pos =
          match Aggregate.attr aggregate with
          | None -> None
          | Some name -> (
              (match root.kind with
              | Project_node _ ->
                  compile_error
                    "%s over a projection is not supported (no estimator \
                     for sums over distinct groups)"
                    (Aggregate.name aggregate)
              | Leaf _ | Select_node _ | Binary_node _ -> ());
              match Schema.find root.schema name with
              | i -> (
                  match Schema.ty_at root.schema i with
                  | Taqp_data.Value.Tint | Taqp_data.Value.Tfloat -> Some i
                  | Taqp_data.Value.Tstring | Taqp_data.Value.Tbool ->
                      compile_error "%s: attribute %s is not numeric"
                        (Aggregate.name aggregate) name)
              | exception Schema.Schema_error msg -> compile_error "%s" msg)
        in
        {
          sign;
          root;
          leaf_scans;
          agg_pos;
          moments = Aggregate.zero_moments;
          block_counts = [];
        })
      signed_terms
  in
  let overhead_id = fresh_id () in
  Cost_model.register cost_model ~id:overhead_id Formulas.Overhead;
  let scans =
    List.sort
      (fun a b -> String.compare a.relation b.relation)
      (Hashtbl.fold (fun _ s acc -> s :: acc) scans [])
  in
  let pool =
    if config.domains > 1 then
      Some (Taqp_parallel.Pool.global ~domains:config.domains)
    else None
  in
  {
    config;
    cost_model;
    aggregate;
    terms;
    scans;
    overhead_id;
    block_bytes;
    cache;
    pool;
    stage = 0;
    last_estimate = None;
  }

let term_count t = List.length t.terms
let stages_done t = t.stage
let exhausted t = List.for_all (fun s -> Stage_set.exhausted s.units) t.scans

let relations t =
  List.map (fun s -> (s.relation, Stage_set.n_units s.units)) t.scans

let total_points t =
  (* Points of the original expression: the first (positive) term's
     leaves span the un-rewritten expression's dimensions. *)
  match t.terms with
  | { root; _ } :: _ -> root.subtree_points
  | [] -> 0.0

let overhead_id t = t.overhead_id

let rec node_op_ids node acc =
  match node.kind with
  | Leaf _ -> acc
  | Select_node { child; _ } -> node_op_ids child (node.id :: acc)
  | Project_node { child; _ } -> node_op_ids child (node.id :: acc)
  | Binary_node { left; right; _ } ->
      node_op_ids left (node_op_ids right (node.id :: acc))

let op_ids t =
  List.sort Int.compare
    (List.fold_left (fun acc term -> node_op_ids term.root acc) [] t.terms)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)

type sel_mode =
  | Plain
  | Inflated of { d_beta : float; zero_beta : float }
  | Override of (int * float) list

type node_plan = {
  plan_id : int;
  plan_op_id : int;
  plan_kind : Formulas.op_kind;
  plan_measures : Formulas.measures;
  sel_used : float;
  sel_plain : float;
  sel_variance : float;
}

let units_for scan ~f =
  let remaining = Stage_set.remaining scan.units in
  if remaining = 0 then 0
  else
    let n = float_of_int (Stage_set.n_units scan.units) in
    Int.min remaining (Int.max 1 (int_of_float ((f *. n) +. 0.5)))

let tuples_per_unit scan =
  match scan.unit_kind with
  | Plan.Cluster -> Heap_file.blocking_factor scan.file
  | Plan.Simple_random -> 1

let predicted_new_tuples scan ~f =
  let k = units_for scan ~f in
  let cap = Heap_file.n_tuples scan.file - scan.drawn_tuples in
  Int.min cap (k * tuples_per_unit scan)

(* The cache keys a scan's prefix by its sampling-unit population. *)
let cache_kind scan =
  match scan.unit_kind with
  | Plan.Cluster -> Cache.Blocks
  | Plan.Simple_random -> Cache.Tuples

(* The cache to share units through, if the scan is (still) on the
   shared prefix. Checked at every use: an invalidation since adoption
   bumps the generation, and the scan demotes itself permanently — the
   new prefix stream could re-issue units it already drew. *)
let scan_cache t scan =
  match (t.cache, scan.cache_src) with
  | Some c, Src_shared g when Cache.generation c scan.file = g -> Some c
  | Some _, Src_shared _ ->
      scan.cache_src <- Src_fallback;
      None
  | _ -> None

(* Block reads the next stage would actually charge: on the shared
   prefix the unit identities are known in advance, so cached blocks
   can be netted out — this is what makes a plan (and the admission
   price built from it) cover only the *residual* sample a hit leaves
   to fetch. Off the prefix the units are not knowable before the
   draw, so every unit is priced as a read. *)
let predicted_scan_misses t scan ~f =
  let k = units_for scan ~f in
  match scan_cache t scan with
  | Some c ->
      Cache.predict_misses c ~file:scan.file ~kind:(cache_kind scan)
        ~lo:(Stage_set.drawn scan.units) ~k
  | None -> k

(* Per-stage new/cumulative sizes used by the Figure 4.5 pairing cost:
   sizes of each side's retained deltas, oldest first, with the
   predicted new file appended. Delta sizes — not [files_*] sizes —
   because the sorted files may lag the deltas under the hash path. *)
let file_sizes files = List.map Array.length files

let sum_lengths files =
  List.fold_left (fun acc a -> acc + Array.length a) 0 files

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let choose_sel t node ~mode ~m_next =
  let plain = Selectivity.estimate node.sel in
  let n_remaining = Float.max 0.0 (node.subtree_points -. node.cum_points) in
  let variance = Selectivity.variance_srs node.sel ~m_next ~n_remaining in
  let used =
    match mode with
    | Plain -> plain
    | Override overrides -> (
        match List.assoc_opt node.id overrides with
        | Some s -> s
        | None -> plain)
    | Inflated { d_beta; zero_beta } ->
        Sel_plus.compute node.sel ~d_beta ~zero_beta ~m_next ~n_remaining
  in
  ignore t;
  (used, plain, variance)

(* ------------------------------------------------------------------ *)
(* Physical-path costing, shared by planning, execution and the
   adaptive selection so all three price exactly the same work. Every
   builder is evaluated against the operator's retained state *before*
   this stage's deltas are appended, with [nl]/[nr] the (predicted or
   actual) delta sizes. *)

let is_full t = (t.config.plan : Plan.t).fulfillment = Plan.Full

(* Deltas retained but not yet sorted into files (resp. inserted into
   the hash indexes): the catch-up work a switch onto that path must
   perform first, and therefore part of its price. *)
let unsorted_deltas b =
  ( drop (List.length b.files_l) b.deltas_l,
    drop (List.length b.files_r) b.deltas_r )

let unhashed_deltas b = (drop b.hashed_l b.deltas_l, drop b.hashed_r b.deltas_r)

let binary_pairings t b =
  Fulfillment.pairings_at_stage
    ~stages_l:(List.length b.deltas_l + 1)
    ~stage:(List.length b.deltas_r + 1)
    (if is_full t then `Full else `Partial)

let sort_measures t ~node b ~nl ~nr ~out_new =
  let bf = bf_of_bytes ~block_bytes:t.block_bytes node.out_bytes in
  let bf_l = bf_of_bytes ~block_bytes:t.block_bytes b.left.out_bytes in
  let bf_r = bf_of_bytes ~block_bytes:t.block_bytes b.right.out_bytes in
  let missing_l, missing_r = unsorted_deltas b in
  let add_files side_bf files acc =
    List.fold_left
      (fun (ni, tp, nn) file ->
        let n = float_of_int (Array.length file) in
        (ni +. n, tp +. pages ~bf:side_bf n, nn +. xlog n))
      acc files
  in
  let acc =
    ( nl +. nr,
      pages ~bf:bf_l nl +. pages ~bf:bf_r nr,
      xlog nl +. xlog nr )
  in
  let n_input, temp_pages, nlogn =
    add_files bf_r missing_r (add_files bf_l missing_l acc)
  in
  let sizes_l = file_sizes b.deltas_l @ [ int_of_float nl ] in
  let sizes_r = file_sizes b.deltas_r @ [ int_of_float nr ] in
  let pairings = binary_pairings t b in
  let size_at sizes i =
    match List.nth_opt sizes (i - 1) with
    | Some s -> float_of_int s
    | None -> 0.0
  in
  let merge_reads =
    List.fold_left
      (fun acc (i, j) -> acc +. size_at sizes_l i +. size_at sizes_r j)
      0.0 pairings
  in
  {
    Formulas.zero_measures with
    Formulas.n_input;
    temp_pages;
    nlogn;
    merge_reads;
    out_tuples = out_new;
    out_pages = pages ~bf out_new;
    pairings = float_of_int (List.length pairings);
  }

let hash_measures t ~node b ~nl ~nr ~out_new =
  let bf = bf_of_bytes ~block_bytes:t.block_bytes node.out_bytes in
  let build_tuples, probe_tuples =
    if is_full t then begin
      let miss_l, miss_r = unhashed_deltas b in
      let catch_up = float_of_int (sum_lengths miss_l + sum_lengths miss_r) in
      (catch_up +. nl +. nr, nl +. nr)
    end
    else (* transient per-stage index: build left delta, probe right *)
      (nl, nr)
  in
  {
    Formulas.zero_measures with
    Formulas.build_tuples;
    probe_tuples;
    out_tuples = out_new;
    out_pages = pages ~bf out_new;
  }

let choose_path t ~node b ~nl ~nr ~out_guess =
  match t.config.physical with
  | Config.Sort_merge -> `Sort
  | Config.Hash -> `Hash
  | Config.Adaptive ->
      let sort_cost =
        Cost_model.predict t.cost_model ~id:node.id
          (sort_measures t ~node b ~nl ~nr ~out_new:out_guess)
      in
      let hash_cost =
        Cost_model.predict t.cost_model ~id:b.hash_id
          (hash_measures t ~node b ~nl ~nr ~out_new:out_guess)
      in
      if hash_cost < sort_cost then `Hash else `Sort

(* Returns (plans for this subtree, predicted new output tuples,
   cumulative output tuples so far). *)
let rec plan_node t ~f ~mode node : node_plan list * float * float =
  let bf = bf_of_bytes ~block_bytes:t.block_bytes node.out_bytes in
  match node.kind with
  | Leaf scan ->
      ([], float_of_int (predicted_new_tuples scan ~f), float_of_int scan.drawn_tuples)
  | Select_node { comparisons; child; _ } ->
      let plans, n_new, _ = plan_node t ~f ~mode child in
      let sel_used, sel_plain, sel_variance =
        choose_sel t node ~mode ~m_next:n_new
      in
      let out_new = sel_used *. n_new in
      let measures =
        {
          Formulas.zero_measures with
          Formulas.n_input = n_new;
          comparisons = float_of_int comparisons;
          out_tuples = out_new;
          out_pages = pages ~bf out_new;
        }
      in
      ( plans
        @ [
            {
              plan_id = node.id;
              plan_op_id = node.id;
              plan_kind = Formulas.Select;
              plan_measures = measures;
              sel_used;
              sel_plain;
              sel_variance;
            };
          ],
        out_new,
        node.cum_out )
  | Project_node { child; _ } ->
      let plans, n_new, _ = plan_node t ~f ~mode child in
      let sel_used, sel_plain, sel_variance =
        choose_sel t node ~mode ~m_next:n_new
      in
      let out_new = sel_used *. n_new in
      let measures =
        {
          Formulas.zero_measures with
          Formulas.n_input = n_new;
          temp_pages = pages ~bf n_new;
          nlogn = xlog n_new;
          out_tuples = out_new;
          out_pages = pages ~bf out_new;
        }
      in
      ( plans
        @ [
            {
              plan_id = node.id;
              plan_op_id = node.id;
              plan_kind = Formulas.Project;
              plan_measures = measures;
              sel_used;
              sel_plain;
              sel_variance;
            };
          ],
        out_new,
        node.cum_out )
  | Binary_node b ->
      let plans_l, nl, cum_l = plan_node t ~f ~mode b.left in
      let plans_r, nr, cum_r = plan_node t ~f ~mode b.right in
      let full = is_full t in
      let points_new =
        if full then (nl *. (cum_r +. nr)) +. (cum_l *. nr) else nl *. nr
      in
      let sel_used, sel_plain, sel_variance =
        choose_sel t node ~mode ~m_next:points_new
      in
      let out_new = sel_used *. points_new in
      (* Price whichever physical path will run: the plan entry carries
         that path's cost-model id, kind and measures, so QCOST and the
         executor's gradients see the work the stage will actually do. *)
      let plan_id, plan_kind, plan_measures =
        match (choose_path t ~node b ~nl ~nr ~out_guess:out_new, b.op) with
        | `Sort, `Join ->
            (node.id, Formulas.Join, sort_measures t ~node b ~nl ~nr ~out_new)
        | `Sort, `Intersect ->
            ( node.id,
              Formulas.Intersect,
              sort_measures t ~node b ~nl ~nr ~out_new )
        | `Hash, `Join ->
            ( b.hash_id,
              Formulas.Hash_join,
              hash_measures t ~node b ~nl ~nr ~out_new )
        | `Hash, `Intersect ->
            ( b.hash_id,
              Formulas.Hash_intersect,
              hash_measures t ~node b ~nl ~nr ~out_new )
      in
      ( plans_l @ plans_r
        @ [
            {
              plan_id;
              plan_op_id = node.id;
              plan_kind;
              plan_measures;
              sel_used;
              sel_plain;
              sel_variance;
            };
          ],
        out_new,
        node.cum_out )

let plan t ~f ~mode =
  if f <= 0.0 || f > 1.0 then invalid_arg "Staged.plan: f outside (0,1]";
  let scan_plans =
    List.map
      (fun scan ->
        {
          plan_id = scan.scan_id;
          plan_op_id = scan.scan_id;
          plan_kind = Formulas.Scan;
          plan_measures =
            {
              Formulas.zero_measures with
              Formulas.blocks = float_of_int (predicted_scan_misses t scan ~f);
            };
          sel_used = 1.0;
          sel_plain = 1.0;
          sel_variance = 0.0;
        })
      t.scans
  in
  let term_plans =
    List.concat_map
      (fun term ->
        let plans, _, _ = plan_node t ~f ~mode term.root in
        plans)
      t.terms
  in
  let overhead =
    {
      plan_id = t.overhead_id;
      plan_op_id = t.overhead_id;
      plan_kind = Formulas.Overhead;
      plan_measures = Formulas.zero_measures;
      sel_used = 1.0;
      sel_plain = 1.0;
      sel_variance = 0.0;
    }
  in
  scan_plans @ term_plans @ [ overhead ]

let predicted_cost t ~f ~mode =
  Cost_model.total t.cost_model
    (List.map (fun p -> (p.plan_id, p.plan_measures)) (plan t ~f ~mode))

(* ------------------------------------------------------------------ *)
(* Stage execution                                                     *)

type stage_result = {
  new_units : (string * int) list;
  estimate : Count_estimator.t;
  op_snapshots : Report.op_snapshot list;
  nodes_elapsed : float;
  scans_elapsed : float;
}

(* Serve one block through the shared cache when one is attached: a hit
   charges the probe price instead of the read, a miss does the real
   read and retains the contents (a fault raised mid-read propagates
   before the insert, so a failed fill never poisons the store). The
   block store is content-keyed, so it serves fallback scans too — only
   the *unit choice* needs the shared prefix, not the block cache.
   Returns the tuples plus whether it missed; with no cache the miss
   path is exactly the pre-cache read. *)
let cached_block t device file b =
  match t.cache with
  | None -> (Heap_file.read_block device file b, true)
  | Some c -> (
      match Cache.find_block c ~file b with
      | Some tuples ->
          Device.cache_probe device;
          (tuples, false)
      | None ->
          let tuples = Heap_file.read_block device file b in
          Cache.store_block c ~file b
            ~cost:(Device.params device).Cost_params.block_read tuples;
          (tuples, true))

let read_units t device scan unit_ids =
  let misses = ref 0 in
  let fetch b =
    let tuples, missed = cached_block t device scan.file b in
    if missed then incr misses;
    tuples
  in
  let per_unit =
    match scan.unit_kind with
    | Plan.Cluster -> List.map fetch unit_ids
    | Plan.Simple_random ->
        let bf = Heap_file.blocking_factor scan.file in
        List.map
          (fun tuple_idx -> [| (fetch (tuple_idx / bf)).(tuple_idx mod bf) |])
          unit_ids
  in
  scan.last_unit_deltas <- per_unit;
  (Array.concat per_unit, !misses)

let draw_and_scan t device ~f =
  let tracer = Device.tracer device in
  List.filter_map
    (fun scan ->
      let k = units_for scan ~f in
      if k = 0 then begin
        scan.last_delta <- [||];
        scan.last_unit_deltas <- [];
        scan.stage_tuples <- 0 :: scan.stage_tuples;
        None
      end
      else begin
        let t0 = Clock.now (Device.clock device) in
        let unit_ids =
          match scan_cache t scan with
          | Some c ->
              let fresh =
                Cache.prefix_units c ~file:scan.file ~kind:(cache_kind scan)
                  ~lo:(Stage_set.drawn scan.units) ~k
              in
              Stage_set.record_stage scan.units fresh;
              fresh
          | None -> Stage_set.draw_stage scan.units ~k
        in
        let tuples, misses = read_units t device scan unit_ids in
        scan.last_delta <- tuples;
        scan.stage_tuples <- Array.length tuples :: scan.stage_tuples;
        scan.drawn_tuples <- scan.drawn_tuples + Array.length tuples;
        let t1 = Clock.now (Device.clock device) in
        if Tracer.enabled tracer then
          Tracer.complete tracer ~cat:"scan" ~begin_ts:t0
            ("scan:" ^ scan.relation)
            ~args:
              [
                ("units", Event.Int (List.length unit_ids));
                ("tuples", Event.Int (Array.length tuples));
              ];
        (* [misses] equals the unit count on the cache-off path, so the
           fitted read rate stays the price of a *real* block read; on
           a cached run both the plan and the observation count only
           the residual reads a hit leaves to pay. *)
        Cost_model.observe_step t.cost_model ~id:scan.scan_id
          ~step:Formulas.Step_read
          {
            Formulas.zero_measures with
            Formulas.blocks = float_of_int misses;
          }
          ~seconds:(Device.measure device (t1 -. t0));
        Some (scan.relation, List.length unit_ids)
      end)
    t.scans

(* A sorted run or hash index over a leaf-fed side's stage delta is
   shared-cacheable: on the shared prefix the delta is a deterministic
   function of (relation, generation, unit kind, offset slice), so any
   job whose stage covers the same slice rebuilds the identical
   summary — serving the retained one instead is pure savings. The
   physical-identity check against [last_delta] pins the delta to the
   scan's most recent draw (a select or earlier binary in between
   changes the tuples, and a zero-draw stage leaves an empty delta). *)
let leaf_slice t node delta =
  match node.kind with
  | Leaf scan when delta == scan.last_delta && Array.length delta > 0 -> (
      match scan_cache t scan with
      | Some c ->
          let hi = Stage_set.drawn scan.units in
          let lo =
            hi - Stage_set.stage_size scan.units (Stage_set.stages scan.units)
          in
          Some (c, scan, lo, hi)
      | None -> None)
  | _ -> None

let node_label node =
  match node.kind with
  | Leaf scan -> "scan:" ^ scan.relation
  | Select_node _ -> "select"
  | Project_node _ -> "project"
  | Binary_node { op = `Join; _ } -> "join"
  | Binary_node { op = `Intersect; _ } -> "intersect"

(* Evaluate a node's stage delta; children first, own work timed and
   fed back to the cost model and selectivity records. [eval_node]
   wraps the real evaluator in an operator-category span (children
   recurse through the wrapper, so the span tree mirrors the operator
   tree); tuples-in is the number of sample-space points this stage
   added under the node, tuples-out the delta it produced. *)
let rec eval_node t device node : Tuple.t array =
  let tracer = Device.tracer device in
  if not (Tracer.enabled tracer) then eval_node_body t device node
  else begin
    let label = node_label node in
    let points_before = node.cum_points in
    Tracer.span_begin tracer ~cat:"operator" label
      ~args:[ ("node", Event.Int node.id) ];
    match eval_node_body t device node with
    | out ->
        Tracer.span_end tracer ~cat:"operator" label
          ~args:
            [
              ("node", Event.Int node.id);
              ("tuples_in", Event.Float (node.cum_points -. points_before));
              ("tuples_out", Event.Int (Array.length out));
              ("sel", Event.Float (Selectivity.estimate node.sel));
            ];
        out
    | exception e ->
        Tracer.span_end tracer ~cat:"operator" label
          ~args:[ ("node", Event.Int node.id); ("aborted", Event.Bool true) ];
        raise e
  end

and eval_node_body t device node : Tuple.t array =
  let clock = Device.clock device in
  let bf = bf_of_bytes ~block_bytes:t.block_bytes node.out_bytes in
  let charge_out n =
    Device.output_tuples device ~n;
    Device.write_pages device ~n:(int_of_float (pages ~bf (float_of_int n)))
  in
  match node.kind with
  | Leaf scan ->
      let n = float_of_int (Array.length scan.last_delta) in
      node.cum_out <- node.cum_out +. n;
      node.cum_points <- node.cum_points +. n;
      scan.last_delta
  | Select_node { comparisons; test; child } ->
      let delta_in = eval_node t device child in
      let t0 = Clock.now clock in
      Device.check_tuples device ~n:(Array.length delta_in) ~comparisons;
      let out =
        match t.pool with
        | Some pool when Array.length delta_in >= !par_threshold ->
            par_filter pool test delta_in
        | _ -> Array.of_seq (Seq.filter test (Array.to_seq delta_in))
      in
      let t1 = Clock.now clock in
      charge_out (Array.length out);
      let t2 = Clock.now clock in
      let n_in = float_of_int (Array.length delta_in) in
      let n_out = float_of_int (Array.length out) in
      Selectivity.observe node.sel ~points:n_in ~tuples:n_out;
      node.cum_points <- node.cum_points +. n_in;
      node.cum_out <- node.cum_out +. n_out;
      let m =
        {
          Formulas.zero_measures with
          Formulas.n_input = n_in;
          comparisons = float_of_int comparisons;
          out_tuples = n_out;
          out_pages = pages ~bf n_out;
        }
      in
      Cost_model.observe_step t.cost_model ~id:node.id ~step:Formulas.Step_check
        m ~seconds:(Device.measure device (t1 -. t0));
      Cost_model.observe_step t.cost_model ~id:node.id ~step:Formulas.Step_output
        m ~seconds:(Device.measure device (t2 -. t1));
      out
  | Project_node { positions; child; groups; _ } ->
      let delta_in = eval_node t device child in
      let t0 = Clock.now clock in
      let n_in = Array.length delta_in in
      (* Figure 4.7 steps 1-3 on the new tuples. *)
      let projected = Array.map (fun tp -> Tuple.project tp positions) delta_in in
      Device.write_temp_tuples device ~n:n_in;
      Device.write_pages device ~n:(int_of_float (pages ~bf (float_of_int n_in)));
      let t1 = Clock.now clock in
      Device.sort device ~n:n_in;
      let t2 = Clock.now clock in
      Device.merge_tuples device ~n:n_in;
      let fresh = ref [] in
      Array.iter
        (fun tp ->
          match Hashtbl.find_opt groups tp with
          | Some count -> incr count
          | None ->
              Hashtbl.replace groups tp (ref 1);
              fresh := tp :: !fresh)
        projected;
      let t3 = Clock.now clock in
      let out = Array.of_list (List.rev !fresh) in
      charge_out (Array.length out);
      let t4 = Clock.now clock in
      node.cum_points <- node.cum_points +. float_of_int n_in;
      node.cum_out <- float_of_int (Hashtbl.length groups);
      Selectivity.set_cumulative node.sel ~points:node.cum_points
        ~tuples:node.cum_out;
      let m =
        {
          Formulas.zero_measures with
          Formulas.n_input = float_of_int n_in;
          temp_pages = pages ~bf (float_of_int n_in);
          nlogn = xlog (float_of_int n_in);
          out_tuples = float_of_int (Array.length out);
          out_pages = pages ~bf (float_of_int (Array.length out));
        }
      in
      let ob step seconds =
        Cost_model.observe_step t.cost_model ~id:node.id ~step m
          ~seconds:(Device.measure device seconds)
      in
      ob Formulas.Step_write_temp (t1 -. t0);
      ob Formulas.Step_sort (t2 -. t1);
      ob Formulas.Step_check (t3 -. t2);
      ob Formulas.Step_output (t4 -. t3);
      out
  | Binary_node b ->
      let delta_l = eval_node t device b.left in
      let delta_r = eval_node t device b.right in
      let cum_l_prev = sum_lengths b.deltas_l in
      let cum_r_prev = sum_lengths b.deltas_r in
      let nl = float_of_int (Array.length delta_l) in
      let nr = float_of_int (Array.length delta_r) in
      let full = is_full t in
      let points_new =
        if full then
          (nl *. float_of_int cum_r_prev)
          +. (float_of_int cum_l_prev *. nr)
          +. (nl *. nr)
        else nl *. nr
      in
      let out_guess =
        Float.max 0.0 (Selectivity.estimate node.sel *. points_new)
      in
      let path = choose_path t ~node b ~nl ~nr ~out_guess in
      let out =
        match path with
        | `Sort ->
            (* Figure 4.4/4.6: temp-write and sort this stage's deltas
               (plus any deltas a hash stage left unsorted — catch-up),
               then one merge pass per Figure 4.5 pairing. Measures are
               taken before the retained state mutates so they match
               what [sort_measures] promised the planner. *)
            let m0 = sort_measures t ~node b ~nl ~nr ~out_new:0.0 in
            let pairings = binary_pairings t b in
            let bf_l = bf_of_bytes ~block_bytes:t.block_bytes b.left.out_bytes in
            let bf_r = bf_of_bytes ~block_bytes:t.block_bytes b.right.out_bytes in
            let missing_l, missing_r = unsorted_deltas b in
            let t0 = Clock.now clock in
            let write_side side_bf arr =
              Device.write_temp_tuples device ~n:(Array.length arr);
              Device.write_pages device
                ~n:
                  (int_of_float
                     (pages ~bf:side_bf (float_of_int (Array.length arr))))
            in
            List.iter (write_side bf_l) missing_l;
            List.iter (write_side bf_r) missing_r;
            write_side bf_l delta_l;
            write_side bf_r delta_r;
            let t1 = Clock.now clock in
            let sort_with cmp arr =
              Device.sort device ~n:(Array.length arr);
              let s = Array.copy arr in
              Array.sort cmp s;
              s
            in
            (* This stage's delta sorts go through the shared cache
               when the side is a leaf on the shared prefix: a hit
               charges one probe instead of the sort. Catch-up sorts of
               older deltas keep the plain path — their slices are
               job-specific. The runs are never mutated after this
               point, so sharing one array across jobs is safe. *)
            let sorted_delta side key cmp arr =
              match leaf_slice t side arr with
              | None -> sort_with cmp arr
              | Some (c, scan, lo, hi) -> (
                  let kind = cache_kind scan in
                  match
                    Cache.find_sorted_run c ~file:scan.file ~kind ~lo ~hi ~key
                  with
                  | Some run ->
                      Device.cache_probe device;
                      run
                  | None ->
                      let s = sort_with cmp arr in
                      let p = Device.params device in
                      let fn = float_of_int (Array.length arr) in
                      Cache.store_sorted_run c ~file:scan.file ~kind ~lo ~hi
                        ~key
                        ~cost:
                          ((p.Cost_params.sort_per_nlogn *. xlog fn)
                          +. (p.Cost_params.sort_per_tuple *. fn))
                        s;
                      s)
            in
            let sorted_l, sorted_r =
              let sort_tuples =
                List.fold_left
                  (fun acc a -> acc + Array.length a)
                  (Array.length delta_l + Array.length delta_r)
                  (missing_l @ missing_r)
              in
              match t.pool with
              | Some pool when t.cache = None && sort_tuples >= !par_threshold ->
                  (* The sorts are independent whole-array jobs, so they
                     fan out as-is (never splitting one sort — Array.sort
                     is not stable, but the same array under the same
                     comparator is deterministic). Charges are replayed
                     up front in the sequential call order; gated on no
                     cache because [sorted_delta] interleaves cache
                     probes with the charges. *)
                  let jobs =
                    Array.concat
                      [
                        Array.of_list
                          (List.map (fun a -> (b.cmp_l, a)) missing_l);
                        Array.of_list
                          (List.map (fun a -> (b.cmp_r, a)) missing_r);
                        [| (b.cmp_l, delta_l); (b.cmp_r, delta_r) |];
                      ]
                  in
                  Array.iter
                    (fun (_, a) -> Device.sort device ~n:(Array.length a))
                    jobs;
                  let sorted =
                    Taqp_parallel.Pool.run pool
                      (Array.map
                         (fun (cmp, a) () ->
                           let s = Array.copy a in
                           Array.sort cmp s;
                           s)
                         jobs)
                  in
                  let n_ml = List.length missing_l in
                  let n_mr = List.length missing_r in
                  b.files_l <-
                    b.files_l @ Array.to_list (Array.sub sorted 0 n_ml);
                  b.files_r <-
                    b.files_r @ Array.to_list (Array.sub sorted n_ml n_mr);
                  (sorted.(n_ml + n_mr), sorted.(n_ml + n_mr + 1))
              | _ ->
                  b.files_l <- b.files_l @ List.map (sort_with b.cmp_l) missing_l;
                  b.files_r <- b.files_r @ List.map (sort_with b.cmp_r) missing_r;
                  ( sorted_delta b.left b.key_l b.cmp_l delta_l,
                    sorted_delta b.right b.key_r b.cmp_r delta_r )
            in
            let t2 = Clock.now clock in
            b.files_l <- b.files_l @ [ sorted_l ];
            b.files_r <- b.files_r @ [ sorted_r ];
            let file_at files i = List.nth files (i - 1) in
            let out = ref [] in
            let merge_reads = ref 0 in
            let pair_files =
              Array.of_list
                (List.map
                   (fun (i, j) -> (file_at b.files_l i, file_at b.files_r j))
                   pairings)
            in
            let pair_tuples =
              Array.fold_left
                (fun acc (fl, fr) -> acc + Array.length fl + Array.length fr)
                0 pair_files
            in
            (match t.pool with
            | Some pool
              when Array.length pair_files > 1 && pair_tuples >= !par_threshold
              ->
                (* Each pairing merges on a worker with no device; the
                   master then replays the identical charge sequence —
                   merge_setup, merge_tuples |fl|+|fr|, one residual
                   check per candidate — in pairing order. The counted
                   variants report exactly how many candidate checks
                   the sequential merge would have charged. *)
                let computed =
                  Taqp_parallel.Pool.run pool
                    (Array.map
                       (fun (fl, fr) () ->
                         match b.op with
                         | `Join ->
                             Ops.merge_join_counted ~key_l:b.key_l
                               ~key_r:b.key_r ~residual:b.residual fl fr
                         | `Intersect ->
                             (Ops.merge_sorted_intersect fl fr, 0))
                       pair_files)
                in
                Array.iteri
                  (fun idx (produced, candidates) ->
                    let fl, fr = pair_files.(idx) in
                    Device.merge_setup device;
                    merge_reads :=
                      !merge_reads + Array.length fl + Array.length fr;
                    Device.merge_tuples device
                      ~n:(Array.length fl + Array.length fr);
                    for _ = 1 to candidates do
                      Device.check_tuples device ~n:1
                        ~comparisons:b.residual_comparisons
                    done;
                    out := List.rev_append produced !out)
                  computed
            | _ ->
                Array.iter
                  (fun (fl, fr) ->
                    Device.merge_setup device;
                    merge_reads :=
                      !merge_reads + Array.length fl + Array.length fr;
                    let produced =
                      match b.op with
                      | `Join ->
                          Ops.merge_sorted_join ~device ~key_l:b.key_l
                            ~key_r:b.key_r ~residual:b.residual
                            ~residual_comparisons:b.residual_comparisons fl fr
                      | `Intersect -> Ops.merge_sorted_intersect ~device fl fr
                    in
                    out := List.rev_append produced !out)
                  pair_files);
            let t3 = Clock.now clock in
            let out = Array.of_list (List.rev !out) in
            charge_out (Array.length out);
            let t4 = Clock.now clock in
            let n_out = float_of_int (Array.length out) in
            let m =
              {
                m0 with
                Formulas.merge_reads = float_of_int !merge_reads;
                out_tuples = n_out;
                out_pages = pages ~bf n_out;
              }
            in
            let ob step seconds =
              Cost_model.observe_step t.cost_model ~id:node.id ~step m
                ~seconds:(Device.measure device seconds)
            in
            ob Formulas.Step_write_temp (t1 -. t0);
            ob Formulas.Step_sort (t2 -. t1);
            ob Formulas.Step_merge (t3 -. t2);
            ob Formulas.Step_output (t4 -. t3);
            out
        | `Hash ->
            (* Incremental hash path: no temp files, no sorts, no
               re-reading of old sample units. Under full fulfillment
               the symmetric-hash order — probe the left delta against
               the old right index, insert it, probe the right delta
               against the now-current left index, insert it — covers
               exactly the full-fulfillment new point space
               nl*cum_r + cum_l*nr + nl*nr. Build and probe time are
               accumulated separately (they interleave) and observed
               into the hash path's own cost-model node. *)
            let m0 = hash_measures t ~node b ~nl ~nr ~out_new:0.0 in
            let build_s = ref 0.0 and probe_s = ref 0.0 in
            let timed acc f =
              let s = Clock.now clock in
              let r = f () in
              acc := !acc +. (Clock.now clock -. s);
              r
            in
            let probe_with index ~probe_key ~indexed_side probes =
              match t.pool with
              | Some pool when Array.length probes >= !par_threshold ->
                  (* The index is read-only during a probe, so disjoint
                     probe chunks fan out; chunk outputs concatenate in
                     chunk order = probe order. The master replays the
                     one hash_probe entry charge plus the per-candidate
                     checks the sequential probe would have made. *)
                  let chunks =
                    Taqp_parallel.Pool.run pool
                      (Array.map
                         (fun (r : Taqp_parallel.Shard.range) () ->
                           let sub =
                             Array.sub probes r.lo (r.hi - r.lo)
                           in
                           match (b.op, indexed_side) with
                           | `Join, _ ->
                               Ops.probe_join_counted ~index ~probe_key
                                 ~indexed_side ~residual:b.residual sub
                           | `Intersect, `Left ->
                               ( Ops.hash_probe_intersect ~index
                                   ~emit_side:`Indexed sub,
                                 0 )
                           | `Intersect, `Right ->
                               ( Ops.hash_probe_intersect ~index
                                   ~emit_side:`Probe sub,
                                 0 ))
                         (par_chunks pool (Array.length probes)))
                  in
                  Device.hash_probe device ~n:(Array.length probes);
                  Array.iter
                    (fun (_, candidates) ->
                      for _ = 1 to candidates do
                        Device.check_tuples device ~n:1
                          ~comparisons:b.residual_comparisons
                      done)
                    chunks;
                  List.concat_map fst (Array.to_list chunks)
              | _ -> (
                  match (b.op, indexed_side) with
                  | `Join, _ ->
                      Ops.hash_probe_join ~device ~index ~probe_key
                        ~indexed_side ~residual:b.residual
                        ~residual_comparisons:b.residual_comparisons probes
                  | `Intersect, `Left ->
                      Ops.hash_probe_intersect ~device ~index
                        ~emit_side:`Indexed probes
                  | `Intersect, `Right ->
                      Ops.hash_probe_intersect ~device ~index
                        ~emit_side:`Probe probes)
            in
            let produced =
              if full then begin
                let miss_l, miss_r = unhashed_deltas b in
                timed build_s (fun () ->
                    List.iter (Ops.Hash_index.add ~device b.hash_l) miss_l;
                    List.iter (Ops.Hash_index.add ~device b.hash_r) miss_r);
                b.hashed_l <- List.length b.deltas_l;
                b.hashed_r <- List.length b.deltas_r;
                let out_l =
                  timed probe_s (fun () ->
                      probe_with b.hash_r ~probe_key:b.key_l
                        ~indexed_side:`Right delta_l)
                in
                timed build_s (fun () ->
                    Ops.Hash_index.add ~device b.hash_l delta_l);
                b.hashed_l <- b.hashed_l + 1;
                let out_r =
                  timed probe_s (fun () ->
                      probe_with b.hash_l ~probe_key:b.key_r ~indexed_side:`Left
                        delta_r)
                in
                timed build_s (fun () ->
                    Ops.Hash_index.add ~device b.hash_r delta_r);
                b.hashed_r <- b.hashed_r + 1;
                List.rev_append (List.rev out_l) out_r
              end
              else begin
                (* Partial fulfillment evaluates only delta x delta: a
                   transient index, nothing retained by the node — but
                   shared-cacheable when the left side is a leaf on the
                   shared prefix, since any job staging the same slice
                   builds the identical index. Cached indexes are only
                   ever probed, never added to. *)
                let index =
                  match leaf_slice t b.left delta_l with
                  | None ->
                      let index = Ops.Hash_index.create ~key:b.key_l in
                      timed build_s (fun () ->
                          Ops.Hash_index.add ~device index delta_l);
                      index
                  | Some (c, scan, lo, hi) -> (
                      let kind = cache_kind scan in
                      match
                        Cache.find_hash_index c ~file:scan.file ~kind ~lo ~hi
                          ~key:b.key_l
                      with
                      | Some index ->
                          timed build_s (fun () -> Device.cache_probe device);
                          index
                      | None ->
                          let index = Ops.Hash_index.create ~key:b.key_l in
                          timed build_s (fun () ->
                              Ops.Hash_index.add ~device index delta_l);
                          let p = Device.params device in
                          Cache.store_hash_index c ~file:scan.file ~kind ~lo
                            ~hi ~key:b.key_l
                            ~cost:
                              (float_of_int (Array.length delta_l)
                              *. p.Cost_params.hash_build_per_tuple)
                            index;
                          index)
                in
                timed probe_s (fun () ->
                    probe_with index ~probe_key:b.key_r ~indexed_side:`Left
                      delta_r)
              end
            in
            let out = Array.of_list produced in
            let t_o0 = Clock.now clock in
            charge_out (Array.length out);
            let t_o1 = Clock.now clock in
            let n_out = float_of_int (Array.length out) in
            let m =
              { m0 with Formulas.out_tuples = n_out; out_pages = pages ~bf n_out }
            in
            let ob step seconds =
              Cost_model.observe_step t.cost_model ~id:b.hash_id ~step m
                ~seconds:(Device.measure device seconds)
            in
            ob Formulas.Step_hash_build !build_s;
            ob Formulas.Step_hash_probe !probe_s;
            ob Formulas.Step_output (t_o1 -. t_o0);
            out
      in
      b.deltas_l <- b.deltas_l @ [ delta_l ];
      b.deltas_r <- b.deltas_r @ [ delta_r ];
      let n_out = float_of_int (Array.length out) in
      Selectivity.observe node.sel ~points:points_new ~tuples:n_out;
      node.cum_points <- node.cum_points +. points_new;
      node.cum_out <- node.cum_out +. n_out;
      out

(* ------------------------------------------------------------------ *)
(* Estimation                                                          *)

(* A single-relation Select chain: the shape for which the exact
   cluster variance is implemented. Returns the scan, the predicate
   tests bottom-up, and the select nodes (for design-effect feedback). *)
let rec select_chain node =
  match node.kind with
  | Leaf scan -> Some (scan, [], [])
  | Select_node { test; child; _ } ->
      Option.map
        (fun (scan, tests, nodes) -> (scan, tests @ [ test ], nodes @ [ node ]))
        (select_chain child)
  | Project_node _ | Binary_node _ -> None

let count_through_chain tests tuples =
  Array.fold_left
    (fun acc tuple -> if List.for_all (fun test -> test tuple) tests then acc + 1 else acc)
    0 tuples

(* After a stage, refresh the term's per-block output counts and feed
   the measured design effect into the chain's selectivity records.
   Charges the sorting/bookkeeping the paper found too expensive. *)
let update_block_counts device term =
  match select_chain term.root with
  | None -> ()
  | Some (scan, tests, nodes) ->
      let new_counts =
        List.map
          (fun unit_tuples ->
            float_of_int (count_through_chain tests unit_tuples))
          scan.last_unit_deltas
      in
      (* Figure 3.3 discussion: determining space-block values requires
         sorting the outputs by disk number — charged here. *)
      let outputs = int_of_float (List.fold_left ( +. ) 0.0 new_counts) in
      Device.sort device ~n:outputs;
      Device.estimator_update device ~n:(List.length new_counts);
      term.block_counts <- List.rev_append new_counts term.block_counts;
      let counts = Array.of_list term.block_counts in
      let b = Array.length counts in
      if b >= 2 then begin
        let bf = float_of_int (Heap_file.blocking_factor scan.file) in
        let sum = Array.fold_left ( +. ) 0.0 counts in
        let mean = sum /. float_of_int b in
        let ss =
          Array.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.0)) 0.0 counts
        in
        let s2 = ss /. float_of_int (b - 1) in
        let p = mean /. bf in
        if p > 0.0 && p < 1.0 then begin
          (* Binomial(bf, p) blocks would have s2 = bf p (1-p); the
             ratio is the intra-block design effect. *)
          let deff =
            Float.max 0.25 (Float.min (bf *. bf) (s2 /. (bf *. p *. (1.0 -. p))))
          in
          List.iter (fun node -> Selectivity.set_design_effect node.sel deff) nodes
        end
      end

let term_cluster_variance term =
  match select_chain term.root with
  | None -> None
  | Some (scan, _, _) ->
      let counts = Array.of_list term.block_counts in
      if Array.length counts < 2 then None
      else
        Some
          (Count_estimator.cluster_variance_estimate ~counts
             ~total_blocks:(float_of_int (Stage_set.n_units scan.units))
             ~points_per_block:
               (float_of_int (Heap_file.blocking_factor scan.file)))

let term_dims term =
  List.map
    (fun scan ->
      let sizes = List.rev scan.stage_tuples in
      let acc = ref 0 in
      Array.of_list (List.map (fun s -> acc := !acc + s; !acc) sizes))
    term.leaf_scans

let term_evaluated_points t term =
  let dims = term_dims term in
  match (t.config.plan : Plan.t).fulfillment with
  | Plan.Full -> Fulfillment.full_cumulative dims
  | Plan.Partial -> Fulfillment.partial_cumulative dims

let term_total_points term = term.root.subtree_points

let project_estimate t term ~evaluated ~total =
  match term.root.kind with
  | Project_node { groups; child; _ } ->
      let occupancies = Hashtbl.fold (fun _ c acc -> !c :: acc) groups [] in
      let qualifying_sample = child.cum_out in
      if qualifying_sample <= 0.0 then
        Count_estimator.of_sample ~hits:0.0 ~points:evaluated ~total_points:total
      else begin
        (* Estimated qualifying population, then Goodman on the groups. *)
        let population =
          Float.max qualifying_sample (total *. (qualifying_sample /. evaluated))
        in
        let sample = int_of_float qualifying_sample in
        let profile = Goodman.occupancy_profile occupancies in
        let distinct =
          match t.config.projection_estimator with
          | Config.Goodman_unbiased -> Goodman.unbiased ~population ~sample ~profile
          | Config.Goodman_first_order ->
              Goodman.first_order ~population ~sample ~profile
          | Config.Scale_up ->
              Goodman.scale_up ~population ~sample
                ~distinct:(Goodman.distinct_observed ~profile)
          | Config.Chao -> Goodman.chao ~profile
        in
        let p_hat = Float.min 1.0 (distinct /. total) in
        let var_p =
          Count_estimator.srs_variance_estimate ~p_hat ~m:evaluated ~n:total
        in
        {
          Count_estimator.estimate = distinct;
          variance = total *. total *. var_p;
          hits = term.root.cum_out;
          points = evaluated;
          total_points = total;
          is_exact = evaluated >= total;
        }
      end
  | Leaf _ | Select_node _ | Binary_node _ ->
      invalid_arg "Staged.project_estimate: root is not a projection"

let term_estimate t term =
  let evaluated = term_evaluated_points t term in
  let total = term_total_points term in
  if evaluated <= 0.0 then
    Count_estimator.of_sample ~hits:0.0 ~points:1.0 ~total_points:total
  else if evaluated >= total then
    Count_estimator.exact ~count:term.root.cum_out ~total_points:total
  else begin
    match term.root.kind with
    | Project_node _ -> project_estimate t term ~evaluated ~total
    | Leaf _ | Select_node _ | Binary_node _ -> (
        let base =
          Count_estimator.of_sample
            ~hits:(Float.min evaluated term.root.cum_out)
            ~points:evaluated ~total_points:total
        in
        match
          (t.config.variance_estimator, term_cluster_variance term)
        with
        | Config.Cluster_exact, Some variance ->
            { base with Count_estimator.variance }
        | (Config.Cluster_exact | Config.Srs_approximation), _ -> base)
  end

let term_sum_estimate t term =
  let evaluated = term_evaluated_points t term in
  let total = term_total_points term in
  if evaluated <= 0.0 then
    Aggregate.sum_estimator Aggregate.zero_moments ~points:1.0
      ~total_points:total
  else Aggregate.sum_estimator term.moments ~points:evaluated ~total_points:total

let combined_estimate t =
  let counts =
    List.map (fun term -> (term.sign, term_estimate t term)) t.terms
  in
  match t.aggregate with
  | Aggregate.Count -> Count_estimator.combine counts
  | Aggregate.Sum _ ->
      Count_estimator.combine
        (List.map (fun term -> (term.sign, term_sum_estimate t term)) t.terms)
  | Aggregate.Avg _ ->
      let count = Count_estimator.combine counts in
      let sum =
        Count_estimator.combine
          (List.map (fun term -> (term.sign, term_sum_estimate t term)) t.terms)
      in
      (* Within-term covariances add (sign^2 = 1); cross-term
         covariances are the usual independence approximation. *)
      let covariance =
        List.fold_left
          (fun acc term ->
            let evaluated = term_evaluated_points t term in
            if evaluated <= 0.0 then acc
            else
              acc
              +. Aggregate.covariance_estimate term.moments ~points:evaluated
                   ~total_points:(term_total_points term))
          0.0 t.terms
      in
      Aggregate.avg_of ~sum ~count ~covariance

let rec snapshot_node node acc =
  let snap =
    {
      Report.op_id = node.id;
      op_label = node_label node;
      selectivity = Selectivity.estimate node.sel;
      points_seen = node.cum_points;
      tuples_seen = node.cum_out;
    }
  in
  match node.kind with
  | Leaf _ -> acc
  | Select_node { child; _ } | Project_node { child; _ } ->
      snapshot_node child (snap :: acc)
  | Binary_node { left; right; _ } ->
      snapshot_node left (snapshot_node right (snap :: acc))

let current_estimate t = t.last_estimate

let group_estimates t =
  match t.terms with
  | [ { sign = 1; root = { kind = Project_node { groups; _ }; _ }; _ } as term ]
    ->
      let evaluated = term_evaluated_points t term in
      if evaluated <= 0.0 then None
      else begin
        let scale = term_total_points term /. evaluated in
        let all =
          Hashtbl.fold
            (fun tuple count acc ->
              (tuple, float_of_int !count *. scale) :: acc)
            groups []
        in
        Some
          (List.sort (fun (_, a) (_, b) -> Float.compare b a) all)
      end
  | _ -> None

let run_stage t ~device ~f =
  if f <= 0.0 || f > 1.0 then invalid_arg "Staged.run_stage: f outside (0,1]";
  if exhausted t then None
  else begin
    let clock = Device.clock device in
    let t_scan = Clock.now clock in
    let new_units = draw_and_scan t device ~f in
    let scans_elapsed = Clock.now clock -. t_scan in
    if new_units = [] then None
    else begin
      let t0 = Clock.now clock in
      let root_deltas =
        List.map (fun term -> eval_node t device term.root) t.terms
      in
      List.iter2
        (fun term delta ->
          match term.agg_pos with
          | None -> ()
          | Some pos ->
              term.moments <-
                Array.fold_left
                  (fun acc tuple ->
                    match Taqp_data.Value.to_float (Tuple.get tuple pos) with
                    | Some v -> Aggregate.add_tuple acc v
                    | None -> Aggregate.add_tuple acc 0.0)
                  term.moments delta)
        t.terms root_deltas;
      let nodes_elapsed = Clock.now clock -. t0 in
      List.iter
        (fun delta -> Device.estimator_update device ~n:(Array.length delta))
        root_deltas;
      if t.config.variance_estimator = Config.Cluster_exact then
        List.iter (fun term -> update_block_counts device term) t.terms;
      t.stage <- t.stage + 1;
      let estimate = combined_estimate t in
      t.last_estimate <- Some estimate;
      let op_snapshots =
        List.concat_map (fun term -> List.rev (snapshot_node term.root [])) t.terms
      in
      Some { new_units; estimate; op_snapshots; nodes_elapsed; scans_elapsed }
    end
  end

(* ------------------------------------------------------------------ *)
(* Checkpointing (Taqp_recover): capture every run-time-evolved piece
   of the compiled query — sample-set histories, selectivity records,
   retained binary-operator state, projection groups, aggregate
   moments — as plain data, and restore it into a {e freshly compiled}
   instance of the same query. Derived structures that are pure
   functions of the retained deltas (sorted files, hash indexes) are
   rebuilt rather than serialized: re-sorting the same arrays with the
   same comparators and re-inserting the same deltas in the same order
   reproduces them bit-for-bit, at a fraction of the journal bytes. *)

type scan_snapshot = {
  sn_relation : string;
  sn_stage_tuples : int list;  (** newest first *)
  sn_drawn_tuples : int;
  sn_units : Stage_set.dump;
}

type node_state = {
  ns_id : int;
  ns_cum_out : float;
  ns_cum_points : float;
  ns_sel : Selectivity.dump;
  ns_kind : node_kind_state;
}

and node_kind_state =
  | Ns_leaf
  | Ns_select of node_state
  | Ns_project of {
      np_groups : (Tuple.t * int) list;
          (** in reverse table-fold order, so re-inserting in list
              order reproduces the original fold order exactly (bucket
              chains are most-recently-inserted-first) *)
      np_child : node_state;
    }
  | Ns_binary of {
      nb_left : node_state;
      nb_right : node_state;
      nb_deltas_l : Tuple.t array list;  (** oldest first, raw *)
      nb_deltas_r : Tuple.t array list;
      nb_files_l : int;  (** how many deltas had been sorted into files *)
      nb_files_r : int;
      nb_hashed_l : int;  (** how many deltas were in the hash index *)
      nb_hashed_r : int;
    }

type term_snapshot = {
  tn_root : node_state;
  tn_moments : Aggregate.moments;
  tn_block_counts : float list;  (** newest first *)
}

type snapshot = {
  sn_stage : int;
  sn_last_estimate : Count_estimator.t option;
  sn_scans : scan_snapshot list;  (** in [t.scans] order *)
  sn_terms : term_snapshot list;
}

let rec snapshot_state node =
  let ns_kind =
    match node.kind with
    | Leaf _ -> Ns_leaf
    | Select_node { child; _ } -> Ns_select (snapshot_state child)
    | Project_node { child; groups; _ } ->
        Ns_project
          {
            np_groups = Hashtbl.fold (fun tp c acc -> (tp, !c) :: acc) groups [];
            np_child = snapshot_state child;
          }
    | Binary_node b ->
        Ns_binary
          {
            nb_left = snapshot_state b.left;
            nb_right = snapshot_state b.right;
            nb_deltas_l = b.deltas_l;
            nb_deltas_r = b.deltas_r;
            nb_files_l = List.length b.files_l;
            nb_files_r = List.length b.files_r;
            nb_hashed_l = b.hashed_l;
            nb_hashed_r = b.hashed_r;
          }
  in
  {
    ns_id = node.id;
    ns_cum_out = node.cum_out;
    ns_cum_points = node.cum_points;
    ns_sel = Selectivity.dump node.sel;
    ns_kind;
  }

let snapshot t =
  {
    sn_stage = t.stage;
    sn_last_estimate = t.last_estimate;
    sn_scans =
      List.map
        (fun scan ->
          {
            sn_relation = scan.relation;
            sn_stage_tuples = scan.stage_tuples;
            sn_drawn_tuples = scan.drawn_tuples;
            sn_units = Stage_set.dump scan.units;
          })
        t.scans;
    sn_terms =
      List.map
        (fun term ->
          {
            tn_root = snapshot_state term.root;
            tn_moments = term.moments;
            tn_block_counts = term.block_counts;
          })
        t.terms;
  }

let shape_error () =
  invalid_arg "Staged.restore: snapshot does not match the compiled query"

let take n l = List.filteri (fun i _ -> i < n) l

let rec restore_state node ns =
  if node.id <> ns.ns_id then shape_error ();
  node.cum_out <- ns.ns_cum_out;
  node.cum_points <- ns.ns_cum_points;
  Selectivity.restore node.sel ns.ns_sel;
  match (node.kind, ns.ns_kind) with
  | Leaf _, Ns_leaf -> ()
  | Select_node { child; _ }, Ns_select cs -> restore_state child cs
  | Project_node { child; groups; _ }, Ns_project { np_groups; np_child } ->
      Hashtbl.reset groups;
      List.iter (fun (tp, c) -> Hashtbl.replace groups tp (ref c)) np_groups;
      restore_state child np_child
  | Binary_node b, Ns_binary bs ->
      restore_state b.left bs.nb_left;
      restore_state b.right bs.nb_right;
      b.deltas_l <- bs.nb_deltas_l;
      b.deltas_r <- bs.nb_deltas_r;
      (* Sorted files and hash indexes are deterministic functions of
         the delta prefix each path had processed: rebuild them exactly
         as the sort/hash stages originally did (same arrays, same
         comparators, same insertion order — the structures come back
         bit-identical, probe emission order included). No device is
         charged: recovery pays journal-read time, not a replay of
         work that already happened. *)
      let sort_with cmp arr =
        let s = Array.copy arr in
        Array.sort cmp s;
        s
      in
      b.files_l <- List.map (sort_with b.cmp_l) (take bs.nb_files_l bs.nb_deltas_l);
      b.files_r <- List.map (sort_with b.cmp_r) (take bs.nb_files_r bs.nb_deltas_r);
      List.iter
        (fun d -> Ops.Hash_index.add b.hash_l d)
        (take bs.nb_hashed_l bs.nb_deltas_l);
      List.iter
        (fun d -> Ops.Hash_index.add b.hash_r d)
        (take bs.nb_hashed_r bs.nb_deltas_r);
      b.hashed_l <- bs.nb_hashed_l;
      b.hashed_r <- bs.nb_hashed_r
  | (Leaf _ | Select_node _ | Project_node _ | Binary_node _), _ ->
      shape_error ()

let restore t snap =
  if t.stage <> 0 then
    invalid_arg "Staged.restore: target must be freshly compiled";
  if
    List.length snap.sn_scans <> List.length t.scans
    || List.length snap.sn_terms <> List.length t.terms
  then shape_error ();
  List.iter2
    (fun scan ss ->
      if not (String.equal scan.relation ss.sn_relation) then shape_error ();
      Stage_set.restore scan.units ss.sn_units;
      scan.stage_tuples <- ss.sn_stage_tuples;
      scan.drawn_tuples <- ss.sn_drawn_tuples;
      (* within-stage scratch: the next draw_and_scan overwrites both,
         exactly as it would have at this boundary in the dead run *)
      scan.last_delta <- [||];
      scan.last_unit_deltas <- [];
      (* A resumed scan rejoins the shared prefix only if the dead
         run's drawn units are exactly the prefix's first [drawn]
         offsets under the current generation — then continuing at
         offset [drawn] is bit-identical to the uninterrupted cached
         run. Anything else (the dead run drew privately, or the prefix
         was invalidated since) falls back to the private stream the
         snapshot restored — still a valid without-replacement
         continuation. *)
      match t.cache with
      | None -> ()
      | Some c ->
          let drawn = Stage_set.drawn scan.units in
          let rejoin =
            drawn = 0
            || Cache.prefix_units c ~file:scan.file ~kind:(cache_kind scan)
                 ~lo:0 ~k:drawn
               = Stage_set.all_units scan.units
          in
          scan.cache_src <-
            (if rejoin then Src_shared (Cache.generation c scan.file)
             else Src_fallback))
    t.scans snap.sn_scans;
  List.iter2
    (fun term ts ->
      restore_state term.root ts.tn_root;
      term.moments <- ts.tn_moments;
      term.block_counts <- ts.tn_block_counts)
    t.terms snap.sn_terms;
  t.stage <- snap.sn_stage;
  t.last_estimate <- snap.sn_last_estimate
