type initial_selectivities = {
  select : float option;
  join : float option;
  intersect : float option;
  project : float option;
}

type projection_estimator = Goodman_unbiased | Goodman_first_order | Scale_up | Chao

type variance_estimator = Srs_approximation | Cluster_exact

type physical_operator = Sort_merge | Hash | Adaptive

type t = {
  strategy : Taqp_timecontrol.Strategy.t;
  stopping : Taqp_timecontrol.Stopping.t;
  plan : Taqp_sampling.Plan.t;
  confidence_level : float;
  bisect_eps_frac : float;
  adaptive_cost : bool;
  initial_cost_scale : float;
  initial_selectivities : initial_selectivities;
  selectivity_oracle : (Taqp_relational.Ra.t -> float) option;
  projection_estimator : projection_estimator;
  variance_estimator : variance_estimator;
  physical : physical_operator;
  max_bisect_iterations : int;
  trace : bool;
  domains : int;
}

let no_initial_overrides =
  { select = None; join = None; intersect = None; project = None }

(* TAQP_DOMAINS mirrors TAQP_PHYSICAL: an env override so a whole test
   run can be re-executed under a different domain count without
   touching call sites. Anything unparsable or < 1 falls back to 1. *)
let domains_from_env () =
  match Sys.getenv_opt "TAQP_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | _ -> 1)

let default =
  {
    strategy = Taqp_timecontrol.Strategy.default;
    stopping = Taqp_timecontrol.Stopping.hard;
    plan = Taqp_sampling.Plan.default;
    confidence_level = 0.95;
    bisect_eps_frac = 0.02;
    adaptive_cost = true;
    initial_cost_scale = 1.0;
    initial_selectivities = no_initial_overrides;
    selectivity_oracle = None;
    projection_estimator = Chao;
    variance_estimator = Srs_approximation;
    physical = Sort_merge;
    max_bisect_iterations = 40;
    trace = true;
    domains = domains_from_env ();
  }

let check_sel name = function
  | None -> ()
  | Some s ->
      if s <= 0.0 || s > 1.0 then
        invalid_arg ("Config: initial " ^ name ^ " selectivity outside (0,1]")

let validate t =
  if t.confidence_level <= 0.0 || t.confidence_level >= 1.0 then
    invalid_arg "Config: confidence_level outside (0,1)";
  if t.bisect_eps_frac <= 0.0 || t.bisect_eps_frac >= 1.0 then
    invalid_arg "Config: bisect_eps_frac outside (0,1)";
  if t.initial_cost_scale <= 0.0 then
    invalid_arg "Config: initial_cost_scale <= 0";
  if t.max_bisect_iterations < 1 then
    invalid_arg "Config: max_bisect_iterations < 1";
  if t.domains < 1 then invalid_arg "Config: domains < 1";
  check_sel "select" t.initial_selectivities.select;
  check_sel "join" t.initial_selectivities.join;
  check_sel "intersect" t.initial_selectivities.intersect;
  check_sel "project" t.initial_selectivities.project
