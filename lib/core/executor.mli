(** The time-constrained query evaluation algorithm of Figure 3.1.

    Given a COUNT(E) query and a time quota, repeatedly: revise the
    operator selectivities, determine the stage's sample fraction with
    the configured time-control strategy, draw and evaluate the new
    sample, and improve the estimate — until the stopping criterion
    fires. The clock (inside [device]) may be virtual (experiments) or
    wall (live use); under a hard deadline it is armed in abort mode so
    an overrunning stage is interrupted like the prototype's timer
    interrupt service routine.

    The evaluation is {e resumable}: {!start} compiles the query and
    returns a handle, each {!step} performs at most one stage (the
    paper's stages are the natural preemption points — estimator and
    confidence-interval state is incremental across them), and the
    final step returns the {!Report}. {!run} is exactly
    [start] + [step]-to-completion, so a stepped run is bit-identical
    to a one-shot run on the same device and seed. A scheduler
    ({!Taqp_sched.Scheduler}) interleaves steps of several handles on
    one shared clock: {!step} re-arms the handle's own abort deadline
    whenever another job's deadline (or none) is armed, and
    finalization always disarms it. *)

open Taqp_storage
open Taqp_relational

type handle
(** One live time-constrained evaluation. The handle's quota is
    measured against the {e absolute} clock instant
    [started_at + quota]: time the shared clock spends on other jobs
    while this one is preempted counts against its quota, which is what
    an absolute transaction deadline means. *)

val start :
  ?config:Config.t ->
  ?aggregate:Aggregate.t ->
  ?cache:Taqp_cache.Cache.t ->
  device:Device.t ->
  catalog:Catalog.t ->
  rng:Taqp_rng.Prng.t ->
  quota:float ->
  Ra.t ->
  handle
(** Compile the query, open the query span, and arm the clock at
    [now + quota] in the stopping criterion's deadline mode. No sample
    is drawn yet — the first {!step} runs the first stage. [cache]
    attaches the shared cross-query cache (see {!Staged.compile});
    omitted, the run is bit-identical to the cache-less engine.
    @raise Invalid_argument on a non-positive quota or invalid config;
    @raise Staged.Compile_error / @raise Ra.Type_error /
    @raise Taqp_estimators.Inclusion_exclusion.Unsupported from
    compilation. *)

val step : handle -> [ `Continue | `Done of Report.t ]
(** Advance the evaluation by at most one stage: check the stopping
    criterion, size the next stage (paying the planning cost), and run
    it. [`Continue] after a completed in-quota stage; [`Done] once the
    run has finalized (every further [step] returns the same report).
    Safe to interleave with steps of other handles sharing the device:
    entry re-arms this handle's deadline if another one is armed. *)

val finish : handle -> Report.t
(** The final report. If the handle is still running, finalizes it
    immediately at the current stage boundary (outcome
    {!Report.Quota_exhausted} — used to cancel a job whose deadline
    became unreachable while it was preempted) and disarms the clock. *)

val report : handle -> Report.t option
(** The final report, if the run has finalized. *)

val finished : handle -> bool
val quota : handle -> float

val on_cost_observation :
  handle ->
  (id:int ->
  step:Taqp_timecost.Formulas.step ->
  predicted:float ->
  actual:float ->
  unit)
  option ->
  unit
(** Install (or clear) a drift observer on the handle's internal cost
    model (see {!Taqp_timecost.Cost_model.set_observer}): every
    per-step timing the executor feeds back is also reported with the
    prediction that was in force before the fit updated. Purely
    observational — registering one never changes execution. *)


val started_at : handle -> float
(** Clock reading at {!start} — absolute, not relative. *)

val deadline_at : handle -> float
(** [started_at h +. quota h]. *)

val remaining : handle -> float
(** Quota seconds left on the shared clock (negative once past the
    deadline). *)

val min_stage_cost : handle -> float
(** The price of the cheapest stage the handle could run next: the
    sample-size-determination overhead plus the predicted cost of a
    minimum-fraction stage at the current selectivity estimates. Pure —
    reads neither sample nor clock. The scheduler's least-laxity policy
    and admission controller are priced with this. *)

val min_fraction : float
(** The smallest sample fraction the bisection will consider — the [f]
    at which {!min_stage_cost} prices the minimum viable stage. *)

val planning_cost : Device.t -> max_iterations:int -> float
(** The fixed charge of one Sample-Size-Determine call (bisection
    probes priced relative to the device's stage overhead) — the same
    number {!step} pays before sizing each stage, exported so admission
    control can price a job before starting it. *)

val run :
  ?config:Config.t ->
  ?aggregate:Aggregate.t ->
  ?cache:Taqp_cache.Cache.t ->
  device:Device.t ->
  catalog:Catalog.t ->
  rng:Taqp_rng.Prng.t ->
  quota:float ->
  Ra.t ->
  Report.t
(** [aggregate] defaults to COUNT (the paper's f); SUM/AVG use the
    Section-1 extension estimators of {!Aggregate}. Exactly
    [start] followed by [step] until [`Done].
    @raise Invalid_argument on a non-positive quota or invalid config;
    @raise Staged.Compile_error / @raise Ra.Type_error /
    @raise Taqp_estimators.Inclusion_exclusion.Unsupported from
    compilation. *)

(** {2 Checkpointing}

    A handle {!snapshot} is the complete plain-data state of a live
    evaluation at a stage boundary: the query itself, its config,
    quota and start instant, the compiled query's evolved state
    ({!Staged.snapshot}), the adaptive cost-model fits, and the step
    loop's bookkeeping. It deliberately excludes the device — device
    state (IO counters, jitter/fault stream positions, clock) is
    checkpointed separately by {!Taqp_storage.Device.dump}, because a
    resumed handle may be given a freshly rebuilt device. Used by
    [taqp_recover] to journal and resume crashed queries; see
    docs/RECOVERY.md. *)

type snapshot = {
  snap_query : Ra.t;
  snap_aggregate : Aggregate.t;
  snap_config : Config.t;
  snap_quota : float;
  snap_start : float;  (** absolute clock reading at the original {!start} *)
  snap_staged : Staged.snapshot;
  snap_cost_model : Taqp_timecost.Cost_model.dump;
  snap_useful_time : float;
  snap_stages_attempted : int;
  snap_stages_completed : int;
  snap_trace_rev : Report.stage list;  (** newest first *)
  snap_recent_estimates : float list;
  snap_last_good : Taqp_estimators.Count_estimator.t option;
  snap_useful_blocks : int;
  snap_residuals : Taqp_stats.Summary.dump;
  snap_io_before : int list;  (** {!Io_stats.values} at {!start} *)
  snap_faults_before : int;
  snap_fault_time_before : float;
  snap_forced_degraded : bool;
}

val snapshot : handle -> snapshot
(** Capture the handle at the current stage boundary. Call it right
    after a [`Continue] step (or before the first one).
    @raise Invalid_argument once the handle has finalized. *)

val resume :
  device:Device.t ->
  catalog:Catalog.t ->
  ?selectivity_oracle:(Ra.t -> float) ->
  ?cache:Taqp_cache.Cache.t ->
  ?dirty:bool ->
  snapshot ->
  handle
(** Rebuild a live handle from a snapshot: recompile the query against
    [catalog], restore every evolved structure, and {e silently} re-arm
    the clock at the snapshot's original absolute deadline
    ([snap_start +. snap_quota]) — no [deadline.armed] instant and no
    new query span, so a resumed run's trace stream is the exact
    continuation of the crashed one. The device's clock must already
    read the resume instant (the crashed run's checkpoint time for a
    boundary-exact resume, or later when downtime is being charged);
    nothing is replayed, and downtime is simply quota lost.

    [dirty] marks a resume from a checkpoint older than the crash
    instant (the crash landed mid-stage): the eventual report is
    forced [degraded] and its confidence interval widened, since quota
    was consumed without a checkpoint to show for it.

    [selectivity_oracle] re-injects the config's oracle closure when
    the snapshot crossed a serialization boundary (closures cannot be
    journaled). *)
