module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params

let parse = Taqp_relational.Parser.expression

let aggregate_within ?config ?domains ?(params = Cost_params.default)
    ?(seed = 1) ?sink ?metrics ?faults ?fault_seed ?cache ~aggregate catalog
    ~quota expr =
  let config =
    match domains with
    | None -> config
    | Some d ->
        Some { (Option.value config ~default:Config.default) with domains = d }
  in
  let rng = Taqp_rng.Prng.create seed in
  let clock = Clock.create_virtual () in
  let tracer =
    match sink with
    | None -> None
    | Some sink ->
        Some (Taqp_obs.Tracer.make ~now:(fun () -> Clock.now clock) ~sink)
  in
  let faults =
    (* The injector draws from its own stream so installing (or
       re-seeding) faults never perturbs sampling or jitter. *)
    match faults with
    | None -> None
    | Some plan when Taqp_fault.Fault_plan.is_none plan -> None
    | Some plan ->
        let fseed = Option.value fault_seed ~default:seed in
        Some (Taqp_fault.Injector.create ~seed:fseed plan)
  in
  let device =
    Device.create ~params ~jitter_rng:(Taqp_rng.Prng.split rng) ?metrics ?tracer
      ?faults clock
  in
  (match (cache, metrics) with
  | Some c, Some m -> Taqp_cache.Cache.bind_metrics c m
  | _ -> ());
  let report =
    Executor.run ?config ~aggregate ?cache ~device ~catalog ~rng ~quota expr
  in
  (match (cache, tracer) with
  | Some c, Some t -> Taqp_cache.Cache.emit_counters c t
  | _ -> ());
  Option.iter Taqp_obs.Tracer.close tracer;
  report

let count_within ?config ?domains ?params ?seed ?sink ?metrics ?faults
    ?fault_seed ?cache catalog ~quota expr =
  aggregate_within ?config ?domains ?params ?seed ?sink ?metrics ?faults
    ?fault_seed ?cache ~aggregate:Aggregate.Count catalog ~quota expr

let count_within_device ?config ?(aggregate = Aggregate.Count) ~device ~rng
    catalog ~quota expr =
  Executor.run ?config ~aggregate ~device ~catalog ~rng ~quota expr

let count_exact ?device catalog expr =
  Taqp_relational.Eval.count ?device catalog expr

let aggregate_exact ?device catalog ~aggregate expr =
  match Aggregate.attr aggregate with
  | None -> float_of_int (count_exact ?device catalog expr)
  | Some name ->
      let schema = Taqp_relational.Ra.infer_catalog catalog expr in
      let pos = Taqp_data.Schema.find schema name in
      let tuples = Taqp_relational.Eval.eval ?device catalog expr in
      let sum =
        Array.fold_left
          (fun acc t ->
            match Taqp_data.Value.to_float (Taqp_data.Tuple.get t pos) with
            | Some v -> acc +. v
            | None -> acc)
          0.0 tuples
      in
      (match aggregate with
      | Aggregate.Sum _ -> sum
      | Aggregate.Avg _ ->
          if Array.length tuples = 0 then 0.0
          else sum /. float_of_int (Array.length tuples)
      | Aggregate.Count -> assert false)

let estimate_error ~report ~exact =
  Float.abs (report.Report.estimate -. float_of_int exact)
  /. Float.max 1.0 (float_of_int exact)
