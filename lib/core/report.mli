(** The answer a time-constrained run returns, with the accounting the
    paper's experiments report: stages, overspend, waste, utilization
    and blocks evaluated. *)

(** One operator's selectivity snapshot at the end of a stage. *)
type op_snapshot = {
  op_id : int;
  op_label : string;
  selectivity : float;
  points_seen : float;
  tuples_seen : float;
}

type stage = {
  index : int;  (** 1-based stage number *)
  fraction : float;  (** sample fraction taken at this stage *)
  new_blocks : (string * int) list;  (** units drawn per relation *)
  predicted_cost : float;  (** Sample-Size-Determine's budgeted cost *)
  actual_cost : float;  (** clock time the stage really took *)
  started_at : float;
  finished_at : float;
  estimate : float;  (** running estimate after this stage *)
  variance : float;
  ops : op_snapshot list;
}

type outcome =
  | Finished  (** a non-time criterion (error bound, ...) fired *)
  | Quota_exhausted
      (** no further stage could fit in the remaining time *)
  | Aborted_mid_stage  (** hard deadline interrupted a running stage *)
  | Overspent  (** observe-mode: the final stage ran past the quota *)
  | Exact
      (** every base relation was fully drawn. Under full fulfillment
          the answer is then exact; under partial fulfillment the
          population is exhausted but only the diagonal combinations
          were evaluated — consult the [exact] flag, which reflects the
          estimator, not the outcome. *)
  | Faulted
      (** an injected storage fault survived the retry budget and
          interrupted a running stage; the report carries the last
          good estimate (see [degraded]) *)

type t = {
  estimate : float;
  variance : float;
  confidence : Taqp_stats.Confidence.t;
  exact : bool;
  outcome : outcome;
  quota : float;
  elapsed : float;  (** total clock time until the run returned *)
  useful_time : float;  (** time of stages whose results count *)
  overspend : float;  (** seconds past the quota (observe mode) *)
  waste : float;  (** aborted-stage time plus unusable leftover *)
  utilization : float;  (** useful_time / quota, in [0, ~1] *)
  stages_completed : int;
  stage_aborted : bool;
  degraded : bool;
      (** the run could not complete normally (a deadline abort or an
          unrecoverable fault interrupted a stage): the answer is the
          last good estimate and its interval has been widened by the
          degradation factor — see docs/ROBUSTNESS.md *)
  faults : Taqp_fault.Injector.event list;
      (** the run's fault log, oldest first; empty without injection *)
  fault_time : float;
      (** clock seconds injected by faults (spikes, stalls, retries) *)
  blocks_read : int;
  useful_blocks : int;
      (** sample units read by stages that completed within the quota —
          the paper's "blocks" column (an overspent or aborted final
          stage's reads are excluded) *)
  io : Taqp_storage.Io_stats.t;
  trace : stage list;  (** oldest first; empty unless Config.trace *)
  groups : (string * float) list;
      (** for plain projection queries: estimated count per observed
          group, largest first (rendered group value, estimate);
          empty otherwise *)
}

val outcome_name : outcome -> string
val pp : Format.formatter -> t -> unit
val pp_stage : Format.formatter -> stage -> unit

val widening_factor : quota:float -> useful_time:float -> float
(** The degraded-CI widening factor
    [1 + min 1 ((quota - useful_time)+ / quota)] (2 for a zero quota):
    how much a degraded run's half-width is inflated. Always in
    [1, 2]; 1 exactly when the whole quota became useful stages, 2
    when none of it did. Exposed pure so its edge cases and
    monotonicity are directly testable (see test_fault). *)
