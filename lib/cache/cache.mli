(** The shared cross-query cache: one per device, shared by every
    scheduler job running against it (see docs/CACHING.md).

    Three kinds of entry, all keyed by {!Taqp_storage.Heap_file.uid}
    (relation {e names} collide across catalogs):

    - {b block contents} keyed [(relation, block)] — a hit replaces the
      {!Taqp_storage.Device.read_block} charge with the much cheaper
      {!Taqp_storage.Device.cache_probe};
    - {b sample prefixes}: one shared without-replacement unit
      permutation per (relation, unit kind), drawn from the cache's own
      PRNG stream. Consumers take consecutive offsets, so every
      consumer's cumulative sample is a simple random sample and two
      jobs sampling the same hot relation draw the {e same} units —
      which is what makes the block cache hit across queries;
    - {b stage summaries}: sorted runs and hash indexes built by
      [Staged] over prefix slices, reusable by any job whose stage
      covers the same slice.

    The cache never touches a device: it only stores, finds and
    predicts. Charging the hit/miss price is the caller's job, which
    keeps every spend on the audited {!Taqp_storage.Device} funnel.

    Eviction is LRU-by-virtual-cost: when stored bytes exceed the
    budget, the entry with the lowest [refetch_cost / age] goes first.
    Sample prefixes are the correctness backbone (without-replacement
    bookkeeping) and are never evicted; they are a few words per unit.

    Invalidation ({!invalidate_relation}) drops every entry of the
    relation and bumps its generation; in-flight consumers observe the
    bump and fall back to their private PRNG streams, and because a
    relation's prefix stream is derived from [(cache seed, uid)] alone,
    a consumer compiled after the invalidation draws exactly what a
    cold cache would — estimates after a write match a cold run. *)

type t

type unit_kind = Blocks | Tuples
(** The sampling unit of a consumer's plan: disk blocks under cluster
    sampling, tuples under simple random sampling. Each kind has its
    own shared prefix (their populations differ). *)

val create : ?budget_mb:float -> ?seed:int -> unit -> t
(** A fresh cache. [budget_mb] (default 16) bounds the stored bytes;
    [seed] (default 0) roots the per-relation prefix streams. *)

val budget_bytes : t -> int

(** {2 Relation generations} *)

val generation : t -> Taqp_storage.Heap_file.t -> int
(** Bumped by every {!invalidate_relation} of this relation. A consumer
    adopts the generation when it starts sharing the prefix and must
    stop (fall back to its private stream) if the two ever differ. *)

val invalidate_relation : t -> Taqp_storage.Heap_file.t -> unit
(** A write (or detected fault) hit the relation: drop its blocks,
    summaries and prefix, and bump its generation. *)

(** {2 Shared sample prefixes} *)

val prefix_units : t -> file:Taqp_storage.Heap_file.t -> kind:unit_kind ->
  lo:int -> k:int -> int list
(** Units at offsets [lo, lo+k) of the relation's shared permutation,
    extending it (from the cache's own stream) as needed.
    @raise Invalid_argument if [lo + k] exceeds the population. *)

val predict_misses : t -> file:Taqp_storage.Heap_file.t -> kind:unit_kind ->
  lo:int -> k:int -> int
(** How many block reads serving offsets [lo, lo+k) would cost right
    now: distinct uncached blocks among the already-materialized
    offsets, plus every unmaterialized one. Read-only — consumes no
    randomness, so planners and admission pricing can call it freely.
    This is the number the stage planner reports as its [blocks]
    measure, which is how admission prices the {e residual} sample a
    hit leaves to fetch. *)

(** {2 Blocks} *)

val find_block : t -> file:Taqp_storage.Heap_file.t -> int ->
  Taqp_data.Tuple.t array option
(** The cached contents of block [i], counting a hit or a miss. *)

val store_block : t -> file:Taqp_storage.Heap_file.t -> int -> cost:float ->
  Taqp_data.Tuple.t array -> unit
(** Retain block [i] read at virtual [cost] seconds (the refetch price
    eviction weighs against age). May evict. *)

(** {2 Stage summaries} *)

val find_sorted_run : t -> file:Taqp_storage.Heap_file.t -> kind:unit_kind ->
  lo:int -> hi:int -> key:int array -> Taqp_data.Tuple.t array option
(** A sorted run over [kind]-prefix offsets [lo, hi) of the relation's
    current generation, ordered by tuple positions [key]. Counts
    hit/miss. *)

val store_sorted_run : t -> file:Taqp_storage.Heap_file.t -> kind:unit_kind ->
  lo:int -> hi:int -> key:int array -> cost:float ->
  Taqp_data.Tuple.t array -> unit

val find_hash_index : t -> file:Taqp_storage.Heap_file.t -> kind:unit_kind ->
  lo:int -> hi:int -> key:int array -> Taqp_relational.Ops.Hash_index.t option
(** A hash index over [kind]-prefix offsets [lo, hi), keyed on [key].
    Cached indexes are probe-only for consumers. Counts hit/miss. *)

val store_hash_index : t -> file:Taqp_storage.Heap_file.t -> kind:unit_kind ->
  lo:int -> hi:int -> key:int array -> cost:float ->
  Taqp_relational.Ops.Hash_index.t -> unit

(** {2 Accounting} *)

type stats = { hits : int; misses : int; evictions : int; bytes : int }

val stats : t -> stats
val hit_ratio : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val bind_metrics : t -> Taqp_obs.Metrics.t -> unit
(** Mirror the counters into a registry as [cache.hits], [cache.misses],
    [cache.evictions], [cache.bytes] plus a [cache.hit_ratio] gauge,
    kept current from then on. *)

val emit_counters : t -> Taqp_obs.Tracer.t -> unit
(** Emit the current totals as counter events (category ["cache"]) —
    what the summary sink prints and trace files carry. *)

val stats_json : t -> Taqp_obs.Json.t
