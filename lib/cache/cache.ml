module Heap_file = Taqp_storage.Heap_file
module Tuple = Taqp_data.Tuple
module Ops = Taqp_relational.Ops
module Prng = Taqp_rng.Prng
module Metrics = Taqp_obs.Metrics
module Tracer = Taqp_obs.Tracer
module Json = Taqp_obs.Json

type unit_kind = Blocks | Tuples

let kind_tag = function Blocks -> 0 | Tuples -> 1

(* One shared without-replacement permutation prefix per (relation,
   unit kind). [p_units.(0 .. p_len)] is a uniformly random sequence of
   distinct units, extended on demand from [p_rng]; any prefix of it is
   a simple random sample, so a consumer holding offsets [0, m) has
   exactly the sample its private stream would have given it — just the
   *same* one every other consumer holds. *)
type prefix = {
  p_n : int;
  mutable p_units : int array;
  mutable p_len : int;
  p_drawn : (int, unit) Hashtbl.t;
  p_rng : Prng.t;
}

type value =
  | Block of Tuple.t array
  | Sorted of Tuple.t array
  | Hashed of Ops.Hash_index.t

(* Evictable entries, one table for all three kinds so eviction can
   rank them uniformly. Summary keys carry the relation generation;
   block keys do not need to (invalidation removes them eagerly). *)
type key =
  | K_block of int * int  (* uid, block *)
  | K_sorted of int * int * int * int * int * int list
      (* uid, gen, kind tag, lo, hi, key — lo/hi are prefix *offsets*,
         whose meaning depends on the unit kind *)
  | K_hash of int * int * int * int * int * int list

let key_uid = function
  | K_block (u, _) | K_sorted (u, _, _, _, _, _) | K_hash (u, _, _, _, _, _) ->
      u

type stored = {
  s_bytes : int;
  s_cost : float;  (* virtual seconds to rebuild on a miss *)
  mutable s_last_use : int;  (* logical access tick *)
  s_value : value;
}

type binding = {
  b_hits : Metrics.Counter.t;
  b_misses : Metrics.Counter.t;
  b_evictions : Metrics.Counter.t;
  b_bytes : Metrics.Counter.t;
  b_hit_ratio : Metrics.Gauge.t;
  b_bytes_gauge : Metrics.Gauge.t;
}

type stats = { hits : int; misses : int; evictions : int; bytes : int }

type t = {
  budget_bytes : int;
  seed : int;
  store : (key, stored) Hashtbl.t;
  prefixes : (int * int, prefix) Hashtbl.t;  (* (uid, kind tag) *)
  generations : (int, int) Hashtbl.t;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable binding : binding option;
}

let create ?(budget_mb = 16.0) ?(seed = 0) () =
  {
    budget_bytes = int_of_float (budget_mb *. 1024.0 *. 1024.0);
    seed;
    store = Hashtbl.create 1024;
    prefixes = Hashtbl.create 16;
    generations = Hashtbl.create 16;
    bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    binding = None;
  }

let budget_bytes t = t.budget_bytes

let stats (t : t) : stats =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; bytes = t.bytes }

let hit_ratio (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let sync_binding t =
  match t.binding with
  | None -> ()
  | Some b ->
      Metrics.Counter.set b.b_hits t.hits;
      Metrics.Counter.set b.b_misses t.misses;
      Metrics.Counter.set b.b_evictions t.evictions;
      Metrics.Counter.set b.b_bytes t.bytes;
      Metrics.Gauge.set b.b_hit_ratio (hit_ratio t);
      Metrics.Gauge.set b.b_bytes_gauge (float_of_int t.bytes)

let bind_metrics t m =
  t.binding <-
    Some
      {
        b_hits = Metrics.counter m "cache.hits";
        b_misses = Metrics.counter m "cache.misses";
        b_evictions = Metrics.counter m "cache.evictions";
        b_bytes = Metrics.counter m "cache.bytes";
        b_hit_ratio = Metrics.gauge m "cache.hit_ratio";
        b_bytes_gauge = Metrics.gauge m "cache.bytes_stored";
      };
  sync_binding t

let hit (t : t) = t.hits <- t.hits + 1; sync_binding t
let miss (t : t) = t.misses <- t.misses + 1; sync_binding t

(* ------------------------------------------------------------------ *)
(* Generations and invalidation                                        *)

let gen_of_uid t uid =
  match Hashtbl.find_opt t.generations uid with Some g -> g | None -> 0

let generation t file = gen_of_uid t (Heap_file.uid file)

let remove_entry t k s =
  Hashtbl.remove t.store k;
  t.bytes <- t.bytes - s.s_bytes

let invalidate_relation t file =
  let uid = Heap_file.uid file in
  Hashtbl.replace t.generations uid (gen_of_uid t uid + 1);
  Hashtbl.remove t.prefixes (uid, kind_tag Blocks);
  Hashtbl.remove t.prefixes (uid, kind_tag Tuples);
  let doomed =
    Hashtbl.fold
      (fun k s acc -> if key_uid k = uid then (k, s) :: acc else acc)
      t.store []
  in
  List.iter (fun (k, s) -> remove_entry t k s) doomed;
  sync_binding t

(* ------------------------------------------------------------------ *)
(* Eviction: lowest refetch-cost-per-age first. O(n) scan per evicted
   entry — the store holds thousands of block-sized entries at bench
   scale, and eviction only runs while over budget. *)

let evict_until_fits t =
  while t.bytes > t.budget_bytes && Hashtbl.length t.store > 0 do
    let victim =
      Hashtbl.fold
        (fun k s acc ->
          let age = float_of_int (t.tick - s.s_last_use + 1) in
          let score = s.s_cost /. age in
          match acc with
          | Some (_, _, best) when best <= score -> acc
          | _ -> Some (k, s, score))
        t.store None
    in
    match victim with
    | None -> ()
    | Some (k, s, _) ->
        remove_entry t k s;
        t.evictions <- t.evictions + 1
  done;
  sync_binding t

let insert t k ~bytes ~cost v =
  if bytes <= t.budget_bytes && not (Hashtbl.mem t.store k) then begin
    t.tick <- t.tick + 1;
    Hashtbl.replace t.store k
      { s_bytes = bytes; s_cost = cost; s_last_use = t.tick; s_value = v };
    t.bytes <- t.bytes + bytes;
    evict_until_fits t
  end

let lookup t k =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.store k with
  | Some s ->
      s.s_last_use <- t.tick;
      hit t;
      Some s.s_value
  | None ->
      miss t;
      None

(* ------------------------------------------------------------------ *)
(* Shared sample prefixes                                              *)

let population file = function
  | Blocks -> Heap_file.n_blocks file
  | Tuples -> Heap_file.n_tuples file

(* The stream is derived from (cache seed, uid, kind) only — not the
   generation — so re-creating the prefix after an invalidation draws
   exactly what a cold cache would: post-write estimates match a cold
   run by construction. *)
let prefix_for t file kind =
  let uid = Heap_file.uid file in
  let key = (uid, kind_tag kind) in
  match Hashtbl.find_opt t.prefixes key with
  | Some p -> p
  | None ->
      let root =
        Prng.create ((1_000_003 * t.seed) + (8191 * uid) + kind_tag kind)
      in
      let p =
        {
          p_n = population file kind;
          p_units = Array.make 64 0;
          p_len = 0;
          p_drawn = Hashtbl.create 64;
          p_rng = Prng.split root;
        }
      in
      Hashtbl.replace t.prefixes key p;
      p

let extend_prefix p upto =
  if upto > p.p_len then begin
    let need = Int.min upto p.p_n - p.p_len in
    let fresh =
      Taqp_rng.Sample.from_excluding p.p_rng ~k:need ~n:p.p_n
        ~excluded:(Hashtbl.mem p.p_drawn) ~excluded_count:p.p_len
    in
    if Array.length p.p_units < p.p_len + need then begin
      let grown =
        Array.make (Int.max (p.p_len + need) (2 * Array.length p.p_units)) 0
      in
      Array.blit p.p_units 0 grown 0 p.p_len;
      p.p_units <- grown
    end;
    List.iter
      (fun u ->
        Hashtbl.add p.p_drawn u ();
        p.p_units.(p.p_len) <- u;
        p.p_len <- p.p_len + 1)
      fresh
  end

let prefix_units t ~file ~kind ~lo ~k =
  let p = prefix_for t file kind in
  if lo < 0 || k < 0 || lo + k > p.p_n then
    invalid_arg "Cache.prefix_units: offsets exceed population";
  extend_prefix p (lo + k);
  List.init k (fun i -> p.p_units.(lo + i))

let block_of_unit file kind u =
  match kind with Blocks -> u | Tuples -> u / Heap_file.blocking_factor file

let predict_misses t ~file ~kind ~lo ~k =
  let uid = Heap_file.uid file in
  match Hashtbl.find_opt t.prefixes (uid, kind_tag kind) with
  | None -> k
  | Some p ->
      (* blocks the stage will have filled itself by the time it needs
         them again (two tuples of one uncached block cost one read) *)
      let filled = Hashtbl.create 16 in
      let n_miss = ref 0 in
      for off = lo to lo + k - 1 do
        if off >= p.p_len then incr n_miss
        else
          let b = block_of_unit file kind p.p_units.(off) in
          if
            (not (Hashtbl.mem t.store (K_block (uid, b))))
            && not (Hashtbl.mem filled b)
          then begin
            Hashtbl.add filled b ();
            incr n_miss
          end
      done;
      !n_miss

(* ------------------------------------------------------------------ *)
(* Blocks and summaries                                                *)

let find_block t ~file i =
  match lookup t (K_block (Heap_file.uid file, i)) with
  | Some (Block a) -> Some a
  | Some _ | None -> None

let store_block t ~file i ~cost tuples =
  insert t
    (K_block (Heap_file.uid file, i))
    ~bytes:(Array.length tuples * Heap_file.tuple_bytes file)
    ~cost (Block tuples)

let summary_key ctor t file ~kind ~lo ~hi ~key =
  let uid = Heap_file.uid file in
  ctor uid (gen_of_uid t uid) (kind_tag kind) lo hi (Array.to_list key)

let k_sorted u g kd lo hi key = K_sorted (u, g, kd, lo, hi, key)
let k_hash u g kd lo hi key = K_hash (u, g, kd, lo, hi, key)

let find_sorted_run t ~file ~kind ~lo ~hi ~key =
  match lookup t (summary_key k_sorted t file ~kind ~lo ~hi ~key) with
  | Some (Sorted a) -> Some a
  | Some _ | None -> None

let store_sorted_run t ~file ~kind ~lo ~hi ~key ~cost tuples =
  insert t
    (summary_key k_sorted t file ~kind ~lo ~hi ~key)
    ~bytes:(Array.length tuples * Heap_file.tuple_bytes file)
    ~cost (Sorted tuples)

let find_hash_index t ~file ~kind ~lo ~hi ~key =
  match lookup t (summary_key k_hash t file ~kind ~lo ~hi ~key) with
  | Some (Hashed h) -> Some h
  | Some _ | None -> None

let store_hash_index t ~file ~kind ~lo ~hi ~key ~cost index =
  (* buckets + chain links roughly double the payload *)
  insert t
    (summary_key k_hash t file ~kind ~lo ~hi ~key)
    ~bytes:(2 * Ops.Hash_index.length index * Heap_file.tuple_bytes file)
    ~cost (Hashed index)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let emit_counters t tracer =
  if Tracer.enabled tracer then begin
    let c name v = Tracer.counter tracer ~cat:"cache" name v in
    c "cache.hits" (float_of_int t.hits);
    c "cache.misses" (float_of_int t.misses);
    c "cache.evictions" (float_of_int t.evictions);
    c "cache.bytes" (float_of_int t.bytes);
    c "cache.hit_ratio" (hit_ratio t)
  end

let stats_json t =
  Json.Obj
    [
      ("hits", Json.Num (float_of_int t.hits));
      ("misses", Json.Num (float_of_int t.misses));
      ("evictions", Json.Num (float_of_int t.evictions));
      ("bytes", Json.Num (float_of_int t.bytes));
      ("hit_ratio", Json.Num (hit_ratio t));
    ]
