(** Sort-based physical operators over in-memory tuple arrays.

    These are the paper's estimator-evaluation algorithms (Figures 4.3,
    4.4, 4.6, 4.7): write operand tuples to temp files, external-sort
    them, and merge. When a {!Taqp_storage.Device.t} is supplied every
    step charges the clock, reproducing the cost structure of equations
    (4.1)-(4.5); without a device the operators are pure functions
    (used for ground-truth counting and tests).

    Bag semantics: Select/Join/Intersect preserve multiplicity (each
    qualifying point of the point space yields one output tuple);
    Project collapses to distinct groups with occupancies; Union and
    Difference are set operations and expect duplicate-free operands. *)

open Taqp_data
open Taqp_storage

val select :
  ?device:Device.t -> schema:Schema.t -> Predicate.t -> Tuple.t array ->
  Tuple.t array
(** Figure 4.3: read and check each tuple, write qualifying pages. *)

val sort_stage :
  ?device:Device.t -> key:int array -> Tuple.t array -> Tuple.t array
(** Steps (1)-(2) of Figures 4.4/4.6/4.7: write the tuples to a temp
    file and external-sort them by [key] (then by all fields, for
    determinism). Returns a sorted copy. *)

val merge_join :
  ?device:Device.t -> schema_l:Schema.t -> schema_r:Schema.t ->
  Predicate.t -> Tuple.t array -> Tuple.t array -> Tuple.t array
(** Theta-join. Equi-conjuncts ([l.a = r.b]) key a sort-merge join and
    the residual predicate filters the key-equal candidates; with no
    cross-side equi-conjunct the operator falls back to a (charged)
    nested loop. Inputs need not be pre-sorted. *)

val intersect :
  ?device:Device.t -> schema:Schema.t -> Tuple.t array -> Tuple.t array ->
  Tuple.t array
(** Figure 4.4: sort both operands and merge; a pair matches when all
    fields are equal. Output multiplicity is the product of the two
    sides' multiplicities (one per matching point). *)

val project_groups :
  ?device:Device.t -> schema:Schema.t -> string list -> Tuple.t array ->
  (Tuple.t * int) array
(** Figure 4.7: project each tuple, sort, then scan writing each
    distinct tuple with its occupancy — the group counts Goodman's
    estimator consumes. *)

val union : ?device:Device.t -> Tuple.t array -> Tuple.t array -> Tuple.t array
(** Sorted set union (operands treated as sets). *)

val difference :
  ?device:Device.t -> Tuple.t array -> Tuple.t array -> Tuple.t array
(** Sorted set difference (left minus right, as sets). *)

val distinct : ?device:Device.t -> Tuple.t array -> Tuple.t array

val key_positions : Schema.t -> string list -> int array
(** Resolve attribute names to positions.
    @raise Schema.Schema_error on unknown names. *)

val split_equi_pairs :
  schema_l:Schema.t -> schema_r:Schema.t -> Predicate.t ->
  (int array * int array) * Predicate.t
(** Orient the predicate's equi-join pairs across the two operand
    schemas: returns the left and right key positions plus the residual
    predicate (which includes any equi pair that does not span both
    sides). *)

val merge_sorted_join :
  ?device:Device.t -> key_l:int array -> key_r:int array ->
  residual:(Tuple.t -> bool) -> residual_comparisons:int ->
  Tuple.t array -> Tuple.t array -> Tuple.t list
(** One pairing merge of the full-fulfillment plan (Figure 4.5): both
    inputs already sorted by their keys; emits the concatenated tuples
    whose residual predicate holds. Charges merge reads and residual
    checks only — the caller accounts for output pages. *)

val merge_sorted_intersect :
  ?device:Device.t -> Tuple.t array -> Tuple.t array -> Tuple.t list
(** Pairing merge for Intersect: inputs sorted on all fields; emits the
    left tuple of each matching cross pair. *)

val merge_join_counted :
  key_l:int array -> key_r:int array -> residual:(Tuple.t -> bool) ->
  Tuple.t array -> Tuple.t array -> Tuple.t list * int
(** Pure {!merge_sorted_join}: same output list, plus the number of
    key-equal candidate pairs considered. Charges nothing — parallel
    workers run this on their shard and the caller replays the charges
    ([merge_tuples nl+nr], then one residual check per candidate) on
    the master device in canonical order, which is what keeps N-domain
    runs bit-identical to sequential ones. *)

val compare_with_key : int array -> Tuple.t -> Tuple.t -> int
(** Order by the key positions, then by all fields (the sort order
    {!sort_stage} uses). Re-enters {!Tuple.compare_on} and a full-field
    tie-break on every call; prefer {!key_comparator} on hot paths. *)

val key_comparator : arity:int -> int array -> Tuple.t -> Tuple.t -> int
(** A precompiled comparator realizing exactly the {!compare_with_key}
    total order for [arity]-field tuples: the key positions followed by
    the remaining positions are fused into one position array walked in
    a single pass (no duplicate key comparisons, no closure re-entry).
    Precompute it once per sort or per operator, not per comparison. *)

(** A retained hash index over tuples, bucketed by the hash of the key
    values and collision-safe via full key comparison ({!Value.compare},
    so cross-type numeric keys behave exactly as in the sort-merge
    path). The incremental evaluation path builds one per binary
    operator side, inserts each stage's delta once, and probes it with
    the opposite side's deltas — build cost O(delta), probe cost
    O(delta + matches), versus the sorted-file pairing plan's
    O(cumulative) re-merges. *)
module Hash_index : sig
  type t

  val create : key:int array -> t
  (** An empty index keyed on the given tuple positions. *)

  val key_positions : t -> int array
  val length : t -> int
  (** Number of tuples inserted so far. *)

  val add : ?device:Device.t -> t -> Tuple.t array -> unit
  (** Insert a delta; charges {!Device.hash_build} for its tuples. *)

  val probe :
    ?device:Device.t ->
    probe_key:int array ->
    t ->
    Tuple.t array ->
    emit:(indexed:Tuple.t -> probe:Tuple.t -> unit) ->
    unit
  (** For every probe tuple (in array order) call [emit] once per
      indexed tuple whose key values all compare equal; charges
      {!Device.hash_probe} for the probe tuples. *)
end

val hash_probe_join :
  ?device:Device.t -> index:Hash_index.t -> probe_key:int array ->
  indexed_side:[ `Left | `Right ] ->
  residual:(Tuple.t -> bool) -> residual_comparisons:int ->
  Tuple.t array -> Tuple.t list
(** Hash-path counterpart of {!merge_sorted_join}: probe the delta
    against the opposite side's retained index, concatenating each
    candidate in schema order ([indexed_side] says which side the index
    holds) and filtering by the residual predicate (charged per
    candidate, like the merge path). Returns the same multiset of
    tuples a sort-merge of the same operands would. *)

val probe_join_counted :
  index:Hash_index.t -> probe_key:int array ->
  indexed_side:[ `Left | `Right ] -> residual:(Tuple.t -> bool) ->
  Tuple.t array -> Tuple.t list * int
(** Pure {!hash_probe_join}: same output list, plus the number of
    candidates emitted by the index probe. Read-only on the index, so
    disjoint probe chunks may run on separate domains concurrently;
    the caller replays [hash_probe n] plus one check per candidate. *)

val hash_probe_intersect :
  ?device:Device.t -> index:Hash_index.t -> emit_side:[ `Indexed | `Probe ] ->
  Tuple.t array -> Tuple.t list
(** Hash-path counterpart of {!merge_sorted_intersect}: the index is
    keyed on all fields; emits one left-side tuple per matching cross
    pair ([emit_side] says whether the index or the probe holds the
    left operand). *)
