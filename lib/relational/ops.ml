open Taqp_data
open Taqp_storage

let pages_of_tuples ?(blocking_factor = 5) n =
  (n + blocking_factor - 1) / blocking_factor

let charge_output device n =
  match device with
  | None -> ()
  | Some d ->
      Device.output_tuples d ~n;
      Device.write_pages d ~n:(pages_of_tuples n)

let select ?device ~schema pred tuples =
  let test = Predicate.compile schema pred in
  let comparisons = Predicate.comparisons pred in
  (match device with
  | None -> ()
  | Some d -> Device.check_tuples d ~n:(Array.length tuples) ~comparisons);
  let out = Array.of_seq (Seq.filter test (Array.to_seq tuples)) in
  charge_output device (Array.length out);
  out

let compare_with_key key a b =
  let c = Tuple.compare_on key a b in
  if c <> 0 then c else Tuple.compare a b

(* Same total order as [compare_with_key] — key positions first, then
   the remaining fields in index order (re-comparing a key field is a
   no-op, so dropping the duplicates preserves the order) — but as a
   single position array walked once, instead of a full-field tie-break
   re-entered through a closure on every comparison. *)
let key_comparator ~arity key =
  let in_key = Array.make (Int.max 1 arity) false in
  Array.iter (fun k -> if k < arity then in_key.(k) <- true) key;
  let rest = ref [] in
  for i = arity - 1 downto 0 do
    if not in_key.(i) then rest := i :: !rest
  done;
  let order = Array.append key (Array.of_list !rest) in
  Tuple.compare_on order

let sort_stage ?device ~key tuples =
  let n = Array.length tuples in
  (match device with
  | None -> ()
  | Some d ->
      Device.write_temp_tuples d ~n;
      Device.write_pages d ~n:(pages_of_tuples n);
      Device.sort d ~n);
  let copy = Array.copy tuples in
  let arity = if n = 0 then 0 else Tuple.arity tuples.(0) in
  Array.sort (key_comparator ~arity key) copy;
  copy

let key_positions schema names =
  Array.of_list (List.map (Schema.find schema) names)

let split_equi_pairs ~schema_l ~schema_r pred =
  let pairs = Predicate.equi_join_pairs pred in
  let in_l a = Schema.mem schema_l a and in_r a = Schema.mem schema_r a in
  let oriented, leftover =
    List.partition_map
      (fun (a, b) ->
        if in_l a && in_r b then Left (a, b)
        else if in_l b && in_r a then Left (b, a)
        else Right (a, b))
      pairs
  in
  let key_l =
    Array.of_list (List.map (fun (a, _) -> Schema.find schema_l a) oriented)
  in
  let key_r =
    Array.of_list (List.map (fun (_, b) -> Schema.find schema_r b) oriented)
  in
  let residual = Predicate.residual_of_equi pred in
  let residual =
    match leftover with
    | [] -> residual
    | pairs ->
        Predicate.conj
          (residual
           :: List.map
                (fun (a, b) ->
                  Predicate.Cmp (Predicate.Eq, Predicate.Attr a, Predicate.Attr b))
                pairs)
  in
  ((key_l, key_r), residual)

(* Merge two key-sorted arrays; [emit] receives every cross pair of each
   key-equal group. Charges one merge step per tuple read. *)
let merge_groups ?device ~key_l ~key_r left right emit =
  let nl = Array.length left and nr = Array.length right in
  (match device with
  | None -> ()
  | Some d -> Device.merge_tuples d ~n:(nl + nr));
  let compare_keys a b =
    let rec go i =
      if i >= Array.length key_l then 0
      else
        let c =
          Value.compare (Tuple.get a key_l.(i)) (Tuple.get b key_r.(i))
        in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    let c = compare_keys left.(!i) right.(!j) in
    if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      (* Gather the key-equal groups on both sides. *)
      let i0 = !i and j0 = !j in
      let same_l k = k < nl && compare_keys left.(k) right.(j0) = 0 in
      let same_r k = k < nr && compare_keys left.(i0) right.(k) = 0 in
      while same_l !i do
        incr i
      done;
      while same_r !j do
        incr j
      done;
      for a = i0 to !i - 1 do
        for b = j0 to !j - 1 do
          emit left.(a) right.(b)
        done
      done
    end
  done

let merge_join ?device ~schema_l ~schema_r pred left right =
  let joined = Schema.concat schema_l schema_r in
  let (key_l, key_r), residual = split_equi_pairs ~schema_l ~schema_r pred in
  let test = Predicate.compile joined residual in
  let residual_cmps = Predicate.comparisons residual in
  let out = ref [] in
  let n_out = ref 0 in
  let consider a b =
    (match device with
    | None -> ()
    | Some d -> Device.check_tuples d ~n:1 ~comparisons:residual_cmps);
    let t = Tuple.concat a b in
    if test t then begin
      out := t :: !out;
      incr n_out
    end
  in
  if Array.length key_l = 0 then begin
    (* No usable join key: charged nested loop. *)
    (match device with
    | None -> ()
    | Some d ->
        Device.merge_tuples d ~n:(Array.length left + Array.length right));
    Array.iter (fun a -> Array.iter (fun b -> consider a b) right) left
  end
  else begin
    let sl = sort_stage ?device ~key:key_l left in
    let sr = sort_stage ?device ~key:key_r right in
    merge_groups ?device ~key_l ~key_r sl sr consider
  end;
  charge_output device !n_out;
  Array.of_list (List.rev !out)

let intersect ?device ~schema left right =
  let key = Array.init (Schema.arity schema) (fun i -> i) in
  let sl = sort_stage ?device ~key left in
  let sr = sort_stage ?device ~key right in
  let out = ref [] in
  let n_out = ref 0 in
  merge_groups ?device ~key_l:key ~key_r:key sl sr (fun a _ ->
      out := a :: !out;
      incr n_out);
  charge_output device !n_out;
  Array.of_list (List.rev !out)

let project_groups ?device ~schema names tuples =
  let positions = Array.to_list (key_positions schema names) in
  let projected = Array.map (fun t -> Tuple.project t positions) tuples in
  let key = Array.init (List.length positions) (fun i -> i) in
  let sorted = sort_stage ?device ~key projected in
  (* Step 3 of Figure 4.7: scan, write distinct tuples with occupancy. *)
  (match device with
  | None -> ()
  | Some d -> Device.merge_tuples d ~n:(Array.length sorted));
  let groups = ref [] in
  Array.iter
    (fun t ->
      match !groups with
      | (u, c) :: rest when Tuple.equal u t -> groups := (u, c + 1) :: rest
      | _ -> groups := (t, 1) :: !groups)
    sorted;
  let out = Array.of_list (List.rev !groups) in
  charge_output device (Array.length out);
  out

let sorted_all ?device tuples =
  let n = match tuples with [||] -> 0 | a -> Tuple.arity a.(0) in
  sort_stage ?device ~key:(Array.init n (fun i -> i)) tuples

let distinct ?device tuples =
  if Array.length tuples = 0 then [||]
  else begin
    let sorted = sorted_all ?device tuples in
    let out = ref [] in
    Array.iter
      (fun t ->
        match !out with
        | u :: _ when Tuple.equal u t -> ()
        | _ -> out := t :: !out)
      sorted;
    Array.of_list (List.rev !out)
  end

let union ?device left right =
  let merged = Array.append left right in
  let out = distinct ?device merged in
  charge_output device (Array.length out);
  out

let difference ?device left right =
  let sl = if Array.length left = 0 then [||] else sorted_all ?device left in
  let sr = if Array.length right = 0 then [||] else sorted_all ?device right in
  (match device with
  | None -> ()
  | Some d -> Device.merge_tuples d ~n:(Array.length sl + Array.length sr));
  let nr = Array.length sr in
  let out = ref [] in
  let j = ref 0 in
  Array.iter
    (fun t ->
      while !j < nr && Tuple.compare sr.(!j) t < 0 do
        incr j
      done;
      let dropped = !j < nr && Tuple.equal sr.(!j) t in
      let dup = match !out with u :: _ -> Tuple.equal u t | [] -> false in
      if (not dropped) && not dup then out := t :: !out)
    sl;
  let result = Array.of_list (List.rev !out) in
  charge_output device (Array.length result);
  result

let merge_sorted_join ?device ~key_l ~key_r ~residual ~residual_comparisons
    left right =
  let out = ref [] in
  let consider a b =
    (match device with
    | None -> ()
    | Some d -> Device.check_tuples d ~n:1 ~comparisons:residual_comparisons);
    let t = Tuple.concat a b in
    if residual t then out := t :: !out
  in
  merge_groups ?device ~key_l ~key_r left right consider;
  List.rev !out

let merge_join_counted ~key_l ~key_r ~residual left right =
  let out = ref [] in
  let candidates = ref 0 in
  let consider a b =
    incr candidates;
    let t = Tuple.concat a b in
    if residual t then out := t :: !out
  in
  merge_groups ~key_l ~key_r left right consider;
  (List.rev !out, !candidates)

let merge_sorted_intersect ?device left right =
  let arity = if Array.length left > 0 then Tuple.arity left.(0) else 0 in
  let key = Array.init arity (fun i -> i) in
  let out = ref [] in
  merge_groups ?device ~key_l:key ~key_r:key left right (fun a _ ->
      out := a :: !out);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Retained hash indexes (the incremental evaluation path)             *)

module Hash_index = struct
  (* Buckets are keyed by the hash of the key-value array and resolved
     by full key comparison, so hash collisions (and cross-type numeric
     keys: Int 3 vs Float 3.0 hash and compare equal) are safe. Within
     a key group tuples are kept newest-first; probing emits groups in
     that fixed order, so a seeded run is reproducible. *)
  type group = { key_vals : Value.t array; mutable tuples : Tuple.t list }

  type t = {
    key : int array;
    buckets : (int, group list ref) Hashtbl.t;
    mutable size : int;
  }

  let create ~key = { key; buckets = Hashtbl.create 256; size = 0 }

  let key_positions t = t.key
  let length t = t.size

  let hash_key vals =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 vals

  let key_equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i >= Array.length a || (Value.compare a.(i) b.(i) = 0 && go (i + 1))
    in
    go 0

  let find_group t vals =
    match Hashtbl.find_opt t.buckets (hash_key vals) with
    | None -> None
    | Some chain -> List.find_opt (fun g -> key_equal g.key_vals vals) !chain

  let add ?device t tuples =
    (match device with
    | None -> ()
    | Some d -> Device.hash_build d ~n:(Array.length tuples));
    Array.iter
      (fun tuple ->
        let vals = Tuple.key tuple t.key in
        (match find_group t vals with
        | Some g -> g.tuples <- tuple :: g.tuples
        | None -> (
            let g = { key_vals = vals; tuples = [ tuple ] } in
            let h = hash_key vals in
            match Hashtbl.find_opt t.buckets h with
            | Some chain -> chain := g :: !chain
            | None -> Hashtbl.replace t.buckets h (ref [ g ])));
        t.size <- t.size + 1)
      tuples

  let probe ?device ~probe_key t tuples ~emit =
    (match device with
    | None -> ()
    | Some d -> Device.hash_probe d ~n:(Array.length tuples));
    Array.iter
      (fun probe_tuple ->
        match find_group t (Tuple.key probe_tuple probe_key) with
        | None -> ()
        | Some g ->
            List.iter (fun indexed -> emit ~indexed ~probe:probe_tuple) g.tuples)
      tuples
end

let hash_probe_join ?device ~index ~probe_key ~indexed_side ~residual
    ~residual_comparisons probes =
  let out = ref [] in
  Hash_index.probe ?device ~probe_key index probes ~emit:(fun ~indexed ~probe ->
      (match device with
      | None -> ()
      | Some d -> Device.check_tuples d ~n:1 ~comparisons:residual_comparisons);
      let t =
        match indexed_side with
        | `Left -> Tuple.concat indexed probe
        | `Right -> Tuple.concat probe indexed
      in
      if residual t then out := t :: !out);
  List.rev !out

let probe_join_counted ~index ~probe_key ~indexed_side ~residual probes =
  let out = ref [] in
  let candidates = ref 0 in
  Hash_index.probe ~probe_key index probes ~emit:(fun ~indexed ~probe ->
      incr candidates;
      let t =
        match indexed_side with
        | `Left -> Tuple.concat indexed probe
        | `Right -> Tuple.concat probe indexed
      in
      if residual t then out := t :: !out);
  (List.rev !out, !candidates)

let hash_probe_intersect ?device ~index ~emit_side probes =
  let probe_key =
    match probes with
    | [||] -> Hash_index.key_positions index
    | a -> Array.init (Tuple.arity a.(0)) (fun i -> i)
  in
  let out = ref [] in
  Hash_index.probe ?device ~probe_key index probes ~emit:(fun ~indexed ~probe ->
      let t = match emit_side with `Indexed -> indexed | `Probe -> probe in
      out := t :: !out);
  List.rev !out
