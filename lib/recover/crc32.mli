(** CRC-32 (IEEE 802.3, reflected) — the per-record checksum of the
    recovery journal. Standard test vector:
    [string "123456789" = 0xCBF43926l]. *)

val string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> string -> int -> int -> int32
(** [update crc s pos len] extends [crc] with [s.[pos .. pos+len-1]],
    so checksums can be computed incrementally;
    [string s = update 0l s 0 (String.length s)].
    @raise Invalid_argument on an out-of-range slice. *)
