(* A tiny deterministic binary codec for the recovery journal.

   Design rules:
   - everything little-endian, fixed width where possible;
   - floats travel as their IEEE-754 bit pattern ([Int64.bits_of_float])
     so a decode-encode round trip is bit-exact — decimal formatting
     would quietly break the boundary-crash bit-identity guarantee;
   - no type tags except where a sum type needs one: the reader must
     know the schema, which the journal record tag supplies;
   - [Marshal] is deliberately not used: snapshots contain no closures
     by construction, and a self-describing format with CRCs lets a
     torn or corrupt record be detected instead of segfaulting. *)

exception Decode_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Encoding: plain [Buffer.t]                                           *)

type encoder = Buffer.t

let encoder () = Buffer.create 1024
let contents = Buffer.contents

let u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let i64 b n = Buffer.add_int64_le b n
let int b n = i64 b (Int64.of_int n)
let float b f = i64 b (Int64.bits_of_float f)
let bool b x = u8 b (if x then 1 else 0)
let i32 b n = Buffer.add_int32_le b n

let string b s =
  int b (String.length s);
  Buffer.add_string b s

let option f b = function
  | None -> u8 b 0
  | Some x ->
      u8 b 1;
      f b x

let list f b xs =
  int b (List.length xs);
  List.iter (f b) xs

let array f b xs =
  int b (Array.length xs);
  Array.iter (f b) xs

let pair f g b (x, y) =
  f b x;
  g b y

let to_string f x =
  let b = encoder () in
  f b x;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding: a string with a cursor                                     *)

type decoder = { s : string; mutable pos : int }

let decoder s = { s; pos = 0 }
let at_end d = d.pos >= String.length d.s

let need d n what =
  if d.pos + n > String.length d.s then
    fail "truncated record: %d bytes missing reading %s"
      (d.pos + n - String.length d.s)
      what

let read_u8 d =
  need d 1 "byte";
  let c = Char.code (String.unsafe_get d.s d.pos) in
  d.pos <- d.pos + 1;
  c

let read_i64 d =
  need d 8 "int64";
  let v = String.get_int64_le d.s d.pos in
  d.pos <- d.pos + 8;
  v

let read_i32 d =
  need d 4 "int32";
  let v = String.get_int32_le d.s d.pos in
  d.pos <- d.pos + 4;
  v

let read_int d = Int64.to_int (read_i64 d)
let read_float d = Int64.float_of_bits (read_i64 d)

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> fail "bad bool byte %d" n

let read_string d =
  let n = read_int d in
  if n < 0 then fail "negative string length %d" n;
  need d n "string body";
  let s = String.sub d.s d.pos n in
  d.pos <- d.pos + n;
  s

let read_option f d =
  match read_u8 d with
  | 0 -> None
  | 1 -> Some (f d)
  | n -> fail "bad option byte %d" n

let read_list f d =
  let n = read_int d in
  if n < 0 then fail "negative list length %d" n;
  List.init n (fun _ -> f d)

let read_array f d =
  let n = read_int d in
  if n < 0 then fail "negative array length %d" n;
  Array.init n (fun _ -> f d)

let read_pair f g d =
  let x = f d in
  let y = g d in
  (x, y)

let of_string f s =
  let d = decoder s in
  let v = f d in
  if not (at_end d) then
    fail "%d trailing bytes after record body" (String.length s - d.pos);
  v

(* ------------------------------------------------------------------ *)
(* Domain primitives shared by the checkpoint and scheduler journals    *)

let value b (v : Taqp_data.Value.t) =
  match v with
  | Int n ->
      u8 b 0;
      int b n
  | Float f ->
      u8 b 1;
      float b f
  | String s ->
      u8 b 2;
      string b s
  | Bool x ->
      u8 b 3;
      bool b x
  | Null -> u8 b 4

let read_value d : Taqp_data.Value.t =
  match read_u8 d with
  | 0 -> Int (read_int d)
  | 1 -> Float (read_float d)
  | 2 -> String (read_string d)
  | 3 -> Bool (read_bool d)
  | 4 -> Null
  | n -> fail "bad value tag %d" n

let tuple b t =
  int b (Taqp_data.Tuple.pad t);
  array value b (Taqp_data.Tuple.fields t)

let read_tuple d =
  let pad = read_int d in
  let fields = read_array read_value d in
  match Taqp_data.Tuple.make ~pad fields with
  | t -> t
  | exception Invalid_argument m -> fail "bad tuple: %s" m

let rng_state b ((s0, s1, s2, s3) : Taqp_rng.Prng.state) =
  i64 b s0;
  i64 b s1;
  i64 b s2;
  i64 b s3

let read_rng_state d : Taqp_rng.Prng.state =
  let s0 = read_i64 d in
  let s1 = read_i64 d in
  let s2 = read_i64 d in
  let s3 = read_i64 d in
  (s0, s1, s2, s3)
