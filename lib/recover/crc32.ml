(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320): the checksum
   zlib and ethernet use, implemented table-driven so journal reads
   stay cheap. Implemented here rather than depending on a compression
   library — the journal only needs the few lines below. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range outside the string";
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !c (Int32.of_int (Char.code (String.unsafe_get s i))))
           0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string s = update 0l s 0 (String.length s)
