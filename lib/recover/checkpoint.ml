(* Journal record payloads for one query's recovery journal: a [meta]
   record written once at journal creation (everything needed to
   recompile the query and rebuild its device) and a [checkpoint]
   record written at each stage boundary (the executor snapshot plus
   the device's mutable state and the clock reading the checkpoint
   completed at).

   Two things deliberately do NOT round-trip:
   - [Config.selectivity_oracle] is a closure; it is dropped on encode
     and must be re-injected by the resuming caller
     ({!Query_journal.resume_last}'s [selectivity_oracle]);
   - the catalog: journaling base data would dwarf the journal, and
     recovery is only meaningful against the same store anyway, so the
     caller supplies it. *)

module C = Codec
module Config = Taqp_core.Config
module Aggregate = Taqp_core.Aggregate
module Executor = Taqp_core.Executor
module Staged = Taqp_core.Staged
module Report = Taqp_core.Report
module Strategy = Taqp_timecontrol.Strategy
module Stopping = Taqp_timecontrol.Stopping
module Plan = Taqp_sampling.Plan
module Stage_set = Taqp_sampling.Stage_set
module Selectivity = Taqp_estimators.Selectivity
module Count_estimator = Taqp_estimators.Count_estimator
module Cost_model = Taqp_timecost.Cost_model
module Least_squares = Taqp_stats.Least_squares
module Summary = Taqp_stats.Summary
module Cost_params = Taqp_storage.Cost_params
module Device = Taqp_storage.Device
module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector

type meta = {
  m_query : Taqp_relational.Ra.t;
  m_aggregate : Aggregate.t;
  m_config : Config.t;
  m_quota : float;
  m_seed : int;  (** the run's sampling seed (informational: every
                     stream position is restored from the snapshot) *)
  m_params : Cost_params.t;
  m_fault_plan : Fault_plan.t;
  m_fault_seed : int;
}

type checkpoint = {
  c_at : float;  (** clock reading once the checkpoint was charged *)
  c_exec : Executor.snapshot;
  c_device : Device.dump;
}

(* ------------------------------------------------------------------ *)
(* Relational / core scalars                                            *)

let query b (q : Taqp_relational.Ra.t) =
  C.string b (Taqp_relational.Ra.to_string q)

let read_query d =
  let s = C.read_string d in
  match Taqp_relational.Parser.expression s with
  | q -> q
  | exception e ->
      raise
        (C.Decode_error
           (Printf.sprintf "journaled query %S does not parse back: %s" s
              (Printexc.to_string e)))

let aggregate b (a : Aggregate.t) =
  match a with
  | Count -> C.u8 b 0
  | Sum attr ->
      C.u8 b 1;
      C.string b attr
  | Avg attr ->
      C.u8 b 2;
      C.string b attr

let read_aggregate d : Aggregate.t =
  match C.read_u8 d with
  | 0 -> Count
  | 1 -> Sum (C.read_string d)
  | 2 -> Avg (C.read_string d)
  | n -> raise (C.Decode_error (Printf.sprintf "bad aggregate tag %d" n))

let moments b (m : Aggregate.moments) =
  C.float b m.sum;
  C.float b m.sum_sq;
  C.float b m.hits

let read_moments d : Aggregate.moments =
  let sum = C.read_float d in
  let sum_sq = C.read_float d in
  let hits = C.read_float d in
  { sum; sum_sq; hits }

let strategy b (s : Strategy.t) =
  match s with
  | One_at_a_time { d_beta; zero_beta } ->
      C.u8 b 0;
      C.float b d_beta;
      C.float b zero_beta
  | Single_interval { d_alpha; zero_beta } ->
      C.u8 b 1;
      C.float b d_alpha;
      C.float b zero_beta
  | Heuristic { split } ->
      C.u8 b 2;
      C.float b split

let read_strategy d : Strategy.t =
  match C.read_u8 d with
  | 0 ->
      let d_beta = C.read_float d in
      let zero_beta = C.read_float d in
      One_at_a_time { d_beta; zero_beta }
  | 1 ->
      let d_alpha = C.read_float d in
      let zero_beta = C.read_float d in
      Single_interval { d_alpha; zero_beta }
  | 2 -> Heuristic { split = C.read_float d }
  | n -> raise (C.Decode_error (Printf.sprintf "bad strategy tag %d" n))

let rec stopping b (s : Stopping.t) =
  match s with
  | Hard_deadline -> C.u8 b 0
  | Soft_deadline { grace } ->
      C.u8 b 1;
      C.float b grace
  | Error_bound { relative; level } ->
      C.u8 b 2;
      C.float b relative;
      C.float b level
  | Stagnation { epsilon; window } ->
      C.u8 b 3;
      C.float b epsilon;
      C.int b window
  | Max_stages n ->
      C.u8 b 4;
      C.int b n
  | All ss ->
      C.u8 b 5;
      C.list stopping b ss

let rec read_stopping d : Stopping.t =
  match C.read_u8 d with
  | 0 -> Hard_deadline
  | 1 -> Soft_deadline { grace = C.read_float d }
  | 2 ->
      let relative = C.read_float d in
      let level = C.read_float d in
      Error_bound { relative; level }
  | 3 ->
      let epsilon = C.read_float d in
      let window = C.read_int d in
      Stagnation { epsilon; window }
  | 4 -> Max_stages (C.read_int d)
  | 5 -> All (C.read_list read_stopping d)
  | n -> raise (C.Decode_error (Printf.sprintf "bad stopping tag %d" n))

let plan b (p : Plan.t) =
  C.u8 b (match p.unit_kind with Cluster -> 0 | Simple_random -> 1);
  C.u8 b (match p.fulfillment with Full -> 0 | Partial -> 1)

let read_plan d : Plan.t =
  let unit_kind : Plan.unit_kind =
    match C.read_u8 d with
    | 0 -> Cluster
    | 1 -> Simple_random
    | n -> raise (C.Decode_error (Printf.sprintf "bad unit_kind tag %d" n))
  in
  let fulfillment : Plan.fulfillment =
    match C.read_u8 d with
    | 0 -> Full
    | 1 -> Partial
    | n -> raise (C.Decode_error (Printf.sprintf "bad fulfillment tag %d" n))
  in
  { unit_kind; fulfillment }

let config b (c : Config.t) =
  strategy b c.strategy;
  stopping b c.stopping;
  plan b c.plan;
  C.float b c.confidence_level;
  C.float b c.bisect_eps_frac;
  C.bool b c.adaptive_cost;
  C.float b c.initial_cost_scale;
  C.option C.float b c.initial_selectivities.select;
  C.option C.float b c.initial_selectivities.join;
  C.option C.float b c.initial_selectivities.intersect;
  C.option C.float b c.initial_selectivities.project;
  (* selectivity_oracle: a closure, dropped — see the module comment *)
  C.u8 b
    (match c.projection_estimator with
    | Goodman_unbiased -> 0
    | Goodman_first_order -> 1
    | Scale_up -> 2
    | Chao -> 3);
  C.u8 b
    (match c.variance_estimator with Srs_approximation -> 0 | Cluster_exact -> 1);
  C.u8 b (match c.physical with Sort_merge -> 0 | Hash -> 1 | Adaptive -> 2);
  C.int b c.max_bisect_iterations;
  C.bool b c.trace;
  C.int b c.domains

let read_config d : Config.t =
  let strategy = read_strategy d in
  let stopping = read_stopping d in
  let plan = read_plan d in
  let confidence_level = C.read_float d in
  let bisect_eps_frac = C.read_float d in
  let adaptive_cost = C.read_bool d in
  let initial_cost_scale = C.read_float d in
  let select = C.read_option C.read_float d in
  let join = C.read_option C.read_float d in
  let intersect = C.read_option C.read_float d in
  let project = C.read_option C.read_float d in
  let projection_estimator : Config.projection_estimator =
    match C.read_u8 d with
    | 0 -> Goodman_unbiased
    | 1 -> Goodman_first_order
    | 2 -> Scale_up
    | 3 -> Chao
    | n ->
        raise (C.Decode_error (Printf.sprintf "bad projection_estimator %d" n))
  in
  let variance_estimator : Config.variance_estimator =
    match C.read_u8 d with
    | 0 -> Srs_approximation
    | 1 -> Cluster_exact
    | n -> raise (C.Decode_error (Printf.sprintf "bad variance_estimator %d" n))
  in
  let physical : Config.physical_operator =
    match C.read_u8 d with
    | 0 -> Sort_merge
    | 1 -> Hash
    | 2 -> Adaptive
    | n -> raise (C.Decode_error (Printf.sprintf "bad physical tag %d" n))
  in
  let max_bisect_iterations = C.read_int d in
  let trace = C.read_bool d in
  let domains = C.read_int d in
  {
    strategy;
    stopping;
    plan;
    confidence_level;
    bisect_eps_frac;
    adaptive_cost;
    initial_cost_scale;
    initial_selectivities = { select; join; intersect; project };
    selectivity_oracle = None;
    projection_estimator;
    variance_estimator;
    physical;
    max_bisect_iterations;
    trace;
    domains;
  }

let cost_params b (p : Cost_params.t) =
  C.float b p.block_read;
  C.float b p.tuple_check_base;
  C.float b p.per_comparison;
  C.float b p.page_write;
  C.float b p.temp_tuple_write;
  C.float b p.sort_per_nlogn;
  C.float b p.sort_per_tuple;
  C.float b p.merge_per_tuple;
  C.float b p.merge_setup;
  C.float b p.hash_build_per_tuple;
  C.float b p.hash_probe_per_tuple;
  C.float b p.output_per_tuple;
  C.float b p.stage_overhead;
  C.float b p.estimator_per_tuple;
  C.float b p.jitter_sigma;
  C.float b p.clock_tick;
  C.float b p.journal_byte_write;
  C.float b p.cache_probe

let read_cost_params d : Cost_params.t =
  let block_read = C.read_float d in
  let tuple_check_base = C.read_float d in
  let per_comparison = C.read_float d in
  let page_write = C.read_float d in
  let temp_tuple_write = C.read_float d in
  let sort_per_nlogn = C.read_float d in
  let sort_per_tuple = C.read_float d in
  let merge_per_tuple = C.read_float d in
  let merge_setup = C.read_float d in
  let hash_build_per_tuple = C.read_float d in
  let hash_probe_per_tuple = C.read_float d in
  let output_per_tuple = C.read_float d in
  let stage_overhead = C.read_float d in
  let estimator_per_tuple = C.read_float d in
  let jitter_sigma = C.read_float d in
  let clock_tick = C.read_float d in
  let journal_byte_write = C.read_float d in
  let cache_probe = C.read_float d in
  {
    block_read;
    tuple_check_base;
    per_comparison;
    page_write;
    temp_tuple_write;
    sort_per_nlogn;
    sort_per_tuple;
    merge_per_tuple;
    merge_setup;
    hash_build_per_tuple;
    hash_probe_per_tuple;
    output_per_tuple;
    stage_overhead;
    estimator_per_tuple;
    jitter_sigma;
    clock_tick;
    journal_byte_write;
    cache_probe;
  }

(* ------------------------------------------------------------------ *)
(* Faults                                                               *)

let fault_kind b (k : Fault_plan.kind) =
  match k with
  | Read_error -> C.u8 b 0
  | Latency_spike f ->
      C.u8 b 1;
      C.float b f
  | Stall dur ->
      C.u8 b 2;
      C.float b dur
  | Torn_block -> C.u8 b 3
  | Crash -> C.u8 b 4

let read_fault_kind d : Fault_plan.kind =
  match C.read_u8 d with
  | 0 -> Read_error
  | 1 -> Latency_spike (C.read_float d)
  | 2 -> Stall (C.read_float d)
  | 3 -> Torn_block
  | 4 -> Crash
  | n -> raise (C.Decode_error (Printf.sprintf "bad fault kind tag %d" n))

let fault_rule b (r : Fault_plan.rule) =
  C.option C.string b r.op;
  fault_kind b r.kind;
  C.float b r.probability;
  C.float b r.after;
  C.float b r.until;
  C.int b r.max_faults

let read_fault_rule d : Fault_plan.rule =
  let op = C.read_option C.read_string d in
  let kind = read_fault_kind d in
  let probability = C.read_float d in
  let after = C.read_float d in
  let until = C.read_float d in
  let max_faults = C.read_int d in
  { op; kind; probability; after; until; max_faults }

let fault_plan b (p : Fault_plan.t) =
  C.list fault_rule b p.rules;
  C.int b p.max_retries;
  C.float b p.backoff;
  C.float b p.backoff_multiplier

let read_fault_plan d : Fault_plan.t =
  let rules = C.read_list read_fault_rule d in
  let max_retries = C.read_int d in
  let backoff = C.read_float d in
  let backoff_multiplier = C.read_float d in
  { rules; max_retries; backoff; backoff_multiplier }

let fault_event b (e : Injector.event) =
  C.string b e.ev_op;
  fault_kind b e.ev_kind;
  C.float b e.ev_at;
  C.int b e.ev_attempt;
  C.bool b e.ev_recovered

let read_fault_event d : Injector.event =
  let ev_op = C.read_string d in
  let ev_kind = read_fault_kind d in
  let ev_at = C.read_float d in
  let ev_attempt = C.read_int d in
  let ev_recovered = C.read_bool d in
  { ev_op; ev_kind; ev_at; ev_attempt; ev_recovered }

let injector_dump b (i : Injector.dump) =
  C.rng_state b i.d_rng;
  C.array C.int b i.d_fired;
  C.list fault_event b i.d_events_rev;
  C.int b i.d_n_events;
  C.int b i.d_n_unrecovered;
  C.float b i.d_injected

let read_injector_dump d : Injector.dump =
  let d_rng = C.read_rng_state d in
  let d_fired = C.read_array C.read_int d in
  let d_events_rev = C.read_list read_fault_event d in
  let d_n_events = C.read_int d in
  let d_n_unrecovered = C.read_int d in
  let d_injected = C.read_float d in
  { d_rng; d_fired; d_events_rev; d_n_events; d_n_unrecovered; d_injected }

let device_dump b (dv : Device.dump) =
  C.list C.int b dv.d_io;
  C.option C.rng_state b dv.d_jitter;
  C.option injector_dump b dv.d_faults

let read_device_dump d : Device.dump =
  let d_io = C.read_list C.read_int d in
  let d_jitter = C.read_option C.read_rng_state d in
  let d_faults = C.read_option read_injector_dump d in
  { d_io; d_jitter; d_faults }

(* ------------------------------------------------------------------ *)
(* Estimator / stats state                                              *)

let count_estimator b (e : Count_estimator.t) =
  C.float b e.estimate;
  C.float b e.variance;
  C.float b e.hits;
  C.float b e.points;
  C.float b e.total_points;
  C.bool b e.is_exact

let read_count_estimator d : Count_estimator.t =
  let estimate = C.read_float d in
  let variance = C.read_float d in
  let hits = C.read_float d in
  let points = C.read_float d in
  let total_points = C.read_float d in
  let is_exact = C.read_bool d in
  { estimate; variance; hits; points; total_points; is_exact }

let summary_dump b (s : Summary.dump) =
  C.int b s.d_n;
  C.float b s.d_mean;
  C.float b s.d_m2;
  C.float b s.d_lo;
  C.float b s.d_hi;
  C.float b s.d_total

let read_summary_dump d : Summary.dump =
  let d_n = C.read_int d in
  let d_mean = C.read_float d in
  let d_m2 = C.read_float d in
  let d_lo = C.read_float d in
  let d_hi = C.read_float d in
  let d_total = C.read_float d in
  { d_n; d_mean; d_m2; d_lo; d_hi; d_total }

let least_squares_dump b (l : Least_squares.dump) =
  C.array (C.array C.float) b l.d_a;
  C.array C.float b l.d_b;
  C.float b l.d_anchor_scale;
  C.int b l.d_n

let read_least_squares_dump d : Least_squares.dump =
  let d_a = C.read_array (C.read_array C.read_float) d in
  let d_b = C.read_array C.read_float d in
  let d_anchor_scale = C.read_float d in
  let d_n = C.read_int d in
  { d_a; d_b; d_anchor_scale; d_n }

let step_state b (s : Cost_model.step_state) =
  C.float b s.ss_calibration;
  least_squares_dump b s.ss_fit

let read_step_state d : Cost_model.step_state =
  let ss_calibration = C.read_float d in
  let ss_fit = read_least_squares_dump d in
  { ss_calibration; ss_fit }

let cost_model_dump b (cm : Cost_model.dump) =
  C.list (C.pair C.int (C.list step_state)) b cm

let read_cost_model_dump d : Cost_model.dump =
  C.read_list (C.read_pair C.read_int (C.read_list read_step_state)) d

let selectivity_dump b (s : Selectivity.dump) =
  C.float b s.d_points;
  C.float b s.d_tuples;
  C.int b s.d_stages;
  C.float b s.d_design_effect

let read_selectivity_dump d : Selectivity.dump =
  let d_points = C.read_float d in
  let d_tuples = C.read_float d in
  let d_stages = C.read_int d in
  let d_design_effect = C.read_float d in
  { d_points; d_tuples; d_stages; d_design_effect }

let stage_set_dump b (s : Stage_set.dump) =
  C.int b s.d_n_units;
  C.list (C.list C.int) b s.d_stages_rev;
  C.rng_state b s.d_rng

let read_stage_set_dump d : Stage_set.dump =
  let d_n_units = C.read_int d in
  let d_stages_rev = C.read_list (C.read_list C.read_int) d in
  let d_rng = C.read_rng_state d in
  { d_n_units; d_stages_rev; d_rng }

(* ------------------------------------------------------------------ *)
(* The staged-query snapshot                                            *)

let scan_snapshot b (s : Staged.scan_snapshot) =
  C.string b s.sn_relation;
  C.list C.int b s.sn_stage_tuples;
  C.int b s.sn_drawn_tuples;
  stage_set_dump b s.sn_units

let read_scan_snapshot d : Staged.scan_snapshot =
  let sn_relation = C.read_string d in
  let sn_stage_tuples = C.read_list C.read_int d in
  let sn_drawn_tuples = C.read_int d in
  let sn_units = read_stage_set_dump d in
  { sn_relation; sn_stage_tuples; sn_drawn_tuples; sn_units }

let rec node_state b (n : Staged.node_state) =
  C.int b n.ns_id;
  C.float b n.ns_cum_out;
  C.float b n.ns_cum_points;
  selectivity_dump b n.ns_sel;
  match n.ns_kind with
  | Ns_leaf -> C.u8 b 0
  | Ns_select child ->
      C.u8 b 1;
      node_state b child
  | Ns_project { np_groups; np_child } ->
      C.u8 b 2;
      C.list (C.pair C.tuple C.int) b np_groups;
      node_state b np_child
  | Ns_binary
      {
        nb_left;
        nb_right;
        nb_deltas_l;
        nb_deltas_r;
        nb_files_l;
        nb_files_r;
        nb_hashed_l;
        nb_hashed_r;
      } ->
      C.u8 b 3;
      node_state b nb_left;
      node_state b nb_right;
      C.list (C.array C.tuple) b nb_deltas_l;
      C.list (C.array C.tuple) b nb_deltas_r;
      C.int b nb_files_l;
      C.int b nb_files_r;
      C.int b nb_hashed_l;
      C.int b nb_hashed_r

let rec read_node_state d : Staged.node_state =
  let ns_id = C.read_int d in
  let ns_cum_out = C.read_float d in
  let ns_cum_points = C.read_float d in
  let ns_sel = read_selectivity_dump d in
  let ns_kind : Staged.node_kind_state =
    match C.read_u8 d with
    | 0 -> Ns_leaf
    | 1 -> Ns_select (read_node_state d)
    | 2 ->
        let np_groups = C.read_list (C.read_pair C.read_tuple C.read_int) d in
        let np_child = read_node_state d in
        Ns_project { np_groups; np_child }
    | 3 ->
        let nb_left = read_node_state d in
        let nb_right = read_node_state d in
        let nb_deltas_l = C.read_list (C.read_array C.read_tuple) d in
        let nb_deltas_r = C.read_list (C.read_array C.read_tuple) d in
        let nb_files_l = C.read_int d in
        let nb_files_r = C.read_int d in
        let nb_hashed_l = C.read_int d in
        let nb_hashed_r = C.read_int d in
        Ns_binary
          {
            nb_left;
            nb_right;
            nb_deltas_l;
            nb_deltas_r;
            nb_files_l;
            nb_files_r;
            nb_hashed_l;
            nb_hashed_r;
          }
    | n -> raise (C.Decode_error (Printf.sprintf "bad node kind tag %d" n))
  in
  { ns_id; ns_cum_out; ns_cum_points; ns_sel; ns_kind }

let term_snapshot b (t : Staged.term_snapshot) =
  node_state b t.tn_root;
  moments b t.tn_moments;
  C.list C.float b t.tn_block_counts

let read_term_snapshot d : Staged.term_snapshot =
  let tn_root = read_node_state d in
  let tn_moments = read_moments d in
  let tn_block_counts = C.read_list C.read_float d in
  { tn_root; tn_moments; tn_block_counts }

let staged_snapshot b (s : Staged.snapshot) =
  C.int b s.sn_stage;
  C.option count_estimator b s.sn_last_estimate;
  C.list scan_snapshot b s.sn_scans;
  C.list term_snapshot b s.sn_terms

let read_staged_snapshot d : Staged.snapshot =
  let sn_stage = C.read_int d in
  let sn_last_estimate = C.read_option read_count_estimator d in
  let sn_scans = C.read_list read_scan_snapshot d in
  let sn_terms = C.read_list read_term_snapshot d in
  { sn_stage; sn_last_estimate; sn_scans; sn_terms }

(* ------------------------------------------------------------------ *)
(* Report stages (the run's accumulated trace)                          *)

let op_snapshot b (o : Report.op_snapshot) =
  C.int b o.op_id;
  C.string b o.op_label;
  C.float b o.selectivity;
  C.float b o.points_seen;
  C.float b o.tuples_seen

let read_op_snapshot d : Report.op_snapshot =
  let op_id = C.read_int d in
  let op_label = C.read_string d in
  let selectivity = C.read_float d in
  let points_seen = C.read_float d in
  let tuples_seen = C.read_float d in
  { op_id; op_label; selectivity; points_seen; tuples_seen }

let stage b (s : Report.stage) =
  C.int b s.index;
  C.float b s.fraction;
  C.list (C.pair C.string C.int) b s.new_blocks;
  C.float b s.predicted_cost;
  C.float b s.actual_cost;
  C.float b s.started_at;
  C.float b s.finished_at;
  C.float b s.estimate;
  C.float b s.variance;
  C.list op_snapshot b s.ops

let read_stage d : Report.stage =
  let index = C.read_int d in
  let fraction = C.read_float d in
  let new_blocks = C.read_list (C.read_pair C.read_string C.read_int) d in
  let predicted_cost = C.read_float d in
  let actual_cost = C.read_float d in
  let started_at = C.read_float d in
  let finished_at = C.read_float d in
  let estimate = C.read_float d in
  let variance = C.read_float d in
  let ops = C.read_list read_op_snapshot d in
  {
    index;
    fraction;
    new_blocks;
    predicted_cost;
    actual_cost;
    started_at;
    finished_at;
    estimate;
    variance;
    ops;
  }

(* ------------------------------------------------------------------ *)
(* The executor snapshot, meta and checkpoint payloads                  *)

let executor_snapshot b (s : Executor.snapshot) =
  query b s.snap_query;
  aggregate b s.snap_aggregate;
  config b s.snap_config;
  C.float b s.snap_quota;
  C.float b s.snap_start;
  staged_snapshot b s.snap_staged;
  cost_model_dump b s.snap_cost_model;
  C.float b s.snap_useful_time;
  C.int b s.snap_stages_attempted;
  C.int b s.snap_stages_completed;
  C.list stage b s.snap_trace_rev;
  C.list C.float b s.snap_recent_estimates;
  C.option count_estimator b s.snap_last_good;
  C.int b s.snap_useful_blocks;
  summary_dump b s.snap_residuals;
  C.list C.int b s.snap_io_before;
  C.int b s.snap_faults_before;
  C.float b s.snap_fault_time_before;
  C.bool b s.snap_forced_degraded

let read_executor_snapshot d : Executor.snapshot =
  let snap_query = read_query d in
  let snap_aggregate = read_aggregate d in
  let snap_config = read_config d in
  let snap_quota = C.read_float d in
  let snap_start = C.read_float d in
  let snap_staged = read_staged_snapshot d in
  let snap_cost_model = read_cost_model_dump d in
  let snap_useful_time = C.read_float d in
  let snap_stages_attempted = C.read_int d in
  let snap_stages_completed = C.read_int d in
  let snap_trace_rev = C.read_list read_stage d in
  let snap_recent_estimates = C.read_list C.read_float d in
  let snap_last_good = C.read_option read_count_estimator d in
  let snap_useful_blocks = C.read_int d in
  let snap_residuals = read_summary_dump d in
  let snap_io_before = C.read_list C.read_int d in
  let snap_faults_before = C.read_int d in
  let snap_fault_time_before = C.read_float d in
  let snap_forced_degraded = C.read_bool d in
  {
    snap_query;
    snap_aggregate;
    snap_config;
    snap_quota;
    snap_start;
    snap_staged;
    snap_cost_model;
    snap_useful_time;
    snap_stages_attempted;
    snap_stages_completed;
    snap_trace_rev;
    snap_recent_estimates;
    snap_last_good;
    snap_useful_blocks;
    snap_residuals;
    snap_io_before;
    snap_faults_before;
    snap_fault_time_before;
    snap_forced_degraded;
  }

let meta b (m : meta) =
  query b m.m_query;
  aggregate b m.m_aggregate;
  config b m.m_config;
  C.float b m.m_quota;
  C.int b m.m_seed;
  cost_params b m.m_params;
  fault_plan b m.m_fault_plan;
  C.int b m.m_fault_seed

let read_meta d : meta =
  let m_query = read_query d in
  let m_aggregate = read_aggregate d in
  let m_config = read_config d in
  let m_quota = C.read_float d in
  let m_seed = C.read_int d in
  let m_params = read_cost_params d in
  let m_fault_plan = read_fault_plan d in
  let m_fault_seed = C.read_int d in
  { m_query; m_aggregate; m_config; m_quota; m_seed; m_params; m_fault_plan;
    m_fault_seed }

let checkpoint b (c : checkpoint) =
  C.float b c.c_at;
  executor_snapshot b c.c_exec;
  device_dump b c.c_device

let read_checkpoint d : checkpoint =
  let c_at = C.read_float d in
  let c_exec = read_executor_snapshot d in
  let c_device = read_device_dump d in
  { c_at; c_exec; c_device }
