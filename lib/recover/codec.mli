(** Deterministic binary codec for journal record payloads.

    Little-endian, fixed-width, schema-less: writer and reader agree on
    the layout via the record tag. Floats are encoded as their IEEE-754
    bit pattern so an encode/decode round trip is bit-exact — this is
    load-bearing for the boundary-crash bit-identity guarantee (see
    docs/RECOVERY.md). [Marshal] is deliberately avoided: a corrupt
    record must raise {!Decode_error}, not crash the process. *)

exception Decode_error of string

(** {2 Encoding} *)

type encoder

val encoder : unit -> encoder
val contents : encoder -> string

val u8 : encoder -> int -> unit
val i32 : encoder -> int32 -> unit
val i64 : encoder -> int64 -> unit
val int : encoder -> int -> unit
val float : encoder -> float -> unit
val bool : encoder -> bool -> unit
val string : encoder -> string -> unit
val option : (encoder -> 'a -> unit) -> encoder -> 'a option -> unit
val list : (encoder -> 'a -> unit) -> encoder -> 'a list -> unit
val array : (encoder -> 'a -> unit) -> encoder -> 'a array -> unit

val pair :
  (encoder -> 'a -> unit) ->
  (encoder -> 'b -> unit) ->
  encoder ->
  'a * 'b ->
  unit

val to_string : (encoder -> 'a -> unit) -> 'a -> string

(** {2 Decoding}

    Every [read_*] raises {!Decode_error} on truncation or a malformed
    tag — never an [Invalid_argument] or a garbage value. *)

type decoder

val decoder : string -> decoder
val at_end : decoder -> bool

val read_u8 : decoder -> int
val read_i32 : decoder -> int32
val read_i64 : decoder -> int64
val read_int : decoder -> int
val read_float : decoder -> float
val read_bool : decoder -> bool
val read_string : decoder -> string
val read_option : (decoder -> 'a) -> decoder -> 'a option
val read_list : (decoder -> 'a) -> decoder -> 'a list
val read_array : (decoder -> 'a) -> decoder -> 'a array
val read_pair : (decoder -> 'a) -> (decoder -> 'b) -> decoder -> 'a * 'b

val of_string : (decoder -> 'a) -> string -> 'a
(** Decode a whole payload; trailing bytes are a {!Decode_error}. *)

(** {2 Domain primitives} *)

val value : encoder -> Taqp_data.Value.t -> unit
val read_value : decoder -> Taqp_data.Value.t
val tuple : encoder -> Taqp_data.Tuple.t -> unit
val read_tuple : decoder -> Taqp_data.Tuple.t
val rng_state : encoder -> Taqp_rng.Prng.state -> unit
val read_rng_state : decoder -> Taqp_rng.Prng.state
