(** Payload codecs for one query's recovery journal: the {!meta}
    record written once at journal creation and a {!checkpoint} record
    per stage boundary.

    Two things deliberately do not round-trip (see docs/RECOVERY.md):
    [Config.selectivity_oracle] (a closure — dropped on encode,
    re-injected by the resuming caller) and the catalog (recovery only
    makes sense against the same store; the caller supplies it). *)

type meta = {
  m_query : Taqp_relational.Ra.t;
  m_aggregate : Taqp_core.Aggregate.t;
  m_config : Taqp_core.Config.t;
  m_quota : float;
  m_seed : int;
      (** the run's sampling seed — informational only: resume
          restores every stream position from the checkpoint, it never
          re-derives one from the seed *)
  m_params : Taqp_storage.Cost_params.t;
  m_fault_plan : Taqp_fault.Fault_plan.t;
  m_fault_seed : int;
}

type checkpoint = {
  c_at : float;
      (** clock reading once the checkpoint (including its own
          journal-write charge) completed — the instant a
          boundary-exact resume restores the clock to *)
  c_exec : Taqp_core.Executor.snapshot;
  c_device : Taqp_storage.Device.dump;
}

val meta : Codec.encoder -> meta -> unit
val read_meta : Codec.decoder -> meta

val checkpoint : Codec.encoder -> checkpoint -> unit
val read_checkpoint : Codec.decoder -> checkpoint

(** {2 Shared building blocks}

    Exposed for the scheduler's own journal records
    ({!Taqp_sched.Sched_journal}) and for tests. *)

val query : Codec.encoder -> Taqp_relational.Ra.t -> unit
val read_query : Codec.decoder -> Taqp_relational.Ra.t
val aggregate : Codec.encoder -> Taqp_core.Aggregate.t -> unit
val read_aggregate : Codec.decoder -> Taqp_core.Aggregate.t
val config : Codec.encoder -> Taqp_core.Config.t -> unit
val read_config : Codec.decoder -> Taqp_core.Config.t
val cost_params : Codec.encoder -> Taqp_storage.Cost_params.t -> unit
val read_cost_params : Codec.decoder -> Taqp_storage.Cost_params.t
val fault_plan : Codec.encoder -> Taqp_fault.Fault_plan.t -> unit
val read_fault_plan : Codec.decoder -> Taqp_fault.Fault_plan.t
val device_dump : Codec.encoder -> Taqp_storage.Device.dump -> unit
val read_device_dump : Codec.decoder -> Taqp_storage.Device.dump
val executor_snapshot : Codec.encoder -> Taqp_core.Executor.snapshot -> unit
val read_executor_snapshot : Codec.decoder -> Taqp_core.Executor.snapshot
val stage : Codec.encoder -> Taqp_core.Report.stage -> unit
val read_stage : Codec.decoder -> Taqp_core.Report.stage
