(** One query's write-ahead stage journal and its recovery path.

    Writing side: {!create} opens the journal and records the
    {!Checkpoint.meta} needed to rebuild the run; {!checkpoint} is
    called at each stage boundary (right after a [`Continue] step) and
    appends the full executor + device state, {e charging the write to
    the clock} through {!Taqp_storage.Device.journal_write} so
    checkpointing cost is visible to the time-control strategies, and
    bumping the [recover.checkpoints] / [recover.checkpoint_bytes]
    metrics (plus a [recover]-category trace span when tracing).

    Reading side: {!load} applies the journal's torn-tail rule and
    decodes what survives; {!resume_last} rebuilds a device and a live
    {!Taqp_core.Executor.handle} from the newest checkpoint, re-armed
    at the {e original} absolute deadline — crash downtime is lost
    quota, never extra time. A resume from the exact crash boundary
    ([now] = the checkpoint instant) continues bit-identically; a
    later [now] (the crash landed mid-stage, its progress is gone)
    marks the handle dirty so the eventual report is [degraded] with a
    widened interval. See docs/RECOVERY.md. *)

type t

val create : path:string -> device:Taqp_storage.Device.t -> Checkpoint.meta -> t
(** Create/truncate the journal and append the meta record. The
    device is the one the journaled run evaluates on. *)

val checkpoint : t -> Taqp_core.Executor.handle -> unit
(** Snapshot the handle and device and append one checkpoint record.
    Call at stage boundaries only. Never raises on a deadline: if the
    quota expires during the checkpoint's own charge, the record is
    still written (the resumed run will finalize exactly as the
    crashed one would have). *)

val meta : t -> Checkpoint.meta
val path : t -> string
val close : t -> unit

(** {2 Recovery} *)

type loaded = {
  l_meta : Checkpoint.meta;
  l_checkpoints : Checkpoint.checkpoint list;  (** oldest first *)
  l_torn : string option;
      (** description of the discarded torn tail, if any *)
}

val load : string -> (loaded, string) result
(** Read and decode a journal. A torn tail is reported, not an error;
    an unreadable file, bad magic, missing meta record or a record
    that fails to decode is. *)

val resume_last :
  ?sink:Taqp_obs.Sink.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?now:float ->
  ?selectivity_oracle:(Taqp_relational.Ra.t -> float) ->
  catalog:Taqp_storage.Catalog.t ->
  loaded ->
  (Taqp_storage.Device.t * Taqp_core.Executor.handle, string) result
(** Rebuild a virtual-clock device (cost params, jitter and fault
    stream positions, IO counters all restored from the newest
    checkpoint) and resume the handle from it. [now] is the recovery
    instant on the virtual clock — default the checkpoint's own
    instant (boundary-exact resume); a later [now] burns the
    difference as lost quota and marks the report [degraded]. Pending
    [Crash] fault rules are disabled on the resumed injector so a
    deterministic killer cannot crash-loop the recovery.
    [selectivity_oracle] re-injects the config's oracle closure
    (closures cannot be journaled). Bumps [recover.resumes] (and
    [recover.torn_records] when the journal had a torn tail). *)
