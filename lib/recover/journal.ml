(* The append-only journal file: an 8-byte magic followed by framed
   records [len:u32le][crc32(payload):u32le][payload]. Every append is
   flushed, so after a kill the file ends either exactly on a frame
   boundary or inside the last frame — never with an earlier frame
   damaged. Reading therefore applies a torn-tail rule: the first
   frame that is short, out of range or fails its checksum marks the
   end of the usable journal and everything from it on is discarded
   (and reported, so callers can count torn records). *)

let magic = "TAQPJRN1"
let frame_overhead = 8

type writer = { w_path : string; oc : out_channel; mutable closed : bool }

let create path =
  let oc = open_out_bin path in
  output_string oc magic;
  flush oc;
  { w_path = path; oc; closed = false }

let path w = w.w_path

let append w payload =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  let hdr = Bytes.create frame_overhead in
  Bytes.set_int32_le hdr 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le hdr 4 (Crc32.string payload);
  output_bytes w.oc hdr;
  output_string w.oc payload;
  flush w.oc

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

type tail = Clean | Torn of { at : int; reason : string }

type read = { records : string list; tail : tail }

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Ok (really_input_string ic n))

let load path =
  match read_file path with
  | Error _ as e -> e
  | Ok s ->
      let total = String.length s in
      if total < String.length magic || not (String.starts_with ~prefix:magic s)
      then Error (Printf.sprintf "%s: not a taqp journal (bad magic)" path)
      else begin
        let records = ref [] in
        let pos = ref (String.length magic) in
        let tail = ref Clean in
        let torn reason =
          tail := Torn { at = !pos; reason };
          pos := total
        in
        while !pos < total do
          let at = !pos in
          if at + frame_overhead > total then
            torn
              (Printf.sprintf "truncated frame header (%d of %d bytes)"
                 (total - at) frame_overhead)
          else begin
            let len = Int32.to_int (String.get_int32_le s at) in
            let crc = String.get_int32_le s (at + 4) in
            if len < 0 then
              torn (Printf.sprintf "negative record length %d" len)
            else if at + frame_overhead + len > total then
              torn
                (Printf.sprintf "truncated record body (%d of %d bytes)"
                   (total - at - frame_overhead) len)
            else
              let payload = String.sub s (at + frame_overhead) len in
              if Crc32.string payload <> crc then
                torn "record checksum mismatch"
              else begin
                records := payload :: !records;
                pos := at + frame_overhead + len
              end
          end
        done;
        Ok { records = List.rev !records; tail = !tail }
      end
