(** The append-only journal file: an 8-byte magic ["TAQPJRN1"], then
    framed records [[len:u32le][crc32(payload):u32le][payload]].

    Durability contract: {!append} flushes, so a process killed at any
    instant leaves a file whose prefix of complete frames is intact —
    the only possible damage is a torn final frame, which {!load}
    detects (length out of range or CRC mismatch) and discards along
    with everything after it. See docs/RECOVERY.md. *)

val magic : string
val frame_overhead : int
(** Bytes of framing per record (length + checksum). *)

(** {2 Writing} *)

type writer

val create : string -> writer
(** Create/truncate the journal at a path and write the magic. *)

val path : writer -> string
val append : writer -> string -> unit
(** Frame, write and flush one record payload. *)

val close : writer -> unit

(** {2 Reading} *)

type tail =
  | Clean
  | Torn of { at : int; reason : string }
      (** byte offset of the first unusable frame, and why *)

type read = { records : string list; tail : tail }
(** Record payloads in append order; [tail] says whether the file
    ended cleanly on a frame boundary. *)

val load : string -> (read, string) result
(** [Error] only for an unreadable file or a bad magic — a torn tail
    is a normal crash artifact, reported in [tail], never an error. *)
