module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Metrics = Taqp_obs.Metrics
module Tracer = Taqp_obs.Tracer
module Executor = Taqp_core.Executor
module Injector = Taqp_fault.Injector

let tag_meta = 1
let tag_checkpoint = 2

type t = {
  writer : Journal.writer;
  device : Device.t;
  meta : Checkpoint.meta;
  c_checkpoints : Metrics.Counter.t;
  c_bytes : Metrics.Counter.t;
}

let meta t = t.meta
let path t = Journal.path t.writer

let create ~path ~device m =
  let writer = Journal.create path in
  Journal.append writer
    (Codec.to_string
       (fun b m ->
         Codec.u8 b tag_meta;
         Checkpoint.meta b m)
       m);
  let metrics = Device.metrics device in
  {
    writer;
    device;
    meta = m;
    c_checkpoints = Metrics.counter metrics "recover.checkpoints";
    c_bytes = Metrics.counter metrics "recover.checkpoint_bytes";
  }

let close t = Journal.close t.writer

let encode_checkpoint (c : Checkpoint.checkpoint) =
  Codec.to_string
    (fun b c ->
      Codec.u8 b tag_checkpoint;
      Checkpoint.checkpoint b c)
    c

let checkpoint t handle =
  let clock = Device.clock t.device in
  let snap = Executor.snapshot handle in
  let dev = Device.dump t.device in
  (* Size the record with a placeholder timestamp (floats are fixed
     width, so the real record is byte-for-byte the same size), charge
     the write to the clock, and only then read the clock for the
     checkpoint instant: [c_at] is the time the checkpoint *completed*,
     which is exactly where a boundary-exact resume restores the clock
     to. If the deadline fires during the charge the clock pins at the
     deadline and the record is still written — the resumed run's next
     step then deterministically finalizes Quota_exhausted, the same
     way the uninterrupted run's would. *)
  let sized =
    encode_checkpoint { Checkpoint.c_at = 0.0; c_exec = snap; c_device = dev }
  in
  let bytes = String.length sized + Journal.frame_overhead in
  let t0 = Clock.now clock in
  (try Device.journal_write t.device ~bytes
   with Clock.Deadline_exceeded _ -> ());
  let at = Clock.now clock in
  Journal.append t.writer
    (encode_checkpoint { Checkpoint.c_at = at; c_exec = snap; c_device = dev });
  Metrics.Counter.incr t.c_checkpoints;
  Metrics.Counter.add t.c_bytes bytes;
  let tracer = Device.tracer t.device in
  if Tracer.enabled tracer then
    Tracer.complete tracer ~cat:"recover" ~begin_ts:t0 "checkpoint"
      ~args:
        [
          ("bytes", Taqp_obs.Event.Int bytes);
          ("stage", Taqp_obs.Event.Int snap.Executor.snap_stages_completed);
        ]

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)

type loaded = {
  l_meta : Checkpoint.meta;
  l_checkpoints : Checkpoint.checkpoint list;
  l_torn : string option;
}

let decode_meta payload =
  let d = Codec.decoder payload in
  match Codec.read_u8 d with
  | tag when tag = tag_meta ->
      let m = Checkpoint.read_meta d in
      if not (Codec.at_end d) then
        raise (Codec.Decode_error "trailing bytes after meta record");
      m
  | tag ->
      raise
        (Codec.Decode_error
           (Printf.sprintf "expected meta record (tag %d), found tag %d"
              tag_meta tag))

let decode_checkpoint payload =
  let d = Codec.decoder payload in
  match Codec.read_u8 d with
  | tag when tag = tag_checkpoint ->
      let c = Checkpoint.read_checkpoint d in
      if not (Codec.at_end d) then
        raise (Codec.Decode_error "trailing bytes after checkpoint record");
      c
  | tag ->
      raise
        (Codec.Decode_error
           (Printf.sprintf "expected checkpoint record (tag %d), found tag %d"
              tag_checkpoint tag))

let load path =
  match Journal.load path with
  | Error _ as e -> e
  | Ok { records = []; _ } ->
      Error (path ^ ": empty journal (no meta record)")
  | Ok { records = first :: rest; tail } -> (
      match
        let m = decode_meta first in
        let cps = List.map decode_checkpoint rest in
        (m, cps)
      with
      | m, cps ->
          Ok
            {
              l_meta = m;
              l_checkpoints = cps;
              l_torn =
                (match tail with
                | Journal.Clean -> None
                | Journal.Torn { at; reason } ->
                    Some (Printf.sprintf "torn tail at byte %d: %s" at reason));
            }
      | exception Codec.Decode_error m -> Error (path ^ ": " ^ m))

let resume_last ?sink ?metrics ?now ?selectivity_oracle ~catalog loaded =
  match List.rev loaded.l_checkpoints with
  | [] -> Error "journal has no checkpoints: nothing to resume"
  | last :: _ ->
      let m = loaded.l_meta in
      let now = Option.value now ~default:last.Checkpoint.c_at in
      if now < last.Checkpoint.c_at then
        Error
          (Printf.sprintf
             "resume instant %g precedes the checkpoint instant %g" now
             last.Checkpoint.c_at)
      else begin
        let clock = Clock.create_virtual () in
        Clock.restore clock ~now;
        let tracer =
          match sink with
          | None -> None
          | Some sink ->
              Some (Tracer.make ~now:(fun () -> Clock.now clock) ~sink)
        in
        (* Streams are created with dummy seeds purely so the device
           has the right shape; [Device.restore] overwrites every
           stream position from the checkpoint. *)
        let jitter_rng =
          Option.map
            (fun _ -> Taqp_rng.Prng.create 0)
            last.Checkpoint.c_device.Device.d_jitter
        in
        let faults =
          Option.map
            (fun _ -> Injector.create ~seed:m.Checkpoint.m_fault_seed
                        m.Checkpoint.m_fault_plan)
            last.Checkpoint.c_device.Device.d_faults
        in
        let device =
          Device.create ~params:m.Checkpoint.m_params ?jitter_rng ?metrics
            ?tracer ?faults clock
        in
        Device.restore device last.Checkpoint.c_device;
        (* A resumed process never re-creates its own killer: pending
           Crash rules are skipped (without consuming a Bernoulli draw)
           so recovery cannot crash-loop on the same deterministic
           fault. All other fault kinds keep firing as planned. *)
        Option.iter Injector.disable_crashes (Device.fault_injector device);
        let dirty = now > last.Checkpoint.c_at in
        let handle =
          Executor.resume ~device ~catalog ?selectivity_oracle ~dirty
            last.Checkpoint.c_exec
        in
        let registry = Device.metrics device in
        Metrics.Counter.incr (Metrics.counter registry "recover.resumes");
        if loaded.l_torn <> None then
          Metrics.Counter.incr
            (Metrics.counter registry "recover.torn_records");
        Ok (device, handle)
      end
