type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand the integer seed into xoshiro state. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Uniform int in [0, n) by rejection on the top 62 bits, avoiding
   modulo bias. *)
let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  let bound = (max_int / n) * n in
  let rec go v = if v < bound then v mod n else go (Int64.to_int (Int64.shift_right_logical (bits64 t) 2)) in
  go mask

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits mapped to [0,1). *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (u *. 0x1p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L

let rec gaussian ?(mu = 0.0) ?(sigma = 1.0) t =
  let u = (2.0 *. float t 1.0) -. 1.0 in
  let v = (2.0 *. float t 1.0) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then gaussian ~mu ~sigma t
  else mu +. (sigma *. u *. sqrt (-2.0 *. log s /. s))

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  -.log (1.0 -. float t 1.0) /. lambda

let lognormal_factor t s =
  if s <= 0.0 then 1.0
  else exp (gaussian ~sigma:s t -. (s *. s /. 2.0))

type state = int64 * int64 * int64 * int64

let state t = (t.s0, t.s1, t.s2, t.s3)

let set_state t (s0, s1, s2, s3) =
  t.s0 <- s0;
  t.s1 <- s1;
  t.s2 <- s2;
  t.s3 <- s3
