(** Seeded, splittable pseudo-random number generator.

    Implementation: xoshiro256** seeded through splitmix64. Deterministic
    for a given seed, so every experiment in the repository is exactly
    reproducible. Not cryptographically secure. *)

type t

val create : int -> t
(** Generator seeded from an integer. Equal seeds give equal streams. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's
    subsequent output. Advances the parent. *)

val copy : t -> t

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n). @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val bool : t -> bool

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate by Box–Muller (polar form). Defaults mu=0, sigma=1. *)

val exponential : t -> float -> float
(** [exponential t lambda] with mean [1/lambda]. *)

val lognormal_factor : t -> float -> float
(** [lognormal_factor t s] is [exp (gaussian ~sigma:s)] with the mean
    corrected to 1.0 — a multiplicative jitter factor. *)

(** {2 Checkpointing}

    The full xoshiro256** state, exposed so a crash-safe checkpoint can
    record the exact stream position and a recovery can resume drawing
    from it ({!Taqp_recover}). *)

type state = int64 * int64 * int64 * int64

val state : t -> state

val set_state : t -> state -> unit
(** Overwrite the generator's stream position in place. After
    [set_state t (state t')] the two generators produce identical
    subsequent streams. *)
