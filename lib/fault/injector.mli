(** The seeded fault source a device consults at every charge point.

    An injector binds a {!Fault_plan} to its own PRNG stream, so fault
    decisions are (a) deterministic given the fault seed and (b) fully
    decoupled from the sampling and jitter streams — installing a plan
    with no rules, or changing the fault seed, can never perturb which
    tuples are drawn. The injector also keeps the run's fault log and
    the total injected time, which the executor folds into the final
    report's degradation accounting. *)

type event = {
  ev_op : string;  (** charge point that faulted *)
  ev_kind : Fault_plan.kind;
  ev_at : float;  (** clock time of the fault *)
  ev_attempt : int;  (** 1 for a first failure, n for the n-th retry *)
  ev_recovered : bool;
      (** transient kinds: the subsequent retry succeeded; slowdown
          kinds are always recovered *)
}

exception
  Unrecoverable of {
    op : string;
    kind : Fault_plan.kind;
    attempts : int;
    at : float;
  }
(** Raised by the device when a transient fault survives the plan's
    whole retry budget. The executor converts it into a degraded
    partial report; it never escapes {!Taqp_core.Executor.run}. *)

type t

val create : ?seed:int -> Fault_plan.t -> t
(** [seed] defaults to 0. Equal plans and seeds give identical fault
    sequences on identical charge sequences. *)

val plan : t -> Fault_plan.t

val active : t -> bool
(** [false] iff the plan has no rules; an inactive injector is never
    consulted by the device. *)

val draw : t -> op:string -> now:float -> Fault_plan.kind option
(** Consult the plan at charge point [op] at clock time [now]: the
    first rule that matches (by op and window, with firing budget
    left) and wins its probability draw fires. At most one fault per
    consultation. *)

val record :
  t -> op:string -> kind:Fault_plan.kind -> at:float -> attempt:int ->
  recovered:bool -> unit

val add_injected_time : t -> float -> unit
(** Account seconds of clock time that exist only because of faults
    (spike excess, stall time, retry backoff and re-read charges). *)

val injected_time : t -> float

val events : t -> event list
(** The fault log, oldest first. *)

val fault_count : t -> int
val unrecovered_count : t -> int

val pp_event : Format.formatter -> event -> unit
