(** The seeded fault source a device consults at every charge point.

    An injector binds a {!Fault_plan} to its own PRNG stream, so fault
    decisions are (a) deterministic given the fault seed and (b) fully
    decoupled from the sampling and jitter streams — installing a plan
    with no rules, or changing the fault seed, can never perturb which
    tuples are drawn. The injector also keeps the run's fault log and
    the total injected time, which the executor folds into the final
    report's degradation accounting. *)

type event = {
  ev_op : string;  (** charge point that faulted *)
  ev_kind : Fault_plan.kind;
  ev_at : float;  (** clock time of the fault *)
  ev_attempt : int;  (** 1 for a first failure, n for the n-th retry *)
  ev_recovered : bool;
      (** transient kinds: the subsequent retry succeeded; slowdown
          kinds are always recovered *)
}

exception
  Unrecoverable of {
    op : string;
    kind : Fault_plan.kind;
    attempts : int;
    at : float;
  }
(** Raised by the device when a transient fault survives the plan's
    whole retry budget. The executor converts it into a degraded
    partial report; it never escapes {!Taqp_core.Executor.run}. *)

type t

val create : ?seed:int -> Fault_plan.t -> t
(** [seed] defaults to 0. Equal plans and seeds give identical fault
    sequences on identical charge sequences. *)

val plan : t -> Fault_plan.t

val active : t -> bool
(** [false] iff the plan has no rules; an inactive injector is never
    consulted by the device. *)

val draw : t -> op:string -> now:float -> Fault_plan.kind option
(** Consult the plan at charge point [op] at clock time [now]: the
    first rule that matches (by op and window, with firing budget
    left) and wins its probability draw fires. At most one fault per
    consultation. *)

val record :
  t -> op:string -> kind:Fault_plan.kind -> at:float -> attempt:int ->
  recovered:bool -> unit

val add_injected_time : t -> float -> unit
(** Account seconds of clock time that exist only because of faults
    (spike excess, stall time, retry backoff and re-read charges). *)

val injected_time : t -> float

val events : t -> event list
(** The fault log, oldest first. *)

val fault_count : t -> int
val unrecovered_count : t -> int

val pp_event : Format.formatter -> event -> unit

exception Crashed of { op : string; at : float }
(** Raised by the device when a {!Fault_plan.Crash} rule fires: the
    simulated process dies mid-charge. Unlike {!Unrecoverable} this is
    {e not} converted into a degraded report — it escapes the executor
    (and the scheduler) entirely, exactly like a SIGKILL. Only a
    {!Taqp_recover} journal written before the crash can save the
    run's progress. *)

val disable_crashes : t -> unit
(** Stop all [Crash] rules from firing (they are skipped without
    consuming a probability draw). Recovery calls this on the rebuilt
    injector so a deterministic kill rule cannot re-kill the resumed
    process in an endless loop; every other fault kind keeps firing. *)

val crashes_enabled : t -> bool

(** {2 Checkpointing}

    The injector's evolving state — stream position, per-rule firing
    budgets, fault log and injected-time account. The plan and seed are
    not included: recovery re-creates the injector from the journaled
    plan and seed, then restores this dump into it. *)

type dump = {
  d_rng : Taqp_rng.Prng.state;
  d_fired : int array;
  d_events_rev : event list;  (** newest first *)
  d_n_events : int;
  d_n_unrecovered : int;
  d_injected : float;
}

val dump : t -> dump

val restore : t -> dump -> unit
(** @raise Invalid_argument if the rule counts differ (the dump was
    taken under a different plan). *)
