type kind =
  | Read_error
  | Latency_spike of float
  | Stall of float
  | Torn_block
  | Crash

type rule = {
  op : string option;
  kind : kind;
  probability : float;
  after : float;
  until : float;
  max_faults : int;
}

type t = {
  rules : rule list;
  max_retries : int;
  backoff : float;
  backoff_multiplier : float;
}

let none = { rules = []; max_retries = 3; backoff = 0.01; backoff_multiplier = 2.0 }

let is_none t = t.rules = []

let kind_name = function
  | Read_error -> "read_error"
  | Latency_spike _ -> "latency_spike"
  | Stall _ -> "stall"
  | Torn_block -> "torn_block"
  | Crash -> "crash"

let pp_kind ppf = function
  | Read_error -> Format.pp_print_string ppf "read_error"
  | Latency_spike f -> Format.fprintf ppf "latency_spike(x%g)" f
  | Stall d -> Format.fprintf ppf "stall(%gs)" d
  | Torn_block -> Format.pp_print_string ppf "torn_block"
  | Crash -> Format.pp_print_string ppf "crash"

let is_read_kind = function
  | Read_error | Torn_block -> true
  | Latency_spike _ | Stall _ | Crash -> false

let rule ?op ?(after = 0.0) ?(until = infinity) ?(max_faults = max_int)
    ~probability kind =
  if probability < 0.0 || probability > 1.0 then
    invalid_arg "Fault_plan.rule: probability outside [0,1]";
  (match kind with
  | Latency_spike f when f <= 1.0 ->
      invalid_arg "Fault_plan.rule: latency factor must exceed 1"
  | Stall d when d <= 0.0 ->
      invalid_arg "Fault_plan.rule: stall duration must be positive"
  | _ -> ());
  if after < 0.0 || until <= after then
    invalid_arg "Fault_plan.rule: empty or negative fault window";
  if max_faults < 1 then invalid_arg "Fault_plan.rule: max_faults < 1";
  let op =
    match op with
    | Some _ as op -> op
    | None -> if is_read_kind kind then Some "read_block" else None
  in
  { op; kind; probability; after; until; max_faults }

let crash_at at = rule ~after:at ~probability:1.0 ~max_faults:1 Crash

let crash_per_stage ~probability =
  rule ~op:"stage_overhead" ~probability Crash

let make ?(max_retries = 3) ?(backoff = 0.01) ?(backoff_multiplier = 2.0) rules =
  if max_retries < 0 then invalid_arg "Fault_plan.make: max_retries < 0";
  if backoff <= 0.0 then invalid_arg "Fault_plan.make: backoff <= 0";
  if backoff_multiplier < 1.0 then
    invalid_arg "Fault_plan.make: backoff_multiplier < 1";
  { rules; max_retries; backoff; backoff_multiplier }

(* The named scenarios: the axes of the bench chaos matrix. Rates are
   deliberately moderate — frequent enough to exercise every fault
   path within a few stages, rare enough that a run under the default
   strategies still ends in a useful report. *)
let preset = function
  | "none" -> Some none
  | "transient" ->
      (* recoverable read errors: retries succeed well within budget *)
      Some (make [ rule ~probability:0.05 Read_error ])
  | "latency" ->
      Some (make [ rule ~probability:0.05 (Latency_spike 4.0) ])
  | "stall" ->
      Some (make [ rule ~probability:0.005 (Stall 0.25) ])
  | "torn" -> Some (make [ rule ~probability:0.04 Torn_block ])
  | "heavy" ->
      Some
        (make ~max_retries:4
           [
             rule ~probability:0.08 Read_error;
             rule ~probability:0.04 Torn_block;
             rule ~probability:0.08 (Latency_spike 3.0);
             rule ~probability:0.01 (Stall 0.2);
           ])
  | "unrecoverable" ->
      (* a certain read error: every retry fails too, so the first
         block read escalates past the retry budget *)
      Some (make [ rule ~probability:1.0 Read_error ])
  | _ -> None

let preset_names =
  [ "none"; "transient"; "latency"; "stall"; "torn"; "heavy"; "unrecoverable" ]

(* Expected fractional cost inflation of a charge under this plan:
   sum over rules of p * (relative impact of one fault). Stall
   durations and retry backoffs are absolute, so they are relativized
   against [charge_cost], a typical per-charge price (the device's
   block-read cost). Windows and firing budgets are ignored — this is
   a sizing prior, not a forecast. *)
let expected_load ?(charge_cost = 0.035) t =
  let charge_cost = Float.max 1e-6 charge_cost in
  List.fold_left
    (fun acc r ->
      let impact =
        match r.kind with
        | Latency_spike f -> f -. 1.0
        | Stall d -> d /. charge_cost
        | Read_error | Torn_block ->
            (* one retry: the re-read plus the first backoff *)
            1.0 +. (t.backoff /. charge_cost)
        | Crash ->
            (* a process kill inflates no charge — it ends the run;
               headroom cannot buy it back, recovery can *)
            0.0
      in
      acc +. (r.probability *. impact))
    0.0 t.rules

(* ------------------------------------------------------------------ *)
(* Scenario DSL                                                        *)

let parse_error fmt = Fmt.kstr (fun s -> Error s) fmt

let split_on_char_trim c s =
  String.split_on_char c s |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let parse_float key v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> parse_error "%s: not a number: %S" key v

let parse_int key v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> parse_error "%s: not an integer: %S" key v

let ( let* ) = Result.bind

let parse_fields fields =
  List.fold_left
    (fun acc field ->
      let* acc = acc in
      match String.index_opt field '=' with
      | None -> parse_error "expected key=value, got %S" field
      | Some i ->
          let k = String.trim (String.sub field 0 i) in
          let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
          Ok ((k, v) :: acc))
    (Ok []) fields

let parse_rule_clause kind_s fields =
  let* kvs = parse_fields fields in
  let lookup k = List.assoc_opt k kvs in
  let float_field k =
    match lookup k with
    | None -> Ok None
    | Some v ->
        let* f = parse_float k v in
        Ok (Some f)
  in
  let* p =
    match lookup "p" with
    | None -> parse_error "%s: missing p=PROB" kind_s
    | Some v -> parse_float "p" v
  in
  let* kind =
    match kind_s with
    | "read_error" -> Ok Read_error
    | "torn_block" -> Ok Torn_block
    | "latency" ->
        let* f = float_field "factor" in
        Ok (Latency_spike (Option.value ~default:4.0 f))
    | "stall" ->
        let* d = float_field "dur" in
        Ok (Stall (Option.value ~default:0.1 d))
    | "crash" -> Ok Crash
    | k -> parse_error "unknown fault kind %S" k
  in
  let* after = float_field "after" in
  let* until = float_field "until" in
  let* max_faults =
    match lookup "max" with
    | None -> Ok None
    | Some v ->
        let* n = parse_int "max" v in
        Ok (Some n)
  in
  match
    rule ?op:(lookup "op") ?after ?until:(Option.map Fun.id until)
      ?max_faults ~probability:p kind
  with
  | r -> Ok r
  | exception Invalid_argument m -> Error m

let of_string s =
  match preset (String.trim s) with
  | Some plan -> Ok plan
  | None ->
      let clauses = split_on_char_trim ';' s in
      if clauses = [] then parse_error "empty fault scenario"
      else
        let* rules_rev, retries, backoff, backoff_mult =
          List.fold_left
            (fun acc clause ->
              let* rules, retries, backoff, mult = acc in
              match split_on_char_trim ':' clause with
              | [ kind_s; fields ] ->
                  let* r = parse_rule_clause kind_s (split_on_char_trim ',' fields) in
                  Ok (r :: rules, retries, backoff, mult)
              | [ single ] -> (
                  (* plan-level key=value clause *)
                  match String.index_opt single '=' with
                  | None -> parse_error "unparseable clause %S" clause
                  | Some i ->
                      let k = String.trim (String.sub single 0 i) in
                      let v =
                        String.trim
                          (String.sub single (i + 1) (String.length single - i - 1))
                      in
                      (match k with
                      | "retries" ->
                          let* n = parse_int k v in
                          Ok (rules, Some n, backoff, mult)
                      | "backoff" ->
                          let* f = parse_float k v in
                          Ok (rules, retries, Some f, mult)
                      | "backoff_mult" ->
                          let* f = parse_float k v in
                          Ok (rules, retries, backoff, Some f)
                      | _ -> parse_error "unknown plan clause %S" k))
              | _ -> parse_error "unparseable clause %S" clause)
            (Ok ([], None, None, None))
            clauses
        in
        if rules_rev = [] then parse_error "scenario has no fault rules"
        else
          (match
             make ?max_retries:retries ?backoff ?backoff_multiplier:backoff_mult
               (List.rev rules_rev)
           with
          | plan -> Ok plan
          | exception Invalid_argument m -> Error m)

let pp_rule ppf r =
  Format.fprintf ppf "%a p=%g%s%s%s"
    pp_kind r.kind r.probability
    (match r.op with None -> "" | Some op -> " op=" ^ op)
    (if r.after > 0.0 || r.until < infinity then
       Printf.sprintf " window=[%g,%g)" r.after r.until
     else "")
    (if r.max_faults < max_int then Printf.sprintf " max=%d" r.max_faults
     else "")

let pp ppf t =
  if is_none t then Format.pp_print_string ppf "no-faults"
  else
    Format.fprintf ppf "@[<v>%a@ retries=%d backoff=%gs x%g@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
      t.rules t.max_retries t.backoff t.backoff_multiplier
