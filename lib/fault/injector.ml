module Prng = Taqp_rng.Prng

type event = {
  ev_op : string;
  ev_kind : Fault_plan.kind;
  ev_at : float;
  ev_attempt : int;
  ev_recovered : bool;
}

exception
  Unrecoverable of {
    op : string;
    kind : Fault_plan.kind;
    attempts : int;
    at : float;
  }

exception Crashed of { op : string; at : float }

type t = {
  plan : Fault_plan.t;
  rules : Fault_plan.rule array;
  fired : int array;  (** per-rule firing count, for max_faults budgets *)
  rng : Prng.t;
  mutable events_rev : event list;
  mutable n_events : int;
  mutable n_unrecovered : int;
  mutable injected : float;
  mutable crashes_enabled : bool;
      (** a resumed process never re-creates the kill that ended its
          predecessor: recovery disables [Crash] rules *)
}

let create ?(seed = 0) plan =
  {
    plan;
    rules = Array.of_list plan.Fault_plan.rules;
    fired = Array.make (List.length plan.Fault_plan.rules) 0;
    rng = Prng.create seed;
    events_rev = [];
    n_events = 0;
    n_unrecovered = 0;
    injected = 0.0;
    crashes_enabled = true;
  }

let plan t = t.plan
let active t = Array.length t.rules > 0

let rule_matches (r : Fault_plan.rule) ~op ~now =
  (match r.op with None -> true | Some o -> String.equal o op)
  && now >= r.after && now < r.until

(* One Bernoulli draw per matching rule, in plan order, first hit
   wins. Rules that do not match consume no randomness, so adding a
   windowed rule cannot shift the fault sequence outside its window. *)
let draw t ~op ~now =
  let n = Array.length t.rules in
  let rec go i =
    if i >= n then None
    else
      let r = t.rules.(i) in
      let enabled =
        match r.Fault_plan.kind with
        | Fault_plan.Crash -> t.crashes_enabled
        | _ -> true
      in
      if
        enabled
        && t.fired.(i) < r.Fault_plan.max_faults
        && rule_matches r ~op ~now
        && Prng.float t.rng 1.0 < r.Fault_plan.probability
      then begin
        t.fired.(i) <- t.fired.(i) + 1;
        Some r.Fault_plan.kind
      end
      else go (i + 1)
  in
  go 0

let record t ~op ~kind ~at ~attempt ~recovered =
  t.events_rev <-
    {
      ev_op = op;
      ev_kind = kind;
      ev_at = at;
      ev_attempt = attempt;
      ev_recovered = recovered;
    }
    :: t.events_rev;
  t.n_events <- t.n_events + 1;
  if not recovered then t.n_unrecovered <- t.n_unrecovered + 1

let add_injected_time t dt = t.injected <- t.injected +. dt
let injected_time t = t.injected
let events t = List.rev t.events_rev
let fault_count t = t.n_events
let unrecovered_count t = t.n_unrecovered

let pp_event ppf e =
  Format.fprintf ppf "%.3fs %s %a attempt=%d %s" e.ev_at e.ev_op
    Fault_plan.pp_kind e.ev_kind e.ev_attempt
    (if e.ev_recovered then "recovered" else "unrecovered")

let disable_crashes t = t.crashes_enabled <- false
let crashes_enabled t = t.crashes_enabled

(* ------------------------------------------------------------------ *)
(* Checkpointing: the stream position, firing budgets and fault log.
   The plan and seed themselves are the caller's to persist — a restore
   overwrites the state of an injector rebuilt from the same plan. *)

type dump = {
  d_rng : Prng.state;
  d_fired : int array;
  d_events_rev : event list;
  d_n_events : int;
  d_n_unrecovered : int;
  d_injected : float;
}

let dump t =
  {
    d_rng = Prng.state t.rng;
    d_fired = Array.copy t.fired;
    d_events_rev = t.events_rev;
    d_n_events = t.n_events;
    d_n_unrecovered = t.n_unrecovered;
    d_injected = t.injected;
  }

let restore t d =
  if Array.length d.d_fired <> Array.length t.fired then
    invalid_arg "Injector.restore: rule count mismatch";
  Prng.set_state t.rng d.d_rng;
  Array.blit d.d_fired 0 t.fired 0 (Array.length t.fired);
  t.events_rev <- d.d_events_rev;
  t.n_events <- d.d_n_events;
  t.n_unrecovered <- d.d_n_unrecovered;
  t.injected <- d.d_injected
