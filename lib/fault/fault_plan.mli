(** Deterministic fault scenarios.

    A fault plan is a declarative description of {e what can go wrong}
    on the simulated device: which charge points may fault, with what
    probability, inside which clock window, and how often. The plan is
    pure data — pairing it with a seed (see {!Injector}) makes every
    scenario exactly reproducible under the virtual clock, which is
    what lets robustness be property-tested rather than hoped for.

    Fault taxonomy (see docs/ROBUSTNESS.md):
    - {e transient, recoverable}: [Read_error] and [Torn_block] fail
      one I/O attempt; the device retries with exponential backoff
      (charged to the clock) up to [max_retries] times, then escalates
      to an unrecoverable fault;
    - {e slowdowns}: [Latency_spike f] multiplies one charge by [f];
      [Stall d] adds [d] seconds of dead time after a charge. Both
      change only the clock, never the data;
    - {e process death}: [Crash] kills the whole run at a charge point
      (no retry, no degraded report — the exception escapes). It exists
      so crash-and-recover property tests ({!Taqp_recover},
      [test_recover]) can kill seeded runs at deterministic instants
      and check what the journal brings back. *)

type kind =
  | Read_error  (** the I/O attempt fails outright; retried *)
  | Latency_spike of float
      (** the charge costs [factor] times its nominal price *)
  | Stall of float  (** [duration] seconds of dead time after the charge *)
  | Torn_block
      (** the block arrives corrupted and must be re-read; retried *)
  | Crash
      (** the process dies at the charge point: {!Injector.Crashed} is
          raised and escapes the executor entirely — only a
          {!Taqp_recover} journal can save the run's progress. Fires at
          a clock instant ({!crash_at}) or with per-stage probability
          ({!crash_per_stage}). *)

type rule = {
  op : string option;
      (** charge point the rule applies to ([read_block], [sort], ...);
          [None] matches every charge point *)
  kind : kind;
  probability : float;  (** chance of firing per matching charge *)
  after : float;  (** rule active from this clock time on *)
  until : float;  (** ... and strictly before this one *)
  max_faults : int;  (** firing budget; [max_int] means unlimited *)
}

type t = {
  rules : rule list;
  max_retries : int;
      (** transient-fault retry budget per I/O (default 3) *)
  backoff : float;  (** first-retry backoff in seconds (default 0.01) *)
  backoff_multiplier : float;  (** exponential growth factor (default 2) *)
}

val none : t
(** The empty plan: no rules. Installing it is indistinguishable from
    installing no fault layer at all. *)

val is_none : t -> bool

val rule :
  ?op:string ->
  ?after:float ->
  ?until:float ->
  ?max_faults:int ->
  probability:float ->
  kind ->
  rule
(** [op] defaults to ["read_block"] for [Read_error]/[Torn_block] (the
    only charge point where a failed read is meaningful) and to any
    charge point for the slowdown kinds.
    @raise Invalid_argument for a probability outside [0,1], a
    non-positive spike factor or stall duration, or an empty window. *)

val crash_at : float -> rule
(** A certain, single-shot [Crash] on the first charge at or after the
    given clock instant (any charge point) — the deterministic
    kill-at-time used by recovery tests and [bench --recover]. *)

val crash_per_stage : probability:float -> rule
(** A [Crash] rule on the [stage_overhead] charge point: each stage
    start is a Bernoulli trial. *)

val make :
  ?max_retries:int -> ?backoff:float -> ?backoff_multiplier:float ->
  rule list -> t
(** @raise Invalid_argument on a negative retry budget or non-positive
    backoff parameters. *)

val preset : string -> t option
(** Named scenarios used by the bench matrix and the CLI:
    ["none"], ["transient"] (recoverable read errors), ["latency"]
    (block-read latency spikes), ["stall"] (rare long stalls),
    ["torn"] (torn blocks), ["heavy"] (all of the above, higher
    rates), ["unrecoverable"] (a certain read error that exhausts the
    retry budget). *)

val preset_names : string list

val expected_load : ?charge_cost:float -> t -> float
(** Expected fractional cost inflation of one charge under the plan —
    sum over rules of probability times the relative impact of one
    fault (spike excess, stall duration or retry cost divided by
    [charge_cost], a typical per-charge price; default the standard
    block-read cost). The executor uses this as a sizing prior: stage
    budgets are shrunk by the planned fault load so a spike on the
    committed stage does not immediately overspend the quota. 0 for
    {!none}. *)

val of_string : string -> (t, string) result
(** Parse a scenario: either a {!preset} name or a semicolon-separated
    rule list in the DSL
    [kind:p=P(,factor=F|dur=D)(,op=NAME)(,after=T)(,until=T)(,max=N)]
    with optional plan-level clauses [retries=N], [backoff=S] and
    [backoff_mult=X]. Kinds: [read_error], [latency], [stall],
    [torn_block], [crash]. Example:
    ["read_error:p=0.05;latency:p=0.1,factor=4,op=sort;retries=5"]. *)

val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
