module Scheduler = Taqp_sched.Scheduler
module Job = Taqp_sched.Job
module Report = Taqp_core.Report
module Json = Taqp_obs.Json

type cause =
  | Admission_underestimate
  | Cost_model_drift
  | Fault_inflation
  | Queue_starvation
  | Crash_downtime

let causes =
  [
    Admission_underestimate;
    Cost_model_drift;
    Fault_inflation;
    Queue_starvation;
    Crash_downtime;
  ]

let cause_name = function
  | Admission_underestimate -> "admission_underestimate"
  | Cost_model_drift -> "cost_model_drift"
  | Fault_inflation -> "fault_inflation"
  | Queue_starvation -> "queue_starvation"
  | Crash_downtime -> "crash_downtime"

type verdict = { v_cause : cause; v_evidence : (string * float) list }

let overlap (a0, a1) (b0, b1) = Float.max 0.0 (Float.min a1 b1 -. Float.max a0 b0)

(* Summed positive per-stage prediction overruns: how much longer the
   stages ran than the model budgeted them for. Zero when the report
   carries no stage trace. *)
let drift_overrun (r : Report.t) =
  List.fold_left
    (fun acc (s : Report.stage) ->
      acc +. Float.max 0.0 (s.Report.actual_cost -. s.Report.predicted_cost))
    0.0 r.Report.trace

let classify ?downtime ?(cache_miss_inflation = 0.0) (jr : Scheduler.job_report)
    =
  let job = jr.Scheduler.job in
  match jr.Scheduler.outcome with
  | Scheduler.Rejected _ -> None
  | _ when not jr.Scheduler.missed -> None
  | Scheduler.Expired ->
      (* Never dispatched: either the outage swallowed its window, or
         the queue did. *)
      let dt, deadline_in_outage =
        match downtime with
        | Some (t0, t1) ->
            ( overlap (t0, t1) (job.Job.arrival, job.Job.deadline),
              job.Job.deadline <= t1 )
        | None -> (0.0, false)
      in
      let evidence =
        [ ("queue_wait", jr.Scheduler.queue_wait); ("downtime", dt) ]
      in
      let cause =
        if dt > 0.0 && deadline_in_outage then Crash_downtime
        else Queue_starvation
      in
      Some { v_cause = cause; v_evidence = evidence }
  | Scheduler.Completed r ->
      let queue_wait = jr.Scheduler.queue_wait in
      let fault_time = r.Report.fault_time in
      (* stage actuals are clock time, so injected fault seconds show
         up inside the overruns too — net them out or every fault
         would be double-billed as model drift *)
      let drift = Float.max 0.0 (drift_overrun r -. fault_time) in
      let dt =
        match downtime with
        | Some (t0, t1) ->
            overlap (t0, t1) (job.Job.arrival, jr.Scheduler.finished_at)
        | None -> 0.0
      in
      let admission_shrink =
        if jr.Scheduler.degraded then
          match jr.Scheduler.quota with
          | Some granted ->
              Float.max 0.0 (job.Job.deadline -. job.Job.arrival -. granted)
          | None -> 0.0
        else 0.0
      in
      let evidence =
        [
          ("queue_wait", queue_wait);
          ("fault_time", fault_time);
          ("drift_overrun", drift);
          ("downtime", dt);
          ("admission_shrink", admission_shrink);
          (* Advisory, never a cause on its own: seconds the job spent
             on device reads a warmer shared cache would have served as
             probes. A large value alongside queue_wait or drift points
             the operator at cache sizing rather than admission. *)
          ("cache_miss_inflation", cache_miss_inflation);
        ]
      in
      (* Dominance: the single largest drain on the job's window names
         the cause. All-zero evidence means the job started on time,
         fault-free, on-model — and still could not finish a stage in
         its quota: the admission estimate was the lie. First match
         wins ties, in blame order: an outage outranks faults, faults
         outrank queueing, queueing outranks drift. *)
      let weighted =
        [
          (Crash_downtime, dt);
          (Fault_inflation, fault_time);
          (Queue_starvation, queue_wait);
          (Cost_model_drift, drift);
          (Admission_underestimate, admission_shrink);
        ]
      in
      let best, best_w =
        List.fold_left
          (fun (bc, bw) (c, w) -> if w > bw then (c, w) else (bc, bw))
          (Admission_underestimate, 0.0)
          weighted
      in
      let cause = if best_w > 0.0 then best else Admission_underestimate in
      Some { v_cause = cause; v_evidence = evidence }

let verdict_json v =
  Json.Obj
    [
      ("cause", Json.Str (cause_name v.v_cause));
      ( "evidence",
        Json.Obj (List.map (fun (k, w) -> (k, Json.Num w)) v.v_evidence) );
    ]

type breakdown = { b_missed : int; b_by_cause : (cause * int) list }

let breakdown verdicts =
  {
    b_missed = List.length verdicts;
    b_by_cause =
      List.map
        (fun c ->
          ( c,
            List.length (List.filter (fun v -> v.v_cause = c) verdicts) ))
        causes;
  }

let breakdown_json b =
  Json.Obj
    [
      ("missed", Json.Num (float_of_int b.b_missed));
      ( "by_cause",
        Json.Obj
          (List.map
             (fun (c, n) -> (cause_name c, Json.Num (float_of_int n)))
             b.b_by_cause) );
    ]

let pp_verdict ppf v =
  Format.fprintf ppf "@[<h>%s  (%s)@]" (cause_name v.v_cause)
    (String.concat ", "
       (List.filter_map
          (fun (k, w) ->
            if w > 0.0 then Some (Printf.sprintf "%s=%.3fs" k w) else None)
          v.v_evidence))
