type t = {
  system : Ledger.t;
  jobs : (int, Ledger.t) Hashtbl.t;
  mutable current : int option;
}

let create () =
  { system = Ledger.create (); jobs = Hashtbl.create 16; current = None }

let ledger t id =
  match Hashtbl.find_opt t.jobs id with
  | Some l -> l
  | None ->
      let l = Ledger.create () in
      Hashtbl.replace t.jobs id l;
      l

let on_spend t label dt =
  let l = match t.current with None -> t.system | Some id -> ledger t id in
  Ledger.on_spend l label dt

let attach t device =
  Taqp_storage.Device.set_spend_listener device (Some (on_spend t))

let set_account t owner = t.current <- owner
let current t = t.current
let system t = t.system

let job_ids t =
  List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.jobs [])

let total_charged t =
  Hashtbl.fold
    (fun _ l acc -> acc +. Ledger.charged l)
    t.jobs
    (Ledger.charged t.system)
