(** Cost-model drift monitor: tracks predicted-vs-actual per
    {!Taqp_timecost.Formulas.step} kind across every stage the executor
    observes, and reports which ground-truth {!Taqp_storage.Cost_params}
    rates the fitted formulas have drifted away from.

    Feed it with {!observer} via
    {!Taqp_core.Executor.on_cost_observation} (one monitor can absorb
    many handles — per-step stats are keyed by step kind, not node).
    Per step kind it keeps an EWMA of the actual/predicted ratio and a
    ratio histogram; a step is flagged {e drifted} once it has enough
    observations and its EWMA strays past the threshold. *)

type t

val create : ?alpha:float -> ?threshold:float -> ?min_obs:int -> unit -> t
(** [alpha] is the EWMA smoothing weight of the newest ratio (default
    0.2); [threshold] the relative EWMA deviation from 1.0 that flags
    drift (default 0.25); [min_obs] observations required before a
    step may be flagged (default 5).
    @raise Invalid_argument for alpha outside (0,1], threshold <= 0 or
    min_obs < 1. *)

val observe :
  t -> step:Taqp_timecost.Formulas.step -> predicted:float -> actual:float -> unit
(** One (predicted, actual) pair. Pairs whose prediction is ~0 are
    counted separately ([unpredicted]) instead of producing a ratio. *)

val observer :
  t ->
  (id:int ->
  step:Taqp_timecost.Formulas.step ->
  predicted:float ->
  actual:float ->
  unit)
  option
(** {!observe} in the shape {!Taqp_core.Executor.on_cost_observation}
    wants (the node id is deliberately dropped: drift is a property of
    the step kind's rate, not of one operator). *)

type step_report = {
  d_step : Taqp_timecost.Formulas.step;
  d_observations : int;  (** ratio-producing observations *)
  d_unpredicted : int;  (** pairs with a ~0 prediction *)
  d_ewma_ratio : float;  (** EWMA of actual/predicted; 1.0 = calibrated *)
  d_mean_ratio : float;  (** total actual / total predicted *)
  d_p50_ratio : float;
  d_p99_ratio : float;
  d_drifted : bool;
  d_rates : string list;
      (** the {!Taqp_storage.Cost_params} rate names this step's
          formula calibrates against — what to re-measure when
          drifted *)
}

type report = {
  steps : step_report list;  (** observed steps, formula order *)
  drifted : step_report list;  (** the flagged subset *)
}

val report : t -> report

val rate_names : Taqp_timecost.Formulas.step -> string list
(** The ground-truth rate(s) behind each step's cost formula. *)

val report_json : report -> Taqp_obs.Json.t
val pp_report : Format.formatter -> report -> unit
