module Formulas = Taqp_timecost.Formulas
module Metrics = Taqp_obs.Metrics
module Json = Taqp_obs.Json

(* Ratio buckets: log-ish spacing tight around 1.0 where calibration
   lives, wide tails for blown predictions. *)
let ratio_buckets =
  [| 0.25; 0.5; 0.75; 0.9; 1.0; 1.1; 1.25; 1.5; 2.0; 4.0; 8.0 |]

let all_steps =
  [
    Formulas.Step_read;
    Formulas.Step_check;
    Formulas.Step_write_temp;
    Formulas.Step_sort;
    Formulas.Step_merge;
    Formulas.Step_hash_build;
    Formulas.Step_hash_probe;
    Formulas.Step_output;
    Formulas.Step_fixed;
  ]

let step_index = function
  | Formulas.Step_read -> 0
  | Formulas.Step_check -> 1
  | Formulas.Step_write_temp -> 2
  | Formulas.Step_sort -> 3
  | Formulas.Step_merge -> 4
  | Formulas.Step_hash_build -> 5
  | Formulas.Step_hash_probe -> 6
  | Formulas.Step_output -> 7
  | Formulas.Step_fixed -> 8

let rate_names = function
  | Formulas.Step_read -> [ "block_read" ]
  | Formulas.Step_check -> [ "tuple_check_base"; "per_comparison" ]
  | Formulas.Step_write_temp -> [ "temp_tuple_write"; "page_write" ]
  | Formulas.Step_sort -> [ "sort_per_nlogn"; "sort_per_tuple" ]
  | Formulas.Step_merge -> [ "merge_per_tuple"; "merge_setup" ]
  | Formulas.Step_hash_build -> [ "hash_build_per_tuple" ]
  | Formulas.Step_hash_probe -> [ "hash_probe_per_tuple" ]
  | Formulas.Step_output -> [ "output_per_tuple" ]
  | Formulas.Step_fixed -> [ "stage_overhead" ]

type stat = {
  mutable n : int;
  mutable unpredicted : int;
  mutable ewma : float;
  mutable sum_pred : float;
  mutable sum_actual : float;
  hist : Metrics.Histogram.t;
}

type t = {
  alpha : float;
  threshold : float;
  min_obs : int;
  stats : stat array;  (** indexed by {!step_index} *)
}

let create ?(alpha = 0.2) ?(threshold = 0.25) ?(min_obs = 5) () =
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Drift.create: alpha outside (0,1]";
  if threshold <= 0.0 then invalid_arg "Drift.create: threshold <= 0";
  if min_obs < 1 then invalid_arg "Drift.create: min_obs < 1";
  {
    alpha;
    threshold;
    min_obs;
    stats =
      Array.init (List.length all_steps) (fun i ->
          {
            n = 0;
            unpredicted = 0;
            ewma = 1.0;
            sum_pred = 0.0;
            sum_actual = 0.0;
            hist =
              Metrics.Histogram.make ~buckets:ratio_buckets
                ("drift."
                ^ Formulas.step_name (List.nth all_steps i)
                ^ ".ratio");
          })
  }

let observe t ~step ~predicted ~actual =
  let s = t.stats.(step_index step) in
  if predicted <= 1e-12 then s.unpredicted <- s.unpredicted + 1
  else begin
    let ratio = actual /. predicted in
    s.ewma <-
      (if s.n = 0 then ratio
       else ((1.0 -. t.alpha) *. s.ewma) +. (t.alpha *. ratio));
    s.n <- s.n + 1;
    s.sum_pred <- s.sum_pred +. predicted;
    s.sum_actual <- s.sum_actual +. actual;
    Metrics.Histogram.observe s.hist ratio
  end

let observer t =
  Some (fun ~id:_ ~step ~predicted ~actual -> observe t ~step ~predicted ~actual)

type step_report = {
  d_step : Formulas.step;
  d_observations : int;
  d_unpredicted : int;
  d_ewma_ratio : float;
  d_mean_ratio : float;
  d_p50_ratio : float;
  d_p99_ratio : float;
  d_drifted : bool;
  d_rates : string list;
}

type report = { steps : step_report list; drifted : step_report list }

let report t =
  let steps =
    List.filter_map
      (fun step ->
        let s = t.stats.(step_index step) in
        if s.n = 0 && s.unpredicted = 0 then None
        else
          Some
            {
              d_step = step;
              d_observations = s.n;
              d_unpredicted = s.unpredicted;
              d_ewma_ratio = s.ewma;
              d_mean_ratio =
                (if s.sum_pred > 0.0 then s.sum_actual /. s.sum_pred else 1.0);
              d_p50_ratio = Metrics.Histogram.quantile s.hist 0.5;
              d_p99_ratio = Metrics.Histogram.quantile s.hist 0.99;
              d_drifted =
                s.n >= t.min_obs
                && Float.abs (s.ewma -. 1.0) > t.threshold;
              d_rates = rate_names step;
            })
      all_steps
  in
  { steps; drifted = List.filter (fun r -> r.d_drifted) steps }

let step_report_json r =
  Json.Obj
    [
      ("step", Json.Str (Formulas.step_name r.d_step));
      ("observations", Json.Num (float_of_int r.d_observations));
      ("unpredicted", Json.Num (float_of_int r.d_unpredicted));
      ("ewma_ratio", Json.Num r.d_ewma_ratio);
      ("mean_ratio", Json.Num r.d_mean_ratio);
      ("p50_ratio", Json.Num r.d_p50_ratio);
      ("p99_ratio", Json.Num r.d_p99_ratio);
      ("drifted", Json.Bool r.d_drifted);
      ("rates", Json.List (List.map (fun s -> Json.Str s) r.d_rates));
    ]

let report_json r =
  Json.Obj
    [
      ("steps", Json.List (List.map step_report_json r.steps));
      ( "drifted",
        Json.List
          (List.map
             (fun s -> Json.Str (Formulas.step_name s.d_step))
             r.drifted) );
    ]

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-11s n=%-4d ewma=%.3f mean=%.3f p50=%.3f p99=%.3f%s@ "
        (Formulas.step_name s.d_step)
        s.d_observations s.d_ewma_ratio s.d_mean_ratio s.d_p50_ratio
        s.d_p99_ratio
        (if s.d_drifted then
           "  DRIFTED -> recalibrate " ^ String.concat ", " s.d_rates
         else ""))
    r.steps;
  if r.steps = [] then Format.fprintf ppf "no observations@ ";
  Format.fprintf ppf "@]"
