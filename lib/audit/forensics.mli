(** Miss forensics: a root cause for every job that missed its
    deadline, derived from the scheduler's per-job accounting, the
    executor report and (when known) the crash outage window.

    The taxonomy is total — {!classify} names a cause for {e every}
    missed job, never "unknown": the evidence weights are compared and
    the dominant one wins, with {!Admission_underestimate} as the
    floor (an admitted job that missed with no queueing, no faults, no
    drift and no outage was, by elimination, admitted on an estimate
    its minimum viable run could not honour). *)

type cause =
  | Admission_underestimate
      (** admission granted (or degraded it to) a quota its actual
          minimum stage could not fit *)
  | Cost_model_drift
      (** stages systematically overran their predictions *)
  | Fault_inflation  (** injected fault time consumed the slack *)
  | Queue_starvation
      (** it waited behind other jobs past the point of viability *)
  | Crash_downtime  (** a crash outage swallowed its window *)

val cause_name : cause -> string
val causes : cause list

type verdict = {
  v_cause : cause;
  v_evidence : (string * float) list;
      (** the weighed evidence, every factor with its seconds *)
}

val classify :
  ?downtime:float * float ->
  ?cache_miss_inflation:float ->
  Taqp_sched.Scheduler.job_report ->
  verdict option
(** [None] for jobs that did not miss (completed in time, or were
    rejected — rejection is admission {e working}, not a miss).
    [downtime] is the crash outage as an absolute virtual-time
    interval [(from, until)], used to attribute {!Crash_downtime}.

    Evidence weights, all in seconds: [queue_wait]; [fault_time] from
    the report; [drift_overrun], the summed positive per-stage
    (actual - predicted) overruns net of [fault_time] — stage actuals
    are clock time, so injected fault seconds would otherwise be
    double-billed as drift (needs [Config.trace] — 0 without it);
    [downtime], the outage's overlap with the job's window; and
    [admission_shrink], the slack admission withheld from a degraded
    grant. The dominant weight names the cause.

    [cache_miss_inflation] (default 0) is advisory evidence for
    cache-enabled runs: the seconds the job spent on device reads a
    warmer shared cache would have served at probe price (the caller
    computes it, e.g. from its {!Ledger} [Sample_io] spend against the
    cache hit ratio). It is carried in the evidence for the operator
    but never names a cause — the taxonomy stays total over the five
    causes above. *)

val verdict_json : verdict -> Taqp_obs.Json.t

type breakdown = {
  b_missed : int;
  b_by_cause : (cause * int) list;  (** every cause, canonical order *)
}

val breakdown : verdict list -> breakdown
val breakdown_json : breakdown -> Taqp_obs.Json.t
val pp_verdict : Format.formatter -> verdict -> unit
