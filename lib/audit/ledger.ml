module Json = Taqp_obs.Json

type category =
  | Planning
  | Sample_io
  | Check
  | Write_temp
  | Sort
  | Merge
  | Hash_build
  | Hash_probe
  | Cache_probe
  | Output
  | Estimator
  | Stage_overhead
  | Journal
  | Fault
  | Misc

let categories =
  [
    Planning;
    Sample_io;
    Check;
    Write_temp;
    Sort;
    Merge;
    Hash_build;
    Hash_probe;
    Cache_probe;
    Output;
    Estimator;
    Stage_overhead;
    Journal;
    Fault;
    Misc;
  ]

let index = function
  | Planning -> 0
  | Sample_io -> 1
  | Check -> 2
  | Write_temp -> 3
  | Sort -> 4
  | Merge -> 5
  | Hash_build -> 6
  | Hash_probe -> 7
  | Cache_probe -> 8
  | Output -> 9
  | Estimator -> 10
  | Stage_overhead -> 11
  | Journal -> 12
  | Fault -> 13
  | Misc -> 14

let n_categories = List.length categories

let category_name = function
  | Planning -> "planning"
  | Sample_io -> "sample_io"
  | Check -> "check"
  | Write_temp -> "write_temp"
  | Sort -> "sort"
  | Merge -> "merge"
  | Hash_build -> "hash_build"
  | Hash_probe -> "hash_probe"
  | Cache_probe -> "cache_probe"
  | Output -> "output"
  | Estimator -> "estimator"
  | Stage_overhead -> "stage_overhead"
  | Journal -> "journal"
  | Fault -> "fault"
  | Misc -> "misc"

let category_of_label = function
  | "planning" -> Planning
  | "read_block" -> Sample_io
  | "check_tuples" -> Check
  | "write_pages" | "write_temp" -> Write_temp
  | "sort" -> Sort
  | "merge" | "merge_setup" -> Merge
  | "hash_build" -> Hash_build
  | "hash_probe" -> Hash_probe
  | "cache_probe" -> Cache_probe
  | "output" -> Output
  | "estimator_update" -> Estimator
  | "stage_overhead" -> Stage_overhead
  | "journal_write" -> Journal
  | "fault.retry" | "fault.spike" | "fault.stall" | "fault.backoff" -> Fault
  | _ -> Misc

type t = {
  acc : float array;
  (* The same deltas summed in arrival order — the reference total the
     per-category sums are reconciled against. *)
  mutable charged : float;
}

let create () = { acc = Array.make n_categories 0.0; charged = 0.0 }

let add t cat dt =
  let i = index cat in
  t.acc.(i) <- t.acc.(i) +. dt;
  t.charged <- t.charged +. dt

let on_spend t label dt = add t (category_of_label label) dt
let charged t = t.charged
let spend t cat = t.acc.(index cat)

type reconciliation = {
  r_charged : float;
  r_by_category : (category * float) list;
  r_unattributed : float;
  r_quota : float option;
  r_unused_slack : float option;
  r_exact : bool;
}

(* Relative bound on the reassociation residual: both sums add the
   same non-negative deltas, only in different orders, so they agree to
   a few ulps — 1e-9 relative is generous by many orders of
   magnitude. *)
let residual_tolerance charged = 1e-9 *. Float.max 1.0 (Float.abs charged)

let reconcile ?quota t =
  let by_category = List.map (fun c -> (c, spend t c)) categories in
  let s = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 by_category in
  (* [s] and [charged] are within a few ulps of each other, so this
     subtraction is exact (Sterbenz) and [s +. unattributed] recovers
     [charged] bit-for-bit. *)
  let unattributed = t.charged -. s in
  let unused_slack = Option.map (fun q -> q -. t.charged) quota in
  let closure_holds =
    s +. unattributed = t.charged
    && Float.abs unattributed <= residual_tolerance t.charged
    &&
    match (quota, unused_slack) with
    | Some q, Some u -> t.charged +. u = q
    | _ -> true
  in
  {
    r_charged = t.charged;
    r_by_category = by_category;
    r_unattributed = unattributed;
    r_quota = quota;
    r_unused_slack = unused_slack;
    r_exact = closure_holds;
  }

let opt_num = function None -> Json.Null | Some v -> Json.Num v

let reconciliation_json r =
  Json.Obj
    [
      ("charged", Json.Num r.r_charged);
      ( "by_category",
        Json.Obj
          (List.map
             (fun (c, v) -> (category_name c, Json.Num v))
             r.r_by_category) );
      ("unattributed", Json.Num r.r_unattributed);
      ("quota", opt_num r.r_quota);
      ("unused_slack", opt_num r.r_unused_slack);
      ("exact", Json.Bool r.r_exact);
    ]

let pp_reconciliation ppf r =
  Format.fprintf ppf "@[<v>charged %.6fs" r.r_charged;
  (match (r.r_quota, r.r_unused_slack) with
  | Some q, Some u ->
      Format.fprintf ppf " of %.6fs quota (%s %.6fs)" q
        (if u >= 0.0 then "slack" else "overspend")
        (Float.abs u)
  | _ -> ());
  Format.fprintf ppf "@ ";
  List.iter
    (fun (c, v) ->
      if v > 0.0 then
        Format.fprintf ppf "  %-14s %12.6fs  %5.1f%%@ " (category_name c) v
          (100.0 *. v /. Float.max 1e-300 r.r_charged))
    r.r_by_category;
  Format.fprintf ppf "  reconciliation %s@]"
    (if r.r_exact then "exact" else "BROKEN")
