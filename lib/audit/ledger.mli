(** The budget ledger: every unit of virtual-time spend one query (or
    the scheduler itself) paid, attributed to a spend category. Fed by
    {!Taqp_storage.Device.set_spend_listener} deltas (usually through a
    {!Meter}), reconciled against the quota the query was granted.

    The reconciliation invariant is {e bit-exact by construction}: the
    ledger keeps, besides the per-category accumulators, a running
    total [charged] built from the same deltas in arrival order. The
    canonical-order category sum [s] differs from [charged] only by
    float reassociation, so the residual [unattributed = charged -. s]
    is computed exactly (Sterbenz), and

    {[ s +. unattributed = charged           (bit-exact)
       charged +. (quota -. charged) = quota (bit-exact, when granted) ]}

    — what {!reconcile} checks and {!Taqp_audit} property-tests. *)

type category =
  | Planning  (** stage sizing: the planner's bisection arithmetic *)
  | Sample_io  (** block-sample reads *)
  | Check  (** fetch-and-test of sampled tuples *)
  | Write_temp  (** temp-file tuple/page writes *)
  | Sort  (** external sorts *)
  | Merge  (** sorted-run merges, incl. per-pairing setup *)
  | Hash_build  (** retained hash-index builds *)
  | Hash_probe  (** delta probes against retained indexes *)
  | Cache_probe  (** shared-cache hits served in place of device work *)
  | Output  (** result delivery *)
  | Estimator  (** estimator maintenance *)
  | Stage_overhead  (** fixed per-stage bookkeeping *)
  | Journal  (** crash-recovery journal appends *)
  | Fault  (** fault-induced: retries, spike excess, stalls, backoff *)
  | Misc  (** unlabeled {!Taqp_storage.Device.misc} charges *)

val categories : category list
(** Every category once, in canonical (reconciliation) order. *)

val category_name : category -> string

val category_of_label : string -> category
(** Map a device spend label (["read_block"], ["fault.retry"], ...) to
    its category; unknown labels land in {!Misc}. *)

type t

val create : unit -> t

val add : t -> category -> float -> unit
(** Record one spend delta. Also advances the running [charged] total,
    in arrival order. *)

val on_spend : t -> string -> float -> unit
(** [add] composed with {!category_of_label} — the exact shape a
    {!Taqp_storage.Device.set_spend_listener} wants. *)

val charged : t -> float
(** Total seconds recorded, summed in arrival order. *)

val spend : t -> category -> float

type reconciliation = {
  r_charged : float;  (** arrival-order total *)
  r_by_category : (category * float) list;  (** canonical order *)
  r_unattributed : float;
      (** [charged] minus the canonical-order category sum: pure float
          reassociation noise, bounded by [1e-9 * max 1 charged] *)
  r_quota : float option;  (** granted quota, when known *)
  r_unused_slack : float option;
      (** [quota -. charged]; negative = overspend (observe mode) *)
  r_exact : bool;
      (** the bit-exact closure held: category sum [+.] unattributed
          [=] charged, and (when granted) charged [+.] unused slack
          [=] quota *)
}

val reconcile : ?quota:float -> t -> reconciliation

val reconciliation_json : reconciliation -> Taqp_obs.Json.t
val pp_reconciliation : Format.formatter -> reconciliation -> unit
