module Json = Taqp_obs.Json

type t = {
  window : int;
  target : float;
  missed : bool array;
  lateness : float array;  (** max(0, lateness), ring-buffered *)
  mutable next : int;
  mutable filled : int;
  mutable total : int;
}

let create ?(window = 20) ~target_miss_rate () =
  if window < 1 then invalid_arg "Slo.create: window < 1";
  if not (target_miss_rate >= 0.0 && target_miss_rate <= 1.0) then
    invalid_arg "Slo.create: target outside [0,1]";
  {
    window;
    target = target_miss_rate;
    missed = Array.make window false;
    lateness = Array.make window 0.0;
    next = 0;
    filled = 0;
    total = 0;
  }

let observe t ~missed ~lateness =
  t.missed.(t.next) <- missed;
  t.lateness.(t.next) <- Float.max 0.0 lateness;
  t.next <- (t.next + 1) mod t.window;
  if t.filled < t.window then t.filled <- t.filled + 1;
  t.total <- t.total + 1

let count t = t.filled
let total t = t.total

let miss_rate t =
  if t.filled = 0 then 0.0
  else begin
    let misses = ref 0 in
    for i = 0 to t.filled - 1 do
      if t.missed.(i) then incr misses
    done;
    float_of_int !misses /. float_of_int t.filled
  end

let burn_rate t =
  let r = miss_rate t in
  if t.target > 0.0 then r /. t.target
  else if r > 0.0 then infinity
  else 0.0

let percentile t q =
  if t.filled = 0 then 0.0
  else begin
    let a = Array.sub t.lateness 0 t.filled in
    Array.sort Float.compare a;
    let i =
      int_of_float (Float.round (q *. float_of_int (t.filled - 1)))
    in
    a.(Int.max 0 (Int.min (t.filled - 1) i))
  end

let lateness_p50 t = percentile t 0.50
let lateness_p99 t = percentile t 0.99
let healthy t = burn_rate t <= 1.0

let to_json t =
  Json.Obj
    [
      ("target_miss_rate", Json.Num t.target);
      ("window", Json.Num (float_of_int t.window));
      ("observed", Json.Num (float_of_int t.filled));
      ("total", Json.Num (float_of_int t.total));
      ("miss_rate", Json.Num (miss_rate t));
      ( "burn_rate",
        let b = burn_rate t in
        if Float.is_finite b then Json.Num b else Json.Str "inf" );
      ("lateness_p50", Json.Num (lateness_p50 t));
      ("lateness_p99", Json.Num (lateness_p99 t));
      ("healthy", Json.Bool (healthy t));
    ]

let pp ppf t =
  let b = burn_rate t in
  Format.fprintf ppf
    "slo: %s  miss %.1f%% of %.1f%% target (burn %s) over last %d/%d  \
     lateness p50=%.2fs p99=%.2fs"
    (if healthy t then "ok" else "BURNING")
    (100.0 *. miss_rate t) (100.0 *. t.target)
    (if Float.is_finite b then Printf.sprintf "%.2f" b else "inf")
    t.filled t.total (lateness_p50 t) (lateness_p99 t)
