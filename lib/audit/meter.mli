(** Per-account spend metering over one shared device: routes every
    {!Taqp_storage.Device} spend delta into the {!Ledger} of whichever
    account is current — a job id, or the system account for scheduler
    overhead (admission pricing, idle bookkeeping).

    The meter is the glue between the scheduler's audit hooks and the
    ledgers: pass {!attach} as [?on_device] and {!set_account} as
    [?account] to {!Taqp_sched.Scheduler.run}. Strictly observational:
    attaching a meter never changes a charge, a jitter draw or a
    fault draw. *)

type t

val create : unit -> t

val attach : t -> Taqp_storage.Device.t -> unit
(** Install this meter as the device's spend listener. *)

val set_account : t -> int option -> unit
(** Route subsequent deltas to job [id]'s ledger ([Some id]) or the
    system ledger ([None], the initial state). *)

val current : t -> int option

val ledger : t -> int -> Ledger.t
(** Job [id]'s ledger, created empty on first use. *)

val system : t -> Ledger.t

val job_ids : t -> int list
(** Every job account seen so far, ascending. *)

val total_charged : t -> float
(** Sum of all accounts' charged totals (system included). *)
