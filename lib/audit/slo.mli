(** Rolling SLO monitor for a served workload: miss-rate burn against
    a target over a sliding window of the most recent terminal jobs,
    with exact lateness percentiles over the same window.

    Burn rate is the alerting currency: observed miss rate divided by
    the target — 1.0 means exactly on budget, above 1.0 the error
    budget is burning faster than allotted. *)

type t

val create : ?window:int -> target_miss_rate:float -> unit -> t
(** [window] (default 20) is the number of most-recent jobs the
    rolling figures cover. [target_miss_rate] in [0, 1].
    @raise Invalid_argument for window < 1 or a target outside
    [0, 1]. *)

val observe : t -> missed:bool -> lateness:float -> unit
(** One terminal (admitted) job, in completion order. *)

val count : t -> int
(** Jobs currently in the window. *)

val total : t -> int
(** Jobs observed over the monitor's lifetime. *)

val miss_rate : t -> float
(** Misses / window size; 0 while empty. *)

val burn_rate : t -> float
(** [miss_rate /. target]. A zero target returns 0 when clean and
    [infinity] on any miss — a hard SLO has no error budget. *)

val lateness_p50 : t -> float
val lateness_p99 : t -> float
(** Exact (nearest-rank) percentiles of max(0, lateness) over the
    window. *)

val healthy : t -> bool
(** [burn_rate <= 1.0]. *)

val to_json : t -> Taqp_obs.Json.t
val pp : Format.formatter -> t -> unit
