open Taqp_storage
open Taqp_relational
module Prng = Taqp_rng.Prng

type t = {
  catalog : Catalog.t;
  query : Ra.t;
  exact : int;
  description : string;
}

let lt attr k =
  Predicate.Cmp (Predicate.Lt, Predicate.Attr attr, Predicate.Const (Taqp_data.Value.Int k))

let ge attr k =
  Predicate.Cmp (Predicate.Ge, Predicate.Attr attr, Predicate.Const (Taqp_data.Value.Int k))

let finish catalog query description =
  { catalog; query; exact = Eval.count catalog query; description }

let selection ?(spec = Generator.paper_spec) ?(output = 1_000) ~seed () =
  let rng = Prng.create seed in
  let r = Generator.relation ~spec ~rng () in
  let catalog = Catalog.of_list [ ("r", r) ] in
  let query = Ra.Select (lt "sel" output, Ra.relation "r") in
  finish catalog query
    (Printf.sprintf "selection, %d of %d tuples qualify" output spec.n_tuples)

let join ?(spec = Generator.paper_spec) ?(target_output = 70_000) ~seed () =
  let rng = Prng.create seed in
  let c = Generator.join_group_size ~n:spec.n_tuples ~target_output in
  let key i = i / c in
  let r1 = Generator.relation ~spec ~key ~rng () in
  let r2 = Generator.relation ~spec ~key ~rng () in
  let catalog = Catalog.of_list [ ("r1", r1); ("r2", r2) ] in
  let query =
    Ra.Join
      ( Predicate.Cmp (Predicate.Eq, Predicate.Attr "r1.key", Predicate.Attr "r2.key"),
        Ra.relation "r1",
        Ra.relation "r2" )
  in
  finish catalog query
    (Printf.sprintf "equi-join, group size %d, ~%d output pairs" c target_output)

let intersection ?(spec = Generator.paper_spec) ?overlap ~seed () =
  let overlap = Option.value overlap ~default:spec.n_tuples in
  let rng = Prng.create seed in
  let r1 = Generator.relation ~spec ~rng () in
  let r2 =
    if overlap = spec.n_tuples then Generator.shuffled_copy ~rng r1
    else
      Generator.partial_copy ~rng ~keep:overlap ~fresh_ids_from:spec.n_tuples r1
  in
  let catalog = Catalog.of_list [ ("r1", r1); ("r2", r2) ] in
  let query = Ra.Intersect (Ra.relation "r1", Ra.relation "r2") in
  finish catalog query
    (Printf.sprintf "intersection, overlap %d of %d" overlap spec.n_tuples)

let sharded_selection ?(spec = Generator.paper_spec) ?(shards = 4)
    ?(skew = 1.0) ?output ~seed () =
  let output = Option.value output ~default:(spec.Generator.n_tuples / 10) in
  let rng = Prng.create seed in
  let r =
    Generator.sharded_relation ~spec ~shards ~skew ~qualifying:output ~rng ()
  in
  let catalog = Catalog.of_list [ ("r", r) ] in
  let query = Ra.Select (lt "sel" output, Ra.relation "r") in
  finish catalog query
    (Printf.sprintf
       "sharded selection, %d qualifying over %d shards (density skew %g)"
       output shards skew)

let projection ?(spec = Generator.paper_spec) ?(groups = 100) ~seed () =
  let rng = Prng.create seed in
  let r = Generator.relation ~spec ~grp:(fun i -> i mod groups) ~rng () in
  let catalog = Catalog.of_list [ ("r", r) ] in
  let query = Ra.Project ([ "grp" ], Ra.relation "r") in
  finish catalog query (Printf.sprintf "projection onto %d groups" groups)

let projection_skewed ?(spec = Generator.paper_spec) ?(groups = 100)
    ?(zipf_s = 1.2) ~seed () =
  let rng = Prng.create seed in
  let zipf = Taqp_rng.Zipf.create ~n:groups ~s:zipf_s in
  let grp _ = Taqp_rng.Zipf.draw zipf rng in
  let r = Generator.relation ~spec ~grp ~rng () in
  let catalog = Catalog.of_list [ ("r", r) ] in
  let query = Ra.Project ([ "grp" ], Ra.relation "r") in
  finish catalog query
    (Printf.sprintf "projection onto Zipf(%.2g)-sized groups (<= %d)" zipf_s
       groups)

let three_way_join ?(spec = Generator.paper_spec) ?(group_size = 3) ~seed () =
  let rng = Prng.create seed in
  let key i = i / group_size in
  let r1 = Generator.relation ~spec ~key ~rng () in
  let r2 = Generator.relation ~spec ~key ~rng () in
  let r3 = Generator.relation ~spec ~key ~rng () in
  let catalog = Catalog.of_list [ ("r1", r1); ("r2", r2); ("r3", r3) ] in
  let eq a b = Predicate.Cmp (Predicate.Eq, Predicate.Attr a, Predicate.Attr b) in
  let query =
    Ra.Join
      ( eq "r2.key" "r3.key",
        Ra.Join (eq "r1.key" "r2.key", Ra.relation "r1", Ra.relation "r2"),
        Ra.relation "r3" )
  in
  finish catalog query
    (Printf.sprintf "three-way equi-join, group size %d" group_size)

let select_join ?(spec = Generator.paper_spec) ?(target_output = 70_000)
    ?(keep = 2_000) ~seed () =
  let base = join ~spec ~target_output ~seed () in
  let query = Ra.Select (lt "r1.sel" keep, base.query) in
  finish base.catalog query
    (Printf.sprintf "select(sel < %d) over the join workload" keep)

let union_of_selects ?(spec = Generator.paper_spec) ~seed () =
  let rng = Prng.create seed in
  let r = Generator.relation ~spec ~rng () in
  let catalog = Catalog.of_list [ ("r", r) ] in
  let low = spec.n_tuples * 3 / 10 and high = spec.n_tuples * 8 / 10 in
  let query =
    Ra.Union
      ( Ra.Select (lt "sel" low, Ra.relation "r"),
        Ra.Select (ge "sel" high, Ra.relation "r") )
  in
  finish catalog query "union of two disjoint selections"
