(** Synthetic relation generation with controllable operator
    selectivities.

    Every relation carries the same four-column schema:
    - [id]  : unique ordinal 0..n-1 (makes tuples distinct sets);
    - [sel] : a random permutation of 0..n-1, so [select sel < k]
      returns {e exactly} k tuples;
    - [key] : the join attribute, assigned by a caller function of the
      ordinal (defaults to the ordinal itself: unique keys);
    - [grp] : the grouping attribute for projection workloads.

    Tuples are shuffled before packing into blocks, reproducing the
    paper's "tuples in a relation are randomly distributed". *)

open Taqp_data
open Taqp_storage

type spec = { n_tuples : int; tuple_bytes : int; block_bytes : int }

val paper_spec : spec
(** 10,000 tuples of 200 bytes in 1 KB blocks: 2,000 blocks, blocking
    factor 5 (Section 5). *)

val schema : Schema.t

val relation :
  ?spec:spec ->
  ?key:(int -> int) ->
  ?grp:(int -> int) ->
  ?placement:[ `Random | `Clustered ] ->
  rng:Taqp_rng.Prng.t ->
  unit ->
  Heap_file.t
(** Fresh relation; [key] defaults to the identity, [grp] to
    [fun i -> i mod 100]. [placement] (default [`Random]) controls the
    block layout: [`Clustered] packs tuples sorted by [sel], the
    adversarial case for the paper's SRS variance approximation. *)

val shuffled_copy : rng:Taqp_rng.Prng.t -> Heap_file.t -> Heap_file.t
(** Same tuple set, independently shuffled block placement — full
    overlap for intersection workloads. *)

val partial_copy :
  rng:Taqp_rng.Prng.t -> keep:int -> fresh_ids_from:int -> Heap_file.t ->
  Heap_file.t
(** Keep [keep] random tuples of the source and pad back to the source
    cardinality with fresh tuples whose [id]s start at
    [fresh_ids_from] (guaranteed disjoint if chosen above all existing
    ids) — an intersection overlap of exactly [keep] tuples. *)

val sharded_relation :
  ?spec:spec -> shards:int -> skew:float -> qualifying:int ->
  rng:Taqp_rng.Prng.t -> unit -> Heap_file.t
(** A relation laid out as [shards] contiguous tuple (= block) ranges
    with {e exactly} [qualifying] tuples satisfying [sel < qualifying],
    distributed across shards proportionally to [skew]^j (capped by
    shard capacity, total exact): [skew = 1] is uniform density,
    [skew > 1] concentrates qualifying tuples in the high-index shards
    — the stress case for stratified per-shard estimator merging.
    Within a shard the qualifying positions are shuffled; across
    shards the layout is deterministic in the quotas.
    @raise Invalid_argument on [shards < 1], [skew <= 0], or
    [qualifying] outside [0, n]. *)

val join_group_size : n:int -> target_output:int -> int
(** The per-key group size c such that two relations keyed in groups of
    c produce ~[target_output] join pairs: c = round(target/n),
    clamped to [1, n]. *)
