open Taqp_data
open Taqp_storage

type spec = { n_tuples : int; tuple_bytes : int; block_bytes : int }

let paper_spec = { n_tuples = 10_000; tuple_bytes = 200; block_bytes = 1024 }

let schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.Tint };
      { Schema.name = "sel"; ty = Value.Tint };
      { Schema.name = "key"; ty = Value.Tint };
      { Schema.name = "grp"; ty = Value.Tint };
    ]

let relation ?(spec = paper_spec) ?(key = fun i -> i) ?(grp = fun i -> i mod 100)
    ?(placement = `Random) ~rng () =
  let n = spec.n_tuples in
  let sel_values = Array.init n (fun i -> i) in
  Taqp_rng.Sample.shuffle rng sel_values;
  let tuples =
    Array.init n (fun i ->
        Tuple.of_list
          [
            Value.Int i;
            Value.Int sel_values.(i);
            Value.Int (key i);
            Value.Int (grp i);
          ])
  in
  (match placement with
  | `Random -> Taqp_rng.Sample.shuffle rng tuples
  | `Clustered ->
      (* Pack tuples sorted by the selection attribute: qualifying
         tuples concentrate in few blocks, the adversarial case for the
         SRS variance approximation. *)
      Array.sort
        (fun a b -> Value.compare (Tuple.get a 1) (Tuple.get b 1))
        tuples);
  Heap_file.create ~block_bytes:spec.block_bytes ~tuple_bytes:spec.tuple_bytes
    ~schema
    (Array.to_list tuples)

let repack ~rng source tuples =
  let arr = Array.of_list tuples in
  Taqp_rng.Sample.shuffle rng arr;
  Heap_file.create
    ~block_bytes:(Heap_file.block_bytes source)
    ~tuple_bytes:(Heap_file.tuple_bytes source)
    ~schema:(Heap_file.schema source) (Array.to_list arr)

let shuffled_copy ~rng source = repack ~rng source (Heap_file.to_list source)

let partial_copy ~rng ~keep ~fresh_ids_from source =
  let n = Heap_file.n_tuples source in
  if keep < 0 || keep > n then invalid_arg "Generator.partial_copy: bad keep";
  let all = Array.of_list (Heap_file.to_list source) in
  Taqp_rng.Sample.shuffle rng all;
  let kept = Array.to_list (Array.sub all 0 keep) in
  let fresh =
    List.init (n - keep) (fun i ->
        let id = fresh_ids_from + i in
        Tuple.of_list
          [ Value.Int id; Value.Int id; Value.Int id; Value.Int (id mod 100) ])
  in
  repack ~rng source (kept @ fresh)

let sharded_relation ?(spec = paper_spec) ~shards ~skew ~qualifying ~rng () =
  if shards < 1 then invalid_arg "Generator.sharded_relation: shards < 1";
  if skew <= 0.0 then invalid_arg "Generator.sharded_relation: skew <= 0";
  let n = spec.n_tuples in
  if qualifying < 0 || qualifying > n then
    invalid_arg "Generator.sharded_relation: bad qualifying";
  let shards = Int.min shards (Int.max 1 n) in
  (* Contiguous tuple ranges; tuples pack into blocks in insertion
     order, so these are block ranges too. *)
  let base = n / shards and extra = n mod shards in
  let sizes =
    Array.init shards (fun j -> base + if j < extra then 1 else 0)
  in
  (* Qualifying quota per shard proportional to skew^j, capped by the
     shard size; leftover spills forward so the total is exact. *)
  let weights = Array.init shards (fun j -> skew ** float_of_int j) in
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let quotas = Array.make shards 0 in
  let assigned = ref 0 in
  Array.iteri
    (fun j w ->
      let q =
        int_of_float (Float.round (float_of_int qualifying *. w /. wsum))
      in
      let q = Int.min q (Int.min sizes.(j) (qualifying - !assigned)) in
      quotas.(j) <- q;
      assigned := !assigned + q)
    weights;
  let j = ref 0 in
  while !assigned < qualifying do
    if quotas.(!j) < sizes.(!j) then begin
      quotas.(!j) <- quotas.(!j) + 1;
      incr assigned
    end
    else incr j
  done;
  (* Within each shard, qualifying sel values (< qualifying) mix with
     non-qualifying ones at shuffled positions; across shards the
     density follows the quotas. *)
  let q_next = ref 0 and nq_next = ref qualifying in
  let sel = Array.make n 0 in
  let lo = ref 0 in
  for j = 0 to shards - 1 do
    let size = sizes.(j) in
    let vals =
      Array.init size (fun i ->
          if i < quotas.(j) then begin
            let v = !q_next in
            incr q_next;
            v
          end
          else begin
            let v = !nq_next in
            incr nq_next;
            v
          end)
    in
    Taqp_rng.Sample.shuffle rng vals;
    Array.blit vals 0 sel !lo size;
    lo := !lo + size
  done;
  let tuples =
    List.init n (fun i ->
        Tuple.of_list
          [
            Value.Int i;
            Value.Int sel.(i);
            Value.Int i;
            Value.Int (i mod 100);
          ])
  in
  Heap_file.create ~block_bytes:spec.block_bytes ~tuple_bytes:spec.tuple_bytes
    ~schema tuples

let join_group_size ~n ~target_output =
  if n <= 0 then invalid_arg "Generator.join_group_size: n <= 0";
  let c =
    int_of_float (Float.round (float_of_int target_output /. float_of_int n))
  in
  Int.max 1 (Int.min n c)
