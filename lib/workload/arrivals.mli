(** Open-loop arrival processes for the serving load harness
    ({!Taqp_net.Load}, [bench --serve]): submission instants are drawn
    in advance from a seeded process, so offered load is independent
    of how fast the server answers — the open-loop discipline that
    exposes queue collapse instead of masking it.

    Both processes are normalized to mean gap [1/rate], so cells that
    differ only in the process compare at equal offered load. *)

type process =
  | Poisson  (** exponential gaps — the memoryless baseline *)
  | Pareto of { alpha : float }
      (** heavy-tailed gaps, density ~ x^-(alpha+1) above the scale
          point; [alpha] in (1, 2] gives a finite mean but infinite
          variance — bursty arrivals that stress admission control.
          Must be > 1. *)

val name : process -> string
(** ["poisson"] or ["pareto(1.50)"]. *)

val of_string : string -> (process, string) result
(** Parses ["poisson"], ["pareto"] (alpha 1.5) or ["pareto(A)"]. *)

val interarrivals :
  process -> rate:float -> n:int -> seed:int -> float array
(** [n] gaps with mean [1/rate], drawn from one [Prng.create seed]
    stream in order — equal arguments replay the identical schedule.
    @raise Invalid_argument on [rate <= 0], negative [n] or a Pareto
    alpha at or below 1. *)

val arrivals : process -> rate:float -> n:int -> seed:int -> float array
(** Cumulative sums of {!interarrivals}: absolute submission instants
    starting after 0. *)

val mean : float array -> float
(** Sample mean ([nan] when empty). *)

val tail_ratio : float array -> float
(** Max gap over median gap — a scale-free burstiness statistic: ~10
    for exponential samples, orders of magnitude larger for heavy
    tails. *)
