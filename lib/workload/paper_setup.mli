(** The Section 5 experimental workloads, packaged: each value carries
    the populated catalog, the query, and its exact count. *)

open Taqp_storage
open Taqp_relational

type t = {
  catalog : Catalog.t;
  query : Ra.t;
  exact : int;
  description : string;
}

val selection : ?spec:Generator.spec -> ?output:int -> seed:int -> unit -> t
(** [select sel < output] over one paper-spec relation — exactly
    [output] qualifying tuples (default 1,000); one integer
    comparison, as in experiment A. *)

val join : ?spec:Generator.spec -> ?target_output:int -> seed:int -> unit -> t
(** Two relations keyed in equal-size groups so the single-attribute
    equi-join yields ~[target_output] pairs (default 70,000, the
    experiment C workload; true selectivity ~7e-4). *)

val intersection : ?spec:Generator.spec -> ?overlap:int -> seed:int -> unit -> t
(** Two relations sharing exactly [overlap] tuples (default the full
    10,000, experiment B's "10,000 output tuples"). *)

val sharded_selection :
  ?spec:Generator.spec -> ?shards:int -> ?skew:float -> ?output:int ->
  seed:int -> unit -> t
(** [select sel < output] (default n/10 qualifying) over a
    {!Generator.sharded_relation} of [shards] (default 4) block ranges
    with per-shard qualifying density following [skew]^j (default 1,
    uniform) — the fixture test_parallel and bench --parallel share
    for shard-count/skew sweeps. *)

val projection : ?spec:Generator.spec -> ?groups:int -> seed:int -> unit -> t
(** [project grp (r)] with exactly [groups] distinct values (default
    100), uniformly sized. *)

val projection_skewed :
  ?spec:Generator.spec -> ?groups:int -> ?zipf_s:float -> seed:int -> unit -> t
(** [project grp (r)] with up to [groups] distinct values whose sizes
    follow a Zipf([zipf_s], default 1.2) distribution — the adversarial
    regime for distinct-count estimators (many rare groups hide from
    the sample). [exact] is the number of groups actually realized. *)

val three_way_join :
  ?spec:Generator.spec -> ?group_size:int -> seed:int -> unit -> t
(** r1 |X| r2 |X| r3 on a shared key in groups of [group_size]
    (default 3): a three-dimensional point space, the stress test for
    nested full-fulfillment evaluation. *)

val select_join :
  ?spec:Generator.spec -> ?target_output:int -> ?keep:int -> seed:int ->
  unit -> t
(** A two-operator pipeline select(join): the join workload filtered to
    [sel < keep] on the left operand — exercises multi-operator
    selectivity chaining. *)

val union_of_selects : ?spec:Generator.spec -> seed:int -> unit -> t
(** count(select[sel < 3000] r union select[sel >= 8000] r) — exercises
    the inclusion-exclusion path end to end (exact = 5,000). *)
