(* Open-loop arrival processes for the serving harness: the client
   decides submission instants in advance and never waits for the
   server — offered load is a property of the process, not of the
   server's speed. Two interarrival laws:

   - [Poisson rate]: exponential gaps, mean 1/rate. The memoryless
     baseline every queueing result assumes.

   - [Pareto { alpha }]: heavy-tailed gaps with the same mean 1/rate
     (scale x_m = (alpha-1)/(alpha*rate), density ~ x^-(alpha+1)).
     For alpha <= 2 the gap variance is infinite: long quiet spells
     punctuated by bursts that pile arrivals on top of each other —
     the regime where admission control earns its keep and a mean-rate
     provisioned queue collapses.

   Determinism: one [Prng.create seed] drawn in submission order, so a
   (process, rate, n, seed) tuple names one exact arrival schedule —
   benches replay it for every admission-policy cell. *)

module Prng = Taqp_rng.Prng

type process = Poisson | Pareto of { alpha : float }

let name = function
  | Poisson -> "poisson"
  | Pareto { alpha } -> Printf.sprintf "pareto(%.2f)" alpha

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "poisson" -> Ok Poisson
  | "pareto" -> Ok (Pareto { alpha = 1.5 })
  | s -> (
      match Scanf.sscanf_opt s "pareto(%f)" (fun a -> a) with
      | Some alpha when alpha > 1.0 -> Ok (Pareto { alpha })
      | Some _ -> Error "pareto alpha must be > 1 (finite mean)"
      | None -> Error (Printf.sprintf "unknown arrival process %S" s))

let validate = function
  | Poisson -> ()
  | Pareto { alpha } ->
      if alpha <= 1.0 then
        invalid_arg "Arrivals: pareto alpha must be > 1 (finite mean)"

let draw_gap process ~rate rng =
  match process with
  | Poisson -> Prng.exponential rng rate
  | Pareto { alpha } ->
      (* Inverse-CDF draw: x_m * u^(-1/alpha), u uniform on (0, 1].
         x_m chosen so the mean x_m * alpha/(alpha-1) is exactly
         1/rate — equal offered load across processes. *)
      let xm = (alpha -. 1.0) /. (alpha *. rate) in
      let u = 1.0 -. Prng.float rng 1.0 in
      xm *. (u ** (-1.0 /. alpha))

let interarrivals process ~rate ~n ~seed =
  if rate <= 0.0 then invalid_arg "Arrivals.interarrivals: rate <= 0";
  if n < 0 then invalid_arg "Arrivals.interarrivals: negative n";
  validate process;
  let rng = Prng.create seed in
  Array.init n (fun _ -> draw_gap process ~rate rng)

let arrivals process ~rate ~n ~seed =
  let gaps = interarrivals process ~rate ~n ~seed in
  let t = ref 0.0 in
  Array.map
    (fun g ->
      t := !t +. g;
      !t)
    gaps

let mean a =
  match Array.length a with
  | 0 -> Float.nan
  | n -> Array.fold_left ( +. ) 0.0 a /. float_of_int n

(* Max gap over median gap: ~10 for exponential samples of a few
   thousand, orders of magnitude more for heavy tails — the statistic
   the sanity tests separate the two processes on. *)
let tail_ratio gaps =
  match Array.length gaps with
  | 0 -> Float.nan
  | n ->
      let sorted = Array.copy gaps in
      Array.sort compare sorted;
      let median = sorted.(n / 2) in
      let max = sorted.(n - 1) in
      if median <= 0.0 then Float.infinity else max /. median
