(** Stratified combination of per-shard cluster-sample estimators.

    Each shard samples its own block range without replacement and
    summarises the draws as sample moments. Because the shards are
    disjoint strata of the relation, the classic stratified estimator
    applies: the population total is estimated by [Σ_j N_j·ȳ_j] and its
    variance by [Σ_j N_j²·(1 − n_j/N_j)·s²_j/n_j] (finite-population
    correction per stratum). The qcheck suite in test_parallel checks
    both unbiasedness and nominal CI coverage of this combination
    across shard counts and skew. *)

type shard_moments = {
  population : int;  (** N_j — units (blocks) in the stratum *)
  drawn : int;  (** n_j — units sampled so far *)
  mean : float;  (** ȳ_j — sample mean of per-unit totals *)
  s2 : float;  (** s²_j — unbiased sample variance (0 when n_j < 2) *)
}

val of_counts : population:int -> float array -> shard_moments
(** Summarise one shard's per-unit observations.
    @raise Invalid_argument if [population] < number of observations. *)

type combined = {
  total_hat : float;  (** stratified estimate of the population total *)
  var_hat : float;  (** variance of [total_hat] *)
  drawn : int;  (** Σ n_j *)
  population : int;  (** Σ N_j *)
}

val combine : shard_moments list -> combined
(** Stratified combination. Shards with [drawn = 0] contribute nothing
    to the estimate; shards with [drawn < 2] contribute zero variance
    (their s² is unknown), matching the single-stream estimator's
    warm-up behaviour. *)

val interval : combined -> level:float -> Taqp_stats.Confidence.t
(** Normal-theory confidence interval for [total_hat] at [level]
    (e.g. 0.95), via {!Taqp_stats.Confidence.normal}. *)
