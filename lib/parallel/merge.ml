type shard_moments = {
  population : int;
  drawn : int;
  mean : float;
  s2 : float;
}

let of_counts ~population obs =
  let n = Array.length obs in
  if population < n then invalid_arg "Merge.of_counts: population < drawn";
  if n = 0 then { population; drawn = 0; mean = 0.0; s2 = 0.0 }
  else begin
    let sum = Array.fold_left ( +. ) 0.0 obs in
    let mean = sum /. float_of_int n in
    let s2 =
      if n < 2 then 0.0
      else begin
        let ss =
          Array.fold_left
            (fun acc y ->
              let d = y -. mean in
              acc +. (d *. d))
            0.0 obs
        in
        ss /. float_of_int (n - 1)
      end
    in
    { population; drawn = n; mean; s2 }
  end

type combined = {
  total_hat : float;
  var_hat : float;
  drawn : int;
  population : int;
}

let combine shards =
  List.fold_left
    (fun acc (m : shard_moments) ->
      let nj = float_of_int m.population in
      let acc =
        { acc with population = acc.population + m.population }
      in
      if m.drawn = 0 then acc
      else begin
        let total_hat = acc.total_hat +. (nj *. m.mean) in
        let var_hat =
          if m.drawn < 2 || m.drawn >= m.population then acc.var_hat
          else begin
            let fpc = 1.0 -. (float_of_int m.drawn /. nj) in
            acc.var_hat +. (nj *. nj *. fpc *. m.s2 /. float_of_int m.drawn)
          end
        in
        { acc with total_hat; var_hat; drawn = acc.drawn + m.drawn }
      end)
    { total_hat = 0.0; var_hat = 0.0; drawn = 0; population = 0 }
    shards

let interval c ~level =
  Taqp_stats.Confidence.normal ~mean:c.total_hat ~variance:c.var_hat ~level
