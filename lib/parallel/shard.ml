type range = { lo : int; hi : int }

let size r = r.hi - r.lo

let ranges ~n ~k =
  if n < 0 then invalid_arg "Shard.ranges: n < 0";
  let k = Int.max 1 k in
  let k = Int.min k (Int.max 1 n) in
  if n = 0 then [||]
  else begin
    let base = n / k and extra = n mod k in
    let out = Array.make k { lo = 0; hi = 0 } in
    let lo = ref 0 in
    for i = 0 to k - 1 do
      let w = base + if i < extra then 1 else 0 in
      out.(i) <- { lo = !lo; hi = !lo + w };
      lo := !lo + w
    done;
    out
  end

let weighted ~weights ~k =
  if k < 1 then invalid_arg "Shard.weighted: k < 1";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Shard.weighted: negative weight")
    weights;
  let n = Array.length weights in
  if n = 0 then [||]
  else begin
    let total = Array.fold_left ( +. ) 0.0 weights in
    let target = total /. float_of_int k in
    let out = ref [] in
    let lo = ref 0 and acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. weights.(i);
      (* Close the range once it carries its share, but never leave the
         remaining units without room for at least one unit per range. *)
      let remaining_ranges = k - List.length !out in
      let must_close = n - i <= remaining_ranges - 1 in
      if
        (!acc >= target && remaining_ranges > 1 && i < n - 1)
        || must_close
      then begin
        out := { lo = !lo; hi = i + 1 } :: !out;
        lo := i + 1;
        acc := 0.0
      end
    done;
    if !lo < n then out := { lo = !lo; hi = n } :: !out;
    Array.of_list (List.rev !out)
  end

let owner ~ranges u =
  let n = Array.length ranges in
  let rec go i =
    if i >= n then raise Not_found
    else if u >= ranges.(i).lo && u < ranges.(i).hi then i
    else go (i + 1)
  in
  go 0

let partition ~ranges units =
  let out = Array.make (Array.length ranges) [] in
  List.iter
    (fun u ->
      let j = owner ~ranges u in
      out.(j) <- u :: out.(j))
    units;
  Array.map List.rev out
