type deadline_mode = [ `Abort | `Observe ]

type worker = {
  shard : int;
  mutable wnow : float;
  mutable crossed : bool;
  deadline : (float * deadline_mode) option;
}

type t = { origin : float; workers : worker array; deadline : (float * deadline_mode) option }

exception Deadline_exceeded of { shard : int; at : float }

let fork ~now ?deadline ~shards () =
  if shards < 1 then invalid_arg "Vclock.fork: shards < 1";
  let workers =
    Array.init shards (fun shard ->
        { shard; wnow = now; crossed = false; deadline })
  in
  { origin = now; workers; deadline }

let worker t i = t.workers.(i)
let now w = w.wnow
let shard w = w.shard

let charge w cost =
  if cost < 0.0 then invalid_arg "Vclock.charge: negative cost";
  let next = w.wnow +. cost in
  match w.deadline with
  | Some (at, `Abort) when (not w.crossed) && next > at ->
      (* Stop exactly at the deadline, like Clock.charge: the abort
         instant must not depend on the size of the charge that
         crossed it. *)
      w.wnow <- at;
      w.crossed <- true;
      raise (Deadline_exceeded { shard = w.shard; at })
  | Some (at, `Observe) when (not w.crossed) && next > at ->
      w.crossed <- true;
      w.wnow <- next
  | _ -> w.wnow <- next

let merge t =
  Array.fold_left (fun acc w -> Float.max acc w.wnow) t.origin t.workers

let crossings t =
  Array.to_list t.workers
  |> List.filter_map (fun w -> if w.crossed then Some (w.shard, w.wnow) else None)

let first_crossing t =
  match crossings t with [] -> None | x :: _ -> Some x

let armed t = t.deadline
