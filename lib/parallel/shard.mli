(** Block-range sharding: deterministic contiguous partitions of a unit
    population (disk blocks of a {!Taqp_storage.Heap_file}, tuples of a
    delta array, pairings of a merge schedule).

    Every function here is a pure function of its arguments — the shard
    layout of a relation never depends on how many domains execute it,
    which is one half of the engine's 1-vs-N bit-identity contract (the
    other half is the canonical charge replay, see
    docs/PARALLELISM.md). *)

type range = { lo : int; hi : int }
(** Half-open: the units [lo, hi). Empty when [lo = hi]. *)

val size : range -> int

val ranges : n:int -> k:int -> range array
(** Partition [0, n) into [min k n] contiguous ranges whose sizes
    differ by at most one (the first [n mod k] ranges get the extra
    unit). [k] is clamped to at least 1; [n = 0] yields no ranges.
    @raise Invalid_argument if [n < 0]. *)

val weighted : weights:float array -> k:int -> range array
(** Partition [0, Array.length weights) into at most [k] contiguous
    ranges balancing total weight: a greedy sweep closes a range once
    it holds at least [total/k] weight. Never returns an empty range;
    skewed weights therefore produce fewer, heavier ranges rather than
    empty shards.
    @raise Invalid_argument on a negative weight or [k < 1]. *)

val owner : ranges:range array -> int -> int
(** Index of the range containing unit [u].
    @raise Not_found if no range holds [u]. *)

val partition : ranges:range array -> int list -> int list array
(** Split a unit list (e.g. one stage's drawn sample units) by owning
    range, preserving the input order inside each shard — the
    stratification step of the per-shard estimator merge.
    @raise Not_found if a unit lies in no range. *)
