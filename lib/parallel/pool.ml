type batch = {
  seq : int;
  n : int;
  work : int -> unit;  (* never raises: errors are captured per task *)
  next : int Atomic.t;
  completed : int Atomic.t;
}

type t = {
  domains : int;
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  cv : Condition.t;  (* new batch published, or stop *)
  done_cv : Condition.t;  (* a batch finished its last task *)
  mutable current : batch option;
  mutable stop : bool;
  mutable shut : bool;
}

let drain t batch =
  let rec go () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.n then begin
      batch.work i;
      let finished = 1 + Atomic.fetch_and_add batch.completed 1 in
      if finished = batch.n then begin
        Mutex.lock t.m;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.m
      end;
      go ()
    end
  in
  go ()

let worker_loop t () =
  let last_seen = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    let rec wait () =
      if t.stop then None
      else
        match t.current with
        | Some b when b.seq > !last_seen -> Some b
        | _ ->
            Condition.wait t.cv t.m;
            wait ()
    in
    let next = wait () in
    Mutex.unlock t.m;
    match next with
    | None -> ()
    | Some b ->
        last_seen := b.seq;
        drain t b;
        loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      domains;
      workers = [];
      m = Mutex.create ();
      cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      stop = false;
      shut = false;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.domains

let seq_counter = ref 0

let run (type a) t (tasks : (unit -> a) array) : a array =
  if t.shut then invalid_arg "Pool.run: pool is shut down";
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results : (a, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let work i =
      results.(i) <-
        Some
          (try Ok (tasks.(i) ())
           with e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    incr seq_counter;
    let batch =
      {
        seq = !seq_counter;
        n;
        work;
        next = Atomic.make 0;
        completed = Atomic.make 0;
      }
    in
    Mutex.lock t.m;
    t.current <- Some batch;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    drain t batch;
    Mutex.lock t.m;
    while Atomic.get batch.completed < n do
      Condition.wait t.done_cv t.m
    done;
    t.current <- None;
    Mutex.unlock t.m;
    (* Re-raise the lowest-index failure so the observable outcome of a
       parallel region never depends on domain scheduling. *)
    Array.iteri
      (fun _ r ->
        match r with
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | _ -> assert false)
      results
  end

let shutdown t =
  if not t.shut then begin
    Mutex.lock t.m;
    t.stop <- true;
    t.shut <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let global_pool : t option ref = ref None
let global_m = Mutex.create ()

let global ~domains =
  Mutex.lock global_m;
  let pool =
    match !global_pool with
    | Some p when p.domains = domains && not p.shut -> p
    | prev ->
        (match prev with Some p -> shutdown p | None -> ());
        let p = create ~domains in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_m;
  pool
