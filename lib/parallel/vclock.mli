(** Per-worker virtual clocks with deterministic barrier merge.

    When a stage's sampling work fans out across domains, each worker
    accounts virtual cost on its own [Vclock.worker], forked from the
    stage's entry instant. At the stage barrier the workers merge by
    deterministic max over their nows — the merged instant, the set of
    deadline crossings, and the identity of the first-crossing worker
    are all pure functions of the per-worker charge totals, never of
    scheduling order. An armed deadline survives fork and merge
    unchanged, and a worker that crosses an [`Abort] deadline stops
    exactly at the deadline (mirroring {!Taqp_storage.Clock.charge})
    so the merged clock can re-arm without drift.

    This module is the parallel-region accounting layer: the engine's
    canonical virtual time (the one traces, ledgers, and estimates are
    derived from) is still charged as a single sequential stream — see
    docs/PARALLELISM.md for how the two relate. *)

type deadline_mode = [ `Abort | `Observe ]

type t
(** A barrier group of worker clocks sharing one origin and (optional)
    armed deadline. *)

type worker
(** One shard's private clock. Not thread-safe across workers — each
    domain owns exactly one. *)

exception Deadline_exceeded of { shard : int; at : float }
(** Raised by {!charge} on the first crossing of an armed [`Abort]
    deadline. [at] is the deadline instant (the clock stops exactly
    there, not past it). *)

val fork : now:float -> ?deadline:float * deadline_mode -> shards:int -> unit -> t
(** [fork ~now ?deadline ~shards] creates [shards] workers, each
    starting at [now] with the given armed deadline (if any).
    @raise Invalid_argument if [shards < 1]. *)

val worker : t -> int -> worker
(** The [i]-th worker clock. *)

val now : worker -> float

val shard : worker -> int

val charge : worker -> float -> unit
(** Advance one worker's clock by a non-negative cost. Under an armed
    [`Abort] deadline the first crossing pins the clock at the deadline
    and raises {!Deadline_exceeded}; under [`Observe] the crossing is
    recorded (see {!crossings}) and the clock keeps advancing.
    @raise Invalid_argument on a negative cost. *)

val merge : t -> float
(** Barrier: the merged instant, [max] over all worker nows (at least
    the fork origin when no work was charged). Deterministic in the
    worker totals regardless of domain interleaving. *)

val crossings : t -> (int * float) list
(** Workers that crossed the armed deadline, as [(shard, now-at-crossing)]
    sorted by shard index — so "the worker that crosses first" is the
    lowest-index crosser, a deterministic tie-break documented here and
    pinned by test_parallel. Empty when no deadline is armed. *)

val first_crossing : t -> (int * float) option
(** Lowest-shard-index entry of {!crossings}. *)

val armed : t -> (float * deadline_mode) option
(** The deadline the group was forked with; preserved verbatim across
    {!merge} so the master clock can re-arm identically. *)
