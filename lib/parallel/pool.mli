(** A small fixed pool of OCaml 5 domains for deterministic batch
    fan-out.

    [run pool tasks] executes an array of independent thunks, workers
    (plus the calling domain) claiming indices from a shared counter,
    and returns the results in task order. Exceptions are captured
    per task and re-raised deterministically: the raiser with the
    lowest task index wins, regardless of which domain finished first.
    The engine relies on this so a parallel region behaves, observably,
    exactly like the sequential loop it replaces.

    Tasks MUST be independent pure compute over disjoint or read-only
    data — they run on other domains with no locking of engine state.
    In particular they must not touch a [Clock], [Device], [Prng],
    [Cache] or tracer: those are charged by the caller, sequentially,
    in the canonical order (see docs/PARALLELISM.md). *)

type t

val create : domains:int -> t
(** A pool driving [domains] total domains: [domains - 1] spawned
    workers plus the caller, so [create ~domains:1] spawns nothing and
    [run] degenerates to an in-place sequential loop.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total domains ([>= 1]). *)

val run : t -> (unit -> 'a) array -> 'a array
(** Execute all tasks, return results in task order. Re-raises the
    lowest-index exception if any task raised. Not reentrant: do not
    call [run] from inside a task. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; [run] after [shutdown] raises
    [Invalid_argument]. *)

val global : domains:int -> t
(** A process-wide pool cached by size: repeated calls with the same
    [domains] return the same pool; a different size shuts the old one
    down and spawns a fresh one. Intended for the engine hot path so
    every query doesn't pay domain spawn cost. *)
