(** Which live job runs its next stage.

    Stage-boundary preemption makes every policy a pure selection
    function: between stages the scheduler rebuilds the candidate set
    and asks the policy which handle steps next. All four policies
    minimize a score with ties broken by admission order, so selection
    is deterministic. *)

type t =
  | Fifo  (** admission order — the seed repo's ad-hoc server *)
  | Edf  (** earliest absolute deadline first *)
  | Least_laxity
      (** smallest [deadline - now - next-stage price]: EDF corrected
          for how much work the job still needs *)
  | Weighted_fair
      (** smallest consumed device time per unit priority — apportions
          the device across live jobs in proportion to their weights *)

val all : t list
val name : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

type candidate = {
  key : int;  (** scheduler-internal identifier, returned by selection *)
  seq : int;  (** admission order; FIFO's key and every tie-break *)
  deadline : float;  (** absolute *)
  laxity : float;  (** [deadline - now - min_stage_cost] *)
  service : float;  (** device seconds consumed so far *)
  weight : float;  (** priority as a float, [>= 1] *)
}

val select : t -> candidate list -> candidate
(** @raise Invalid_argument on an empty candidate list. *)
