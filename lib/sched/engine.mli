(** The incremental scheduler: {!Scheduler.run}'s event loop re-cut as
    an explicit state machine so a host can interleave scheduling with
    other work — the socket server ({!Taqp_net.Server}) alternates
    socket readiness with [step] calls on one device/clock, which is
    what makes admission control double as wire-level backpressure.

    [Scheduler.run ≡ create … |> drain |> finish] — the batch path is
    implemented on this module, so both entry points perform the exact
    same operation sequence (device charges, metric increments, journal
    writes, rng creation). The solo-job bit-identity anchor in
    test_sched pins that equivalence.

    All times are virtual seconds on the engine's own virtual clock
    (created at 0, or at [start_at] for recovery re-runs). *)

open Taqp_storage

type outcome =
  | Completed of Taqp_core.Report.t
  | Rejected of Admission.reason
  | Expired

type job_report = {
  job : Job.t;
  outcome : outcome;
  admitted : bool;
  degraded : bool;
  quota : float option;
  started_at : float option;
  finished_at : float;
  queue_wait : float;
  lateness : float;
  missed : bool;
  steps : int;
  preemptions : int;
  service : float;
}

type summary = {
  submitted : int;
  admitted : int;
  degraded : int;
  rejected : int;
  expired : int;
  completed : int;
  missed : int;
  miss_rate : float;
  lateness_p50 : float;
  lateness_p99 : float;
  lateness_p999 : float;
  max_lateness : float;
  mean_queue_wait : float;
  makespan : float;
  busy_time : float;
  preemptions : int;
}

type result = {
  policy : Policy.t;
  admission_on : bool;
  reports : job_report list;
  summary : summary;
}

type t

val create :
  ?policy:Policy.t ->
  ?admission:Admission.t ->
  ?params:Cost_params.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?tracer:Taqp_obs.Tracer.t ->
  ?faults:Taqp_fault.Injector.t ->
  ?journal:Taqp_recover.Journal.writer ->
  ?start_at:float ->
  ?on_device:(Device.t -> unit) ->
  ?on_dispatch:(Job.t -> Taqp_core.Executor.handle -> unit) ->
  ?account:(int option -> unit) ->
  ?cache:Taqp_cache.Cache.t ->
  ?on_report:(job_report -> unit) ->
  Job.t list ->
  t
(** Same knobs as {!Scheduler.run}, plus [on_report]: called once per
    terminal job (completed, expired, rejected) the moment its report
    is recorded — the server's hook for pushing RESULT/REJECT frames.
    The initial [jobs] may be empty; more arrive via {!submit}. *)

val step : t -> [ `Progress | `Idle ]
(** One iteration of the scheduling loop: admit every due arrival,
    then either give the policy's pick one executor stage step, or (no
    live jobs) sleep the clock to the next pending arrival. [`Idle]
    means no live and no pending jobs — nothing happens until a
    {!submit}. *)

val drain : t -> unit
(** [step] until [`Idle]. *)

val submit : t -> Job.t -> unit
(** Enqueue a job. Arrivals in the past (relative to {!now}) are
    admitted on the next [step]; ids should be unique per engine. *)

val cancel :
  t -> id:int -> [ `Cancelled_pending | `Killed_live | `Unknown ]
(** Withdraw a job. A still-pending job vanishes without a report; a
    live job is finished as [Expired] (reported and journaled, counts
    as missed). [`Unknown] ids are already terminal or never seen. *)

val finish : t -> result
(** Close the books: final accounting, cache counter emission, reports
    sorted by job id, summary. The engine is unusable afterwards
    (every other call raises [Invalid_argument]). *)

(** {2 Introspection} — the server's admission/status plumbing. *)

val now : t -> float
val device : t -> Device.t
val live_count : t -> int
val pending_count : t -> int
val next_arrival : t -> float option

val backlog : t -> float
(** Σ max 0 (reserved − service) over live jobs: the same backlog
    admission prices against, exposed for retry-after pricing. *)

(** {2 Shared helpers} *)

val to_done_record : job_report -> Sched_journal.done_record
(** The journal/wire terminal record for a report — one codec shape
    for [Done] journal records and RESULT frames. *)

val report_missed :
  job:Job.t -> finished_at:float -> outcome -> bool

val percentile : float array -> float -> float
(** [percentile sorted q] with nearest-rank rounding (the summary's
    p50/p99/p999 convention); [sorted] ascending. *)
