(* The scheduler's own journal: coarse, job-level write-ahead records
   so a killed [serve] workload can account for every job after a
   restart. Admission decisions and per-job progress are journaled as
   they happen; a job's terminal record ([Done]) carries the full
   accounting line the workload summary needs, so recovery can report
   pre-crash jobs without their (unjournalable) full reports.

   This is deliberately coarser than the per-query stage journal
   ({!Taqp_recover.Query_journal}): the scheduler re-runs unfinished
   jobs with whatever slack their deadlines still leave, rather than
   splicing executor state — crash downtime expires what it expires,
   exactly as the paper's absolute deadlines demand. *)

module Codec = Taqp_recover.Codec
module Journal = Taqp_recover.Journal

type done_record = {
  d_id : int;
  d_label : string;
  d_outcome : string;
      (** {!Taqp_core.Report.outcome_name}, or ["rejected"]/["expired"] *)
  d_admitted : bool;
  d_degraded : bool;
  d_missed : bool;
  d_lateness : float;
  d_queue_wait : float;
  d_finished_at : float;
  d_service : float;
  d_steps : int;
  d_preemptions : int;
  d_estimate : float option;
  d_now : float;
}

(* A wire submission accepted at the door, journaled as the canonical
   job line (absolute times) so a restarted server can re-parse it with
   [Job.of_line] — the server has no job file to re-read. [s_client] is
   the connection registry id, informational only. *)
type submitted_record = {
  s_id : int;
  s_label : string;
  s_client : int;
  s_line : string;
  s_now : float;
}

type record =
  | Admitted of {
      a_id : int;
      a_label : string;
      a_granted : float;
      a_degraded : bool;
      a_now : float;
    }
  | Progress of { p_id : int; p_steps : int; p_now : float }
  | Done of done_record
  | Submitted of submitted_record

let now_of = function
  | Admitted a -> a.a_now
  | Progress p -> p.p_now
  | Done d -> d.d_now
  | Submitted s -> s.s_now

(* The done-record field codec is shared with the wire protocol's
   RESULT frame ([Taqp_net.Wire]): one codec, so a replayed journal
   completion is byte-identical to the live server's reply. *)
let write_done b (d : done_record) =
  Codec.int b d.d_id;
  Codec.string b d.d_label;
  Codec.string b d.d_outcome;
  Codec.bool b d.d_admitted;
  Codec.bool b d.d_degraded;
  Codec.bool b d.d_missed;
  Codec.float b d.d_lateness;
  Codec.float b d.d_queue_wait;
  Codec.float b d.d_finished_at;
  Codec.float b d.d_service;
  Codec.int b d.d_steps;
  Codec.int b d.d_preemptions;
  Codec.option Codec.float b d.d_estimate;
  Codec.float b d.d_now

let read_done d =
  let d_id = Codec.read_int d in
  let d_label = Codec.read_string d in
  let d_outcome = Codec.read_string d in
  let d_admitted = Codec.read_bool d in
  let d_degraded = Codec.read_bool d in
  let d_missed = Codec.read_bool d in
  let d_lateness = Codec.read_float d in
  let d_queue_wait = Codec.read_float d in
  let d_finished_at = Codec.read_float d in
  let d_service = Codec.read_float d in
  let d_steps = Codec.read_int d in
  let d_preemptions = Codec.read_int d in
  let d_estimate = Codec.read_option Codec.read_float d in
  let d_now = Codec.read_float d in
  {
    d_id;
    d_label;
    d_outcome;
    d_admitted;
    d_degraded;
    d_missed;
    d_lateness;
    d_queue_wait;
    d_finished_at;
    d_service;
    d_steps;
    d_preemptions;
    d_estimate;
    d_now;
  }

let encode_record b = function
  | Admitted a ->
      Codec.u8 b 0;
      Codec.int b a.a_id;
      Codec.string b a.a_label;
      Codec.float b a.a_granted;
      Codec.bool b a.a_degraded;
      Codec.float b a.a_now
  | Progress p ->
      Codec.u8 b 1;
      Codec.int b p.p_id;
      Codec.int b p.p_steps;
      Codec.float b p.p_now
  | Done d ->
      Codec.u8 b 2;
      write_done b d
  | Submitted s ->
      Codec.u8 b 3;
      Codec.int b s.s_id;
      Codec.string b s.s_label;
      Codec.int b s.s_client;
      Codec.string b s.s_line;
      Codec.float b s.s_now

let decode_record d =
  match Codec.read_u8 d with
  | 0 ->
      let a_id = Codec.read_int d in
      let a_label = Codec.read_string d in
      let a_granted = Codec.read_float d in
      let a_degraded = Codec.read_bool d in
      let a_now = Codec.read_float d in
      Admitted { a_id; a_label; a_granted; a_degraded; a_now }
  | 1 ->
      let p_id = Codec.read_int d in
      let p_steps = Codec.read_int d in
      let p_now = Codec.read_float d in
      Progress { p_id; p_steps; p_now }
  | 2 -> Done (read_done d)
  | 3 ->
      let s_id = Codec.read_int d in
      let s_label = Codec.read_string d in
      let s_client = Codec.read_int d in
      let s_line = Codec.read_string d in
      let s_now = Codec.read_float d in
      Submitted { s_id; s_label; s_client; s_line; s_now }
  | n ->
      raise
        (Codec.Decode_error (Printf.sprintf "bad scheduler record tag %d" n))

let encode r = Codec.to_string encode_record r

type loaded = { records : record list; torn : string option }

let load path =
  match Journal.load path with
  | Error _ as e -> e
  | Ok { Journal.records; tail } -> (
      match List.map (Codec.of_string decode_record) records with
      | records ->
          Ok
            {
              records;
              torn =
                (match tail with
                | Journal.Clean -> None
                | Journal.Torn { at; reason } ->
                    Some (Printf.sprintf "torn tail at byte %d: %s" at reason));
            }
      | exception Codec.Decode_error m -> Error (path ^ ": " ^ m))
