(** One time-constrained query submitted to the scheduler: a query over
    its catalog, an arrival instant, an {e absolute} deadline, a
    priority weight, and an optional answer-quality requirement.

    This is the paper's Section-1 transaction setting made concrete:
    "by precisely fixing the execution times of database queries in a
    transaction, accurate estimates for transaction execution times
    become possible … minimizing the number of transactions that miss
    their deadlines." A job's quota is whatever slack its deadline
    leaves when it reaches the device. *)

open Taqp_storage
open Taqp_relational

type t = {
  id : int;
  label : string;
  query : Ra.t;
  catalog : Catalog.t;
  arrival : float;  (** absolute clock instant the job is submitted *)
  deadline : float;  (** absolute — not a duration *)
  priority : int;  (** weight for the weighted-fair policy; [>= 1] *)
  min_confidence : float option;
      (** target relative half-width of the confidence interval (at the
          config's confidence level); admission degrades a job whose
          slack cannot afford it *)
  config : Taqp_core.Config.t;
  aggregate : Taqp_core.Aggregate.t;
  seed : int;  (** per-job sampling seed, mirroring {!Taqp_core.Taqp.count_within} *)
  exact : int option;  (** ground truth when known (benches report error) *)
}

val make :
  ?label:string ->
  ?priority:int ->
  ?min_confidence:float ->
  ?config:Taqp_core.Config.t ->
  ?aggregate:Taqp_core.Aggregate.t ->
  ?seed:int ->
  ?exact:int ->
  id:int ->
  catalog:Catalog.t ->
  arrival:float ->
  deadline:float ->
  Ra.t ->
  t
(** @raise Invalid_argument on a negative arrival, a deadline at or
    before the arrival, a priority below 1, a non-positive
    [min_confidence], or an invalid config. *)

val slack : t -> now:float -> float
(** [deadline - now]. *)

val pp : Format.formatter -> t -> unit

(** {2 Job files}

    One job per line:
    {[ arrival | deadline | query [| key=value,key=value] ]}
    with options [priority=INT], [seed=INT], [label=STRING] and
    [min_rhw=FLOAT]. Blank lines and [#] comments are skipped. *)

val of_line :
  catalog:Catalog.t ->
  ?config:Taqp_core.Config.t ->
  id:int ->
  string ->
  (t option, string) result
(** [Ok None] for a blank/comment line. [config] seeds every parsed
    job's evaluation config (default {!Taqp_core.Config.default}). *)

val of_lines :
  catalog:Catalog.t ->
  ?config:Taqp_core.Config.t ->
  string list ->
  (t list, string) result
(** Parse a whole file's lines; ids are assigned in order of
    appearance, errors are prefixed with their 1-based line number. *)

val of_channel :
  catalog:Catalog.t ->
  ?config:Taqp_core.Config.t ->
  in_channel ->
  (t list, string) result
(** {!of_lines} over a channel read to EOF — [serve --jobs -] pipes
    stdin through this. *)

val to_line : t -> string
(** The inverse of {!of_line}: a line that re-parses (against the same
    catalog and config) to a job with identical id-independent fields.
    Times print with 17 significant digits (bit-exact round trip);
    [catalog], [config], [aggregate] and [exact] are supplied by the
    reader, not the line. The socket server journals wire submissions
    in this form ({!Sched_journal.Submitted}). *)
