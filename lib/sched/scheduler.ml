module Report = Taqp_core.Report
module Executor = Taqp_core.Executor
module Confidence = Taqp_stats.Confidence
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Metrics = Taqp_obs.Metrics
module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Json = Taqp_obs.Json
module Prng = Taqp_rng.Prng

let src = Logs.Src.create "taqp.sched" ~doc:"multi-query deadline scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome =
  | Completed of Report.t
  | Rejected of Admission.reason
  | Expired

type job_report = {
  job : Job.t;
  outcome : outcome;
  admitted : bool;
  degraded : bool;
  quota : float option;
  started_at : float option;
  finished_at : float;
  queue_wait : float;
  lateness : float;
  missed : bool;
  steps : int;
  preemptions : int;
  service : float;
}

type summary = {
  submitted : int;
  admitted : int;
  degraded : int;
  rejected : int;
  expired : int;
  completed : int;
  missed : int;
  miss_rate : float;
  lateness_p50 : float;
  lateness_p99 : float;
  lateness_p999 : float;
  max_lateness : float;
  mean_queue_wait : float;
  makespan : float;
  busy_time : float;
  preemptions : int;
}

type result = {
  policy : Policy.t;
  admission_on : bool;
  reports : job_report list;
  summary : summary;
}

(* One admitted, unfinished job. [l_reserved] is its priced minimum
   viable run — the backlog unit admission subtracts from later jobs'
   slack, decayed by the service already delivered. *)
type live = {
  l_job : Job.t;
  l_seq : int;
  l_granted : float;
  l_degraded : bool;
  l_reserved : float;
  mutable l_handle : Executor.handle option;
  mutable l_started : float option;
  mutable l_service : float;
  mutable l_steps : int;
  mutable l_preempt : int;
}

let percentile sorted q =
  match sorted with
  | [||] -> 0.0
  | a ->
      let n = Array.length a in
      let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
      a.(Int.max 0 (Int.min (n - 1) i))

(* An admitted job "missed" when its transaction got no in-deadline
   answer: it finished past the deadline (observe-mode overspend), its
   deadline passed while it was still queued, or its slack was spent
   before a single stage completed — a report with neither an exact
   answer nor one finished sampling stage carries no estimate the
   transaction could act on. *)
let report_missed ~(job : Job.t) ~finished_at = function
  | Completed r ->
      finished_at > job.Job.deadline +. 1e-9
      || (r.Report.stages_completed = 0 && not r.Report.exact)
  | Expired -> true
  | Rejected _ -> false

let run ?(policy = Policy.Edf) ?admission
    ?(params = Cost_params.no_jitter Cost_params.default) ?metrics ?tracer
    ?faults ?journal ?start_at ?on_device ?on_dispatch ?account:account_hook
    ?cache jobs =
  let clock = Clock.create_virtual () in
  (* Recovery re-runs start where the crashed workload's clock stopped
     plus the downtime: arrivals the restart missed are admitted at
     once and jobs whose deadlines passed meanwhile expire on their
     first dispatch — downtime is lost time, never replayed time. *)
  Option.iter (fun at -> Clock.restore clock ~now:at) start_at;
  let device = Device.create ~params ?metrics ?tracer ?faults clock in
  (match (cache, metrics) with
  | Some c, Some m -> Taqp_cache.Cache.bind_metrics c m
  | _ -> ());
  (* Audit hooks. [on_device] lets an observer attach a spend listener
     to the scheduler's internal device; [account] tells it which job
     the next charges belong to ([None] = scheduler overhead);
     [on_dispatch] hands over each job's executor handle at dispatch so
     a drift monitor can register on its cost model. All three are
     strictly observational. *)
  Option.iter (fun f -> f device) on_device;
  let account owner =
    match account_hook with None -> () | Some f -> f owner
  in
  (* Journal writes are charged to the shared clock like any other IO
     (so journaling is visible to every job's quota), but never raise:
     if a deadline fires during the charge the clock pins there and the
     record is still written — losing the record would be strictly
     worse for recovery than losing the sliver of time. Without
     [journal] nothing is charged and the run is bit-identical to the
     journal-free scheduler. *)
  let jwrite record =
    match journal with
    | None -> ()
    | Some w ->
        let payload = Sched_journal.encode record in
        (try
           Device.journal_write device
             ~bytes:
               (String.length payload + Taqp_recover.Journal.frame_overhead)
         with Clock.Deadline_exceeded _ -> ());
        Taqp_recover.Journal.append w payload
  in
  let metrics = Device.metrics device in
  let tracer = Device.tracer device in
  let c_submitted = Metrics.counter metrics "sched.submitted" in
  let c_admitted = Metrics.counter metrics "sched.admitted" in
  let c_degraded = Metrics.counter metrics "sched.degraded" in
  let c_rejected = Metrics.counter metrics "sched.rejected" in
  let c_expired = Metrics.counter metrics "sched.expired" in
  let c_completed = Metrics.counter metrics "sched.completed" in
  let c_missed = Metrics.counter metrics "sched.missed" in
  let c_preempt = Metrics.counter metrics "sched.preemptions" in
  let h_lateness = Metrics.histogram metrics "sched.lateness" in
  let h_wait = Metrics.histogram metrics "sched.queue_wait" in
  let instant name (job : Job.t) args =
    if Tracer.enabled tracer then
      Tracer.instant tracer ~cat:"sched" name
        ~args:(("job", Event.String job.Job.label) :: args)
  in
  let pending =
    ref
      (List.stable_sort
         (fun a b -> compare (a.Job.arrival, a.Job.id) (b.Job.arrival, b.Job.id))
         jobs)
  in
  let live = ref [] in
  let reports = ref [] in
  let seq = ref 0 in
  let last_run = ref None in
  let finish_live lj outcome =
    live := List.filter (fun l -> l != lj) !live;
    (match !last_run with
    | Some s when s = lj.l_seq -> last_run := None
    | _ -> ());
    let now = Clock.now clock in
    let missed = report_missed ~job:lj.l_job ~finished_at:now outcome in
    let lateness = now -. lj.l_job.Job.deadline in
    if missed then Metrics.Counter.incr c_missed;
    Metrics.Histogram.observe h_lateness (Float.max 0.0 lateness);
    (match outcome with
    | Completed r ->
        Metrics.Counter.incr c_completed;
        instant "sched.complete" lj.l_job
          [
            ("outcome", Event.String (Report.outcome_name r.Report.outcome));
            ("lateness", Event.Float lateness);
          ]
    | Expired ->
        Metrics.Counter.incr c_expired;
        instant "sched.expire" lj.l_job []
    | Rejected _ -> assert false);
    jwrite
      (Sched_journal.Done
         {
           d_id = lj.l_job.Job.id;
           d_label = lj.l_job.Job.label;
           d_outcome =
             (match outcome with
             | Completed r -> Report.outcome_name r.Report.outcome
             | Expired -> "expired"
             | Rejected _ -> assert false);
           d_admitted = true;
           d_degraded = lj.l_degraded;
           d_missed = missed;
           d_lateness = lateness;
           d_queue_wait =
             (match lj.l_started with
             | Some s -> s -. lj.l_job.Job.arrival
             | None -> now -. lj.l_job.Job.arrival);
           d_finished_at = now;
           d_service = lj.l_service;
           d_steps = lj.l_steps;
           d_preemptions = lj.l_preempt;
           d_estimate =
             (match outcome with
             | Completed r -> Some r.Report.estimate
             | Expired | Rejected _ -> None);
           d_now = now;
         });
    reports :=
      {
        job = lj.l_job;
        outcome;
        admitted = true;
        degraded = lj.l_degraded;
        quota = Option.map Executor.quota lj.l_handle;
        started_at = lj.l_started;
        finished_at = now;
        queue_wait =
          (match lj.l_started with
          | Some s -> s -. lj.l_job.Job.arrival
          | None -> now -. lj.l_job.Job.arrival);
        lateness;
        missed;
        steps = lj.l_steps;
        preemptions = lj.l_preempt;
        service = lj.l_service;
      }
      :: !reports
  in
  let backlog () =
    List.fold_left
      (fun acc l -> acc +. Float.max 0.0 (l.l_reserved -. l.l_service))
      0.0 !live
  in
  let admit_arrivals now =
    let rec go () =
      match !pending with
      | j :: rest when j.Job.arrival <= now ->
          pending := rest;
          Metrics.Counter.incr c_submitted;
          let decision =
            match admission with
            | None -> Admission.Accept { quota = Job.slack j ~now }
            | Some a ->
                Admission.evaluate a ?cache ~device ~now ~backlog:(backlog ())
                  ~queue_len:(List.length !live) j
          in
          (match decision with
          | Admission.Reject reason ->
              Metrics.Counter.incr c_rejected;
              instant "sched.reject" j
                [ ("reason", Event.String (Admission.reason_name reason)) ];
              Log.debug (fun m ->
                  m "%s rejected: %a" j.Job.label Admission.pp_reason reason);
              jwrite
                (Sched_journal.Done
                   {
                     d_id = j.Job.id;
                     d_label = j.Job.label;
                     d_outcome = "rejected";
                     d_admitted = false;
                     d_degraded = false;
                     d_missed = false;
                     d_lateness = 0.0;
                     d_queue_wait = 0.0;
                     d_finished_at = now;
                     d_service = 0.0;
                     d_steps = 0;
                     d_preemptions = 0;
                     d_estimate = None;
                     d_now = now;
                   });
              reports :=
                {
                  job = j;
                  outcome = Rejected reason;
                  admitted = false;
                  degraded = false;
                  quota = None;
                  started_at = None;
                  finished_at = now;
                  queue_wait = 0.0;
                  lateness = 0.0;
                  missed = false;
                  steps = 0;
                  preemptions = 0;
                  service = 0.0;
                }
                :: !reports
          | Admission.Accept { quota } | Admission.Degrade { quota; _ } ->
              let degraded =
                match decision with Admission.Degrade _ -> true | _ -> false
              in
              Metrics.Counter.incr c_admitted;
              if degraded then Metrics.Counter.incr c_degraded;
              instant "sched.admit" j
                [
                  ("quota", Event.Float quota);
                  ("degraded", Event.String (string_of_bool degraded));
                ];
              jwrite
                (Sched_journal.Admitted
                   {
                     a_id = j.Job.id;
                     a_label = j.Job.label;
                     a_granted = quota;
                     a_degraded = degraded;
                     a_now = now;
                   });
              let reserved =
                let staged = Admission.compile_for_pricing ?cache ~job:j () in
                Admission.price_min_stage ~device staged ~config:j.Job.config
              in
              incr seq;
              live :=
                !live
                @ [
                    {
                      l_job = j;
                      l_seq = !seq;
                      l_granted = quota;
                      l_degraded = degraded;
                      l_reserved = reserved;
                      l_handle = None;
                      l_started = None;
                      l_service = 0.0;
                      l_steps = 0;
                      l_preempt = 0;
                    };
                  ]);
          go ()
      | _ -> ()
    in
    go ()
  in
  let candidates now =
    List.map
      (fun l ->
        let next_cost =
          match l.l_handle with
          | Some h -> Executor.min_stage_cost h
          | None -> l.l_reserved
        in
        {
          Policy.key = l.l_seq;
          seq = l.l_seq;
          deadline = l.l_job.Job.deadline;
          laxity = l.l_job.Job.deadline -. now -. next_cost;
          service = l.l_service;
          weight = float_of_int l.l_job.Job.priority;
        })
      !live
  in
  let step_job lj handle =
    account (Some lj.l_job.Job.id);
    (match !last_run with
    | Some s when s <> lj.l_seq -> (
        match List.find_opt (fun l -> l.l_seq = s) !live with
        | Some prev ->
            prev.l_preempt <- prev.l_preempt + 1;
            Metrics.Counter.incr c_preempt;
            instant "sched.preempt" prev.l_job []
        | None -> ())
    | _ -> ());
    let t0 = Clock.now clock in
    let step = Executor.step handle in
    lj.l_service <- lj.l_service +. (Clock.now clock -. t0);
    lj.l_steps <- lj.l_steps + 1;
    last_run := Some lj.l_seq;
    match step with
    | `Continue ->
        jwrite
          (Sched_journal.Progress
             {
               p_id = lj.l_job.Job.id;
               p_steps = lj.l_steps;
               p_now = Clock.now clock;
             })
    | `Done report -> finish_live lj (Completed report)
  in
  let rec loop () =
    let now = Clock.now clock in
    (* Admission pricing and its journal writes are scheduler overhead,
       never any one job's spend. *)
    account None;
    admit_arrivals now;
    match (!live, !pending) with
    | [], [] -> ()
    | [], next :: _ ->
        (* Idle: every finalized handle disarmed its deadline, so this
           sleep can never be interrupted on a dead job's behalf. *)
        Clock.sleep_until clock next.Job.arrival;
        loop ()
    | _ :: _, _ -> (
        let c = Policy.select policy (candidates now) in
        let lj = List.find (fun l -> l.l_seq = c.Policy.key) !live in
        match lj.l_handle with
        | Some handle ->
            step_job lj handle;
            loop ()
        | None ->
            let quota = Float.min lj.l_granted (Job.slack lj.l_job ~now) in
            if quota <= 0.0 then begin
              (* Its deadline passed while it waited: it never starts —
                 and never stalls the jobs behind it. *)
              finish_live lj Expired;
              loop ()
            end
            else begin
              (* Mirror Taqp.count_within's stream discipline — create
                 the job rng, split off (and discard) the jitter
                 stream — so a solo job's report is bit-identical to a
                 direct count_within at the same seed and quota. *)
              let rng = Prng.create lj.l_job.Job.seed in
              ignore (Prng.split rng);
              account (Some lj.l_job.Job.id);
              let handle =
                Executor.start ~config:lj.l_job.Job.config
                  ~aggregate:lj.l_job.Job.aggregate ?cache ~device
                  ~catalog:lj.l_job.Job.catalog ~rng ~quota lj.l_job.Job.query
              in
              (match on_dispatch with
              | None -> ()
              | Some f -> f lj.l_job handle);
              lj.l_handle <- Some handle;
              lj.l_started <- Some now;
              Metrics.Histogram.observe h_wait (now -. lj.l_job.Job.arrival);
              instant "sched.dispatch" lj.l_job
                [ ("quota", Event.Float quota) ];
              step_job lj handle;
              loop ()
            end)
  in
  loop ();
  account None;
  Option.iter (fun c -> Taqp_cache.Cache.emit_counters c tracer) cache;
  let reports =
    List.stable_sort (fun a b -> compare a.job.Job.id b.job.Job.id) !reports
  in
  let count f = List.length (List.filter f reports) in
  let admitted_reports =
    List.filter (fun (r : job_report) -> r.admitted) reports
  in
  let late =
    List.map (fun r -> Float.max 0.0 r.lateness) admitted_reports
    |> List.sort compare |> Array.of_list
  in
  let waits = List.map (fun r -> r.queue_wait) admitted_reports in
  let summary =
    {
      submitted = List.length reports;
      admitted = List.length admitted_reports;
      degraded = count (fun (r : job_report) -> r.degraded);
      rejected =
        count (fun r -> match r.outcome with Rejected _ -> true | _ -> false);
      expired =
        count (fun r -> match r.outcome with Expired -> true | _ -> false);
      completed =
        count (fun r ->
            match r.outcome with Completed _ -> true | _ -> false);
      missed = count (fun (r : job_report) -> r.missed);
      miss_rate =
        (if reports = [] then 0.0
         else
           float_of_int (count (fun (r : job_report) -> r.missed))
           /. float_of_int (List.length reports));
      lateness_p50 = percentile late 0.50;
      lateness_p99 = percentile late 0.99;
      lateness_p999 = percentile late 0.999;
      max_lateness = (if late = [||] then 0.0 else late.(Array.length late - 1));
      mean_queue_wait =
        (match waits with
        | [] -> 0.0
        | ws -> List.fold_left ( +. ) 0.0 ws /. float_of_int (List.length ws));
      makespan = Clock.now clock;
      busy_time =
        List.fold_left
          (fun acc (r : job_report) -> acc +. r.service)
          0.0 reports;
      preemptions =
        List.fold_left
          (fun acc (r : job_report) -> acc + r.preemptions)
          0 reports;
    }
  in
  { policy; admission_on = admission <> None; reports; summary }

(* ------------------------------------------------------------------ *)
(* JSON renderings — the CLI's per-job lines and the bench's
   BENCH_sched.json cells share these. *)

let completed_report r =
  match r.outcome with Completed rep -> Some rep | _ -> None

let outcome_name r =
  match r.outcome with
  | Completed rep -> Report.outcome_name rep.Report.outcome
  | Rejected _ -> "rejected"
  | Expired -> "expired"

let opt_num = function None -> Json.Null | Some v -> Json.Num v

let job_report_json r =
  let base =
    [
      ("job", Json.Str r.job.Job.label);
      ("id", Json.Num (float_of_int r.job.Job.id));
      ("arrival", Json.Num r.job.Job.arrival);
      ("deadline", Json.Num r.job.Job.deadline);
      ("priority", Json.Num (float_of_int r.job.Job.priority));
      ("outcome", Json.Str (outcome_name r));
      ("admitted", Json.Bool r.admitted);
      ("degraded", Json.Bool r.degraded);
      ("missed", Json.Bool r.missed);
      ("lateness", Json.Num r.lateness);
      ("queue_wait", Json.Num r.queue_wait);
      ("quota", opt_num r.quota);
      ("started", opt_num r.started_at);
      ("finished", Json.Num r.finished_at);
      ("steps", Json.Num (float_of_int r.steps));
      ("preemptions", Json.Num (float_of_int r.preemptions));
      ("service", Json.Num r.service);
    ]
  in
  let detail =
    match r.outcome with
    | Completed rep ->
        [
          ("estimate", Json.Num rep.Report.estimate);
          ( "ci_half_width",
            Json.Num rep.Report.confidence.Confidence.half_width );
          ("ci_level", Json.Num rep.Report.confidence.Confidence.level);
          ("stages", Json.Num (float_of_int rep.Report.stages_completed));
          ("exact", Json.Bool rep.Report.exact);
          ("report_degraded", Json.Bool rep.Report.degraded);
        ]
    | Rejected reason ->
        [ ("reject_reason", Json.Str (Admission.reason_name reason)) ]
    | Expired -> []
  in
  Json.Obj (base @ detail)

let summary_json s =
  Json.Obj
    [
      ("submitted", Json.Num (float_of_int s.submitted));
      ("admitted", Json.Num (float_of_int s.admitted));
      ("degraded", Json.Num (float_of_int s.degraded));
      ("rejected", Json.Num (float_of_int s.rejected));
      ("expired", Json.Num (float_of_int s.expired));
      ("completed", Json.Num (float_of_int s.completed));
      ("missed", Json.Num (float_of_int s.missed));
      ("miss_rate", Json.Num s.miss_rate);
      ("lateness_p50", Json.Num s.lateness_p50);
      ("lateness_p99", Json.Num s.lateness_p99);
      ("lateness_p999", Json.Num s.lateness_p999);
      ("max_lateness", Json.Num s.max_lateness);
      ("mean_queue_wait", Json.Num s.mean_queue_wait);
      ("makespan", Json.Num s.makespan);
      ("busy_time", Json.Num s.busy_time);
      ("preemptions", Json.Num (float_of_int s.preemptions));
    ]

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d submitted: %d admitted (%d degraded), %d rejected, %d expired@ \
     %d completed, %d missed (%.1f%%)@ lateness p50=%.2fs p99=%.2fs \
     p99.9=%.2fs max=%.2fs  wait=%.2fs  makespan=%.1fs busy=%.1fs \
     preemptions=%d@]"
    s.submitted s.admitted s.degraded s.rejected s.expired s.completed s.missed
    (100.0 *. s.miss_rate) s.lateness_p50 s.lateness_p99 s.lateness_p999
    s.max_lateness s.mean_queue_wait s.makespan s.busy_time s.preemptions

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                       *)

type recovery = {
  r_run : result;
  r_journaled : Sched_journal.done_record list;
  r_summary : summary;
}

let recover ?policy ?admission ?params ?metrics ?tracer ?faults ?journal
    ?on_device ?on_dispatch ?account ?cache ?(downtime = 0.0) ~records jobs =
  if downtime < 0.0 then invalid_arg "Scheduler.recover: negative downtime";
  let finished =
    List.filter_map
      (function Sched_journal.Done d -> Some d | _ -> None)
      records
  in
  let finished_ids =
    List.fold_left
      (fun acc (d : Sched_journal.done_record) -> d.d_id :: acc)
      [] finished
  in
  let crash_time =
    List.fold_left (fun acc r -> Float.max acc (Sched_journal.now_of r)) 0.0
      records
  in
  let rest =
    List.filter (fun j -> not (List.mem j.Job.id finished_ids)) jobs
  in
  let r_run =
    run ?policy ?admission ?params ?metrics ?tracer ?faults ?journal
      ?on_device ?on_dispatch ?account ?cache
      ~start_at:(crash_time +. downtime) rest
  in
  (* The combined accounting: journaled terminal jobs plus the re-run.
     Percentiles are re-derived from the union of the per-job lateness
     and wait values (both sides carry them), so the merged summary is
     exactly what an uncrashed run over the same terminal set would
     report for these aggregates. *)
  let done_admitted =
    List.filter (fun (d : Sched_journal.done_record) -> d.d_admitted) finished
  in
  let run_admitted =
    List.filter (fun (r : job_report) -> r.admitted) r_run.reports
  in
  let count_d f = List.length (List.filter f finished) in
  let late =
    List.map
      (fun (d : Sched_journal.done_record) -> Float.max 0.0 d.d_lateness)
      done_admitted
    @ List.map (fun (r : job_report) -> Float.max 0.0 r.lateness) run_admitted
    |> List.sort compare |> Array.of_list
  in
  let waits =
    List.map (fun (d : Sched_journal.done_record) -> d.d_queue_wait)
      done_admitted
    @ List.map (fun (r : job_report) -> r.queue_wait) run_admitted
  in
  let s = r_run.summary in
  let submitted = s.submitted + List.length finished in
  let missed =
    s.missed + count_d (fun (d : Sched_journal.done_record) -> d.d_missed)
  in
  let r_summary =
    {
      submitted;
      admitted = s.admitted + List.length done_admitted;
      degraded =
        s.degraded
        + count_d (fun (d : Sched_journal.done_record) -> d.d_degraded);
      rejected =
        s.rejected
        + count_d (fun (d : Sched_journal.done_record) ->
              d.d_outcome = "rejected");
      expired =
        s.expired
        + count_d (fun (d : Sched_journal.done_record) ->
              d.d_outcome = "expired");
      completed =
        s.completed
        + count_d (fun (d : Sched_journal.done_record) ->
              d.d_admitted && d.d_outcome <> "expired");
      missed;
      miss_rate =
        (if submitted = 0 then 0.0
         else float_of_int missed /. float_of_int submitted);
      lateness_p50 = percentile late 0.50;
      lateness_p99 = percentile late 0.99;
      lateness_p999 = percentile late 0.999;
      max_lateness = (if late = [||] then 0.0 else late.(Array.length late - 1));
      mean_queue_wait =
        (match waits with
        | [] -> 0.0
        | ws -> List.fold_left ( +. ) 0.0 ws /. float_of_int (List.length ws));
      makespan = Float.max s.makespan crash_time;
      busy_time =
        s.busy_time
        +. List.fold_left
             (fun acc (d : Sched_journal.done_record) -> acc +. d.d_service)
             0.0 finished;
      preemptions =
        s.preemptions
        + List.fold_left
            (fun acc (d : Sched_journal.done_record) -> acc + d.d_preemptions)
            0 finished;
    }
  in
  { r_run; r_journaled = finished; r_summary }

let done_record_json (d : Sched_journal.done_record) =
  Json.Obj
    [
      ("job", Json.Str d.d_label);
      ("id", Json.Num (float_of_int d.d_id));
      ("outcome", Json.Str d.d_outcome);
      ("admitted", Json.Bool d.d_admitted);
      ("degraded", Json.Bool d.d_degraded);
      ("missed", Json.Bool d.d_missed);
      ("lateness", Json.Num d.d_lateness);
      ("queue_wait", Json.Num d.d_queue_wait);
      ("finished", Json.Num d.d_finished_at);
      ("steps", Json.Num (float_of_int d.d_steps));
      ("preemptions", Json.Num (float_of_int d.d_preemptions));
      ("service", Json.Num d.d_service);
      ("estimate", opt_num d.d_estimate);
      ("from_journal", Json.Bool true);
    ]
