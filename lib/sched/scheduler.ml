(* The batch entry point, now a thin facade over {!Engine}: [run] is
   create → drain → finish on the incremental state machine, so the
   closed-loop batch path and the socket server's interleaved path
   execute the identical operation sequence (see engine.ml). The JSON
   renderings and journal-based crash recovery live here — they are
   presentation and cross-run accounting, not loop mechanics. *)

module Report = Taqp_core.Report
module Confidence = Taqp_stats.Confidence
module Json = Taqp_obs.Json

type outcome = Engine.outcome =
  | Completed of Report.t
  | Rejected of Admission.reason
  | Expired

type job_report = Engine.job_report = {
  job : Job.t;
  outcome : outcome;
  admitted : bool;
  degraded : bool;
  quota : float option;
  started_at : float option;
  finished_at : float;
  queue_wait : float;
  lateness : float;
  missed : bool;
  steps : int;
  preemptions : int;
  service : float;
}

type summary = Engine.summary = {
  submitted : int;
  admitted : int;
  degraded : int;
  rejected : int;
  expired : int;
  completed : int;
  missed : int;
  miss_rate : float;
  lateness_p50 : float;
  lateness_p99 : float;
  lateness_p999 : float;
  max_lateness : float;
  mean_queue_wait : float;
  makespan : float;
  busy_time : float;
  preemptions : int;
}

type result = Engine.result = {
  policy : Policy.t;
  admission_on : bool;
  reports : job_report list;
  summary : summary;
}

let percentile = Engine.percentile

let run ?policy ?admission ?params ?metrics ?tracer ?faults ?journal ?start_at
    ?on_device ?on_dispatch ?account ?cache jobs =
  let engine =
    Engine.create ?policy ?admission ?params ?metrics ?tracer ?faults ?journal
      ?start_at ?on_device ?on_dispatch ?account ?cache jobs
  in
  Engine.drain engine;
  Engine.finish engine

(* ------------------------------------------------------------------ *)
(* JSON renderings — the CLI's per-job lines and the bench's
   BENCH_sched.json cells share these. *)

let completed_report r =
  match r.outcome with Completed rep -> Some rep | _ -> None

let outcome_name r =
  match r.outcome with
  | Completed rep -> Report.outcome_name rep.Report.outcome
  | Rejected _ -> "rejected"
  | Expired -> "expired"

let opt_num = function None -> Json.Null | Some v -> Json.Num v

let job_report_json r =
  let base =
    [
      ("job", Json.Str r.job.Job.label);
      ("id", Json.Num (float_of_int r.job.Job.id));
      ("arrival", Json.Num r.job.Job.arrival);
      ("deadline", Json.Num r.job.Job.deadline);
      ("priority", Json.Num (float_of_int r.job.Job.priority));
      ("outcome", Json.Str (outcome_name r));
      ("admitted", Json.Bool r.admitted);
      ("degraded", Json.Bool r.degraded);
      ("missed", Json.Bool r.missed);
      ("lateness", Json.Num r.lateness);
      ("queue_wait", Json.Num r.queue_wait);
      ("quota", opt_num r.quota);
      ("started", opt_num r.started_at);
      ("finished", Json.Num r.finished_at);
      ("steps", Json.Num (float_of_int r.steps));
      ("preemptions", Json.Num (float_of_int r.preemptions));
      ("service", Json.Num r.service);
    ]
  in
  let detail =
    match r.outcome with
    | Completed rep ->
        [
          ("estimate", Json.Num rep.Report.estimate);
          ( "ci_half_width",
            Json.Num rep.Report.confidence.Confidence.half_width );
          ("ci_level", Json.Num rep.Report.confidence.Confidence.level);
          ("stages", Json.Num (float_of_int rep.Report.stages_completed));
          ("exact", Json.Bool rep.Report.exact);
          ("report_degraded", Json.Bool rep.Report.degraded);
        ]
    | Rejected reason ->
        [ ("reject_reason", Json.Str (Admission.reason_name reason)) ]
    | Expired -> []
  in
  Json.Obj (base @ detail)

let summary_json s =
  Json.Obj
    [
      ("submitted", Json.Num (float_of_int s.submitted));
      ("admitted", Json.Num (float_of_int s.admitted));
      ("degraded", Json.Num (float_of_int s.degraded));
      ("rejected", Json.Num (float_of_int s.rejected));
      ("expired", Json.Num (float_of_int s.expired));
      ("completed", Json.Num (float_of_int s.completed));
      ("missed", Json.Num (float_of_int s.missed));
      ("miss_rate", Json.Num s.miss_rate);
      ("lateness_p50", Json.Num s.lateness_p50);
      ("lateness_p99", Json.Num s.lateness_p99);
      ("lateness_p999", Json.Num s.lateness_p999);
      ("max_lateness", Json.Num s.max_lateness);
      ("mean_queue_wait", Json.Num s.mean_queue_wait);
      ("makespan", Json.Num s.makespan);
      ("busy_time", Json.Num s.busy_time);
      ("preemptions", Json.Num (float_of_int s.preemptions));
    ]

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d submitted: %d admitted (%d degraded), %d rejected, %d expired@ \
     %d completed, %d missed (%.1f%%)@ lateness p50=%.2fs p99=%.2fs \
     p99.9=%.2fs max=%.2fs  wait=%.2fs  makespan=%.1fs busy=%.1fs \
     preemptions=%d@]"
    s.submitted s.admitted s.degraded s.rejected s.expired s.completed s.missed
    (100.0 *. s.miss_rate) s.lateness_p50 s.lateness_p99 s.lateness_p999
    s.max_lateness s.mean_queue_wait s.makespan s.busy_time s.preemptions

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                       *)

type recovery = {
  r_run : result;
  r_journaled : Sched_journal.done_record list;
  r_summary : summary;
}

(* The combined accounting: journaled terminal jobs plus the re-run.
   Percentiles are re-derived from the union of the per-job lateness
   and wait values (both sides carry them), so the merged summary is
   exactly what an uncrashed run over the same terminal set would
   report for these aggregates. The re-run's admitted lateness/wait
   values ride in via [run_reports] (the re-run's report list).

   Shared with the socket server ([Taqp_net.Server]), whose DRAIN_DONE
   summary after a recovery must cover pre-crash completions too. *)
let merge_journaled (s : summary) ~run_reports
    (finished : Sched_journal.done_record list) ~crash_time =
  let done_admitted =
    List.filter (fun (d : Sched_journal.done_record) -> d.d_admitted) finished
  in
  let run_admitted =
    List.filter (fun (r : job_report) -> r.admitted) run_reports
  in
  let count_d f = List.length (List.filter f finished) in
  let late =
    List.map
      (fun (d : Sched_journal.done_record) -> Float.max 0.0 d.d_lateness)
      done_admitted
    @ List.map (fun (r : job_report) -> Float.max 0.0 r.lateness) run_admitted
    |> List.sort compare |> Array.of_list
  in
  let waits =
    List.map (fun (d : Sched_journal.done_record) -> d.d_queue_wait)
      done_admitted
    @ List.map (fun (r : job_report) -> r.queue_wait) run_admitted
  in
  let submitted = s.submitted + List.length finished in
  let missed =
    s.missed + count_d (fun (d : Sched_journal.done_record) -> d.d_missed)
  in
  {
    submitted;
    admitted = s.admitted + List.length done_admitted;
    degraded =
      s.degraded
      + count_d (fun (d : Sched_journal.done_record) -> d.d_degraded);
    rejected =
      s.rejected
      + count_d (fun (d : Sched_journal.done_record) ->
            d.d_outcome = "rejected");
    expired =
      s.expired
      + count_d (fun (d : Sched_journal.done_record) ->
            d.d_outcome = "expired");
    completed =
      s.completed
      + count_d (fun (d : Sched_journal.done_record) ->
            d.d_admitted && d.d_outcome <> "expired");
    missed;
    miss_rate =
      (if submitted = 0 then 0.0
       else float_of_int missed /. float_of_int submitted);
    lateness_p50 = percentile late 0.50;
    lateness_p99 = percentile late 0.99;
    lateness_p999 = percentile late 0.999;
    max_lateness = (if late = [||] then 0.0 else late.(Array.length late - 1));
    mean_queue_wait =
      (match waits with
      | [] -> 0.0
      | ws -> List.fold_left ( +. ) 0.0 ws /. float_of_int (List.length ws));
    makespan = Float.max s.makespan crash_time;
    busy_time =
      s.busy_time
      +. List.fold_left
           (fun acc (d : Sched_journal.done_record) -> acc +. d.d_service)
           0.0 finished;
    preemptions =
      s.preemptions
      + List.fold_left
          (fun acc (d : Sched_journal.done_record) -> acc + d.d_preemptions)
          0 finished;
  }

let recover ?policy ?admission ?params ?metrics ?tracer ?faults ?journal
    ?on_device ?on_dispatch ?account ?cache ?(downtime = 0.0) ~records jobs =
  if downtime < 0.0 then invalid_arg "Scheduler.recover: negative downtime";
  let finished =
    List.filter_map
      (function Sched_journal.Done d -> Some d | _ -> None)
      records
  in
  let finished_ids =
    List.fold_left
      (fun acc (d : Sched_journal.done_record) -> d.d_id :: acc)
      [] finished
  in
  let crash_time =
    List.fold_left (fun acc r -> Float.max acc (Sched_journal.now_of r)) 0.0
      records
  in
  let rest =
    List.filter (fun j -> not (List.mem j.Job.id finished_ids)) jobs
  in
  let r_run =
    run ?policy ?admission ?params ?metrics ?tracer ?faults ?journal
      ?on_device ?on_dispatch ?account ?cache
      ~start_at:(crash_time +. downtime) rest
  in
  let r_summary =
    merge_journaled r_run.summary ~run_reports:r_run.reports finished
      ~crash_time
  in
  { r_run; r_journaled = finished; r_summary }

let done_record_json (d : Sched_journal.done_record) =
  Json.Obj
    [
      ("job", Json.Str d.d_label);
      ("id", Json.Num (float_of_int d.d_id));
      ("outcome", Json.Str d.d_outcome);
      ("admitted", Json.Bool d.d_admitted);
      ("degraded", Json.Bool d.d_degraded);
      ("missed", Json.Bool d.d_missed);
      ("lateness", Json.Num d.d_lateness);
      ("queue_wait", Json.Num d.d_queue_wait);
      ("finished", Json.Num d.d_finished_at);
      ("steps", Json.Num (float_of_int d.d_steps));
      ("preemptions", Json.Num (float_of_int d.d_preemptions));
      ("service", Json.Num d.d_service);
      ("estimate", opt_num d.d_estimate);
      ("from_journal", Json.Bool true);
    ]
