(** Admission control: price a job before spending I/O on it.

    PilotDB-style a-priori guarantees motivate the shape: a job that
    cannot meet its deadline at the required confidence — given the
    work already queued — is rejected (or admitted with a shrunken
    quota) {e before} it costs the device anything. Pricing reuses the
    executor's own cost machinery ({!Taqp_core.Staged} node plans over
    {!Taqp_timecost.Formulas}) on a throwaway compilation, so the
    decision is pure: it never touches the shared clock or the job's
    sampling stream. See docs/SCHEDULING.md for the math. *)

type reason =
  | Queue_full of { limit : int }
  | Zero_slack  (** the deadline had already passed at submission *)
  | Infeasible of { needed : float; available : float }
      (** slack minus queued work cannot cover one minimum viable
          stage (planning + a minimum-fraction stage) *)

type decision =
  | Accept of { quota : float }  (** full slack granted *)
  | Degrade of { quota : float; wanted : float }
      (** admitted, but the backlog leaves only [quota] of the
          [wanted] seconds its confidence target prices at — the
          answer will be wider than asked for *)
  | Reject of reason

type t = { max_queue : int option; headroom : float }
(** [headroom >= 1] scales every requirement (a 1.25 headroom demands
    25% slack margin); [max_queue] bounds concurrently live jobs. *)

val default : t
(** No queue bound, headroom 1. *)

val make : ?max_queue:int -> ?headroom:float -> unit -> t
(** @raise Invalid_argument on [max_queue < 1] or [headroom < 1]. *)

val reason_name : reason -> string
val pp_reason : Format.formatter -> reason -> unit
val decision_name : decision -> string

val compile_for_pricing :
  ?cache:Taqp_cache.Cache.t -> job:Job.t -> unit -> Taqp_core.Staged.t
(** A throwaway compilation of the job's query (fresh untrained cost
    model, private rng) for pricing. Pure: touches neither the shared
    clock nor the job's sampling stream. With [cache], stage plans
    count only the predicted cache-{e miss} reads (a read-only
    prediction), so the price reflects the residual sample a warm
    cache leaves to fetch. *)

val price_min_stage :
  device:Taqp_storage.Device.t ->
  Taqp_core.Staged.t ->
  config:Taqp_core.Config.t ->
  float
(** Cost of the cheapest run that still yields an estimate: one
    sample-size determination plus one minimum-fraction stage. *)

val evaluate :
  t ->
  ?cache:Taqp_cache.Cache.t ->
  device:Taqp_storage.Device.t ->
  now:float ->
  backlog:float ->
  queue_len:int ->
  Job.t ->
  decision
(** [backlog] is the reserved minimum work (seconds) of already
    admitted, unfinished jobs; [queue_len] their count. [cache] prices
    against the shared cache's current contents (see
    {!compile_for_pricing}). *)
