(** The scheduler's job-level write-ahead journal.

    Coarser than the per-query stage journal
    ({!Taqp_recover.Query_journal}): admission decisions, per-job step
    progress and terminal accounting lines. On recovery
    ({!Scheduler.recover}) jobs with a [Done] record are reported from
    the journal and every other job is re-admitted with whatever slack
    its absolute deadline still leaves — downtime expires what it
    expires. Records are framed and checksummed by
    {!Taqp_recover.Journal}; the job file itself is {e not} journaled
    (recovery is run against the same job file, matched by job id).
    See docs/RECOVERY.md. *)

type done_record = {
  d_id : int;
  d_label : string;
  d_outcome : string;
      (** {!Taqp_core.Report.outcome_name}, or ["rejected"]/["expired"] *)
  d_admitted : bool;
  d_degraded : bool;
  d_missed : bool;
  d_lateness : float;
  d_queue_wait : float;
  d_finished_at : float;
  d_service : float;
  d_steps : int;
  d_preemptions : int;
  d_estimate : float option;
  d_now : float;
}

type submitted_record = {
  s_id : int;
  s_label : string;
  s_client : int;  (** connection-registry id, informational *)
  s_line : string;
      (** the canonical job line (absolute times) — {!Job.of_line}
          re-parses it on recovery, so a socket server needs no job
          file to rebuild its backlog *)
  s_now : float;
}

type record =
  | Admitted of {
      a_id : int;
      a_label : string;
      a_granted : float;
      a_degraded : bool;
      a_now : float;
    }
  | Progress of { p_id : int; p_steps : int; p_now : float }
  | Done of done_record
  | Submitted of submitted_record
      (** door-level acceptance of a wire job (socket mode only);
          written before the engine sees the job, so every job with any
          journal record at all can be re-parsed after a crash *)

val now_of : record -> float
(** The clock instant the record was journaled at. *)

val encode : record -> string
(** The framed-payload encoding (append it with
    {!Taqp_recover.Journal.append}). *)

val write_done : Taqp_recover.Codec.encoder -> done_record -> unit

val read_done : Taqp_recover.Codec.decoder -> done_record
(** The done-record field codec, exposed so the wire protocol's RESULT
    frame ({!Taqp_net.Wire}) shares it byte-for-byte with the journal —
    a replayed completion is indistinguishable from a live one. *)

type loaded = { records : record list; torn : string option }

val load : string -> (loaded, string) result
(** Decode a scheduler journal; a torn tail is reported, not an
    error. *)
