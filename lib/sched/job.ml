module Config = Taqp_core.Config
module Aggregate = Taqp_core.Aggregate
module Catalog = Taqp_storage.Catalog
module Ra = Taqp_relational.Ra

type t = {
  id : int;
  label : string;
  query : Ra.t;
  catalog : Catalog.t;
  arrival : float;
  deadline : float;
  priority : int;
  min_confidence : float option;
  config : Config.t;
  aggregate : Aggregate.t;
  seed : int;
  exact : int option;
}

let make ?label ?(priority = 1) ?min_confidence ?(config = Config.default)
    ?(aggregate = Aggregate.Count) ?(seed = 1) ?exact ~id ~catalog ~arrival
    ~deadline query =
  if arrival < 0.0 then invalid_arg "Job.make: negative arrival";
  if deadline <= arrival then invalid_arg "Job.make: deadline before arrival";
  if priority < 1 then invalid_arg "Job.make: priority < 1";
  (match min_confidence with
  | Some w when w <= 0.0 -> invalid_arg "Job.make: non-positive min_confidence"
  | _ -> ());
  Config.validate config;
  let label =
    match label with Some l -> l | None -> Printf.sprintf "job-%d" id
  in
  {
    id;
    label;
    query;
    catalog;
    arrival;
    deadline;
    priority;
    min_confidence;
    config;
    aggregate;
    seed;
    exact;
  }

let slack t ~now = t.deadline -. now

let pp ppf t =
  Format.fprintf ppf "%s: arrive %.2f deadline %.2f prio %d %a" t.label
    t.arrival t.deadline t.priority Ra.pp t.query

(* ------------------------------------------------------------------ *)
(* Job-file lines — the CLI's [serve --jobs FILE] and the bench read
   the same format:

     # arrival | deadline | query [| key=value,key=value]
     0.0 | 8.0 | count(select[sel < 1000](r1)) | priority=2,seed=5

   Options: priority=INT seed=INT label=STRING min_rhw=FLOAT (target
   relative half-width of the confidence interval). Blank lines and
   '#' comments yield [Ok None]. *)

let parse_options job opts =
  List.fold_left
    (fun job kv ->
      Result.bind job (fun job ->
          match String.index_opt kv '=' with
          | None -> Error (Printf.sprintf "option %S is not key=value" kv)
          | Some i -> (
              let k = String.trim (String.sub kv 0 i) in
              let v =
                String.trim (String.sub kv (i + 1) (String.length kv - i - 1))
              in
              match k with
              | "priority" -> (
                  match int_of_string_opt v with
                  | Some p when p >= 1 -> Ok { job with priority = p }
                  | _ -> Error (Printf.sprintf "bad priority %S" v))
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some s -> Ok { job with seed = s }
                  | None -> Error (Printf.sprintf "bad seed %S" v))
              | "label" -> Ok { job with label = v }
              | "min_rhw" -> (
                  match float_of_string_opt v with
                  | Some w when w > 0.0 ->
                      Ok { job with min_confidence = Some w }
                  | _ -> Error (Printf.sprintf "bad min_rhw %S" v))
              | _ -> Error (Printf.sprintf "unknown option %S" k))))
    (Ok job) opts

let of_line ~catalog ?(config = Config.default) ~id line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let fields = String.split_on_char '|' line |> List.map String.trim in
    match fields with
    | arrival :: deadline :: query :: rest when List.length rest <= 1 -> (
        match (float_of_string_opt arrival, float_of_string_opt deadline) with
        | None, _ -> Error (Printf.sprintf "bad arrival %S" arrival)
        | _, None -> Error (Printf.sprintf "bad deadline %S" deadline)
        | Some arrival, Some deadline -> (
            match Taqp_relational.Parser.expression query with
            | exception Taqp_relational.Parser.Parse_error { position; message }
              ->
                Error
                  (Printf.sprintf "query parse error at offset %d: %s" position
                     message)
            | expr -> (
                let opts =
                  match rest with
                  | [] -> []
                  | [ o ] -> String.split_on_char ',' o |> List.map String.trim
                  | _ -> assert false
                in
                match
                  make ~id ~catalog ~config ~arrival ~deadline expr
                with
                | exception Invalid_argument m -> Error m
                | job ->
                    Result.map Option.some (parse_options job opts))))
    | _ ->
        Error
          "expected 'arrival | deadline | query [| options]' (3 or 4 fields)"

let of_lines ~catalog ?config lines =
  let rec go id acc = function
    | [] -> Ok (List.rev acc)
    | (lineno, line) :: rest -> (
        match of_line ~catalog ?config ~id line with
        | Ok None -> go id acc rest
        | Ok (Some job) -> go (id + 1) (job :: acc) rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
  in
  go 0 [] (List.mapi (fun i l -> (i + 1, l)) lines)

let of_channel ~catalog ?config ic =
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_lines ~catalog ?config (read [])

(* The inverse of [of_line], modulo the fields the line format cannot
   carry (catalog, config, aggregate, exact — all supplied by the
   reader). Floats print with 17 significant digits so times survive
   the round trip bit-exactly; label characters that would collide
   with the field/option separators are rewritten to '_'. *)
let to_line t =
  let clean s =
    String.map
      (fun c ->
        match c with '|' | ',' | '\n' | '\r' | '=' -> '_' | c -> c)
      s
  in
  let opts =
    [
      Printf.sprintf "priority=%d" t.priority;
      Printf.sprintf "seed=%d" t.seed;
      Printf.sprintf "label=%s" (clean t.label);
    ]
    @
    match t.min_confidence with
    | Some w -> [ Printf.sprintf "min_rhw=%.17g" w ]
    | None -> []
  in
  Printf.sprintf "%.17g | %.17g | %s | %s" t.arrival t.deadline
    (Ra.to_string t.query)
    (String.concat "," opts)
