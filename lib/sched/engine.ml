(* The scheduler's incremental core: the exact event loop
   [Scheduler.run] always ran, re-cut as an explicit state machine —
   [create] builds the clock/device/admission state, [step] performs
   one loop iteration (admit due arrivals, then either sleep to the
   next arrival or give the policy's pick one executor stage), and
   [finish] closes the books into the batch result.

   [Scheduler.run] is now [create] + [drain] + [finish], so the batch
   path and the socket server ([Taqp_net.Server]) share one scheduler
   by construction: every operation — metric increments, journal
   writes, device charges, rng creation — happens in the same order as
   the historical closed loop, which is what keeps the solo-job
   bit-identity anchor (test_sched) true of both entry points. *)

module Report = Taqp_core.Report
module Executor = Taqp_core.Executor
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Metrics = Taqp_obs.Metrics
module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Prng = Taqp_rng.Prng

let src = Logs.Src.create "taqp.sched" ~doc:"multi-query deadline scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome =
  | Completed of Report.t
  | Rejected of Admission.reason
  | Expired

type job_report = {
  job : Job.t;
  outcome : outcome;
  admitted : bool;
  degraded : bool;
  quota : float option;
  started_at : float option;
  finished_at : float;
  queue_wait : float;
  lateness : float;
  missed : bool;
  steps : int;
  preemptions : int;
  service : float;
}

type summary = {
  submitted : int;
  admitted : int;
  degraded : int;
  rejected : int;
  expired : int;
  completed : int;
  missed : int;
  miss_rate : float;
  lateness_p50 : float;
  lateness_p99 : float;
  lateness_p999 : float;
  max_lateness : float;
  mean_queue_wait : float;
  makespan : float;
  busy_time : float;
  preemptions : int;
}

type result = {
  policy : Policy.t;
  admission_on : bool;
  reports : job_report list;
  summary : summary;
}

(* One admitted, unfinished job. [l_reserved] is its priced minimum
   viable run — the backlog unit admission subtracts from later jobs'
   slack, decayed by the service already delivered. *)
type live = {
  l_job : Job.t;
  l_seq : int;
  l_granted : float;
  l_degraded : bool;
  l_reserved : float;
  mutable l_handle : Executor.handle option;
  mutable l_started : float option;
  mutable l_service : float;
  mutable l_steps : int;
  mutable l_preempt : int;
}

type t = {
  policy : Policy.t;
  admission : Admission.t option;
  clock : Clock.t;
  device : Device.t;
  journal : Taqp_recover.Journal.writer option;
  on_dispatch : (Job.t -> Executor.handle -> unit) option;
  on_report : (job_report -> unit) option;
  account : int option -> unit;
  cache : Taqp_cache.Cache.t option;
  tracer : Tracer.t;
  c_submitted : Metrics.Counter.t;
  c_admitted : Metrics.Counter.t;
  c_degraded : Metrics.Counter.t;
  c_rejected : Metrics.Counter.t;
  c_expired : Metrics.Counter.t;
  c_completed : Metrics.Counter.t;
  c_missed : Metrics.Counter.t;
  c_preempt : Metrics.Counter.t;
  h_lateness : Metrics.Histogram.t;
  h_wait : Metrics.Histogram.t;
  mutable pending : Job.t list;  (* sorted by (arrival, id) *)
  mutable live : live list;
  mutable reports : job_report list;
  mutable seq : int;
  mutable last_run : int option;
  mutable finished : bool;
}

let percentile sorted q =
  match sorted with
  | [||] -> 0.0
  | a ->
      let n = Array.length a in
      let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
      a.(Int.max 0 (Int.min (n - 1) i))

(* An admitted job "missed" when its transaction got no in-deadline
   answer: it finished past the deadline (observe-mode overspend), its
   deadline passed while it was still queued, or its slack was spent
   before a single stage completed — a report with neither an exact
   answer nor one finished sampling stage carries no estimate the
   transaction could act on. *)
let report_missed ~(job : Job.t) ~finished_at = function
  | Completed r ->
      finished_at > job.Job.deadline +. 1e-9
      || (r.Report.stages_completed = 0 && not r.Report.exact)
  | Expired -> true
  | Rejected _ -> false

let outcome_tag = function
  | Completed r -> Report.outcome_name r.Report.outcome
  | Expired -> "expired"
  | Rejected _ -> "rejected"

let to_done_record (r : job_report) : Sched_journal.done_record =
  {
    d_id = r.job.Job.id;
    d_label = r.job.Job.label;
    d_outcome = outcome_tag r.outcome;
    d_admitted = r.admitted;
    d_degraded = r.degraded;
    d_missed = r.missed;
    d_lateness = r.lateness;
    d_queue_wait = r.queue_wait;
    d_finished_at = r.finished_at;
    d_service = r.service;
    d_steps = r.steps;
    d_preemptions = r.preemptions;
    d_estimate =
      (match r.outcome with
      | Completed rep -> Some rep.Report.estimate
      | Expired | Rejected _ -> None);
    d_now = r.finished_at;
  }

let create ?(policy = Policy.Edf) ?admission
    ?(params = Cost_params.no_jitter Cost_params.default) ?metrics ?tracer
    ?faults ?journal ?start_at ?on_device ?on_dispatch ?account:account_hook
    ?cache ?on_report jobs =
  let clock = Clock.create_virtual () in
  (* Recovery re-runs start where the crashed workload's clock stopped
     plus the downtime: arrivals the restart missed are admitted at
     once and jobs whose deadlines passed meanwhile expire on their
     first dispatch — downtime is lost time, never replayed time. *)
  Option.iter (fun at -> Clock.restore clock ~now:at) start_at;
  let device = Device.create ~params ?metrics ?tracer ?faults clock in
  (match (cache, metrics) with
  | Some c, Some m -> Taqp_cache.Cache.bind_metrics c m
  | _ -> ());
  (* Audit hooks. [on_device] lets an observer attach a spend listener
     to the scheduler's internal device; [account] tells it which job
     the next charges belong to ([None] = scheduler overhead);
     [on_dispatch] hands over each job's executor handle at dispatch so
     a drift monitor can register on its cost model. All three are
     strictly observational. *)
  Option.iter (fun f -> f device) on_device;
  let account owner =
    match account_hook with None -> () | Some f -> f owner
  in
  let metrics = Device.metrics device in
  {
    policy;
    admission;
    clock;
    device;
    journal;
    on_dispatch;
    on_report;
    account;
    cache;
    tracer = Device.tracer device;
    c_submitted = Metrics.counter metrics "sched.submitted";
    c_admitted = Metrics.counter metrics "sched.admitted";
    c_degraded = Metrics.counter metrics "sched.degraded";
    c_rejected = Metrics.counter metrics "sched.rejected";
    c_expired = Metrics.counter metrics "sched.expired";
    c_completed = Metrics.counter metrics "sched.completed";
    c_missed = Metrics.counter metrics "sched.missed";
    c_preempt = Metrics.counter metrics "sched.preemptions";
    h_lateness = Metrics.histogram metrics "sched.lateness";
    h_wait = Metrics.histogram metrics "sched.queue_wait";
    pending =
      List.stable_sort
        (fun a b -> compare (a.Job.arrival, a.Job.id) (b.Job.arrival, b.Job.id))
        jobs;
    live = [];
    reports = [];
    seq = 0;
    last_run = None;
    finished = false;
  }

let now t = Clock.now t.clock
let device t = t.device
let live_count t = List.length t.live
let pending_count t = List.length t.pending

let next_arrival t =
  match t.pending with [] -> None | j :: _ -> Some j.Job.arrival

let backlog t =
  List.fold_left
    (fun acc l -> acc +. Float.max 0.0 (l.l_reserved -. l.l_service))
    0.0 t.live

(* Journal writes are charged to the shared clock like any other IO
   (so journaling is visible to every job's quota), but never raise:
   if a deadline fires during the charge the clock pins there and the
   record is still written — losing the record would be strictly
   worse for recovery than losing the sliver of time. Without
   [journal] nothing is charged and the run is bit-identical to the
   journal-free scheduler. *)
let jwrite t record =
  match t.journal with
  | None -> ()
  | Some w ->
      let payload = Sched_journal.encode record in
      (try
         Device.journal_write t.device
           ~bytes:(String.length payload + Taqp_recover.Journal.frame_overhead)
       with Clock.Deadline_exceeded _ -> ());
      Taqp_recover.Journal.append w payload

let instant t name (job : Job.t) args =
  if Tracer.enabled t.tracer then
    Tracer.instant t.tracer ~cat:"sched" name
      ~args:(("job", Event.String job.Job.label) :: args)

let push_report t r =
  t.reports <- r :: t.reports;
  match t.on_report with None -> () | Some f -> f r

let finish_live t lj outcome =
  t.live <- List.filter (fun l -> l != lj) t.live;
  (match t.last_run with
  | Some s when s = lj.l_seq -> t.last_run <- None
  | _ -> ());
  let now = Clock.now t.clock in
  let missed = report_missed ~job:lj.l_job ~finished_at:now outcome in
  let lateness = now -. lj.l_job.Job.deadline in
  if missed then Metrics.Counter.incr t.c_missed;
  Metrics.Histogram.observe t.h_lateness (Float.max 0.0 lateness);
  (match outcome with
  | Completed r ->
      Metrics.Counter.incr t.c_completed;
      instant t "sched.complete" lj.l_job
        [
          ("outcome", Event.String (Report.outcome_name r.Report.outcome));
          ("lateness", Event.Float lateness);
        ]
  | Expired ->
      Metrics.Counter.incr t.c_expired;
      instant t "sched.expire" lj.l_job []
  | Rejected _ -> assert false);
  let report =
    {
      job = lj.l_job;
      outcome;
      admitted = true;
      degraded = lj.l_degraded;
      quota = Option.map Executor.quota lj.l_handle;
      started_at = lj.l_started;
      finished_at = now;
      queue_wait =
        (match lj.l_started with
        | Some s -> s -. lj.l_job.Job.arrival
        | None -> now -. lj.l_job.Job.arrival);
      lateness;
      missed;
      steps = lj.l_steps;
      preemptions = lj.l_preempt;
      service = lj.l_service;
    }
  in
  jwrite t (Sched_journal.Done (to_done_record report));
  push_report t report

let admit_arrivals t now =
  let rec go () =
    match t.pending with
    | j :: rest when j.Job.arrival <= now ->
        t.pending <- rest;
        Metrics.Counter.incr t.c_submitted;
        let decision =
          match t.admission with
          | None -> Admission.Accept { quota = Job.slack j ~now }
          | Some a ->
              Admission.evaluate a ?cache:t.cache ~device:t.device ~now
                ~backlog:(backlog t)
                ~queue_len:(List.length t.live)
                j
        in
        (match decision with
        | Admission.Reject reason ->
            Metrics.Counter.incr t.c_rejected;
            instant t "sched.reject" j
              [ ("reason", Event.String (Admission.reason_name reason)) ];
            Log.debug (fun m ->
                m "%s rejected: %a" j.Job.label Admission.pp_reason reason);
            let report =
              {
                job = j;
                outcome = Rejected reason;
                admitted = false;
                degraded = false;
                quota = None;
                started_at = None;
                finished_at = now;
                queue_wait = 0.0;
                lateness = 0.0;
                missed = false;
                steps = 0;
                preemptions = 0;
                service = 0.0;
              }
            in
            jwrite t (Sched_journal.Done (to_done_record report));
            push_report t report
        | Admission.Accept { quota } | Admission.Degrade { quota; _ } ->
            let degraded =
              match decision with Admission.Degrade _ -> true | _ -> false
            in
            Metrics.Counter.incr t.c_admitted;
            if degraded then Metrics.Counter.incr t.c_degraded;
            instant t "sched.admit" j
              [
                ("quota", Event.Float quota);
                ("degraded", Event.String (string_of_bool degraded));
              ];
            jwrite t
              (Sched_journal.Admitted
                 {
                   a_id = j.Job.id;
                   a_label = j.Job.label;
                   a_granted = quota;
                   a_degraded = degraded;
                   a_now = now;
                 });
            let reserved =
              let staged =
                Admission.compile_for_pricing ?cache:t.cache ~job:j ()
              in
              Admission.price_min_stage ~device:t.device staged
                ~config:j.Job.config
            in
            t.seq <- t.seq + 1;
            t.live <-
              t.live
              @ [
                  {
                    l_job = j;
                    l_seq = t.seq;
                    l_granted = quota;
                    l_degraded = degraded;
                    l_reserved = reserved;
                    l_handle = None;
                    l_started = None;
                    l_service = 0.0;
                    l_steps = 0;
                    l_preempt = 0;
                  };
                ]);
        go ()
    | _ -> ()
  in
  go ()

let candidates t now =
  List.map
    (fun l ->
      let next_cost =
        match l.l_handle with
        | Some h -> Executor.min_stage_cost h
        | None -> l.l_reserved
      in
      {
        Policy.key = l.l_seq;
        seq = l.l_seq;
        deadline = l.l_job.Job.deadline;
        laxity = l.l_job.Job.deadline -. now -. next_cost;
        service = l.l_service;
        weight = float_of_int l.l_job.Job.priority;
      })
    t.live

let step_job t lj handle =
  t.account (Some lj.l_job.Job.id);
  (match t.last_run with
  | Some s when s <> lj.l_seq -> (
      match List.find_opt (fun l -> l.l_seq = s) t.live with
      | Some prev ->
          prev.l_preempt <- prev.l_preempt + 1;
          Metrics.Counter.incr t.c_preempt;
          instant t "sched.preempt" prev.l_job []
      | None -> ())
  | _ -> ());
  let t0 = Clock.now t.clock in
  let step = Executor.step handle in
  lj.l_service <- lj.l_service +. (Clock.now t.clock -. t0);
  lj.l_steps <- lj.l_steps + 1;
  t.last_run <- Some lj.l_seq;
  match step with
  | `Continue ->
      jwrite t
        (Sched_journal.Progress
           {
             p_id = lj.l_job.Job.id;
             p_steps = lj.l_steps;
             p_now = Clock.now t.clock;
           })
  | `Done report -> finish_live t lj (Completed report)

let step t =
  if t.finished then invalid_arg "Engine.step: engine already finished";
  let now = Clock.now t.clock in
  (* Admission pricing and its journal writes are scheduler overhead,
     never any one job's spend. *)
  t.account None;
  admit_arrivals t now;
  match (t.live, t.pending) with
  | [], [] -> `Idle
  | [], next :: _ ->
      (* Idle: every finalized handle disarmed its deadline, so this
         sleep can never be interrupted on a dead job's behalf. *)
      Clock.sleep_until t.clock next.Job.arrival;
      `Progress
  | _ :: _, _ -> (
      let c = Policy.select t.policy (candidates t now) in
      let lj = List.find (fun l -> l.l_seq = c.Policy.key) t.live in
      (match lj.l_handle with
      | Some handle -> step_job t lj handle
      | None ->
          let quota = Float.min lj.l_granted (Job.slack lj.l_job ~now) in
          if quota <= 0.0 then
            (* Its deadline passed while it waited: it never starts —
               and never stalls the jobs behind it. *)
            finish_live t lj Expired
          else begin
            (* Mirror Taqp.count_within's stream discipline — create
               the job rng, split off (and discard) the jitter
               stream — so a solo job's report is bit-identical to a
               direct count_within at the same seed and quota. *)
            let rng = Prng.create lj.l_job.Job.seed in
            ignore (Prng.split rng);
            t.account (Some lj.l_job.Job.id);
            let handle =
              Executor.start ~config:lj.l_job.Job.config
                ~aggregate:lj.l_job.Job.aggregate ?cache:t.cache
                ~device:t.device ~catalog:lj.l_job.Job.catalog ~rng ~quota
                lj.l_job.Job.query
            in
            (match t.on_dispatch with
            | None -> ()
            | Some f -> f lj.l_job handle);
            lj.l_handle <- Some handle;
            lj.l_started <- Some now;
            Metrics.Histogram.observe t.h_wait (now -. lj.l_job.Job.arrival);
            instant t "sched.dispatch" lj.l_job [ ("quota", Event.Float quota) ];
            step_job t lj handle
          end);
      `Progress)

let rec drain t = match step t with `Idle -> () | `Progress -> drain t

let submit t job =
  if t.finished then invalid_arg "Engine.submit: engine already finished";
  let key (j : Job.t) = (j.Job.arrival, j.Job.id) in
  let rec ins = function
    | [] -> [ job ]
    | j :: rest as l -> if key job < key j then job :: l else j :: ins rest
  in
  t.pending <- ins t.pending

let cancel t ~id =
  if t.finished then invalid_arg "Engine.cancel: engine already finished";
  match List.partition (fun (j : Job.t) -> j.Job.id = id) t.pending with
  | _ :: _, rest ->
      t.pending <- rest;
      `Cancelled_pending
  | [], _ -> (
      match List.find_opt (fun l -> l.l_job.Job.id = id) t.live with
      | Some lj ->
          finish_live t lj Expired;
          `Killed_live
      | None -> `Unknown)

let finish t =
  if t.finished then invalid_arg "Engine.finish: engine already finished";
  t.finished <- true;
  t.account None;
  Option.iter (fun c -> Taqp_cache.Cache.emit_counters c t.tracer) t.cache;
  let reports =
    List.stable_sort (fun a b -> compare a.job.Job.id b.job.Job.id) t.reports
  in
  let count f = List.length (List.filter f reports) in
  let admitted_reports =
    List.filter (fun (r : job_report) -> r.admitted) reports
  in
  let late =
    List.map (fun r -> Float.max 0.0 r.lateness) admitted_reports
    |> List.sort compare |> Array.of_list
  in
  let waits = List.map (fun r -> r.queue_wait) admitted_reports in
  let summary =
    {
      submitted = List.length reports;
      admitted = List.length admitted_reports;
      degraded = count (fun (r : job_report) -> r.degraded);
      rejected =
        count (fun r -> match r.outcome with Rejected _ -> true | _ -> false);
      expired =
        count (fun r -> match r.outcome with Expired -> true | _ -> false);
      completed =
        count (fun r -> match r.outcome with Completed _ -> true | _ -> false);
      missed = count (fun (r : job_report) -> r.missed);
      miss_rate =
        (if reports = [] then 0.0
         else
           float_of_int (count (fun (r : job_report) -> r.missed))
           /. float_of_int (List.length reports));
      lateness_p50 = percentile late 0.50;
      lateness_p99 = percentile late 0.99;
      lateness_p999 = percentile late 0.999;
      max_lateness = (if late = [||] then 0.0 else late.(Array.length late - 1));
      mean_queue_wait =
        (match waits with
        | [] -> 0.0
        | ws -> List.fold_left ( +. ) 0.0 ws /. float_of_int (List.length ws));
      makespan = Clock.now t.clock;
      busy_time =
        List.fold_left
          (fun acc (r : job_report) -> acc +. r.service)
          0.0 reports;
      preemptions =
        List.fold_left
          (fun acc (r : job_report) -> acc + r.preemptions)
          0 reports;
    }
  in
  { policy = t.policy; admission_on = t.admission <> None; reports; summary }
