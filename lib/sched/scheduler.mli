(** Event-driven multi-query scheduler over one shared virtual device.

    The scheduler owns the clock: jobs arrive at absolute virtual
    times, admission ({!Admission}) prices each arrival before it may
    touch the device, and admitted jobs run as resumable
    {!Taqp_core.Executor} handles interleaved at stage boundaries — the
    natural preemption points of staged sampling. Each step re-arms the
    running job's abort deadline on the shared clock, so the quota
    mechanics of a solo run are preserved verbatim: a single job pushed
    through any policy yields a report bit-identical to
    [Taqp.count_within] with the same seed and quota (the scheduler
    reproduces its rng-stream discipline, and default device params
    carry no jitter).

    Determinism: given the same job list, seeds and policy, two runs
    produce identical reports — the loop draws randomness only from
    per-job seeds and breaks every tie by admission order. *)

type outcome = Engine.outcome =
  | Completed of Taqp_core.Report.t
      (** ran to a report — possibly [Quota_exhausted] or [Faulted];
          consult the report's own outcome *)
  | Rejected of Admission.reason  (** never admitted, never ran *)
  | Expired
      (** admitted, but its deadline passed while it waited in the
          queue; it never started (and never stalled jobs behind it) *)

type job_report = Engine.job_report = {
  job : Job.t;
  outcome : outcome;
  admitted : bool;
  degraded : bool;  (** admission shrank its quota below its ask *)
  quota : float option;  (** seconds actually granted at dispatch *)
  started_at : float option;
  finished_at : float;  (** decision time for rejected jobs *)
  queue_wait : float;  (** arrival to first dispatch *)
  lateness : float;  (** finished - deadline; negative = early *)
  missed : bool;
      (** admitted but no in-deadline answer: finished late, expired
          queued, or completed zero stages without an exact result *)
  steps : int;  (** executor stage-steps consumed *)
  preemptions : int;  (** times another job ran while this one waited *)
  service : float;  (** device seconds consumed *)
}

type summary = Engine.summary = {
  submitted : int;
  admitted : int;
  degraded : int;
  rejected : int;
  expired : int;
  completed : int;
  missed : int;
  miss_rate : float;  (** missed / submitted *)
  lateness_p50 : float;  (** percentiles of max(0, lateness), admitted *)
  lateness_p99 : float;
  lateness_p999 : float;
  max_lateness : float;
  mean_queue_wait : float;
  makespan : float;  (** virtual clock at loop exit *)
  busy_time : float;  (** device seconds across all jobs *)
  preemptions : int;
}

type result = Engine.result = {
  policy : Policy.t;
  admission_on : bool;
  reports : job_report list;  (** in job id order *)
  summary : summary;
}

val run :
  ?policy:Policy.t ->
  ?admission:Admission.t ->
  ?params:Taqp_storage.Cost_params.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?tracer:Taqp_obs.Tracer.t ->
  ?faults:Taqp_fault.Injector.t ->
  ?journal:Taqp_recover.Journal.writer ->
  ?start_at:float ->
  ?on_device:(Taqp_storage.Device.t -> unit) ->
  ?on_dispatch:(Job.t -> Taqp_core.Executor.handle -> unit) ->
  ?account:(int option -> unit) ->
  ?cache:Taqp_cache.Cache.t ->
  Job.t list ->
  result
(** Run the workload to completion on a fresh virtual clock.

    [policy] defaults to {!Policy.Edf}. [admission] defaults to [None]:
    every job is admitted with its full slack as quota (the seed
    repo's behaviour). [params] defaults to jitter-free
    {!Taqp_storage.Cost_params.default} so runs are reproducible;
    pass jittered params (plus per-run metrics) to model device noise.
    Faulted jobs degrade through the executor's own containment and
    never stall the queue.

    [journal] write-ahead journals every admission decision, step and
    terminal accounting line as {!Sched_journal} records, with each
    write charged to the shared clock
    ({!Taqp_storage.Device.journal_write}) so journaling cost is borne
    by the workload it protects; without it the run is bit-identical
    to the journal-free scheduler. [start_at] starts the virtual clock
    at an absolute instant instead of 0 — the recovery re-run uses it
    to make crash downtime lost (never replayed) time.

    Audit hooks (all strictly observational — a run with them installed
    is bit-identical to one without): [on_device] fires once with the
    scheduler's internal device, before any charge, so an auditor can
    attach a {!Taqp_storage.Device.set_spend_listener}; [account] fires
    with [Some job_id] just before charges on that job's behalf and
    with [None] around scheduler overhead (admission pricing, its
    journal writes) and at loop exit; [on_dispatch] fires once per
    dispatched job with its executor handle, before its first stage,
    so a drift monitor can register via
    {!Taqp_core.Executor.on_cost_observation}.

    [cache] shares one {!Taqp_cache.Cache} across every job on the
    device: jobs draw from its shared sample prefixes and serve each
    other's blocks and stage summaries, admission and the reserved
    backlog price only the residual misses a warm cache leaves, the
    cache's counters are mirrored into [metrics] and emitted to
    [tracer] at loop exit. Omitted (the default), the run is
    bit-identical to the cache-less scheduler. *)

val completed_report : job_report -> Taqp_core.Report.t option
(** The completed report, if any. *)

val outcome_name : job_report -> string
(** The report's outcome name for completed jobs, ["rejected"] or
    ["expired"] otherwise. *)

val job_report_json : job_report -> Taqp_obs.Json.t
(** One self-contained object per job — the CLI's per-job output line
    and the bench's per-cell rows share this shape. *)

val summary_json : summary -> Taqp_obs.Json.t
val pp_summary : Format.formatter -> summary -> unit

(** {2 Crash recovery}

    Job-level recovery of a killed [serve] workload from its
    {!Sched_journal}: jobs whose terminal record made it into the
    journal are reported from it; every other job — in flight at the
    crash or never arrived — is re-run with whatever slack its
    absolute deadline still leaves after the downtime. See
    docs/RECOVERY.md. *)

type recovery = {
  r_run : result;  (** the post-crash re-run (re-admitted jobs only) *)
  r_journaled : Sched_journal.done_record list;
      (** jobs finished before the crash, reported from the journal *)
  r_summary : summary;  (** combined accounting over both sets *)
}

val recover :
  ?policy:Policy.t ->
  ?admission:Admission.t ->
  ?params:Taqp_storage.Cost_params.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?tracer:Taqp_obs.Tracer.t ->
  ?faults:Taqp_fault.Injector.t ->
  ?journal:Taqp_recover.Journal.writer ->
  ?on_device:(Taqp_storage.Device.t -> unit) ->
  ?on_dispatch:(Job.t -> Taqp_core.Executor.handle -> unit) ->
  ?account:(int option -> unit) ->
  ?cache:Taqp_cache.Cache.t ->
  ?downtime:float ->
  records:Sched_journal.record list ->
  Job.t list ->
  recovery
(** [records] is the crashed run's decoded journal; [jobs] the same
    job file it ran (matched by id). The re-run starts at the last
    journaled instant plus [downtime] (default 0): arrivals the
    outage swallowed are admitted immediately, and a job whose
    deadline passed during the downtime expires at dispatch instead
    of wasting budget. [journal] opens a fresh journal for the re-run
    itself. @raise Invalid_argument on negative [downtime]. *)

val merge_journaled :
  summary ->
  run_reports:job_report list ->
  Sched_journal.done_record list ->
  crash_time:float ->
  summary
(** Fold a crashed run's journaled terminal records into a re-run's
    summary: counts add, percentiles re-derive from the union of both
    sides' per-job lateness/wait values, makespan takes
    [max crash_time]. [run_reports] is the re-run's report list (its
    admitted jobs contribute their lateness/wait to the union). Both
    {!recover} and the socket server's post-recovery DRAIN_DONE
    summary use this. *)

val done_record_json : Sched_journal.done_record -> Taqp_obs.Json.t
(** The journaled terminal line as a per-job JSON object (carries
    ["from_journal": true]). *)
