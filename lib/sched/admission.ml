module Config = Taqp_core.Config
module Staged = Taqp_core.Staged
module Executor = Taqp_core.Executor
module Cost_model = Taqp_timecost.Cost_model
module Device = Taqp_storage.Device
module Distribution = Taqp_stats.Distribution
module Prng = Taqp_rng.Prng

type reason =
  | Queue_full of { limit : int }
  | Zero_slack
  | Infeasible of { needed : float; available : float }

type decision =
  | Accept of { quota : float }
  | Degrade of { quota : float; wanted : float }
  | Reject of reason

type t = { max_queue : int option; headroom : float }

let default = { max_queue = None; headroom = 1.0 }

let make ?max_queue ?(headroom = 1.0) () =
  (match max_queue with
  | Some n when n < 1 -> invalid_arg "Admission.make: max_queue < 1"
  | _ -> ());
  if headroom < 1.0 then invalid_arg "Admission.make: headroom < 1";
  { max_queue; headroom }

let reason_name = function
  | Queue_full _ -> "queue-full"
  | Zero_slack -> "zero-slack"
  | Infeasible _ -> "infeasible"

let pp_reason ppf = function
  | Queue_full { limit } -> Format.fprintf ppf "queue full (limit %d)" limit
  | Zero_slack -> Format.pp_print_string ppf "deadline already passed"
  | Infeasible { needed; available } ->
      Format.fprintf ppf
        "needs %.3fs for its minimum viable stage, %.3fs available" needed
        available

let decision_name = function
  | Accept _ -> "accepted"
  | Degrade _ -> "degraded"
  | Reject _ -> "rejected"

(* Admission prices a job on the same Formulas/Staged cost nodes the
   executor plans with, but on a throwaway compilation: a fresh
   untrained cost model and a private rng, so pricing never perturbs
   the run that may follow. All of it is pure — admission charges the
   shared clock nothing. *)
let compile_for_pricing ?cache ~job () =
  let config = job.Job.config in
  let cost_model =
    Cost_model.create ~adaptive:config.Config.adaptive_cost
      ~initial_scale:config.Config.initial_cost_scale ()
  in
  (* [cache] makes the throwaway plan count only predicted *misses*
     (Cache.predict_misses is read-only), so admission prices the
     residual sample a warm cache leaves to fetch. Still pure. *)
  Staged.compile ~aggregate:job.Job.aggregate ?cache ~catalog:job.Job.catalog
    ~config ~rng:(Prng.create job.Job.seed) ~cost_model job.Job.query

(* The cheapest run that still yields an estimate: one
   sample-size-determination plus one minimum-fraction stage. A job
   whose slack cannot cover this produces nothing — admitting it only
   burns device time other jobs needed. *)
let price_min_stage ~device staged ~(config : Config.t) =
  Executor.planning_cost device ~max_iterations:config.max_bisect_iterations
  +. Staged.predicted_cost staged ~f:Executor.min_fraction ~mode:Staged.Plain

(* The stage fraction a confidence target needs, from the SRS
   normal-approximation half-width of a proportion: to put the relative
   half-width under w at confidence level L with prior selectivity p,
   the sample must hold m >= z^2 (1-p) / (p w^2) points (z the
   two-sided normal deviate of L). The prior is the product of the
   compiled operators' initial selectivities — crude, but it is exactly
   the information the executor itself starts from. *)
let confidence_fraction staged ~(config : Config.t) ~target =
  let plans = Staged.plan staged ~f:0.01 ~mode:Staged.Plain in
  let p =
    List.fold_left (fun acc pl -> acc *. pl.Staged.sel_plain) 1.0 plans
  in
  let p = Float.min 1.0 (Float.max 1e-6 p) in
  let z =
    Distribution.normal_quantile ((1.0 +. config.confidence_level) /. 2.0)
  in
  let m = z *. z *. (1.0 -. p) /. (p *. target *. target) in
  let total = Float.max 1.0 (Staged.total_points staged) in
  Float.min 1.0 (Float.max Executor.min_fraction (m /. total))

let price_confidence ~device staged ~(config : Config.t) ~target =
  Executor.planning_cost device ~max_iterations:config.max_bisect_iterations
  +. Staged.predicted_cost staged
       ~f:(confidence_fraction staged ~config ~target)
       ~mode:Staged.Plain

let evaluate t ?cache ~device ~now ~backlog ~queue_len job =
  let slack = Job.slack job ~now in
  if slack <= 0.0 then Reject Zero_slack
  else
    match t.max_queue with
    | Some limit when queue_len >= limit -> Reject (Queue_full { limit })
    | _ ->
        let staged = compile_for_pricing ?cache ~job () in
        let config = job.Job.config in
        let min_cost = price_min_stage ~device staged ~config in
        let available = slack -. backlog in
        let needed = t.headroom *. min_cost in
        if available < needed then Reject (Infeasible { needed; available })
        else
          let wanted =
            match job.Job.min_confidence with
            | None -> min_cost
            | Some target -> price_confidence ~device staged ~config ~target
          in
          if available >= t.headroom *. wanted then Accept { quota = slack }
          else Degrade { quota = available; wanted = t.headroom *. wanted }
