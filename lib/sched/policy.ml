type t = Fifo | Edf | Least_laxity | Weighted_fair

let all = [ Fifo; Edf; Least_laxity; Weighted_fair ]

let name = function
  | Fifo -> "fifo"
  | Edf -> "edf"
  | Least_laxity -> "llf"
  | Weighted_fair -> "wfq"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fifo" -> Some Fifo
  | "edf" -> Some Edf
  | "llf" | "least-laxity" -> Some Least_laxity
  | "wfq" | "weighted-fair" -> Some Weighted_fair
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)

type candidate = {
  key : int;
  seq : int;
  deadline : float;
  laxity : float;
  service : float;
  weight : float;
}

(* Every policy reduces to "minimize a score, break ties by admission
   order": the score function is the whole policy. Ties on the score go
   to the earlier [seq] so selection is total and deterministic. *)
let score t c =
  match t with
  | Fifo -> float_of_int c.seq
  | Edf -> c.deadline
  | Least_laxity -> c.laxity
  | Weighted_fair -> c.service /. c.weight

let select t = function
  | [] -> invalid_arg "Policy.select: no candidates"
  | first :: rest ->
      List.fold_left
        (fun best c ->
          let sb = score t best and sc = score t c in
          if sc < sb || (sc = sb && c.seq < best.seq) then c else best)
        first rest
