(** Run-time sample-selectivity records — the Revise-Selectivities
    bookkeeping of Figure 3.3.

    One record per RA operator accumulates, stage by stage, the number
    of sampled points presented to the operator and the number of
    output tuples it produced. sel^{i-1} = sum tuples_j / sum points_j,
    falling back to the designer's initial (maximum) selectivity before
    any points have been seen. *)

type t

val create : initial:float -> t
(** @raise Invalid_argument unless [initial] is in (0, 1]. *)

val initial_for :
  [ `Select | `Project | `Join | `Intersect of int * int | `Scan ] -> float
(** Figure 3.3's first-stage assignments: the maximum selectivity 1 for
    Select/Project/Join (and trivially Scan); 1/max(|r1|,|r2|) for
    Intersect given the operand cardinalities. *)

val observe : t -> points:float -> tuples:float -> unit
(** Record one stage's evaluation at this operator.
    @raise Invalid_argument on negative inputs or [tuples > points]. *)

val set_cumulative : t -> points:float -> tuples:float -> unit
(** Overwrite the cumulative totals (used by operators whose output is
    not additive across stages, e.g. distinct groups under Project). *)

val estimate : t -> float
(** sel^{i-1}: the cumulative ratio, or [initial] with no data. *)

val points_seen : t -> float
val tuples_seen : t -> float
val stages_observed : t -> int
val initial : t -> float

val set_design_effect : t -> float -> unit
(** Record the measured cluster design effect — the ratio of the true
    (block-level) variance of the sample selectivity to the
    simple-random-sampling variance the paper's approximation assumes.
    1.0 (the default) for randomly placed tuples; > 1 when blocks are
    internally correlated. {!variance_srs} is multiplied by it, which
    feeds the correction into the sel+ inflation.
    @raise Invalid_argument unless positive and finite. *)

val design_effect : t -> float

val variance_srs : t -> m_next:float -> n_remaining:float -> float
(** The paper's approximation of Var(sel_i) for the {e next} stage: the
    simple-random-sampling variance sel(1-sel)(N_i - m_i)/(m_i (N_i - 1))
    with sel = {!estimate}, m_i = [m_next] sampled points, N_i =
    [n_remaining] points not yet included, scaled by the
    {!design_effect}. 0 when m_next < 1 or n_remaining <= 1. *)

(** {2 Checkpointing}

    The cumulative observations (everything mutable; the designer
    [initial] is fixed at compile time), captured and restored by
    {!Taqp_recover} checkpoints. *)

type dump = {
  d_points : float;
  d_tuples : float;
  d_stages : int;
  d_design_effect : float;
}

val dump : t -> dump
val restore : t -> dump -> unit
