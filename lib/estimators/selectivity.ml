type t = {
  initial : float;
  mutable points : float;
  mutable tuples : float;
  mutable stages : int;
  mutable design_effect : float;
}

let create ~initial =
  if initial <= 0.0 || initial > 1.0 then
    invalid_arg "Selectivity.create: initial outside (0,1]";
  { initial; points = 0.0; tuples = 0.0; stages = 0; design_effect = 1.0 }

let initial_for = function
  | `Select | `Project | `Join | `Scan -> 1.0
  | `Intersect (n1, n2) ->
      let m = Int.max n1 n2 in
      if m <= 0 then invalid_arg "Selectivity.initial_for: empty operands"
      else 1.0 /. float_of_int m

let observe t ~points ~tuples =
  if points < 0.0 || tuples < 0.0 then
    invalid_arg "Selectivity.observe: negative counts";
  if tuples > points +. 1e-9 then
    invalid_arg "Selectivity.observe: tuples exceed points";
  t.points <- t.points +. points;
  t.tuples <- t.tuples +. tuples;
  t.stages <- t.stages + 1

let set_cumulative t ~points ~tuples =
  if points < 0.0 || tuples < 0.0 then
    invalid_arg "Selectivity.set_cumulative: negative counts";
  t.points <- points;
  t.tuples <- tuples;
  t.stages <- t.stages + 1

let estimate t =
  if t.points <= 0.0 then t.initial
  else Float.min 1.0 (t.tuples /. t.points)

let points_seen t = t.points
let tuples_seen t = t.tuples
let stages_observed t = t.stages
let initial t = t.initial

let set_design_effect t deff =
  if deff <= 0.0 || not (Float.is_finite deff) then
    invalid_arg "Selectivity.set_design_effect: must be positive and finite";
  t.design_effect <- deff

let design_effect t = t.design_effect

let variance_srs t ~m_next ~n_remaining =
  if m_next < 1.0 || n_remaining <= 1.0 then 0.0
  else begin
    let sel = estimate t in
    let m = Float.min m_next n_remaining in
    t.design_effect
    *. (sel *. (1.0 -. sel) *. (n_remaining -. m)
       /. (m *. (n_remaining -. 1.0)))
  end

type dump = {
  d_points : float;
  d_tuples : float;
  d_stages : int;
  d_design_effect : float;
}

let dump t =
  {
    d_points = t.points;
    d_tuples = t.tuples;
    d_stages = t.stages;
    d_design_effect = t.design_effect;
  }

let restore t d =
  t.points <- d.d_points;
  t.tuples <- d.d_tuples;
  t.stages <- d.d_stages;
  t.design_effect <- d.d_design_effect
