(** Per-backend health bookkeeping for the balancer tier: schedules
    deadline-bounded STATUS probes, keeps the last snapshot (what
    least-priced-backlog routing prices against) and feeds verdicts to
    the backend's {!Breaker}.

    Probe scheduling uses the caller's wall clock ([wall]); verdicts
    are recorded at the tier's virtual [now] because the breaker cools
    down in virtual time. The in-process cluster drives both with the
    same virtual instants — fully deterministic. See docs/HA.md. *)

type snapshot = {
  sn_now : float;  (** the backend's reported virtual now *)
  sn_live : int;
  sn_pending : int;
  sn_backlog : float;  (** reserved-work seconds, as in STATUS_OK *)
}

type t

val create : ?interval:float -> ?deadline:float -> ?breaker:Breaker.t -> unit -> t
(** Defaults: probe every [interval = 0.25] wall seconds, each reply
    due within [deadline = 1.0] wall seconds, a fresh default
    {!Breaker}. @raise Invalid_argument on non-positive spans. *)

val breaker : t -> Breaker.t
val snapshot : t -> snapshot option
val probes : t -> int
(** Probes sent so far. *)

val failures : t -> int
(** Probe deadline misses / transport errors so far. *)

val due : t -> wall:float -> bool
(** Time to probe: none in flight and [interval] elapsed. *)

val sent : t -> wall:float -> unit
(** Record a probe leaving at [wall]. *)

val overdue : t -> wall:float -> bool
(** The in-flight probe has outlived its deadline — record it with
    {!failed} and count it against the breaker. *)

val observe : t -> now:float -> snapshot:snapshot -> unit
(** A STATUS_OK landed in time: clear the in-flight probe, retain the
    snapshot, credit the breaker at virtual [now]. *)

val failed : t -> now:float -> unit
(** The probe missed its deadline (or the transport errored): clear
    it and debit the breaker at virtual [now]. *)

val cost : t -> float
(** The routing price: {!Backpressure.overloaded} over the last
    snapshot — route where the quoted retry_after would be smallest.
    [0] before the first snapshot. *)

val depth : t -> int
(** live + pending from the last snapshot (routing tiebreak). *)
