(** The socket front door: a single-process [Unix.select] event loop
    interleaving socket readiness with {!Taqp_sched.Engine.step} calls
    on one shared virtual device — wire jobs compete exactly as batch
    jobs do, and the admission controller's verdicts surface as priced
    REJECT frames instead of queue growth. Protocol in {!Wire} and
    docs/SERVING.md.

    Door checks (before the engine sees a SUBMIT): draining state,
    the connection's token-bucket quota ([quota_capacity] tokens,
    [quota_refill]/virtual-second), and the [max_pending] memory bound.
    Each refusal is a [Rejected { job_id = None; retry_after; _ }]
    priced by {!Backpressure}. Everything admitted past the door is
    journaled as a {!Taqp_sched.Sched_journal.Submitted} line (when a
    journal is configured), then ruled on by the engine's admission
    controller at its virtual arrival.

    Listens on the IPv4 loopback only. *)

type gate =
  [ `Eager  (** step the engine whenever it has work — real serving *)
  | `Drain
    (** withhold every engine step until a DRAIN frame: clients first
        queue a whole arrival schedule against a frozen clock, then
        the run executes — bit-identical to the same job list through
        [Scheduler.run], which is what the bench and the protocol
        tests pin *) ]

type t

type stats = {
  result : Taqp_sched.Engine.result;
      (** this process's engine run (post-crash jobs only, after a
          recovery) *)
  summary : Taqp_sched.Engine.summary;
      (** [result.summary], or the {!Taqp_sched.Scheduler.merge_journaled}
          union with pre-crash records after a recovery — the
          DRAIN_DONE payload *)
  journaled : Taqp_sched.Sched_journal.done_record list;
      (** pre-crash completions carried in via [recover] *)
  max_live : int;
      (** high-water mark of concurrently live engine jobs — never
          exceeds admission's [max_queue] when one is set *)
  door_rejects : int;  (** SUBMITs refused before an id was assigned *)
}

val create :
  ?policy:Taqp_sched.Policy.t ->
  ?admission:Taqp_sched.Admission.t ->
  ?params:Taqp_storage.Cost_params.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?tracer:Taqp_obs.Tracer.t ->
  ?faults:Taqp_fault.Injector.t ->
  ?cache:Taqp_cache.Cache.t ->
  ?on_report:(Taqp_sched.Engine.job_report -> unit) ->
  ?gate:gate ->
  ?max_pending:int ->
  ?quota_capacity:float ->
  ?quota_refill:float ->
  ?journal_path:string ->
  ?recover:Taqp_sched.Sched_journal.record list ->
  ?downtime:float ->
  catalog:Taqp_storage.Catalog.t ->
  config:Taqp_core.Config.t ->
  port:int ->
  unit ->
  t
(** Bind and listen (port 0 picks an ephemeral port — read it back
    with {!port}). [catalog]/[config] parse every wire job line.
    Defaults: [gate = `Eager], [max_pending = 4096],
    [quota_capacity = 64] tokens, [quota_refill = 4]/virtual-second.

    [recover] takes a crashed server's decoded journal: journaled
    completions answer FETCHes verbatim (byte-identical RESULT
    frames), unfinished [Submitted] lines are re-admitted at crash
    time + [downtime], the id counter resumes past every journaled id,
    and the carried-over records are re-journaled into [journal_path]
    so a second crash loses nothing. Recovery opens the gate
    immediately even under [`Drain]. *)

val port : t -> int

val run : t -> stats
(** Serve until drained: any client's DRAIN frame stops admission;
    once the backlog is dry every connection receives DRAIN_DONE with
    the final summary and [run] returns the accounting. Crash faults
    ({!Taqp_fault.Injector.Crashed}) propagate to the caller — every
    journal record was already flushed. *)

val shutdown : t -> unit
(** Abrupt teardown: close the listener and every connection. For
    in-process harnesses catching a propagated crash fault — a real
    process crash gets the fd cleanup from the kernel. *)
