(** taqp_ha: the replicated serving tier. A TAQPNET1-speaking balancer
    over N backends with least-priced-backlog routing (the
    {!Backpressure.overloaded} price as routing cost), deadline-bounded
    STATUS health probes ({!Health}), per-backend circuit breakers
    cooled in virtual time ({!Breaker}), and journal-backed job
    migration on backend death: terminal records replay as verbatim —
    byte-identical — RESULT frames and unfinished lines are re-admitted
    on survivors at crash time plus downtime, deduped by job id so a
    client never sees two terminals. See docs/HA.md.

    {!Cluster} is the deterministic in-process mode (N
    {!Taqp_sched.Engine}s, no sockets — the bit-exact anchor:
    a 1-backend cluster reproduces [Scheduler.run] byte for byte).
    {!Proxy} is the real multi-process mode behind [taqp balance]. *)

val summarize :
  makespan:float ->
  Taqp_sched.Sched_journal.done_record list ->
  Taqp_sched.Engine.summary
(** Rebuild an {!Taqp_sched.Engine.summary} from terminal records
    alone — the balancer's cross-backend accounting. Field-for-field
    the same folds as [Engine.finish], so one engine's record set
    yields that engine's own summary bit-identically. Synthesized
    ["lost"] records (a dead backend's unmigrated jobs) count as
    admitted misses with zero service. *)

(** Deterministic in-process balancer: N engines on synchronized
    virtual clocks, each with its own scheduler journal. *)
module Cluster : sig
  type t

  type outcome = {
    o_summary : Taqp_sched.Engine.summary;
    o_records : Taqp_sched.Sched_journal.done_record list;  (** id order *)
    o_results : (int * Taqp_sched.Engine.result) list;
        (** per surviving backend *)
    o_replays : (int * bool) list;
        (** journal-replayed terminal ids; [true] = the replayed RESULT
            frame was byte-identical to the live push *)
    o_routed : (int * int) list;  (** job id -> final backend *)
    o_migrated : int;
    o_lost : int;
    o_door_rejects : int;
  }

  val create :
    ?policy:Taqp_sched.Policy.t ->
    ?admission:Taqp_sched.Admission.t ->
    ?breaker:(unit -> Breaker.t) ->
    dir:string ->
    backends:int ->
    catalog:Taqp_storage.Catalog.t ->
    config:Taqp_core.Config.t ->
    unit ->
    t
  (** [backends] engines, each journaling to
      [dir/backend-<i>.journal]. [breaker] builds each backend's
      breaker (default {!Breaker.create}).
      @raise Invalid_argument on [backends < 1]. *)

  val now : t -> float
  (** Cluster virtual now: the max across backends (a dead backend
      contributes its crash instant). Submissions are stamped against
      this, so lagging idle engines sleep forward to it. *)

  val alive : t -> int -> bool
  val backend_now : t -> int -> float

  val submit :
    t ->
    string ->
    [ `Queued of int * int  (** job id, backend index *)
    | `Rejected of string * float  (** reason, priced retry_after *) ]
  (** Parse one job line (times as offsets from cluster now), route it
      to the least-priced live backend — closed breakers before
      half-open, then smallest {!Backpressure.overloaded} price — door
      journal it there, and submit. [`Rejected "unavailable"] quotes
      the smallest breaker cooldown remaining when no backend is
      routable. *)

  val advance : t -> upto:float -> unit
  (** Step the least-advanced live engine repeatedly until every live
      engine is idle or past [upto] — the deterministic interleaving
      used to reach a mid-run kill point. *)

  val kill :
    t -> backend:int -> ?downtime:float -> failover:bool -> unit -> unit
  (** Crash a backend abruptly: abandon its engine mid-flight, trip
      its breaker, close its journal, and recover purely from the
      journal file — replay terminal [Done] records as RESULT frames
      (byte-compared against the live pushes), then either migrate the
      unfinished remainder to survivors at crash time + [downtime]
      (deadlines untouched: downtime expires what it expires) or,
      with [failover:false] / no survivor, write each off as a
      ["lost"] terminal. @raise Invalid_argument if already dead. *)

  val frame : t -> id:int -> string option
  (** The canonical terminal RESULT frame bytes recorded for a job —
      what a live client was (or would have been) pushed. *)

  val drain : t -> outcome
  (** Run every live engine to idle, finish them, and account the
      whole tier: terminal records in id order, a cross-backend
      {!summarize} summary (makespan = latest instant any backend
      reached, including crash instants). *)
end

(** Multi-process balancer: a [Unix.select] proxy speaking TAQPNET1 on
    both sides — clients in front, N backend server processes behind.
    Catalog-free: SUBMIT lines are forwarded verbatim (only ids are
    rewritten — backends number their own jobs; the proxy owns the
    global id space), and migration rewrites only the two leading
    time fields of a journaled line. *)
module Proxy : sig
  type backend_spec = {
    bs_port : int;
    bs_journal : string option;
        (** the backend's [--journal] path, read back on death to
            replay terminals and migrate unfinished jobs; [None]
            disables migration for that backend *)
  }

  type t

  type stats = {
    p_summary : Taqp_sched.Engine.summary;
    p_records : Taqp_sched.Sched_journal.done_record list;  (** gid order *)
    p_submitted : int;
    p_door_rejects : int;
    p_deaths : int;  (** abrupt backend losses *)
    p_migrated : int;
    p_replayed : int;  (** terminals recovered from a dead journal *)
    p_lost : int;
  }

  val create :
    ?failover:bool ->
    ?downtime:float ->
    port:int ->
    backends:backend_spec list ->
    unit ->
    t
  (** Dial every backend (bounded retries while it binds), send the
      magic, listen for clients on loopback [port] (0 = ephemeral).
      [failover] (default true) migrates a dead backend's unfinished
      journaled jobs to survivors; [downtime] is charged against their
      remaining slack. @raise Invalid_argument on an empty backend
      list. *)

  val port : t -> int

  val run : t -> stats
  (** Serve until a client sends DRAIN and every backend has either
      answered DRAIN_DONE or died. Probes each live backend with
      STATUS on a wall-clock cadence; a missed reply deadline debits
      the breaker (quarantine), but death is declared only on
      connection loss — then the dead backend's journal is replayed
      and its unfinished jobs migrate. Clients get one terminal per
      job, ever (first record wins); the final DRAIN_DONE carries the
      cross-backend {!summarize} summary. *)

  val shutdown : t -> unit
  (** Abrupt teardown for in-process harnesses: close every fd so a
      proxy running on another domain unblocks. *)
end
