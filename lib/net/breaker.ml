(* A per-backend circuit breaker, cooled down in *virtual* time: the
   balancer's clock is the max of its backends' reported virtual nows,
   so a breaker's cooldown is priced in the same seconds as every
   retry_after the tier hands out — an opened backend is quarantined
   for a span of scheduler time, not wall time, and deterministic
   harnesses can drive the whole state machine without sleeping.

   The machine is the classic three states with one twist: probe
   verdicts, not request verdicts, drive it (the balancer health-checks
   backends with deadline-bounded STATUS probes; see {!Health}).
   While [Open], both successes and failures are ignored — the breaker
   insists on its cooldown. Once the cooldown elapses the next verdict
   is the half-open trial: success closes, failure re-opens with an
   exponentially backed-off cooldown (capped). *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  threshold : int;
  cooldown : float;
  backoff : float;
  max_cooldown : float;
  mutable failures : int;  (* consecutive failures while closed *)
  mutable trips : int;  (* consecutive opens; resets when closed *)
  mutable opened_at : float;  (* virtual instant of the last trip *)
  mutable st : state;
}

let create ?(threshold = 3) ?(cooldown = 5.0) ?(backoff = 2.0)
    ?(max_cooldown = 60.0) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if cooldown <= 0.0 then invalid_arg "Breaker.create: cooldown <= 0";
  if backoff < 1.0 then invalid_arg "Breaker.create: backoff < 1";
  if max_cooldown < cooldown then
    invalid_arg "Breaker.create: max_cooldown < cooldown";
  {
    threshold;
    cooldown;
    backoff;
    max_cooldown;
    failures = 0;
    trips = 0;
    opened_at = 0.0;
    st = Closed;
  }

(* The cooldown for the current (1-based) trip streak. *)
let current_cooldown t =
  Float.min t.max_cooldown
    (t.cooldown *. (t.backoff ** float_of_int (Int.max 0 (t.trips - 1))))

let refresh t ~now =
  match t.st with
  | Open when now -. t.opened_at >= current_cooldown t -> t.st <- Half_open
  | _ -> ()

let state t ~now =
  refresh t ~now;
  t.st

let trip t ~now =
  t.st <- Open;
  t.trips <- t.trips + 1;
  t.opened_at <- now;
  t.failures <- 0

let record_success t ~now =
  refresh t ~now;
  match t.st with
  | Closed -> t.failures <- 0
  | Half_open ->
      t.st <- Closed;
      t.failures <- 0;
      t.trips <- 0
  | Open -> ()

let record_failure t ~now =
  refresh t ~now;
  match t.st with
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.threshold then trip t ~now
  | Half_open -> trip t ~now
  | Open -> ()

let retry_after t ~now =
  refresh t ~now;
  match t.st with
  | Closed | Half_open -> 0.0
  | Open -> Float.max 0.0 (current_cooldown t -. (now -. t.opened_at))

let force_open t ~now =
  refresh t ~now;
  match t.st with Open -> () | Closed | Half_open -> trip t ~now
