(** Blocking TAQPNET1 client over the loopback.

    The server pushes each job's terminal frame asynchronously, so
    synchronous calls ({!submit}, {!status}, {!fetch}, {!cancel}) park
    any interleaved RESULT / admission-REJECT pushes in an inbox the
    caller drains with {!pushes}. Not thread-safe: one client per
    thread of control (the load harness multiplexes logical clients
    from a single loop instead). *)

type push =
  | Finished of Taqp_sched.Sched_journal.done_record
      (** the job's terminal record — completed or expired *)
  | Refused of { job_id : int; reason : string; retry_after : float }
      (** the admission controller rejected it at its virtual arrival *)

type t

exception Protocol_error of string
(** Framing/CRC violation, an unexpected reply tag, or the server's
    ERROR frame. *)

exception Server_closed
(** The server hung up (or was killed) mid-exchange. *)

val connect : port:int -> t
(** TCP connect to loopback, send the magic, await HELLO. *)

val hello : t -> float * int * bool
(** The HELLO recorded at connect: server virtual now, max_pending,
    draining flag. *)

val submit :
  t ->
  string ->
  [ `Queued of int * float * float  (** id, absolute arrival, deadline *)
  | `Rejected of string * float  (** door reason, retry_after *) ]
(** Submit one job line (arrival/deadline as offsets from server now).
    [`Queued] is not completion — the terminal push arrives later. *)

val status : t -> float * int * int * float * int * bool
(** now, live, pending, backlog seconds, terminal count, draining. *)

val fetch :
  t ->
  job_id:int ->
  [ `Result of Taqp_sched.Sched_journal.done_record | `Pending of string ]
(** [`Pending "queued"] = known but not terminal; [`Pending "unknown"]
    = no such id. The answer is correlated by id, so a fetch racing
    the job's own terminal push may be satisfied by the push (the
    frames are byte-identical); the trailing reply then surfaces as a
    duplicate inbox entry. *)

val cancel : t -> job_id:int -> string
(** The server's disposition: ["pending"], ["live"], ["terminal"] or
    ["unknown"]. *)

val drain : t -> Taqp_sched.Engine.summary
(** Send DRAIN and block until DRAIN_DONE, stashing every terminal
    push along the way (drain the inbox afterwards). *)

val await_drain : t -> Taqp_sched.Engine.summary
(** Block until the broadcast DRAIN_DONE without sending DRAIN —
    for the other connections once one client has asked to drain. *)

val poll : t -> unit
(** Non-blocking: park every already-arrived push in the inbox. *)

val pushes : t -> push list
(** Drain the inbox, in arrival order. *)

val close : t -> unit
