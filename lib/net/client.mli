(** Blocking TAQPNET1 client over the loopback.

    The server pushes each job's terminal frame asynchronously, so
    synchronous calls ({!submit}, {!status}, {!fetch}, {!cancel}) park
    any interleaved RESULT / admission-REJECT pushes in an inbox the
    caller drains with {!pushes}. Not thread-safe: one client per
    thread of control (the load harness multiplexes logical clients
    from a single loop instead). *)

type push =
  | Finished of Taqp_sched.Sched_journal.done_record
      (** the job's terminal record — completed or expired *)
  | Refused of { job_id : int; reason : string; retry_after : float }
      (** the admission controller rejected it at its virtual arrival *)

type t

exception Protocol_error of string
(** Framing/CRC violation, an unexpected reply tag, or the server's
    ERROR frame. *)

exception Server_closed
(** The server hung up (or was killed) mid-exchange. *)

exception Timed_out of string
(** A bounded connect or read ran out of wall time — the hung-server
    case a plain blocking client would wait on forever. The payload
    names the phase: ["connect"] or ["read"]. *)

val connect :
  ?connect_timeout:float -> ?read_timeout:float -> port:int -> unit -> t
(** TCP connect to loopback, send the magic, await HELLO. With
    [connect_timeout] the connect is non-blocking and bounded (wall
    seconds); with [read_timeout] every blocking read — including the
    HELLO wait and all later exchanges — is bounded and raises
    {!Timed_out} on expiry. Defaults preserve the historical fully
    blocking behavior. *)

val connect_retry :
  ?connect_timeout:float ->
  ?read_timeout:float ->
  ?attempts:int ->
  ?pause:float ->
  port:int ->
  unit ->
  t
(** {!connect} with bounded retries: a refused / reset / timed-out
    connect is retried up to [attempts] times (default 5) with a
    doubling [pause] (default 0.1 wall seconds) — for racing a server
    or balancer that is still binding its port. Other errors
    propagate immediately.
    @raise Invalid_argument on [attempts < 1]. *)

val hello : t -> float * int * bool
(** The HELLO recorded at connect: server virtual now, max_pending,
    draining flag. *)

val submit :
  t ->
  string ->
  [ `Queued of int * float * float  (** id, absolute arrival, deadline *)
  | `Rejected of string * float  (** door reason, retry_after *) ]
(** Submit one job line (arrival/deadline as offsets from server now).
    [`Queued] is not completion — the terminal push arrives later. *)

val submit_with_retry :
  ?attempts:int ->
  ?backoff:float ->
  ?floor:float ->
  ?sleep:(float -> unit) ->
  t ->
  string ->
  [ `Queued of int * float * float | `Rejected of string * float ]
  * (string * float) list
(** {!submit}, honoring priced backpressure: each [`Rejected] is
    retried after waiting [max retry_after floor] — the server's own
    quote of when capacity will exist — with [floor] growing by
    [backoff] per attempt (defaults: 4 attempts, backoff 2, floor
    0.01). Returns the final disposition plus every refusal absorbed
    along the way (reason, retry_after). [sleep] maps the virtual
    retry_after onto the caller's world; the default is a wall sleep
    capped at 0.5 s.
    @raise Invalid_argument on [attempts < 1]. *)

val status : t -> float * int * int * float * int * bool
(** now, live, pending, backlog seconds, terminal count, draining. *)

val fetch :
  t ->
  job_id:int ->
  [ `Result of Taqp_sched.Sched_journal.done_record | `Pending of string ]
(** [`Pending "queued"] = known but not terminal; [`Pending "unknown"]
    = no such id. The answer is correlated by id, so a fetch racing
    the job's own terminal push may be satisfied by the push (the
    frames are byte-identical); the trailing reply then surfaces as a
    duplicate inbox entry. *)

val cancel : t -> job_id:int -> string
(** The server's disposition: ["pending"], ["live"], ["terminal"] or
    ["unknown"]. *)

val drain : t -> Taqp_sched.Engine.summary
(** Send DRAIN and block until DRAIN_DONE, stashing every terminal
    push along the way (drain the inbox afterwards). *)

val await_drain : t -> Taqp_sched.Engine.summary
(** Block until the broadcast DRAIN_DONE without sending DRAIN —
    for the other connections once one client has asked to drain. *)

val poll : t -> unit
(** Non-blocking: park every already-arrived push in the inbox. *)

val pushes : t -> push list
(** Drain the inbox, in arrival order. *)

val close : t -> unit
