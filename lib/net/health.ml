(* Per-backend health bookkeeping for the balancer: when to send the
   next deadline-bounded STATUS probe, whether the one in flight has
   blown its deadline, the last STATUS snapshot (the quantities routing
   prices against), and the breaker the verdicts feed.

   Two time bases on purpose. Probe *scheduling* runs on the caller's
   wall clock (probes are real I/O against real processes); probe
   *verdicts* are recorded against the tier's virtual now, because the
   breaker cools down in virtual time ({!Breaker}). The in-process
   cluster harness drives both with the same virtual instants, which
   keeps every test deterministic. *)

type snapshot = {
  sn_now : float;  (* the backend's reported virtual now *)
  sn_live : int;
  sn_pending : int;
  sn_backlog : float;
}

type t = {
  breaker : Breaker.t;
  interval : float;  (* wall seconds between probes *)
  deadline : float;  (* wall seconds a probe reply may take *)
  mutable inflight : float option;  (* wall instant the probe left *)
  mutable last_sent : float;
  mutable snapshot : snapshot option;
  mutable probes : int;
  mutable failures : int;
}

let create ?(interval = 0.25) ?(deadline = 1.0) ?breaker () =
  if interval <= 0.0 then invalid_arg "Health.create: interval <= 0";
  if deadline <= 0.0 then invalid_arg "Health.create: deadline <= 0";
  {
    breaker = (match breaker with Some b -> b | None -> Breaker.create ());
    interval;
    deadline;
    inflight = None;
    last_sent = neg_infinity;
    snapshot = None;
    probes = 0;
    failures = 0;
  }

let breaker t = t.breaker
let snapshot t = t.snapshot
let probes t = t.probes
let failures t = t.failures

let due t ~wall = t.inflight = None && wall -. t.last_sent >= t.interval

let sent t ~wall =
  t.inflight <- Some wall;
  t.last_sent <- wall;
  t.probes <- t.probes + 1

let overdue t ~wall =
  match t.inflight with Some s -> wall -. s > t.deadline | None -> false

let observe t ~now ~snapshot =
  t.inflight <- None;
  t.snapshot <- Some snapshot;
  Breaker.record_success t.breaker ~now

let failed t ~now =
  t.inflight <- None;
  t.failures <- t.failures + 1;
  Breaker.record_failure t.breaker ~now

(* Routing cost: the same price an overloaded door would quote for
   this backend ({!Backpressure.overloaded}) — least-priced-backlog
   routing is literally "send it where the retry_after would be
   smallest". A backend never probed yet prices as free (the first
   probe follows immediately after connect). *)
let cost t =
  match t.snapshot with
  | None -> 0.0
  | Some s -> Backpressure.overloaded ~backlog:s.sn_backlog ~queue_len:s.sn_live

let depth t =
  match t.snapshot with None -> 0 | Some s -> s.sn_live + s.sn_pending
