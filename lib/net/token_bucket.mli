(** Per-client submission quota: a token bucket in {e virtual} time
    (the engine's clock), refilled lazily on [take]. Deterministic —
    no wall timers. *)

type t

val create : capacity:float -> refill:float -> now:float -> t
(** Starts full. [refill] is tokens per virtual second; 0 makes the
    bucket non-replenishing (a hard per-connection budget).
    @raise Invalid_argument on non-positive capacity or negative
    refill. *)

val take : t -> now:float -> cost:float -> [ `Ok | `Wait of float ]
(** Spend [cost] tokens at virtual instant [now]. [`Wait w] leaves the
    bucket untouched and prices the shortfall: [w] virtual seconds of
    refill would cover it ([infinity] when [refill = 0]) — the
    [retry_after] a quota rejection carries. *)

val level : t -> now:float -> float
(** Current tokens after accrual at [now]. *)
