(* Per-client submission quota: a classic token bucket kept in virtual
   time — the same clock the engine schedules on, so quota refill is
   paced by the workload's own time base and a whole bench run stays
   deterministic. Lazy refill: tokens accrue on [take], no timers. *)

type t = {
  capacity : float;
  refill : float;  (* tokens per virtual second *)
  mutable tokens : float;
  mutable at : float;  (* virtual instant of the last accrual *)
}

let create ~capacity ~refill ~now =
  if capacity <= 0.0 then invalid_arg "Token_bucket.create: capacity <= 0";
  if refill < 0.0 then invalid_arg "Token_bucket.create: negative refill";
  { capacity; refill; tokens = capacity; at = now }

let refresh t ~now =
  if now > t.at then begin
    t.tokens <- Float.min t.capacity (t.tokens +. ((now -. t.at) *. t.refill));
    t.at <- now
  end

let level t ~now =
  refresh t ~now;
  t.tokens

let take t ~now ~cost =
  if cost <= 0.0 then invalid_arg "Token_bucket.take: cost <= 0";
  refresh t ~now;
  if t.tokens >= cost then begin
    t.tokens <- t.tokens -. cost;
    `Ok
  end
  else if t.refill <= 0.0 then `Wait Float.infinity
  else `Wait ((cost -. t.tokens) /. t.refill)
