(** The TAQPNET1 wire protocol: magic handshake, then length-prefixed
    CRC-framed codec records in both directions — the recovery
    journal's frame layout ([len:u32le][crc32:u32le][payload]) and
    {!Taqp_recover.Codec} payloads, so the framing invariants tested
    for the journal hold on the wire too. See docs/SERVING.md for the
    full protocol narrative.

    RESULT embeds {!Taqp_sched.Sched_journal.done_record} via the
    journal's own field codec: a completion replayed from the journal
    after a crash is byte-identical to the live server's reply. *)

val magic : string
(** ["TAQPNET1"] — the raw first 8 bytes a client must send. *)

val max_frame : int
(** Hard per-frame payload bound; a length field above it closes the
    connection. *)

val max_buffer : int
(** Hard bound on a {!reader}'s buffered-but-unconsumed bytes (one
    max-size frame plus a socket read's slack). Feeding past it
    poisons the reader: {!next} answers [Error] forever after — the
    caller closes the connection. *)

type message =
  | Submit of { line : string }
      (** a {!Taqp_sched.Job.of_line} job line whose arrival and
          deadline are {e offsets from the server's virtual now} *)
  | Status
  | Fetch of { job_id : int }
  | Cancel of { job_id : int }
  | Drain  (** administrative: stop admitting, run the backlog down *)
  | Hello of { now : float; max_pending : int; draining : bool }
  | Queued of { job_id : int; arrival : float; deadline : float }
      (** the assigned id and absolute virtual times *)
  | Rejected of { job_id : int option; reason : string; retry_after : float }
      (** [None]: refused at the door before an id was assigned (the
          synchronous reply to that SUBMIT); [Some id]: the admission
          controller rejected it at its virtual arrival. [retry_after]
          is the priced backoff in virtual seconds ({!Backpressure}). *)
  | Result of Taqp_sched.Sched_journal.done_record
  | Status_ok of {
      now : float;
      live : int;
      pending : int;
      backlog : float;
      terminal : int;
      draining : bool;
    }
  | Cancelled of { job_id : int; state : string }
      (** [state]: ["pending"], ["live"], ["terminal"] or ["unknown"] *)
  | Pending of { job_id : int; state : string }
      (** FETCH on a job that is not terminal yet *)
  | Drain_done of Taqp_sched.Engine.summary
  | Error of { message : string }

val tag_name : message -> string

val encode : message -> string
(** The codec payload (unframed). *)

val decode : string -> (message, string) result
(** Total: truncation, trailing bytes or a bad tag are [Error]. *)

val frame : string -> string
(** Wrap a payload in the [len][crc32] frame header.
    @raise Invalid_argument beyond {!max_frame}. *)

val frame_message : message -> string
(** [frame (encode m)]. *)

(** {2 Incremental reading} — per-connection receive state. *)

type reader

val reader : unit -> reader

val feed : reader -> bytes -> int -> unit
(** Append the first [n] bytes just read from the socket. Beyond
    {!max_buffer} unconsumed bytes the reader is poisoned (bytes are
    dropped and {!next} errors) instead of growing without bound. *)

val available : reader -> int

val take : reader -> int -> string option
(** Consume [n] raw bytes if buffered (the magic handshake). *)

val next : reader -> (string option, string) result
(** Pop one complete frame's payload. [Ok None] = need more bytes;
    [Error] = framing violation (bad length or CRC, or a poisoned
    buffer) — the caller closes the connection. Never raises. The
    length prefix is validated as soon as its 4 bytes are buffered: a
    forged huge length errors immediately, before any claimed payload
    is awaited or allocated. *)
