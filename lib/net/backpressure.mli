(** [retry_after] pricing for every REJECT class, in virtual seconds —
    the machine-readable half of admission-controlled backpressure:
    overload surfaces as a priced refusal at the door, never as queue
    growth. Conservative estimates, not guarantees. *)

val admission :
  reason:Taqp_sched.Admission.reason ->
  backlog:float ->
  queue_len:int ->
  headroom:float ->
  float
(** Price an engine admission rejection from the backlog it was priced
    against: [Queue_full] waits one expected slot
    ([backlog/queue_len]); [Infeasible {needed; available}] waits the
    slack deficit ([needed - available] seconds of drain);
    [Zero_slack] is 0 (resubmit with a live deadline). [headroom]
    scales the first two (the admission controller's own margin). *)

val quota : wait:float -> float
(** A token-bucket refusal: exactly the bucket's refill shortfall. *)

val overloaded : backlog:float -> queue_len:int -> float
(** The door's [--max-pending] memory bound: one expected slot. *)

val draining : float
(** A draining server refuses free of charge — retry against the
    replacement instance. *)
