(* The network front door: one process, one [Unix.select] event loop,
   one scheduler engine. Socket readiness and {!Taqp_sched.Engine.step}
   calls interleave on the same thread, so every job admitted over the
   wire competes on the single virtual device exactly as a batch job
   would — admission control *is* the backpressure, and overload
   surfaces as priced REJECT frames, never as unbounded queueing.

   Three doors can refuse a SUBMIT before the engine ever sees it
   (each a [Rejected { job_id = None; _ }] on the submitting
   connection): the server is draining, the connection's token bucket
   is empty, or the total pending+live depth hit [--max-pending] (a
   memory bound, deliberately far above the engine's own
   [--max-queue]). Everything else is parsed, journaled as a
   {!Sched_journal.Submitted} record, and submitted; the engine's
   admission controller rules at the job's virtual arrival, and its
   verdict is pushed as RESULT or a priced REJECT.

   Gating. [`Eager] (real serving) steps the engine whenever it has
   work. [`Drain] withholds every step until a DRAIN frame arrives, so
   a harness can first queue an entire arrival schedule (the clock
   frozen at its restore point) and then let the run execute — which
   makes a socket-driven workload bit-identical to the same job list
   pushed through [Scheduler.run], real sockets notwithstanding.

   Recovery. With [recover] records from a crashed server's journal,
   terminal jobs are answered straight from their journaled [Done]
   records (byte-identical RESULT frames — the wire embeds the
   journal's own codec) and the un-finished remainder is re-parsed
   from its [Submitted] lines and re-admitted at crash time plus
   downtime, stepping immediately ([`Drain] gating does not hold a
   recovered backlog hostage). *)

module Engine = Taqp_sched.Engine
module Scheduler = Taqp_sched.Scheduler
module Job = Taqp_sched.Job
module Admission = Taqp_sched.Admission
module Policy = Taqp_sched.Policy
module Sched_journal = Taqp_sched.Sched_journal
module Journal = Taqp_recover.Journal

let src = Logs.Src.create "taqp.net" ~doc:"socket front door"

module Log = (val Logs.src_log src : Logs.LOG)

type gate = [ `Eager | `Drain ]

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_rd : Wire.reader;
  c_bucket : Token_bucket.t;
  c_out : Buffer.t;
  mutable c_out_off : int;
  mutable c_magic : bool;
  mutable c_closing : bool;  (* flush pending output, then close *)
}

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  engine : Engine.t;
  catalog : Taqp_storage.Catalog.t;
  config : Taqp_core.Config.t;
  journal : Journal.writer option;
  gate : gate;
  max_pending : int;
  quota_capacity : float;
  quota_refill : float;
  headroom : float;
  conns : (int, conn) Hashtbl.t;
  terminal : (int, Sched_journal.done_record) Hashtbl.t;
  owner : (int, int) Hashtbl.t;  (* job id -> conn id *)
  journaled : Sched_journal.done_record list;  (* pre-crash completions *)
  crash_time : float;
  scratch : Bytes.t;
  mutable next_id : int;
  mutable next_conn : int;
  mutable gate_open : bool;
  mutable draining : bool;
  mutable engine_idle : bool;
  mutable door_rejects : int;
  mutable max_live : int;
}

type stats = {
  result : Engine.result;
  summary : Engine.summary;
      (* merged with pre-crash journal records when recovering *)
  journaled : Sched_journal.done_record list;
  max_live : int;
  door_rejects : int;
}

let send c msg = Buffer.add_string c.c_out (Wire.frame_message msg)

let close_conn t c =
  if Hashtbl.mem t.conns c.c_id then begin
    Hashtbl.remove t.conns c.c_id;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
  end

let jrecord t record =
  match t.journal with
  | None -> ()
  | Some w -> Journal.append w (Sched_journal.encode record)

(* Terminal pushes: the engine's report hook. The record lands in the
   terminal table (FETCH serves it forever after) and, when the
   submitting connection is still around, goes out as RESULT — or as a
   priced REJECT when the admission controller refused the job at its
   virtual arrival. *)
let handle_report t (r : Engine.job_report) =
  let d = Engine.to_done_record r in
  Hashtbl.replace t.terminal d.Sched_journal.d_id d;
  let msg =
    match r.Engine.outcome with
    | Engine.Rejected reason ->
        let retry_after =
          Backpressure.admission ~reason
            ~backlog:(Engine.backlog t.engine)
            ~queue_len:(Engine.live_count t.engine)
            ~headroom:t.headroom
        in
        Wire.Rejected
          {
            job_id = Some d.Sched_journal.d_id;
            reason = Admission.reason_name reason;
            retry_after;
          }
    | Engine.Completed _ | Engine.Expired -> Wire.Result d
  in
  match Hashtbl.find_opt t.owner d.Sched_journal.d_id with
  | None -> ()
  | Some cid -> (
      match Hashtbl.find_opt t.conns cid with
      | Some c when not c.c_closing -> send c msg
      | _ -> ())

let create ?policy ?admission ?params ?metrics ?tracer ?faults ?cache
    ?on_report ?(gate = (`Eager : gate)) ?(max_pending = 4096)
    ?(quota_capacity = 64.0) ?(quota_refill = 4.0) ?journal_path
    ?(recover = []) ?(downtime = 0.0) ~catalog ~config ~port () =
  let headroom =
    match admission with None -> 1.0 | Some a -> a.Admission.headroom
  in
  (* Rebuild state from a crashed server's journal: terminal records
     answer reconnecting clients verbatim; unfinished Submitted lines
     become the re-admitted backlog (absolute times — downtime expires
     what it expires). *)
  let journaled =
    List.filter_map
      (function Sched_journal.Done d -> Some d | _ -> None)
      recover
  in
  let crash_time =
    List.fold_left
      (fun acc r -> Float.max acc (Sched_journal.now_of r))
      0.0 recover
  in
  let finished_ids =
    List.map (fun (d : Sched_journal.done_record) -> d.Sched_journal.d_id)
      journaled
  in
  let backlog_jobs =
    List.filter_map
      (function
        | Sched_journal.Submitted s
          when not (List.mem s.Sched_journal.s_id finished_ids) -> (
            match
              Job.of_line ~catalog ~config ~id:s.Sched_journal.s_id
                s.Sched_journal.s_line
            with
            | Ok (Some job) -> Some job
            | Ok None | Error _ ->
                Log.warn (fun m ->
                    m "recovery: unparseable journaled job %d, dropped"
                      s.Sched_journal.s_id);
                None)
        | _ -> None)
      recover
  in
  let max_seen =
    List.fold_left
      (fun acc r ->
        match r with
        | Sched_journal.Submitted s -> Int.max acc s.Sched_journal.s_id
        | Sched_journal.Done d -> Int.max acc d.Sched_journal.d_id
        | Sched_journal.Admitted a -> Int.max acc a.a_id
        | Sched_journal.Progress p -> Int.max acc p.p_id)
      (-1) recover
  in
  let recovering = recover <> [] in
  let journal = Option.map Journal.create journal_path in
  (* Re-journal the crashed run's carried-over records into the fresh
     journal so a second crash still knows about them. *)
  (match journal with
  | Some w when recovering ->
      List.iter
        (fun r ->
          match r with
          | Sched_journal.Submitted _ | Sched_journal.Done _ ->
              Journal.append w (Sched_journal.encode r)
          | Sched_journal.Admitted _ | Sched_journal.Progress _ -> ())
        recover
  | _ -> ());
  let self = ref None in
  let on_report r =
    (match !self with Some t -> handle_report t r | None -> ());
    match on_report with None -> () | Some f -> f r
  in
  let engine =
    Engine.create ?policy ?admission ?params ?metrics ?tracer ?faults ?cache
      ?journal
      ?start_at:(if recovering then Some (crash_time +. downtime) else None)
      ~on_report backlog_jobs
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 128;
  Unix.set_nonblock listen_fd;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let terminal = Hashtbl.create 64 in
  List.iter
    (fun (d : Sched_journal.done_record) ->
      Hashtbl.replace terminal d.Sched_journal.d_id d)
    journaled;
  let t =
    {
      listen_fd;
      port;
      engine;
      catalog;
      config;
      journal;
      gate;
      max_pending;
      quota_capacity;
      quota_refill;
      headroom;
      conns = Hashtbl.create 16;
      terminal;
      owner = Hashtbl.create 64;
      journaled;
      crash_time;
      scratch = Bytes.create 8192;
      next_id = max_seen + 1;
      next_conn = 0;
      gate_open = (gate = `Eager) || recovering;
      draining = false;
      engine_idle = backlog_jobs = [];
      door_rejects = 0;
      max_live = 0;
    }
  in
  self := Some t;
  t

let port t = t.port

let hello t =
  Wire.Hello
    {
      now = Engine.now t.engine;
      max_pending = t.max_pending;
      draining = t.draining;
    }

let door_reject (t : t) c reason retry_after =
  t.door_rejects <- t.door_rejects + 1;
  send c (Wire.Rejected { job_id = None; reason; retry_after })

let handle_submit t c line =
  if t.draining then door_reject t c "draining" Backpressure.draining
  else
    let now = Engine.now t.engine in
    match Token_bucket.take c.c_bucket ~now ~cost:1.0 with
    | `Wait w -> door_reject t c "quota" (Backpressure.quota ~wait:w)
    | `Ok ->
        let depth =
          Engine.live_count t.engine + Engine.pending_count t.engine
        in
        if depth >= t.max_pending then
          door_reject t c "overloaded"
            (Backpressure.overloaded
               ~backlog:(Engine.backlog t.engine)
               ~queue_len:(Engine.live_count t.engine))
        else
          (* Wire times are offsets from the server's virtual now;
             shifting both endpoints preserves the parser's
             deadline-after-arrival invariant. *)
          let parsed =
            Job.of_line ~catalog:t.catalog ~config:t.config ~id:t.next_id
              line
          in
          (match parsed with
          | Error m -> door_reject t c ("parse: " ^ m) 0.0
          | Ok None -> door_reject t c "blank job line" 0.0
          | Ok (Some job) ->
              let job =
                {
                  job with
                  Job.arrival = now +. job.Job.arrival;
                  deadline = now +. job.Job.deadline;
                }
              in
              t.next_id <- t.next_id + 1;
              jrecord t
                (Sched_journal.Submitted
                   {
                     s_id = job.Job.id;
                     s_label = job.Job.label;
                     s_client = c.c_id;
                     s_line = Job.to_line job;
                     s_now = now;
                   });
              Hashtbl.replace t.owner job.Job.id c.c_id;
              Engine.submit t.engine job;
              t.engine_idle <- false;
              send c
                (Wire.Queued
                   {
                     job_id = job.Job.id;
                     arrival = job.Job.arrival;
                     deadline = job.Job.deadline;
                   }))

let handle_msg t c = function
  | Wire.Submit { line } -> handle_submit t c line
  | Wire.Status ->
      send c
        (Wire.Status_ok
           {
             now = Engine.now t.engine;
             live = Engine.live_count t.engine;
             pending = Engine.pending_count t.engine;
             backlog = Engine.backlog t.engine;
             terminal = Hashtbl.length t.terminal;
             draining = t.draining;
           })
  | Wire.Fetch { job_id } -> (
      match Hashtbl.find_opt t.terminal job_id with
      | Some d -> send c (Wire.Result d)
      | None ->
          let state =
            if job_id >= 0 && job_id < t.next_id then "queued" else "unknown"
          in
          send c (Wire.Pending { job_id; state }))
  | Wire.Cancel { job_id } ->
      let state =
        if Hashtbl.mem t.terminal job_id then "terminal"
        else
          match Engine.cancel t.engine ~id:job_id with
          | `Cancelled_pending ->
              Hashtbl.remove t.owner job_id;
              "pending"
          | `Killed_live -> "live"
          | `Unknown -> "unknown"
      in
      send c (Wire.Cancelled { job_id; state })
  | Wire.Drain ->
      t.draining <- true;
      t.gate_open <- true;
      t.engine_idle <- false
  | Wire.Hello _ | Wire.Queued _ | Wire.Rejected _ | Wire.Result _
  | Wire.Status_ok _ | Wire.Cancelled _ | Wire.Pending _ | Wire.Drain_done _
  | Wire.Error _ ->
      (* server-to-client tags have no business arriving here *)
      send c (Wire.Error { message = "unexpected message" });
      c.c_closing <- true

let protocol_error t c reason =
  ignore t;
  Log.debug (fun m -> m "conn %d: %s, closing" c.c_id reason);
  send c (Wire.Error { message = reason });
  c.c_closing <- true

(* The first bad frame closes the connection; a well-formed frame that
   decodes to garbage does too. Never an exception: framing and codec
   errors all funnel into [protocol_error]. *)
let process_input t c =
  if not c.c_magic then
    if Wire.available c.c_rd >= String.length Wire.magic then begin
      match Wire.take c.c_rd (String.length Wire.magic) with
      | Some m when String.equal m Wire.magic ->
          c.c_magic <- true;
          send c (hello t)
      | _ -> close_conn t c
    end;
  if c.c_magic && not c.c_closing then
    let rec go () =
      match Wire.next c.c_rd with
      | Ok None -> ()
      | Ok (Some payload) -> (
          match Wire.decode payload with
          | Ok msg ->
              handle_msg t c msg;
              if not c.c_closing then go ()
          | Error e -> protocol_error t c e)
      | Result.Error e -> protocol_error t c e
    in
    go ()

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _addr ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let c =
          {
            c_id = t.next_conn;
            c_fd = fd;
            c_rd = Wire.reader ();
            c_bucket =
              Token_bucket.create ~capacity:t.quota_capacity
                ~refill:t.quota_refill ~now:(Engine.now t.engine);
            c_out = Buffer.create 256;
            c_out_off = 0;
            c_magic = false;
            c_closing = false;
          }
        in
        t.next_conn <- t.next_conn + 1;
        Hashtbl.replace t.conns c.c_id c;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_ready t c =
  match Unix.read c.c_fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> close_conn t c
  | n ->
      Wire.feed c.c_rd t.scratch n;
      process_input t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t c

let flush_conn t c =
  let len = Buffer.length c.c_out in
  if len > c.c_out_off then begin
    let s = Buffer.contents c.c_out in
    match Unix.write_substring c.c_fd s c.c_out_off (len - c.c_out_off) with
    | n ->
        c.c_out_off <- c.c_out_off + n;
        if c.c_out_off = Buffer.length c.c_out then begin
          Buffer.clear c.c_out;
          c.c_out_off <- 0
        end
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        close_conn t c
  end;
  if c.c_closing && Buffer.length c.c_out = c.c_out_off then close_conn t c

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let step_engine t =
  if t.gate_open && not t.engine_idle then begin
    let budget = ref 256 in
    let continue = ref true in
    while !continue && !budget > 0 do
      decr budget;
      match Engine.step t.engine with
      | `Idle ->
          t.engine_idle <- true;
          continue := false
      | `Progress ->
          t.max_live <- Int.max t.max_live (Engine.live_count t.engine)
    done
  end

let finalize t =
  let result = Engine.finish t.engine in
  let summary =
    if t.journaled = [] then result.Engine.summary
    else
      Scheduler.merge_journaled result.Engine.summary
        ~run_reports:result.Engine.reports t.journaled
        ~crash_time:t.crash_time
  in
  List.iter
    (fun c -> if not c.c_closing then send c (Wire.Drain_done summary))
    (conn_list t);
  (* Best-effort flush of the goodbyes, then hang up. *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec flush_all () =
    let waiting =
      List.filter
        (fun c -> Buffer.length c.c_out > c.c_out_off)
        (conn_list t)
    in
    if waiting <> [] && Unix.gettimeofday () < deadline then begin
      (match
         Unix.select [] (List.map (fun c -> c.c_fd) waiting) [] 0.05
       with
      | _, ws, _ ->
          List.iter
            (fun c -> if List.mem c.c_fd ws then flush_conn t c)
            waiting
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      flush_all ()
    end
  in
  flush_all ();
  List.iter (fun c -> close_conn t c) (conn_list t);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter Journal.close t.journal;
  {
    result;
    summary;
    journaled = t.journaled;
    max_live = t.max_live;
    door_rejects = t.door_rejects;
  }

(* Abrupt teardown after a propagated crash fault: in-process harnesses
   (tests, benches running the server on a domain) must close the fds a
   dead server leaves behind, or its clients block forever — a real
   process crash gets this from the kernel for free. *)
let shutdown t =
  List.iter (fun c -> close_conn t c) (conn_list t);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter (fun w -> try Journal.close w with _ -> ()) t.journal

(* Run until drained: a DRAIN frame (from any client — it is an
   administrative verb) stops admission, the backlog runs dry, every
   connection gets a DRAIN_DONE carrying the final summary, and the
   accounting comes back to the caller. Crash faults
   ({!Taqp_fault.Injector.Crashed}) propagate — the journal is already
   flushed per record, which is the point. *)
let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec loop () =
    if t.draining && t.gate_open && t.engine_idle then finalize t
    else begin
      let conns = conn_list t in
      let rfds =
        t.listen_fd
        :: List.filter_map
             (fun c -> if c.c_closing then None else Some c.c_fd)
             conns
      in
      let wfds =
        List.filter_map
          (fun c ->
            if Buffer.length c.c_out > c.c_out_off then Some c.c_fd else None)
          conns
      in
      let timeout = if t.gate_open && not t.engine_idle then 0.0 else 0.2 in
      let rs, ws =
        match Unix.select rfds wfds [] timeout with
        | rs, ws, _ -> (rs, ws)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      in
      if List.mem t.listen_fd rs then accept_ready t;
      List.iter (fun c -> if List.mem c.c_fd rs then read_ready t c) conns;
      step_engine t;
      ignore ws;
      List.iter
        (fun c ->
          if
            Hashtbl.mem t.conns c.c_id
            && Buffer.length c.c_out > c.c_out_off
          then flush_conn t c)
        conns;
      loop ()
    end
  in
  loop ()
