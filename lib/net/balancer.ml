(* taqp_ha: the replicated serving tier. A TAQPNET1-speaking balancer
   fronts N backends, routing each SUBMIT by least-priced-backlog (the
   same {!Backpressure.overloaded} price an overloaded door would
   quote), health-checking backends with deadline-bounded STATUS
   probes ({!Health}) and wrapping each in a closed/open/half-open
   circuit breaker cooled down in virtual time ({!Breaker}).

   On backend death the balancer migrates the dead backend's
   unfinished jobs to survivors via the per-backend scheduler journal,
   with {!Taqp_sched.Scheduler.recover} semantics: terminal [Done]
   records are replayed as verbatim RESULT frames — byte-identical to
   the live pushes, because the wire embeds the journal's own codec —
   and unfinished [Submitted] lines are re-admitted at crash time plus
   downtime with their absolute deadlines intact (downtime expires
   what it expires). Everything is deduped by job id: the first
   terminal record for an id wins and later arrivals (replays, races)
   are dropped, so a client never sees two terminals for one job.

   Two modes share this file:

   - {!Cluster} — N in-process {!Taqp_sched.Engine}s on synchronized
     virtual clocks. Fully deterministic (no sockets, no wall time):
     the bit-exact anchor mode. A 1-backend cluster performs the exact
     same engine operation sequence as [Scheduler.run] on the same job
     list, so its reports and summary are byte-identical to a direct
     serve — the acceptance anchor bench --ha pins.

   - {!Proxy} — a real [Unix.select] event loop fronting N backend
     *processes* over TAQPNET1 ([taqp balance]). The proxy is
     catalog-free: it never parses a job line, it forwards SUBMIT
     frames verbatim and rewrites only job ids (backends number their
     own jobs from 0; the proxy owns the global id space).

   See docs/HA.md for the full design narrative. *)

module Engine = Taqp_sched.Engine
module Job = Taqp_sched.Job
module Admission = Taqp_sched.Admission
module Policy = Taqp_sched.Policy
module Sched_journal = Taqp_sched.Sched_journal
module Journal = Taqp_recover.Journal

let src = Logs.Src.create "taqp.ha" ~doc:"replicated serving tier"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Cluster-level accounting over terminal records.

   Rebuilds an {!Engine.summary} from done records alone — what a
   balancer has when its backends' engines are spread over processes.
   Field by field this mirrors [Engine.finish] (same fold orders over
   id-sorted records, same percentile helper, same divisions), so for
   records that all came from one engine the result is bit-identical
   to that engine's own summary — the 1-backend anchor. Synthesized
   ["lost"] records (a dead backend's unmigrated jobs) count like
   expirations: admitted, missed, no service. *)

let is_rejected (d : Sched_journal.done_record) =
  String.equal d.Sched_journal.d_outcome "rejected"

let is_expired (d : Sched_journal.done_record) =
  String.equal d.Sched_journal.d_outcome "expired"
  || String.equal d.Sched_journal.d_outcome "lost"

let summarize ~makespan (records : Sched_journal.done_record list) :
    Engine.summary =
  let records =
    List.stable_sort
      (fun (a : Sched_journal.done_record) b ->
        compare a.Sched_journal.d_id b.Sched_journal.d_id)
      records
  in
  let count f = List.length (List.filter f records) in
  let admitted =
    List.filter (fun (d : Sched_journal.done_record) -> d.d_admitted) records
  in
  let late =
    List.map
      (fun (d : Sched_journal.done_record) -> Float.max 0.0 d.d_lateness)
      admitted
    |> List.sort compare |> Array.of_list
  in
  let waits = List.map (fun (d : Sched_journal.done_record) -> d.d_queue_wait) admitted in
  let missed = count (fun (d : Sched_journal.done_record) -> d.d_missed) in
  {
    submitted = List.length records;
    admitted = List.length admitted;
    degraded = count (fun (d : Sched_journal.done_record) -> d.d_degraded);
    rejected = count is_rejected;
    expired = count is_expired;
    completed = count (fun d -> not (is_rejected d) && not (is_expired d));
    missed;
    miss_rate =
      (if records = [] then 0.0
       else float_of_int missed /. float_of_int (List.length records));
    lateness_p50 = Engine.percentile late 0.50;
    lateness_p99 = Engine.percentile late 0.99;
    lateness_p999 = Engine.percentile late 0.999;
    max_lateness = (if late = [||] then 0.0 else late.(Array.length late - 1));
    mean_queue_wait =
      (match waits with
      | [] -> 0.0
      | ws -> List.fold_left ( +. ) 0.0 ws /. float_of_int (List.length ws));
    makespan;
    busy_time =
      List.fold_left
        (fun acc (d : Sched_journal.done_record) -> acc +. d.d_service)
        0.0 records;
    preemptions =
      List.fold_left
        (fun acc (d : Sched_journal.done_record) -> acc + d.d_preemptions)
        0 records;
  }

(* A dead backend's job that reached no survivor: terminal by fiat.
   Admitted and missed (the client got no in-deadline answer), zero
   service — the honest books for work a crash swallowed. *)
let lost_record ~id ~label ~now : Sched_journal.done_record =
  {
    d_id = id;
    d_label = label;
    d_outcome = "lost";
    d_admitted = true;
    d_degraded = false;
    d_missed = true;
    d_lateness = 0.0;
    d_queue_wait = 0.0;
    d_finished_at = now;
    d_service = 0.0;
    d_steps = 0;
    d_preemptions = 0;
    d_estimate = None;
    d_now = now;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic in-process mode. *)

module Cluster = struct
  type backend = {
    b_index : int;
    b_engine : Engine.t;
    b_journal : Journal.writer;
    b_path : string;
    b_breaker : Breaker.t;
    mutable b_alive : bool;
    mutable b_crashed_at : float;
    mutable b_submitted : int;
    mutable b_migrated_in : int;
  }

  type outcome = {
    o_summary : Engine.summary;
    o_records : Sched_journal.done_record list;  (** id order *)
    o_results : (int * Engine.result) list;  (** surviving backends *)
    o_replays : (int * bool) list;
        (** journal-replayed terminal ids and whether the replayed
            RESULT frame was byte-identical to the live push *)
    o_routed : (int * int) list;  (** job id -> final backend *)
    o_migrated : int;
    o_lost : int;
    o_door_rejects : int;
  }

  type t = {
    catalog : Taqp_storage.Catalog.t;
    config : Taqp_core.Config.t;
    backends : backend array;
    terminal : (int, Sched_journal.done_record) Hashtbl.t;
    frames : (int, string) Hashtbl.t;  (* gid -> live terminal frame *)
    mutable next_id : int;
    mutable routed : (int * int) list;  (* reversed *)
    mutable replays : (int * bool) list;  (* reversed *)
    mutable migrated : int;
    mutable lost : int;
    mutable door_rejects : int;
    mutable finished : bool;
  }

  (* The terminal table is the dedupe rule: first record for an id
     wins, later arrivals are dropped. The frame stored alongside is
     the canonical wire bytes a client was (or would be) pushed. *)
  let push t (d : Sched_journal.done_record) =
    if not (Hashtbl.mem t.terminal d.Sched_journal.d_id) then begin
      Hashtbl.replace t.terminal d.Sched_journal.d_id d;
      Hashtbl.replace t.frames d.Sched_journal.d_id
        (Wire.frame_message (Wire.Result d))
    end

  let create ?policy ?admission ?(breaker = fun () -> Breaker.create ())
      ~dir ~backends:n ~catalog ~config () =
    if n < 1 then invalid_arg "Cluster.create: backends < 1";
    let self = ref None in
    let on_report r =
      match !self with
      | Some t -> push t (Engine.to_done_record r)
      | None -> ()
    in
    let backends =
      Array.init n (fun i ->
          let path =
            Filename.concat dir (Printf.sprintf "backend-%d.journal" i)
          in
          let journal = Journal.create path in
          {
            b_index = i;
            b_engine =
              Engine.create ?policy ?admission ~journal ~on_report [];
            b_journal = journal;
            b_path = path;
            b_breaker = breaker ();
            b_alive = true;
            b_crashed_at = 0.0;
            b_submitted = 0;
            b_migrated_in = 0;
          })
    in
    let t =
      {
        catalog;
        config;
        backends;
        terminal = Hashtbl.create 64;
        frames = Hashtbl.create 64;
        next_id = 0;
        routed = [];
        replays = [];
        migrated = 0;
        lost = 0;
        door_rejects = 0;
        finished = false;
      }
    in
    self := Some t;
    t

  (* The tier's virtual now: the max across backends (a dead backend
     contributes the instant it crashed at). Idle engines lag — their
     clocks only move under work — so submissions are stamped against
     this cluster now and lagging engines sleep forward to it. *)
  let now t =
    Array.fold_left
      (fun acc b ->
        Float.max acc
          (if b.b_alive then Engine.now b.b_engine else b.b_crashed_at))
      0.0 t.backends

  let alive t i = t.backends.(i).b_alive
  let backend_now t i = Engine.now t.backends.(i).b_engine

  (* Least-priced-backlog routing: prefer closed breakers over
     half-open (trial traffic), then the smallest overload price —
     the retry_after an overloaded door would quote — then the
     shallowest queue, then the lowest index. *)
  let route t ~vnow =
    let rank b =
      match Breaker.state b.b_breaker ~now:vnow with
      | Breaker.Open -> None
      | (Breaker.Closed | Breaker.Half_open) as st ->
          if not b.b_alive then None
          else
            Some
              ( (match st with Breaker.Closed -> 0 | _ -> 1),
                Backpressure.overloaded
                  ~backlog:(Engine.backlog b.b_engine)
                  ~queue_len:(Engine.live_count b.b_engine),
                Engine.live_count b.b_engine + Engine.pending_count b.b_engine,
                b.b_index )
    in
    Array.to_list t.backends
    |> List.filter_map (fun b -> Option.map (fun k -> (k, b)) (rank b))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> function
    | [] -> None
    | (_, b) :: _ -> Some b

  let unavailable_price t ~vnow =
    Array.fold_left
      (fun acc b ->
        if b.b_alive then
          Float.min acc (Breaker.retry_after b.b_breaker ~now:vnow)
        else acc)
      infinity t.backends
    |> fun p -> if Float.is_finite p then p else 0.0

  (* One SUBMIT: parse (the cluster is its own door), route, stamp the
     wire offsets against cluster now, journal the door-level
     [Submitted] line — an uncharged append, mirroring the socket
     server's door journaling — then hand it to the engine. *)
  let submit t line =
    if t.finished then invalid_arg "Cluster.submit: already drained";
    match
      Job.of_line ~catalog:t.catalog ~config:t.config ~id:t.next_id line
    with
    | Error m ->
        t.door_rejects <- t.door_rejects + 1;
        `Rejected ("parse: " ^ m, 0.0)
    | Ok None ->
        t.door_rejects <- t.door_rejects + 1;
        `Rejected ("blank job line", 0.0)
    | Ok (Some job) -> (
        let vnow = now t in
        match route t ~vnow with
        | None ->
            t.door_rejects <- t.door_rejects + 1;
            `Rejected ("unavailable", unavailable_price t ~vnow)
        | Some b ->
            let job =
              {
                job with
                Job.arrival = vnow +. job.Job.arrival;
                deadline = vnow +. job.Job.deadline;
              }
            in
            t.next_id <- t.next_id + 1;
            Journal.append b.b_journal
              (Sched_journal.encode
                 (Sched_journal.Submitted
                    {
                      s_id = job.Job.id;
                      s_label = job.Job.label;
                      s_client = b.b_index;
                      s_line = Job.to_line job;
                      s_now = Engine.now b.b_engine;
                    }));
            Engine.submit b.b_engine job;
            b.b_submitted <- b.b_submitted + 1;
            t.routed <- (job.Job.id, b.b_index) :: t.routed;
            `Queued (job.Job.id, b.b_index))

  (* Step the least-advanced live engine first, repeatedly — a
     deterministic interleaving that keeps the backends' clocks
     loosely synchronized (an engine may overshoot [upto] by one
     atomic stage; that is scheduler time, not an error). *)
  let advance t ~upto =
    let steppable b =
      b.b_alive
      && Engine.now b.b_engine < upto
      && (Engine.live_count b.b_engine > 0
         || Engine.pending_count b.b_engine > 0)
    in
    let rec go () =
      let best =
        Array.fold_left
          (fun acc b ->
            if not (steppable b) then acc
            else
              match acc with
              | Some best
                when (Engine.now best.b_engine, best.b_index)
                     <= (Engine.now b.b_engine, b.b_index) ->
                  acc
              | _ -> Some b)
          None t.backends
      in
      match best with
      | None -> ()
      | Some b ->
          ignore (Engine.step b.b_engine);
          go ()
    in
    go ()

  (* Migrate one unfinished journaled line to a survivor: re-parse the
     absolute-times line, push its arrival to crash + downtime
     (deadline untouched — downtime expires what it expires), journal
     it at the survivor's door and submit. *)
  let migrate t ~crash_now ~downtime (s : Sched_journal.submitted_record) =
    match
      Job.of_line ~catalog:t.catalog ~config:t.config ~id:s.Sched_journal.s_id
        s.Sched_journal.s_line
    with
    | Error _ | Ok None ->
        push t
          (lost_record ~id:s.Sched_journal.s_id ~label:s.Sched_journal.s_label
             ~now:crash_now);
        t.lost <- t.lost + 1
    | Ok (Some job) -> (
        let job =
          {
            job with
            Job.arrival = Float.max job.Job.arrival (crash_now +. downtime);
          }
        in
        match route t ~vnow:(now t) with
        | None ->
            push t
              (lost_record ~id:job.Job.id ~label:job.Job.label ~now:crash_now);
            t.lost <- t.lost + 1
        | Some b ->
            Journal.append b.b_journal
              (Sched_journal.encode
                 (Sched_journal.Submitted
                    {
                      s_id = job.Job.id;
                      s_label = job.Job.label;
                      s_client = b.b_index;
                      s_line = Job.to_line job;
                      s_now = Engine.now b.b_engine;
                    }));
            Engine.submit b.b_engine job;
            b.b_migrated_in <- b.b_migrated_in + 1;
            t.migrated <- t.migrated + 1;
            t.routed <- (job.Job.id, b.b_index) :: t.routed)

  (* Kill a backend abruptly. Its engine is abandoned mid-flight (jobs
     and all); recovery works purely from its journal, exactly as a
     process crash would force: close the writer, load the file back,
     replay terminal [Done] records (byte-compared against the live
     pushes — the replay-identity guarantee), then either migrate or
     write off the unfinished remainder. *)
  let kill t ~backend:i ?(downtime = 0.0) ~failover () =
    let b = t.backends.(i) in
    if not b.b_alive then invalid_arg "Cluster.kill: backend already dead";
    let crash_now = now t in
    b.b_alive <- false;
    b.b_crashed_at <- Engine.now b.b_engine;
    Breaker.force_open b.b_breaker ~now:crash_now;
    Journal.close b.b_journal;
    let records =
      match Sched_journal.load b.b_path with
      | Ok l ->
          (match l.Sched_journal.torn with
          | Some reason ->
              Log.warn (fun m -> m "backend %d journal torn: %s" i reason)
          | None -> ());
          l.Sched_journal.records
      | Error e ->
          Log.err (fun m -> m "backend %d journal unreadable: %s" i e);
          []
    in
    let done_ids = Hashtbl.create 32 in
    List.iter
      (function
        | Sched_journal.Done d ->
            Hashtbl.replace done_ids d.Sched_journal.d_id ();
            let frame = Wire.frame_message (Wire.Result d) in
            let identical =
              match Hashtbl.find_opt t.frames d.Sched_journal.d_id with
              | Some live -> String.equal live frame
              | None ->
                  (* the live push never made it out — the replay fills
                     the gap, trivially identical to itself *)
                  push t d;
                  true
            in
            t.replays <- (d.Sched_journal.d_id, identical) :: t.replays
        | _ -> ())
      records;
    List.iter
      (function
        | Sched_journal.Submitted s
          when (not (Hashtbl.mem done_ids s.Sched_journal.s_id))
               && not (Hashtbl.mem t.terminal s.Sched_journal.s_id) ->
            if failover then migrate t ~crash_now ~downtime s
            else begin
              push t
                (lost_record ~id:s.Sched_journal.s_id
                   ~label:s.Sched_journal.s_label ~now:crash_now);
              t.lost <- t.lost + 1
            end
        | _ -> ())
      records

  let frame t ~id = Hashtbl.find_opt t.frames id

  let drain t =
    if t.finished then invalid_arg "Cluster.drain: already drained";
    t.finished <- true;
    let has_work b =
      b.b_alive
      && (Engine.live_count b.b_engine > 0
         || Engine.pending_count b.b_engine > 0)
    in
    let rec go () =
      let best =
        Array.fold_left
          (fun acc b ->
            if not (has_work b) then acc
            else
              match acc with
              | Some best
                when (Engine.now best.b_engine, best.b_index)
                     <= (Engine.now b.b_engine, b.b_index) ->
                  acc
              | _ -> Some b)
          None t.backends
      in
      match best with
      | None -> ()
      | Some b ->
          ignore (Engine.step b.b_engine);
          go ()
    in
    go ();
    let results =
      Array.to_list t.backends
      |> List.filter_map (fun b ->
             if b.b_alive then begin
               let r = Engine.finish b.b_engine in
               Journal.close b.b_journal;
               Some (b.b_index, r)
             end
             else None)
    in
    let makespan =
      Array.fold_left
        (fun acc b ->
          Float.max acc
            (if b.b_alive then
               match List.assoc_opt b.b_index results with
               | Some r -> r.Engine.summary.Engine.makespan
               | None -> 0.0
             else b.b_crashed_at))
        0.0 t.backends
    in
    let records =
      Hashtbl.fold (fun _ d acc -> d :: acc) t.terminal []
      |> List.sort (fun (a : Sched_journal.done_record) b ->
             compare a.Sched_journal.d_id b.Sched_journal.d_id)
    in
    {
      o_summary = summarize ~makespan records;
      o_records = records;
      o_results = results;
      o_replays = List.rev t.replays;
      o_routed = List.rev t.routed;
      o_migrated = t.migrated;
      o_lost = t.lost;
      o_door_rejects = t.door_rejects;
    }
end

(* ------------------------------------------------------------------ *)
(* Multi-process mode: a select-loop proxy over N backend server
   processes. *)

module Proxy = struct
  type backend_spec = {
    bs_port : int;
    bs_journal : string option;
        (** the backend's own [--journal] path, read back on death to
            migrate its unfinished jobs; [None] = no migration *)
  }

  (* One live backend connection. [k_pending] correlates forwarded
     SUBMITs with their synchronous QUEUED / door-REJECT replies in
     FIFO order ([None] = a migration resubmit, no client to tell);
     [k_cancels] does the same for CANCEL. [k_local] maps the
     backend's own job ids (each backend numbers from 0) to the
     proxy's global ids. *)
  type bstate = {
    k_index : int;
    k_spec : backend_spec;
    k_fd : Unix.file_descr;
    k_rd : Wire.reader;
    k_out : Buffer.t;
    mutable k_out_off : int;
    k_health : Health.t;
    k_pending : (int option * int) Queue.t;  (* conn id option, gid *)
    k_cancels : (int * int * int) Queue.t;  (* local, gid, conn id *)
    k_local : (int, int) Hashtbl.t;  (* backend-local id -> gid *)
    mutable k_now : float;
    mutable k_hello : bool;
    mutable k_max_pending : int;
    mutable k_summary : Engine.summary option;  (* its DRAIN_DONE *)
    mutable k_dead : bool;
  }

  type conn = {
    c_id : int;
    c_fd : Unix.file_descr;
    c_rd : Wire.reader;
    c_out : Buffer.t;
    mutable c_out_off : int;
    mutable c_magic : bool;
    mutable c_closing : bool;
  }

  type entry = {
    mutable j_conn : int option;  (* owner connection, if still around *)
    mutable j_backend : int;
    mutable j_local : int option;  (* backend-local id once QUEUED *)
  }

  type t = {
    listen_fd : Unix.file_descr;
    port : int;
    backends : bstate array;
    failover : bool;
    downtime : float;
    conns : (int, conn) Hashtbl.t;
    jobs : (int, entry) Hashtbl.t;  (* gid -> routing entry *)
    terminal : (int, Sched_journal.done_record) Hashtbl.t;  (* by gid *)
    notified : (int, unit) Hashtbl.t;
        (* gids whose terminal verdict already reached the client as an
           admission REJECT — the bookkeeping RESULT must not re-push *)
    scratch : Bytes.t;
    mutable next_gid : int;
    mutable next_conn : int;
    mutable draining : bool;
    mutable submitted : int;
    mutable door_rejects : int;
    mutable deaths : int;
    mutable migrated : int;
    mutable replayed : int;
    mutable lost : int;
  }

  type stats = {
    p_summary : Engine.summary;
    p_records : Sched_journal.done_record list;  (* gid order *)
    p_submitted : int;
    p_door_rejects : int;
    p_deaths : int;
    p_migrated : int;
    p_replayed : int;
    p_lost : int;
  }

  let send c msg = Buffer.add_string c.c_out (Wire.frame_message msg)
  let bsend b msg = Buffer.add_string b.k_out (Wire.frame_message msg)

  (* The tier's virtual now: the max reported instant across backends
     (dead ones keep their last report). Breakers cool against this. *)
  let vnow t =
    Array.fold_left (fun acc b -> Float.max acc b.k_now) 0.0 t.backends

  let close_conn t c =
    if Hashtbl.mem t.conns c.c_id then begin
      Hashtbl.remove t.conns c.c_id;
      (try Unix.close c.c_fd with Unix.Unix_error _ -> ())
    end

  let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

  let connect_backend ~index (spec : backend_spec) =
    let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, spec.bs_port) in
    let rec dial attempt =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd addr with
      | () -> fd
      | exception
          Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _)
        when attempt < 50 ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.1;
          dial (attempt + 1)
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    let fd = dial 0 in
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let rec write_all s off =
      if off < String.length s then
        write_all s (off + Unix.write_substring fd s off (String.length s - off))
    in
    write_all Wire.magic 0;
    Unix.set_nonblock fd;
    {
      k_index = index;
      k_spec = spec;
      k_fd = fd;
      k_rd = Wire.reader ();
      k_out = Buffer.create 256;
      k_out_off = 0;
      k_health = Health.create ();
      k_pending = Queue.create ();
      k_cancels = Queue.create ();
      k_local = Hashtbl.create 64;
      k_now = 0.0;
      k_hello = false;
      k_max_pending = 0;
      k_summary = None;
      k_dead = false;
    }

  let create ?(failover = true) ?(downtime = 0.0) ~port ~backends () =
    if backends = [] then invalid_arg "Proxy.create: no backends";
    let backends =
      Array.of_list (List.mapi (fun i s -> connect_backend ~index:i s) backends)
    in
    let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
    Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen listen_fd 128;
    Unix.set_nonblock listen_fd;
    let port =
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    {
      listen_fd;
      port;
      backends;
      failover;
      downtime;
      conns = Hashtbl.create 16;
      jobs = Hashtbl.create 64;
      terminal = Hashtbl.create 64;
      notified = Hashtbl.create 16;
      scratch = Bytes.create 8192;
      next_gid = 0;
      next_conn = 0;
      draining = false;
      submitted = 0;
      door_rejects = 0;
      deaths = 0;
      migrated = 0;
      replayed = 0;
      lost = 0;
    }

  let port t = t.port

  let routable t b =
    (not b.k_dead) && b.k_summary = None && b.k_hello
    && Breaker.state (Health.breaker b.k_health) ~now:(vnow t) <> Breaker.Open

  (* Least-priced-backlog, same ranking as the cluster: closed
     breakers before half-open trials, then the smallest overload
     price from the last health snapshot, then the shallowest queue
     (counting our own in-flight submits), then the lowest index. *)
  let route t =
    Array.to_list t.backends
    |> List.filter_map (fun b ->
           if not (routable t b) then None
           else
             let st =
               Breaker.state (Health.breaker b.k_health) ~now:(vnow t)
             in
             Some
               ( ( (match st with Breaker.Closed -> 0 | _ -> 1),
                   Health.cost b.k_health,
                   Health.depth b.k_health + Queue.length b.k_pending,
                   b.k_index ),
                 b ))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> function
    | [] -> None
    | (_, b) :: _ -> Some b

  let unavailable_price t =
    let now = vnow t in
    Array.fold_left
      (fun acc b ->
        if b.k_dead || b.k_summary <> None then acc
        else
          Float.min acc (Breaker.retry_after (Health.breaker b.k_health) ~now))
      infinity t.backends
    |> fun p -> if Float.is_finite p then p else 0.0

  let door_reject t c reason retry_after =
    t.door_rejects <- t.door_rejects + 1;
    send c (Wire.Rejected { job_id = None; reason; retry_after })

  let push_lost t gid ~label =
    if not (Hashtbl.mem t.terminal gid) then begin
      let d = lost_record ~id:gid ~label ~now:(vnow t) in
      Hashtbl.replace t.terminal gid d;
      t.lost <- t.lost + 1;
      (match Hashtbl.find_opt t.jobs gid with
      | Some { j_conn = Some cid; _ } -> (
          match Hashtbl.find_opt t.conns cid with
          | Some c when not c.c_closing ->
              if not (Hashtbl.mem t.notified gid) then send c (Wire.Result d)
          | _ -> ())
      | _ -> ())
    end

  (* --- client-facing handling (mirrors Server.handle_msg) --------- *)

  let handle_submit t c line =
    if t.draining then door_reject t c "draining" Backpressure.draining
    else
      match route t with
      | None -> door_reject t c "unavailable" (unavailable_price t)
      | Some b ->
          let gid = t.next_gid in
          t.next_gid <- gid + 1;
          t.submitted <- t.submitted + 1;
          Hashtbl.replace t.jobs gid
            { j_conn = Some c.c_id; j_backend = b.k_index; j_local = None };
          Queue.add (Some c.c_id, gid) b.k_pending;
          bsend b (Wire.Submit { line })

  let status_reply t =
    let live = ref 0 and pending = ref 0 and backlog = ref 0.0 in
    Array.iter
      (fun b ->
        if (not b.k_dead) && b.k_summary = None then begin
          (match Health.snapshot b.k_health with
          | Some s ->
              live := !live + s.Health.sn_live;
              pending := !pending + s.Health.sn_pending;
              backlog := !backlog +. s.Health.sn_backlog
          | None -> ());
          pending := !pending + Queue.length b.k_pending
        end)
      t.backends;
    Wire.Status_ok
      {
        now = vnow t;
        live = !live;
        pending = !pending;
        backlog = !backlog;
        terminal = Hashtbl.length t.terminal;
        draining = t.draining;
      }

  let handle_msg t c = function
    | Wire.Submit { line } -> handle_submit t c line
    | Wire.Status -> send c (status_reply t)
    | Wire.Fetch { job_id } -> (
        match Hashtbl.find_opt t.terminal job_id with
        | Some d -> send c (Wire.Result d)
        | None ->
            let state =
              if job_id >= 0 && job_id < t.next_gid then "queued"
              else "unknown"
            in
            send c (Wire.Pending { job_id; state }))
    | Wire.Cancel { job_id } -> (
        if Hashtbl.mem t.terminal job_id then
          send c (Wire.Cancelled { job_id; state = "terminal" })
        else
          match Hashtbl.find_opt t.jobs job_id with
          | Some { j_local = Some local; j_backend; _ }
            when not t.backends.(j_backend).k_dead ->
              let b = t.backends.(j_backend) in
              Queue.add (local, job_id, c.c_id) b.k_cancels;
              bsend b (Wire.Cancel { job_id = local })
          | Some { j_local = None; _ } ->
              (* the forwarded SUBMIT has not been acknowledged yet —
                 nothing to address a cancel at *)
              send c (Wire.Cancelled { job_id; state = "pending" })
          | _ -> send c (Wire.Cancelled { job_id; state = "unknown" }))
    | Wire.Drain ->
        t.draining <- true;
        Array.iter
          (fun b ->
            if (not b.k_dead) && b.k_summary = None then bsend b Wire.Drain)
          t.backends
    | Wire.Hello _ | Wire.Queued _ | Wire.Rejected _ | Wire.Result _
    | Wire.Status_ok _ | Wire.Cancelled _ | Wire.Pending _ | Wire.Drain_done _
    | Wire.Error _ ->
        send c (Wire.Error { message = "unexpected message" });
        c.c_closing <- true

  let hello t =
    Wire.Hello
      {
        now = vnow t;
        max_pending =
          Array.fold_left (fun acc b -> acc + b.k_max_pending) 0 t.backends;
        draining = t.draining;
      }

  let protocol_error t c reason =
    ignore t;
    Log.debug (fun m -> m "conn %d: %s, closing" c.c_id reason);
    send c (Wire.Error { message = reason });
    c.c_closing <- true

  let process_input t c =
    if not c.c_magic then
      if Wire.available c.c_rd >= String.length Wire.magic then begin
        match Wire.take c.c_rd (String.length Wire.magic) with
        | Some m when String.equal m Wire.magic ->
            c.c_magic <- true;
            send c (hello t)
        | _ -> close_conn t c
      end;
    if c.c_magic && not c.c_closing then
      let rec go () =
        match Wire.next c.c_rd with
        | Ok None -> ()
        | Ok (Some payload) -> (
            match Wire.decode payload with
            | Ok msg ->
                handle_msg t c msg;
                if not c.c_closing then go ()
            | Error e -> protocol_error t c e)
        | Result.Error e -> protocol_error t c e
      in
      go ()

  (* --- backend-facing handling ------------------------------------ *)

  let owner_conn t gid =
    match Hashtbl.find_opt t.jobs gid with
    | Some { j_conn = Some cid; _ } -> (
        match Hashtbl.find_opt t.conns cid with
        | Some c when not c.c_closing -> Some c
        | _ -> None)
    | _ -> None

  (* A terminal record for [gid] (live push, fetched reject record, or
     journal replay): first one wins, later arrivals are dropped — the
     dedupe rule that keeps a migrated-then-replayed job from ever
     answering twice. *)
  let push_terminal t gid (d : Sched_journal.done_record) =
    if not (Hashtbl.mem t.terminal gid) then begin
      let d = { d with Sched_journal.d_id = gid } in
      Hashtbl.replace t.terminal gid d;
      (match owner_conn t gid with
      | Some c when not (Hashtbl.mem t.notified gid) ->
          send c (Wire.Result d)
      | _ -> ());
      true
    end
    else false

  let handle_backend_msg t b = function
    | Wire.Hello { now; max_pending; _ } ->
        b.k_hello <- true;
        b.k_now <- Float.max b.k_now now;
        b.k_max_pending <- max_pending
    | Wire.Status_ok { now; live; pending; backlog; _ } ->
        b.k_now <- Float.max b.k_now now;
        Health.observe b.k_health ~now:(vnow t)
          ~snapshot:
            {
              Health.sn_now = now;
              sn_live = live;
              sn_pending = pending;
              sn_backlog = backlog;
            }
    | Wire.Queued { job_id = local; arrival; deadline } -> (
        match Queue.take_opt b.k_pending with
        | None -> Log.warn (fun m -> m "backend %d: orphan QUEUED" b.k_index)
        | Some (conn_opt, gid) ->
            Hashtbl.replace b.k_local local gid;
            (match Hashtbl.find_opt t.jobs gid with
            | Some e -> e.j_local <- Some local
            | None -> ());
            (match conn_opt with
            | Some cid -> (
                match Hashtbl.find_opt t.conns cid with
                | Some c when not c.c_closing ->
                    send c (Wire.Queued { job_id = gid; arrival; deadline })
                | _ -> ())
            | None -> ()))
    | Wire.Rejected { job_id = None; reason; retry_after } -> (
        (* the backend's own door refused our forwarded SUBMIT *)
        match Queue.take_opt b.k_pending with
        | None ->
            Log.warn (fun m -> m "backend %d: orphan door REJECT" b.k_index)
        | Some (conn_opt, gid) -> (
            match conn_opt with
            | Some cid ->
                Hashtbl.remove t.jobs gid;
                t.door_rejects <- t.door_rejects + 1;
                (match Hashtbl.find_opt t.conns cid with
                | Some c when not c.c_closing ->
                    send c (Wire.Rejected { job_id = None; reason; retry_after })
                | _ -> ())
            | None ->
                (* a migration resubmit bounced — the job is lost *)
                push_lost t gid ~label:"migrated"))
    | Wire.Rejected { job_id = Some local; reason; retry_after } -> (
        (* admission verdict at virtual arrival: relay under the global
           id, then FETCH the done record so the books balance *)
        match Hashtbl.find_opt b.k_local local with
        | None ->
            Log.warn (fun m ->
                m "backend %d: REJECT for unknown job %d" b.k_index local)
        | Some gid ->
            (match owner_conn t gid with
            | Some c ->
                send c (Wire.Rejected { job_id = Some gid; reason; retry_after })
            | None -> ());
            Hashtbl.replace t.notified gid ();
            bsend b (Wire.Fetch { job_id = local }))
    | Wire.Result d -> (
        match Hashtbl.find_opt b.k_local d.Sched_journal.d_id with
        | None ->
            Log.warn (fun m ->
                m "backend %d: RESULT for unknown job %d" b.k_index
                  d.Sched_journal.d_id)
        | Some gid -> ignore (push_terminal t gid d))
    | Wire.Pending _ -> ()  (* a FETCH raced the terminal push; the
                               RESULT itself already answered *)
    | Wire.Cancelled { job_id = local; state } -> (
        match Queue.take_opt b.k_cancels with
        | Some (expected, gid, cid) when expected = local -> (
            match Hashtbl.find_opt t.conns cid with
            | Some c when not c.c_closing ->
                send c (Wire.Cancelled { job_id = gid; state })
            | _ -> ())
        | _ -> Log.warn (fun m -> m "backend %d: orphan CANCELLED" b.k_index))
    | Wire.Drain_done summary -> b.k_summary <- Some summary
    | Wire.Error { message } ->
        Log.warn (fun m -> m "backend %d: ERROR %s" b.k_index message)
    | Wire.Submit _ | Wire.Status | Wire.Fetch _ | Wire.Cancel _ | Wire.Drain
      ->
        Log.warn (fun m -> m "backend %d: client-tag frame" b.k_index)

  (* Rewrite a journaled absolute-times job line into wire offsets for
     a survivor: arrival becomes 0 (admit now — the survivor adds its
     own virtual now back), the deadline becomes whatever slack is
     left after the crash and the configured downtime. The query text
     after the second '|' is forwarded untouched — the proxy stays
     catalog-free. *)
  let rewrite_line ~crash_now ~downtime line =
    match String.index_opt line '|' with
    | None -> None
    | Some i -> (
        match String.index_from_opt line (i + 1) '|' with
        | None -> None
        | Some j -> (
            let deadline =
              float_of_string_opt
                (String.trim (String.sub line (i + 1) (j - i - 1)))
            in
            match deadline with
            | None -> None
            | Some dl ->
                let remaining = dl -. (crash_now +. downtime) in
                if remaining <= 0.0 then None
                else
                  let rest =
                    String.sub line (j + 1) (String.length line - j - 1)
                  in
                  Some (Printf.sprintf "%.17g | %.17g |%s" 0.0 remaining rest)))

  (* A backend connection died. Graceful (its DRAIN_DONE already
     landed) is just bookkeeping; abrupt death trips the breaker,
     answers every unacknowledged correlation, then reads the
     backend's journal back: terminal [Done] records replay as RESULT
     frames (byte-identical — same codec), unfinished [Submitted]
     lines migrate to a survivor with their remaining slack, or are
     written off as lost. *)
  let backend_down t b =
    if not b.k_dead then begin
      b.k_dead <- true;
      (try Unix.close b.k_fd with Unix.Unix_error _ -> ());
      if b.k_summary = None then begin
        t.deaths <- t.deaths + 1;
        Log.warn (fun m -> m "backend %d died" b.k_index);
        Breaker.force_open (Health.breaker b.k_health) ~now:(vnow t);
        (* unacked SUBMITs: the client is told, a migration retry is
           written off — neither ever reached the backend's books *)
        Queue.iter
          (fun (conn_opt, gid) ->
            match conn_opt with
            | Some cid ->
                Hashtbl.remove t.jobs gid;
                t.door_rejects <- t.door_rejects + 1;
                (match Hashtbl.find_opt t.conns cid with
                | Some c when not c.c_closing ->
                    send c
                      (Wire.Rejected
                         {
                           job_id = None;
                           reason = "backend lost";
                           retry_after = 0.0;
                         })
                | _ -> ())
            | None -> push_lost t gid ~label:"migrated")
          b.k_pending;
        Queue.clear b.k_pending;
        Queue.iter
          (fun (_, gid, cid) ->
            match Hashtbl.find_opt t.conns cid with
            | Some c when not c.c_closing ->
                send c (Wire.Cancelled { job_id = gid; state = "unknown" })
            | _ -> ())
          b.k_cancels;
        Queue.clear b.k_cancels;
        (* journal-backed replay and migration *)
        let records =
          match b.k_spec.bs_journal with
          | None -> []
          | Some path -> (
              match Sched_journal.load path with
              | Ok l ->
                  (match l.Sched_journal.torn with
                  | Some reason ->
                      Log.warn (fun m ->
                          m "backend %d journal torn: %s" b.k_index reason)
                  | None -> ());
                  l.Sched_journal.records
              | Error e ->
                  Log.err (fun m ->
                      m "backend %d journal unreadable: %s" b.k_index e);
                  [])
        in
        let done_local = Hashtbl.create 32 in
        List.iter
          (function
            | Sched_journal.Done d -> (
                Hashtbl.replace done_local d.Sched_journal.d_id ();
                match Hashtbl.find_opt b.k_local d.Sched_journal.d_id with
                | None -> ()  (* a pre-proxy tenancy of this journal *)
                | Some gid ->
                    if push_terminal t gid d then
                      t.replayed <- t.replayed + 1)
            | _ -> ())
          records;
        List.iter
          (function
            | Sched_journal.Submitted s
              when not (Hashtbl.mem done_local s.Sched_journal.s_id) -> (
                match Hashtbl.find_opt b.k_local s.Sched_journal.s_id with
                | None -> ()
                | Some gid when Hashtbl.mem t.terminal gid -> ()
                | Some gid -> (
                    let migrated_line =
                      if t.failover then
                        rewrite_line ~crash_now:b.k_now ~downtime:t.downtime
                          s.Sched_journal.s_line
                      else None
                    in
                    match (migrated_line, route t) with
                    | Some line, Some survivor ->
                        (match Hashtbl.find_opt t.jobs gid with
                        | Some e ->
                            e.j_backend <- survivor.k_index;
                            e.j_local <- None
                        | None ->
                            Hashtbl.replace t.jobs gid
                              {
                                j_conn = None;
                                j_backend = survivor.k_index;
                                j_local = None;
                              });
                        Queue.add (None, gid) survivor.k_pending;
                        bsend survivor (Wire.Submit { line });
                        t.migrated <- t.migrated + 1
                    | _ -> push_lost t gid ~label:s.Sched_journal.s_label))
            | _ -> ())
          records;
        (* defensive sweep: anything still routed at this backend with
           no terminal — no journal, or its line never made the disk *)
        Hashtbl.iter
          (fun gid (e : entry) ->
            if e.j_backend = b.k_index && not (Hashtbl.mem t.terminal gid)
            then push_lost t gid ~label:"orphaned")
          t.jobs
      end
    end

  (* --- event loop -------------------------------------------------- *)

  let read_backend t b =
    match Unix.read b.k_fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> backend_down t b
    | n ->
        Wire.feed b.k_rd t.scratch n;
        let rec go () =
          if not b.k_dead then
            match Wire.next b.k_rd with
            | Ok None -> ()
            | Ok (Some payload) -> (
                match Wire.decode payload with
                | Ok msg ->
                    handle_backend_msg t b msg;
                    go ()
                | Error e ->
                    Log.err (fun m ->
                        m "backend %d: codec error %s" b.k_index e);
                    backend_down t b)
            | Result.Error e ->
                Log.err (fun m -> m "backend %d: framing error %s" b.k_index e);
                backend_down t b
        in
        go ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        backend_down t b

  let flush_backend t b =
    let len = Buffer.length b.k_out in
    if len > b.k_out_off then begin
      let s = Buffer.contents b.k_out in
      match Unix.write_substring b.k_fd s b.k_out_off (len - b.k_out_off) with
      | n ->
          b.k_out_off <- b.k_out_off + n;
          if b.k_out_off = Buffer.length b.k_out then begin
            Buffer.clear b.k_out;
            b.k_out_off <- 0
          end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          backend_down t b
    end

  let accept_ready t =
    let rec go () =
      match Unix.accept t.listen_fd with
      | fd, _addr ->
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let c =
            {
              c_id = t.next_conn;
              c_fd = fd;
              c_rd = Wire.reader ();
              c_out = Buffer.create 256;
              c_out_off = 0;
              c_magic = false;
              c_closing = false;
            }
          in
          t.next_conn <- t.next_conn + 1;
          Hashtbl.replace t.conns c.c_id c;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

  let read_ready t c =
    match Unix.read c.c_fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> close_conn t c
    | n ->
        Wire.feed c.c_rd t.scratch n;
        process_input t c
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn t c

  let flush_conn t c =
    let len = Buffer.length c.c_out in
    if len > c.c_out_off then begin
      let s = Buffer.contents c.c_out in
      match Unix.write_substring c.c_fd s c.c_out_off (len - c.c_out_off) with
      | n ->
          c.c_out_off <- c.c_out_off + n;
          if c.c_out_off = Buffer.length c.c_out then begin
            Buffer.clear c.c_out;
            c.c_out_off <- 0
          end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_conn t c
    end;
    if c.c_closing && Buffer.length c.c_out = c.c_out_off then close_conn t c

  (* Wall-clock probe cadence: STATUS every interval, a missed reply
     deadline debited to the breaker at the tier's virtual now. Death
     is only ever declared on connection loss — a slow backend is
     quarantined by its breaker, not buried. *)
  let probe t =
    let wall = Unix.gettimeofday () in
    Array.iter
      (fun b ->
        if (not b.k_dead) && b.k_summary = None && b.k_hello then begin
          if Health.overdue b.k_health ~wall then
            Health.failed b.k_health ~now:(vnow t);
          if Health.due b.k_health ~wall then begin
            bsend b Wire.Status;
            Health.sent b.k_health ~wall
          end
        end)
      t.backends

  let all_done t =
    t.draining
    && Array.for_all (fun b -> b.k_dead || b.k_summary <> None) t.backends

  let finalize t =
    (* anything still in the books with no terminal verdict *)
    Hashtbl.iter
      (fun gid _ ->
        if not (Hashtbl.mem t.terminal gid) then
          push_lost t gid ~label:"unresolved")
      t.jobs;
    let makespan =
      Array.fold_left
        (fun acc b ->
          Float.max acc
            (match b.k_summary with
            | Some s -> s.Engine.makespan
            | None -> b.k_now))
        0.0 t.backends
    in
    let records =
      Hashtbl.fold (fun _ d acc -> d :: acc) t.terminal []
      |> List.sort (fun (a : Sched_journal.done_record) b ->
             compare a.Sched_journal.d_id b.Sched_journal.d_id)
    in
    let summary = summarize ~makespan records in
    List.iter
      (fun c -> if not c.c_closing then send c (Wire.Drain_done summary))
      (conn_list t);
    let deadline = Unix.gettimeofday () +. 2.0 in
    let rec flush_all () =
      let waiting =
        List.filter (fun c -> Buffer.length c.c_out > c.c_out_off) (conn_list t)
      in
      if waiting <> [] && Unix.gettimeofday () < deadline then begin
        (match Unix.select [] (List.map (fun c -> c.c_fd) waiting) [] 0.05 with
        | _, ws, _ ->
            List.iter (fun c -> if List.mem c.c_fd ws then flush_conn t c) waiting
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        flush_all ()
      end
    in
    flush_all ();
    List.iter (fun c -> close_conn t c) (conn_list t);
    Array.iter
      (fun b ->
        if not b.k_dead then begin
          b.k_dead <- true;
          try Unix.close b.k_fd with Unix.Unix_error _ -> ()
        end)
      t.backends;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    {
      p_summary = summary;
      p_records = records;
      p_submitted = t.submitted;
      p_door_rejects = t.door_rejects;
      p_deaths = t.deaths;
      p_migrated = t.migrated;
      p_replayed = t.replayed;
      p_lost = t.lost;
    }

  let shutdown t =
    List.iter (fun c -> close_conn t c) (conn_list t);
    Array.iter
      (fun b ->
        if not b.k_dead then begin
          b.k_dead <- true;
          try Unix.close b.k_fd with Unix.Unix_error _ -> ()
        end)
      t.backends;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

  let run t =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let rec loop () =
      if all_done t then finalize t
      else begin
        probe t;
        let conns = conn_list t in
        let live_backends =
          Array.to_list t.backends |> List.filter (fun b -> not b.k_dead)
        in
        let rfds =
          t.listen_fd
          :: (List.map (fun b -> b.k_fd) live_backends
             @ List.filter_map
                 (fun c -> if c.c_closing then None else Some c.c_fd)
                 conns)
        in
        let wfds =
          List.filter_map
            (fun b ->
              if Buffer.length b.k_out > b.k_out_off then Some b.k_fd else None)
            live_backends
          @ List.filter_map
              (fun c ->
                if Buffer.length c.c_out > c.c_out_off then Some c.c_fd
                else None)
              conns
        in
        let rs, ws =
          match Unix.select rfds wfds [] 0.05 with
          | rs, ws, _ -> (rs, ws)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        if List.mem t.listen_fd rs then accept_ready t;
        List.iter
          (fun b ->
            if (not b.k_dead) && List.mem b.k_fd rs then read_backend t b)
          live_backends;
        List.iter (fun c -> if List.mem c.c_fd rs then read_ready t c) conns;
        ignore ws;
        List.iter
          (fun b ->
            if (not b.k_dead) && Buffer.length b.k_out > b.k_out_off then
              flush_backend t b)
          live_backends;
        List.iter
          (fun c ->
            if Hashtbl.mem t.conns c.c_id && Buffer.length c.c_out > c.c_out_off
            then flush_conn t c)
          conns;
        loop ()
      end
    in
    loop ()
end
