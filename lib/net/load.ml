(* The open-loop load harness: a pre-drawn arrival schedule
   ({!Taqp_workload.Arrivals}) multiplexed over real sockets. Offered
   load is fixed before the first byte moves — the server's answer
   speed cannot slow the schedule down, so overload shows up as priced
   rejections and lateness instead of being absorbed by a closed
   loop's back-off.

   Submissions are serialized (each awaits its synchronous QUEUED /
   door-REJECT before the next goes out) and fan out round-robin over
   [clients] connections, so the server sees jobs in schedule order —
   with a drain-gated server this makes the whole run a deterministic
   function of (schedule, seed), bit-identical to the same job list
   through [Scheduler.run]. *)

module Arrivals = Taqp_workload.Arrivals

type disposition =
  | Queued of { job_id : int; arrival : float; deadline : float }
  | Door_rejected of { reason : string; retry_after : float }

type submission = {
  index : int;  (** position in the arrival schedule *)
  offset : float;  (** submitted arrival offset (virtual seconds) *)
  disposition : disposition;
}

type outcome = {
  submissions : submission list;  (** in schedule order *)
  finished : Taqp_sched.Sched_journal.done_record list;
      (** terminal pushes across every connection, job-id order *)
  refused : (int * string * float) list;
      (** admission rejections: id, reason, retry_after *)
  summary : Taqp_sched.Engine.summary;  (** the DRAIN_DONE payload *)
}

(* [kill = (k, action)] is the backend-kill chaos hook: [action] runs
   once, just before schedule slot [k] is submitted — the harness's
   way of shooting a backend mid-serve and watching the balancer keep
   answering. The schedule itself is unchanged: offered load stays
   open-loop through the fault. *)
let run ?kill ~port ~process ~rate ~n ~seed ~clients ~make_line () =
  if clients < 1 then invalid_arg "Load.run: clients < 1";
  let offsets = Arrivals.arrivals process ~rate ~n ~seed in
  let conns = Array.init clients (fun _ -> Client.connect ~port ()) in
  let submissions = ref [] in
  Array.iteri
    (fun index offset ->
      (match kill with
      | Some (k, action) when k = index -> action ()
      | _ -> ());
      let c = conns.(index mod clients) in
      let line = make_line ~index ~offset in
      let disposition =
        match Client.submit c line with
        | `Queued (job_id, arrival, deadline) ->
            Queued { job_id; arrival; deadline }
        | `Rejected (reason, retry_after) ->
            Door_rejected { reason; retry_after }
      in
      submissions := { index; offset; disposition } :: !submissions)
    offsets;
  (* One connection asks to drain; every connection then collects its
     pushes until the broadcast DRAIN_DONE. *)
  let summary = Client.drain conns.(0) in
  Array.iteri (fun i c -> if i > 0 then ignore (Client.await_drain c)) conns;
  let finished = ref [] and refused = ref [] in
  Array.iter
    (fun c ->
      List.iter
        (function
          | Client.Finished d -> finished := d :: !finished
          | Client.Refused { job_id; reason; retry_after } ->
              refused := (job_id, reason, retry_after) :: !refused)
        (Client.pushes c);
      Client.close c)
    conns;
  {
    submissions = List.rev !submissions;
    finished =
      List.sort
        (fun (a : Taqp_sched.Sched_journal.done_record) b ->
          compare a.Taqp_sched.Sched_journal.d_id
            b.Taqp_sched.Sched_journal.d_id)
        !finished;
    refused = List.sort compare !refused;
    summary;
  }
