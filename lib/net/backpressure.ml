(* Pricing the REJECT: every refusal carries a [retry_after] in
   virtual seconds, derived from the same quantities admission itself
   priced against — the point of admission-as-backpressure is that the
   client learns *when* capacity will exist, not just that it doesn't
   now. All prices are conservative estimates of when an identical
   resubmission would stand a chance, never guarantees. *)

module Admission = Taqp_sched.Admission

(* The engine's reserved backlog drains at device rate 1 (virtual
   seconds of priced work per virtual second), so backlog/queue_len is
   the expected time for the *next* live slot to open, and the full
   backlog is when the queue would be empty. *)
let slot_time ~backlog ~queue_len =
  if queue_len <= 0 then 0.0 else backlog /. float_of_int queue_len

let admission ~reason ~backlog ~queue_len ~headroom =
  let h = Float.max 1.0 headroom in
  match (reason : Admission.reason) with
  | Admission.Queue_full _ ->
      (* Bounded by --max-queue: a slot opens when the soonest live
         job finishes its reserved minimum. *)
      h *. slot_time ~backlog ~queue_len
  | Admission.Infeasible { needed; available } ->
      (* The backlog owes this job [needed - available] seconds of
         slack; after that much drain an identical job (same relative
         deadline) prices as feasible. *)
      h *. Float.max 0.0 (needed -. available)
  | Admission.Zero_slack ->
      (* The deadline was dead on arrival — resubmitting with a live
         deadline can succeed immediately. *)
      0.0

let quota ~wait = Float.max 0.0 wait

let overloaded ~backlog ~queue_len =
  (* The door's memory bound (--max-pending) tripped: the queue is as
     deep as we will ever let it get, so the honest price is a full
     slot, not a full drain. *)
  Float.max 0.0 (slot_time ~backlog ~queue_len)

let draining = 0.0
