(* The TAQPNET1 wire protocol: a connection opens with the raw 8-byte
   magic, then both directions speak length-prefixed CRC-framed records
   — the exact frame layout of the recovery journal
   ([len:u32le][crc32:u32le][payload], {!Taqp_recover.Journal}) so one
   set of framing invariants covers disk and wire. Payloads are
   {!Taqp_recover.Codec} records tagged by a leading u8; the RESULT
   payload embeds {!Taqp_sched.Sched_journal.done_record} through the
   journal's own field codec, which is what makes a replayed
   journal completion byte-identical to a live reply.

   Decoding is total: a bad length, CRC mismatch or malformed payload
   is an [Error]/[Decode_error], never an exception escaping to the
   event loop — the server answers the first bad frame by closing the
   connection (docs/SERVING.md). *)

module Codec = Taqp_recover.Codec
module Crc32 = Taqp_recover.Crc32
module Sched_journal = Taqp_sched.Sched_journal
module Engine = Taqp_sched.Engine

let magic = "TAQPNET1"

(* Generous for job lines and summaries; a length field above this is
   garbage (or an attack), not a big request. *)
let max_frame = 1 lsl 20

type message =
  (* client -> server *)
  | Submit of { line : string }
      (** a {!Taqp_sched.Job.of_line} job line whose arrival/deadline
          are offsets from the server's virtual now *)
  | Status
  | Fetch of { job_id : int }
  | Cancel of { job_id : int }
  | Drain
  (* server -> client *)
  | Hello of { now : float; max_pending : int; draining : bool }
  | Queued of { job_id : int; arrival : float; deadline : float }
      (** absolute virtual times as admitted to the engine *)
  | Rejected of { job_id : int option; reason : string; retry_after : float }
      (** [job_id = None]: refused at the door (quota, overload,
          draining, parse) before an id was assigned — the synchronous
          reply to that SUBMIT. [Some id]: the engine's admission
          controller rejected it at its virtual arrival. [retry_after]
          is the priced backoff in virtual seconds ({!Backpressure}). *)
  | Result of Sched_journal.done_record
  | Status_ok of {
      now : float;
      live : int;
      pending : int;
      backlog : float;
      terminal : int;
      draining : bool;
    }
  | Cancelled of { job_id : int; state : string }
  | Pending of { job_id : int; state : string }
      (** FETCH on a job that is not terminal yet *)
  | Drain_done of Engine.summary
  | Error of { message : string }

let write_summary b (s : Engine.summary) =
  Codec.int b s.submitted;
  Codec.int b s.admitted;
  Codec.int b s.degraded;
  Codec.int b s.rejected;
  Codec.int b s.expired;
  Codec.int b s.completed;
  Codec.int b s.missed;
  Codec.float b s.miss_rate;
  Codec.float b s.lateness_p50;
  Codec.float b s.lateness_p99;
  Codec.float b s.lateness_p999;
  Codec.float b s.max_lateness;
  Codec.float b s.mean_queue_wait;
  Codec.float b s.makespan;
  Codec.float b s.busy_time;
  Codec.int b s.preemptions

let read_summary d : Engine.summary =
  let submitted = Codec.read_int d in
  let admitted = Codec.read_int d in
  let degraded = Codec.read_int d in
  let rejected = Codec.read_int d in
  let expired = Codec.read_int d in
  let completed = Codec.read_int d in
  let missed = Codec.read_int d in
  let miss_rate = Codec.read_float d in
  let lateness_p50 = Codec.read_float d in
  let lateness_p99 = Codec.read_float d in
  let lateness_p999 = Codec.read_float d in
  let max_lateness = Codec.read_float d in
  let mean_queue_wait = Codec.read_float d in
  let makespan = Codec.read_float d in
  let busy_time = Codec.read_float d in
  let preemptions = Codec.read_int d in
  {
    submitted;
    admitted;
    degraded;
    rejected;
    expired;
    completed;
    missed;
    miss_rate;
    lateness_p50;
    lateness_p99;
    lateness_p999;
    max_lateness;
    mean_queue_wait;
    makespan;
    busy_time;
    preemptions;
  }

let encode_message b = function
  | Submit { line } ->
      Codec.u8 b 0;
      Codec.string b line
  | Status -> Codec.u8 b 1
  | Fetch { job_id } ->
      Codec.u8 b 2;
      Codec.int b job_id
  | Cancel { job_id } ->
      Codec.u8 b 3;
      Codec.int b job_id
  | Drain -> Codec.u8 b 4
  | Hello { now; max_pending; draining } ->
      Codec.u8 b 10;
      Codec.float b now;
      Codec.int b max_pending;
      Codec.bool b draining
  | Queued { job_id; arrival; deadline } ->
      Codec.u8 b 11;
      Codec.int b job_id;
      Codec.float b arrival;
      Codec.float b deadline
  | Rejected { job_id; reason; retry_after } ->
      Codec.u8 b 12;
      Codec.option Codec.int b job_id;
      Codec.string b reason;
      Codec.float b retry_after
  | Result d ->
      Codec.u8 b 13;
      Sched_journal.write_done b d
  | Status_ok { now; live; pending; backlog; terminal; draining } ->
      Codec.u8 b 14;
      Codec.float b now;
      Codec.int b live;
      Codec.int b pending;
      Codec.float b backlog;
      Codec.int b terminal;
      Codec.bool b draining
  | Cancelled { job_id; state } ->
      Codec.u8 b 15;
      Codec.int b job_id;
      Codec.string b state
  | Pending { job_id; state } ->
      Codec.u8 b 16;
      Codec.int b job_id;
      Codec.string b state
  | Drain_done s ->
      Codec.u8 b 17;
      write_summary b s
  | Error { message } ->
      Codec.u8 b 18;
      Codec.string b message

let decode_message d =
  match Codec.read_u8 d with
  | 0 -> Submit { line = Codec.read_string d }
  | 1 -> Status
  | 2 -> Fetch { job_id = Codec.read_int d }
  | 3 -> Cancel { job_id = Codec.read_int d }
  | 4 -> Drain
  | 10 ->
      let now = Codec.read_float d in
      let max_pending = Codec.read_int d in
      let draining = Codec.read_bool d in
      Hello { now; max_pending; draining }
  | 11 ->
      let job_id = Codec.read_int d in
      let arrival = Codec.read_float d in
      let deadline = Codec.read_float d in
      Queued { job_id; arrival; deadline }
  | 12 ->
      let job_id = Codec.read_option Codec.read_int d in
      let reason = Codec.read_string d in
      let retry_after = Codec.read_float d in
      Rejected { job_id; reason; retry_after }
  | 13 -> Result (Sched_journal.read_done d)
  | 14 ->
      let now = Codec.read_float d in
      let live = Codec.read_int d in
      let pending = Codec.read_int d in
      let backlog = Codec.read_float d in
      let terminal = Codec.read_int d in
      let draining = Codec.read_bool d in
      Status_ok { now; live; pending; backlog; terminal; draining }
  | 15 ->
      let job_id = Codec.read_int d in
      let state = Codec.read_string d in
      Cancelled { job_id; state }
  | 16 ->
      let job_id = Codec.read_int d in
      let state = Codec.read_string d in
      Pending { job_id; state }
  | 17 -> Drain_done (read_summary d)
  | 18 -> Error { message = Codec.read_string d }
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad message tag %d" n))

let encode m = Codec.to_string encode_message m

let decode s =
  match Codec.of_string decode_message s with
  | m -> Ok m
  | exception Codec.Decode_error e -> Result.Error e

let tag_name = function
  | Submit _ -> "submit"
  | Status -> "status"
  | Fetch _ -> "fetch"
  | Cancel _ -> "cancel"
  | Drain -> "drain"
  | Hello _ -> "hello"
  | Queued _ -> "queued"
  | Rejected _ -> "rejected"
  | Result _ -> "result"
  | Status_ok _ -> "status_ok"
  | Cancelled _ -> "cancelled"
  | Pending _ -> "pending"
  | Drain_done _ -> "drain_done"
  | Error _ -> "error"

(* ------------------------------------------------------------------ *)
(* Framing *)

let frame payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Wire.frame: payload too large";
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

let frame_message m = frame (encode m)

(* Incremental frame reader over a growing byte buffer — the per
   connection receive state. [next] never raises: a framing violation
   (oversized or negative length, CRC mismatch, receive-buffer
   overflow) is an [Error] the server turns into a connection close.

   Two bounds keep an adversarial peer from growing the buffer: the
   length prefix is validated as soon as its 4 bytes are buffered —
   before any of the claimed payload is awaited, so a forged huge
   length costs at most 4 bytes of allocation — and the buffer itself
   is hard-capped at [max_buffer]. A consumer that drains frames after
   every read (both our event loops do) can never hit the cap on a
   compliant stream; feeding past it poisons the reader and drops the
   bytes. *)
type reader = {
  mutable buf : Bytes.t;
  mutable len : int;
  mutable off : int;
  mutable overflow : bool;
}

(* Room for one max-size frame plus a socket read's worth of the next;
   anything beyond means the peer is flooding faster than frames can
   legally complete. *)
let max_buffer = 8 + max_frame + 65536

let reader () = { buf = Bytes.create 4096; len = 0; off = 0; overflow = false }

let compact r =
  if r.off > 0 then begin
    Bytes.blit r.buf r.off r.buf 0 (r.len - r.off);
    r.len <- r.len - r.off;
    r.off <- 0
  end

let feed r bytes n =
  if not r.overflow then begin
    compact r;
    if r.len + n > max_buffer then r.overflow <- true
    else begin
      if r.len + n > Bytes.length r.buf then begin
        let cap = ref (Bytes.length r.buf) in
        while r.len + n > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit r.buf 0 bigger 0 r.len;
        r.buf <- bigger
      end;
      Bytes.blit bytes 0 r.buf r.len n;
      r.len <- r.len + n
    end
  end

let available r = r.len - r.off

let take r n =
  if available r < n then None
  else begin
    let s = Bytes.sub_string r.buf r.off n in
    r.off <- r.off + n;
    Some s
  end

let next r =
  if r.overflow then Result.Error "receive buffer overflow"
  else if available r < 4 then Ok None
  else
    (* Validate the length the moment its 4 bytes land — never wait
       for (let alone allocate) a payload a corrupt or adversarial
       prefix merely claims. *)
    let len = Int32.to_int (Bytes.get_int32_le r.buf r.off) in
    if len < 0 || len > max_frame then
      Result.Error (Printf.sprintf "bad frame length %d" len)
    else if available r < 8 + len then Ok None
    else begin
      let crc = Bytes.get_int32_le r.buf (r.off + 4) in
      let payload = Bytes.sub_string r.buf (r.off + 8) len in
      if Crc32.string payload <> crc then Result.Error "frame CRC mismatch"
      else begin
        r.off <- r.off + 8 + len;
        Ok (Some payload)
      end
    end
