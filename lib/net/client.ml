(* A blocking TAQPNET1 client. The server pushes terminal frames
   (RESULT, admission REJECTs) asynchronously, so every synchronous
   exchange reads frames until its reply tag appears and parks any
   pushes that arrive in between in an inbox the caller drains with
   [pushes]. One reader thread of control — this client is not
   thread-safe, by design: the load harness multiplexes many logical
   clients from one loop instead. *)

type push =
  | Finished of Taqp_sched.Sched_journal.done_record
  | Refused of { job_id : int; reason : string; retry_after : float }

type t = {
  fd : Unix.file_descr;
  rd : Wire.reader;
  scratch : Bytes.t;
  inbox : push Queue.t;
  mutable hello : Wire.message option;
  mutable closed : bool;
}

exception Protocol_error of string
exception Server_closed

let send t msg =
  let s = Wire.frame_message msg in
  let rec go off =
    if off < String.length s then
      let n = Unix.write_substring t.fd s off (String.length s - off) in
      go (off + n)
  in
  try go 0
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    t.closed <- true;
    raise Server_closed

(* Pop the next decoded frame, blocking on the socket as needed. *)
let rec next_frame t =
  match Wire.next t.rd with
  | Ok (Some payload) -> (
      match Wire.decode payload with
      | Ok msg -> msg
      | Error e -> raise (Protocol_error e))
  | Error e -> raise (Protocol_error e)
  | Ok None -> (
      match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 ->
          t.closed <- true;
          raise Server_closed
      | n ->
          Wire.feed t.rd t.scratch n;
          next_frame t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_frame t
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          t.closed <- true;
          raise Server_closed)

(* Synchronous exchanges park asynchronous terminal pushes here. *)
let stash t = function
  | Wire.Result d ->
      Queue.add (Finished d) t.inbox;
      None
  | Wire.Rejected { job_id = Some job_id; reason; retry_after } ->
      Queue.add (Refused { job_id; reason; retry_after }) t.inbox;
      None
  | Wire.Error { message } -> raise (Protocol_error ("server: " ^ message))
  | msg -> Some msg

let rec await t =
  match stash t (next_frame t) with Some m -> m | None -> await t

let connect ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let t =
    {
      fd;
      rd = Wire.reader ();
      scratch = Bytes.create 8192;
      inbox = Queue.create ();
      hello = None;
      closed = false;
    }
  in
  let rec write_all s off =
    if off < String.length s then
      write_all s (off + Unix.write_substring t.fd s off (String.length s - off))
  in
  write_all Wire.magic 0;
  (match await t with
  | Wire.Hello _ as h -> t.hello <- Some h
  | m -> raise (Protocol_error ("expected HELLO, got " ^ Wire.tag_name m)));
  t

let hello t =
  match t.hello with
  | Some (Wire.Hello { now; max_pending; draining }) ->
      (now, max_pending, draining)
  | _ -> raise (Protocol_error "no HELLO recorded")

let submit t line =
  send t (Wire.Submit { line });
  match await t with
  | Wire.Queued { job_id; arrival; deadline } ->
      `Queued (job_id, arrival, deadline)
  | Wire.Rejected { job_id = None; reason; retry_after } ->
      `Rejected (reason, retry_after)
  | m -> raise (Protocol_error ("expected QUEUED/REJECT, got " ^ Wire.tag_name m))

let status t =
  send t Wire.Status;
  match await t with
  | Wire.Status_ok { now; live; pending; backlog; terminal; draining } ->
      (now, live, pending, backlog, terminal, draining)
  | m -> raise (Protocol_error ("expected STATUS_OK, got " ^ Wire.tag_name m))

let fetch t ~job_id =
  send t (Wire.Fetch { job_id });
  (* The reply shares the RESULT tag with the async terminal push, so
     the answer is correlated by id: a RESULT for this job — push or
     reply, the frames are identical — answers the fetch; everything
     else for other jobs is parked as usual. *)
  let rec go () =
    match next_frame t with
    | Wire.Result d when d.Taqp_sched.Sched_journal.d_id = job_id -> `Result d
    | Wire.Pending { job_id = id; state } when id = job_id -> `Pending state
    | msg -> (
        match stash t msg with
        | None -> go ()
        | Some m ->
            raise
              (Protocol_error ("expected RESULT/PENDING, got " ^ Wire.tag_name m)))
  in
  go ()

let cancel t ~job_id =
  send t (Wire.Cancel { job_id });
  match await t with
  | Wire.Cancelled { state; _ } -> state
  | m -> raise (Protocol_error ("expected CANCELLED, got " ^ Wire.tag_name m))

let await_drain t =
  let rec go () =
    match stash t (next_frame t) with
    | None -> go ()
    | Some (Wire.Drain_done summary) -> summary
    | Some m ->
        raise (Protocol_error ("expected DRAIN_DONE, got " ^ Wire.tag_name m))
  in
  go ()

let drain t =
  send t Wire.Drain;
  await_drain t

let pushes t =
  let out = List.of_seq (Queue.to_seq t.inbox) in
  Queue.clear t.inbox;
  out

(* Park every already-sent push without blocking: poll the socket with
   a zero timeout and stash whatever full frames have landed. *)
let poll t =
  let rec drain_frames () =
    match Wire.next t.rd with
    | Ok (Some payload) -> (
        match Wire.decode payload with
        | Ok msg ->
            (match stash t msg with
            | None -> ()
            | Some m ->
                raise
                  (Protocol_error ("unsolicited " ^ Wire.tag_name m)));
            drain_frames ()
        | Error e -> raise (Protocol_error e))
    | Error e -> raise (Protocol_error e)
    | Ok None -> (
        match Unix.select [ t.fd ] [] [] 0.0 with
        | [], _, _ -> ()
        | _ -> (
            match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
            | 0 -> t.closed <- true
            | n ->
                Wire.feed t.rd t.scratch n;
                drain_frames ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain_frames ()
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                t.closed <- true))
  in
  if not t.closed then drain_frames ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
