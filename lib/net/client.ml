(* A blocking TAQPNET1 client. The server pushes terminal frames
   (RESULT, admission REJECTs) asynchronously, so every synchronous
   exchange reads frames until its reply tag appears and parks any
   pushes that arrive in between in an inbox the caller drains with
   [pushes]. One reader thread of control — this client is not
   thread-safe, by design: the load harness multiplexes many logical
   clients from one loop instead. *)

type push =
  | Finished of Taqp_sched.Sched_journal.done_record
  | Refused of { job_id : int; reason : string; retry_after : float }

type t = {
  fd : Unix.file_descr;
  rd : Wire.reader;
  scratch : Bytes.t;
  inbox : push Queue.t;
  read_timeout : float option;
  mutable hello : Wire.message option;
  mutable closed : bool;
}

exception Protocol_error of string
exception Server_closed
exception Timed_out of string

let send t msg =
  let s = Wire.frame_message msg in
  let rec go off =
    if off < String.length s then
      let n = Unix.write_substring t.fd s off (String.length s - off) in
      go (off + n)
  in
  try go 0
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    t.closed <- true;
    raise Server_closed

(* With a read timeout configured, bound every blocking read with a
   select — a hung (not dead) server surfaces as [Timed_out] instead
   of blocking the caller forever. *)
let wait_readable t =
  match t.read_timeout with
  | None -> ()
  | Some tmo -> (
      match Unix.select [ t.fd ] [] [] tmo with
      | [], _, _ -> raise (Timed_out "read")
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())

(* Pop the next decoded frame, blocking on the socket as needed. *)
let rec next_frame t =
  match Wire.next t.rd with
  | Ok (Some payload) -> (
      match Wire.decode payload with
      | Ok msg -> msg
      | Error e -> raise (Protocol_error e))
  | Error e -> raise (Protocol_error e)
  | Ok None -> (
      wait_readable t;
      match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 ->
          t.closed <- true;
          raise Server_closed
      | n ->
          Wire.feed t.rd t.scratch n;
          next_frame t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_frame t
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          t.closed <- true;
          raise Server_closed)

(* Synchronous exchanges park asynchronous terminal pushes here. *)
let stash t = function
  | Wire.Result d ->
      Queue.add (Finished d) t.inbox;
      None
  | Wire.Rejected { job_id = Some job_id; reason; retry_after } ->
      Queue.add (Refused { job_id; reason; retry_after }) t.inbox;
      None
  | Wire.Error { message } -> raise (Protocol_error ("server: " ^ message))
  | msg -> Some msg

let rec await t =
  match stash t (next_frame t) with Some m -> m | None -> await t

(* A bounded connect: non-blocking connect + select, then SO_ERROR
   for the verdict. Without [connect_timeout] the plain blocking
   connect is used (loopback connects are effectively instant; the
   timeout matters for a listener whose accept queue is wedged). *)
let connect_fd ?connect_timeout ~port () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     match connect_timeout with
     | None -> Unix.connect fd addr
     | Some tmo -> (
         Unix.set_nonblock fd;
         (try Unix.connect fd addr with
         | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
             match Unix.select [] [ fd ] [] tmo with
             | _, [], _ -> raise (Timed_out "connect")
             | _ -> (
                 match Unix.getsockopt_error fd with
                 | None -> ()
                 | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
         Unix.clear_nonblock fd)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect ?connect_timeout ?read_timeout ~port () =
  let fd = connect_fd ?connect_timeout ~port () in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let t =
    {
      fd;
      rd = Wire.reader ();
      scratch = Bytes.create 8192;
      inbox = Queue.create ();
      read_timeout;
      hello = None;
      closed = false;
    }
  in
  let rec write_all s off =
    if off < String.length s then
      write_all s (off + Unix.write_substring t.fd s off (String.length s - off))
  in
  write_all Wire.magic 0;
  (match await t with
  | Wire.Hello _ as h -> t.hello <- Some h
  | m -> raise (Protocol_error ("expected HELLO, got " ^ Wire.tag_name m)));
  t

let hello t =
  match t.hello with
  | Some (Wire.Hello { now; max_pending; draining }) ->
      (now, max_pending, draining)
  | _ -> raise (Protocol_error "no HELLO recorded")

let submit t line =
  send t (Wire.Submit { line });
  match await t with
  | Wire.Queued { job_id; arrival; deadline } ->
      `Queued (job_id, arrival, deadline)
  | Wire.Rejected { job_id = None; reason; retry_after } ->
      `Rejected (reason, retry_after)
  | m -> raise (Protocol_error ("expected QUEUED/REJECT, got " ^ Wire.tag_name m))

let status t =
  send t Wire.Status;
  match await t with
  | Wire.Status_ok { now; live; pending; backlog; terminal; draining } ->
      (now, live, pending, backlog, terminal, draining)
  | m -> raise (Protocol_error ("expected STATUS_OK, got " ^ Wire.tag_name m))

let fetch t ~job_id =
  send t (Wire.Fetch { job_id });
  (* The reply shares the RESULT tag with the async terminal push, so
     the answer is correlated by id: a RESULT for this job — push or
     reply, the frames are identical — answers the fetch; everything
     else for other jobs is parked as usual. *)
  let rec go () =
    match next_frame t with
    | Wire.Result d when d.Taqp_sched.Sched_journal.d_id = job_id -> `Result d
    | Wire.Pending { job_id = id; state } when id = job_id -> `Pending state
    | msg -> (
        match stash t msg with
        | None -> go ()
        | Some m ->
            raise
              (Protocol_error ("expected RESULT/PENDING, got " ^ Wire.tag_name m)))
  in
  go ()

let cancel t ~job_id =
  send t (Wire.Cancel { job_id });
  match await t with
  | Wire.Cancelled { state; _ } -> state
  | m -> raise (Protocol_error ("expected CANCELLED, got " ^ Wire.tag_name m))

let await_drain t =
  let rec go () =
    match stash t (next_frame t) with
    | None -> go ()
    | Some (Wire.Drain_done summary) -> summary
    | Some m ->
        raise (Protocol_error ("expected DRAIN_DONE, got " ^ Wire.tag_name m))
  in
  go ()

let drain t =
  send t Wire.Drain;
  await_drain t

let pushes t =
  let out = List.of_seq (Queue.to_seq t.inbox) in
  Queue.clear t.inbox;
  out

(* Park every already-sent push without blocking: poll the socket with
   a zero timeout and stash whatever full frames have landed. *)
let poll t =
  let rec drain_frames () =
    match Wire.next t.rd with
    | Ok (Some payload) -> (
        match Wire.decode payload with
        | Ok msg ->
            (match stash t msg with
            | None -> ()
            | Some m ->
                raise
                  (Protocol_error ("unsolicited " ^ Wire.tag_name m)));
            drain_frames ()
        | Error e -> raise (Protocol_error e))
    | Error e -> raise (Protocol_error e)
    | Ok None -> (
        match Unix.select [ t.fd ] [] [] 0.0 with
        | [], _, _ -> ()
        | _ -> (
            match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
            | 0 -> t.closed <- true
            | n ->
                Wire.feed t.rd t.scratch n;
                drain_frames ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain_frames ()
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                t.closed <- true))
  in
  if not t.closed then drain_frames ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Bounded-retry connect: a server that is still binding (or a
   balancer whose backends are still coming up) answers ECONNREFUSED
   for a moment; retry with a doubling pause instead of failing the
   first race. Anything other than a refused/timed-out connect —
   protocol errors, a real Unix error — propagates immediately. *)
let connect_retry ?connect_timeout ?read_timeout ?(attempts = 5)
    ?(pause = 0.1) ~port () =
  if attempts < 1 then invalid_arg "Client.connect_retry: attempts < 1";
  let rec go n pause =
    match connect ?connect_timeout ?read_timeout ~port () with
    | t -> t
    | exception
        (( Unix.Unix_error
             ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT
               | Unix.ENETUNREACH | Unix.EHOSTUNREACH ),
               _,
               _ )
         | Timed_out _ | Server_closed ) as e) ->
        if n >= attempts then raise e
        else begin
          Unix.sleepf pause;
          go (n + 1) (pause *. 2.0)
        end
  in
  go 1 pause

(* Priced-backoff submit: honor the server's own retry_after quote —
   that is the point of admission-as-backpressure — under an
   exponential floor so a zero-priced refusal (draining, zero-slack)
   still backs off. retry_after is in *virtual* seconds; [sleep] maps
   the wait onto the caller's world and defaults to a capped wall
   sleep (tests inject a recorder, the in-process harnesses a no-op). *)
let submit_with_retry ?(attempts = 4) ?(backoff = 2.0) ?(floor = 0.01)
    ?(sleep = fun d -> if d > 0.0 then Unix.sleepf (Float.min 0.5 d)) t line =
  if attempts < 1 then invalid_arg "Client.submit_with_retry: attempts < 1";
  let rec go n floor tries =
    match submit t line with
    | `Queued _ as q -> (q, List.rev tries)
    | `Rejected (reason, retry_after) as r ->
        if n >= attempts then (r, List.rev tries)
        else begin
          sleep (Float.max retry_after floor);
          go (n + 1) (floor *. backoff) ((reason, retry_after) :: tries)
        end
  in
  go 1 floor []
