(** Open-loop socket load harness: a pre-drawn
    {!Taqp_workload.Arrivals} schedule multiplexed round-robin over
    real connections. The schedule is fixed before the first byte
    moves, so offered load is independent of server responsiveness —
    overload surfaces as priced rejections and lateness, never as a
    silently slowed-down client.

    Submissions are serialized in schedule order; against a
    drain-gated server ([`Drain] in {!Server.create}) the run is a
    deterministic function of the schedule and seeds, bit-identical
    to the same job list through [Scheduler.run] — what
    [bench --serve] and the protocol tests pin. *)

type disposition =
  | Queued of { job_id : int; arrival : float; deadline : float }
  | Door_rejected of { reason : string; retry_after : float }
      (** refused before an id was assigned: quota, depth, draining,
          or a parse error *)

type submission = {
  index : int;  (** position in the arrival schedule *)
  offset : float;  (** submitted arrival offset (virtual seconds) *)
  disposition : disposition;
}

type outcome = {
  submissions : submission list;  (** in schedule order *)
  finished : Taqp_sched.Sched_journal.done_record list;
      (** terminal pushes across every connection, job-id order *)
  refused : (int * string * float) list;
      (** admission rejections: id, reason, retry_after *)
  summary : Taqp_sched.Engine.summary;  (** the DRAIN_DONE payload *)
}

val run :
  ?kill:int * (unit -> unit) ->
  port:int ->
  process:Taqp_workload.Arrivals.process ->
  rate:float ->
  n:int ->
  seed:int ->
  clients:int ->
  make_line:(index:int -> offset:float -> string) ->
  unit ->
  outcome
(** Draw [n] arrival offsets from [process] at [rate] (seeded), call
    [make_line] for each, submit them in order over [clients]
    connections, then drain the server and collect every terminal
    push. [make_line] receives the schedule [index] and the arrival
    [offset] and returns a {!Taqp_sched.Job.of_line} line whose times
    are offsets from server virtual now.

    [kill = (k, action)] is the backend-kill chaos hook: [action]
    fires once, immediately before schedule slot [k] is submitted —
    shoot a backend mid-serve and keep the open-loop schedule coming
    (the balancer failover bench and CI smoke drive this).
    @raise Invalid_argument on [clients < 1]. *)
