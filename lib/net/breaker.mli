(** A per-backend circuit breaker for the balancer tier
    ({!Balancer}), cooled down in {e virtual} time so its quarantine is
    priced in the same seconds as every {!Backpressure} retry_after.

    Driven by health-probe verdicts ({!Health}), not request verdicts:
    [threshold] consecutive failures while [Closed] trip it [Open];
    while [Open] every verdict is ignored until [cooldown] virtual
    seconds elapse; the state then reads [Half_open] and the next
    verdict is the trial — success closes, failure re-opens with the
    cooldown multiplied by [backoff] (capped at [max_cooldown]).
    Deterministic: every transition is a pure function of the supplied
    [now]. See docs/HA.md. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"] or ["half_open"]. *)

type t

val create :
  ?threshold:int ->
  ?cooldown:float ->
  ?backoff:float ->
  ?max_cooldown:float ->
  unit ->
  t
(** Defaults: [threshold = 3], [cooldown = 5.0] virtual seconds,
    [backoff = 2.0], [max_cooldown = 60.0].
    @raise Invalid_argument on [threshold < 1], [cooldown <= 0],
    [backoff < 1] or [max_cooldown < cooldown]. *)

val state : t -> now:float -> state
(** The state at virtual instant [now] (an elapsed cooldown surfaces
    as [Half_open]). The balancer routes to [Closed] backends first,
    [Half_open] as trial traffic, [Open] never. *)

val record_success : t -> now:float -> unit
(** A probe answered within its deadline. Closes a [Half_open]
    breaker (trial passed) and clears the failure streak; ignored
    while [Open] — the cooldown is insisted upon. *)

val record_failure : t -> now:float -> unit
(** A probe missed its deadline (or the transport errored). Trips a
    [Closed] breaker at [threshold] consecutive failures; re-opens a
    [Half_open] one with a backed-off cooldown; ignored while
    [Open]. *)

val retry_after : t -> now:float -> float
(** Remaining cooldown at [now] — the priced component an unroutable
    tier surfaces to clients. [0] unless [Open]. *)

val force_open : t -> now:float -> unit
(** Trip immediately regardless of the failure count — the balancer's
    verdict on a backend whose connection died outright. *)
