(** The span tracer.

    A tracer binds a time source — [now] reads the query clock, virtual
    or wall — to a {!Sink}. It is deliberately passive: it {e reads}
    the clock at emission points and never charges it, so an
    instrumented run and an uninstrumented run advance time
    identically. The {!disabled} tracer makes every operation a
    single-branch no-op with no allocation, which is what the hot
    block-read path sees by default.

    Spans nest by emission order (begin/end bracketing), mirroring the
    call structure: query > stage > operator/scan > storage. *)

type t

type args = (string * Event.arg) list

val disabled : t

val make : now:(unit -> float) -> sink:Sink.t -> t

val enabled : t -> bool
val now : t -> float

val span_begin : t -> ?cat:string -> ?args:args -> string -> unit
val span_end : t -> ?cat:string -> ?args:args -> string -> unit

val complete : t -> ?cat:string -> ?args:args -> begin_ts:float -> string -> unit
(** A self-contained span that started at [begin_ts] and ends now. *)

val instant : t -> ?cat:string -> ?args:args -> ?ts:float -> string -> unit
(** [ts] defaults to [now]; pass it explicitly to stamp an event at a
    known clock value (e.g. the armed deadline at abort time). *)

val counter : t -> ?cat:string -> string -> float -> unit

val with_span : t -> ?cat:string -> ?args:args -> string -> (unit -> 'a) -> 'a
(** Bracket [f] in a begin/end pair. If [f] raises, the end event is
    still emitted (tagged [aborted=true]) before the exception
    propagates, so traces stay balanced across deadline aborts. *)

val close : t -> unit
(** Close the underlying sink (finalizes file formats). *)
