type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { offset : int; message : string }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if not (Float.is_finite f) then
    (* NaN/inf are not JSON; emit null like most encoders. *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else
    let s = Printf.sprintf "%.17g" f in
    (* Prefer the shortest representation that round-trips. *)
    let short = Printf.sprintf "%.12g" f in
    Buffer.add_string buf (if float_of_string short = f then short else s)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type state = { src : string; mutable pos : int }

let error st fmt =
  Fmt.kstr (fun message -> raise (Parse_error { offset = st.pos; message })) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st "expected '%c', found '%c'" c d
  | None -> error st "expected '%c', found end of input" c

let parse_hex4 st =
  let code = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> error st "bad \\u escape"
        in
        code := (!code * 16) + d
    | None -> error st "truncated \\u escape");
    advance st
  done;
  !code

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'u' ->
            advance st;
            add_utf8 buf (parse_hex4 st)
        | Some c -> error st "bad escape '\\%c'" c
        | None -> error st "truncated escape");
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek st = Some '.' then begin
    advance st;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error st "malformed number %S" text

let parse_literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st "expected %s" word

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, v) :: acc)
          | _ -> error st "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']' in array"
        in
        List (items [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st "unexpected character '%c'" c

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
