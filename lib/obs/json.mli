(** A minimal JSON value, printer, and parser.

    The observability sinks must emit machine-readable output and the
    test-suite must parse it back, but the dependency footprint is
    frozen (DESIGN.md): this is the smallest JSON kernel that covers
    the JSONL event stream and the Chrome [trace_event] format.
    Numbers are doubles, objects preserve insertion order, and the
    parser accepts exactly the RFC 8259 grammar (no comments, no
    trailing commas). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { offset : int; message : string }

val to_string : t -> string
(** Compact (single-line) rendering. Integral doubles within the safe
    range print without a fractional part, so counters round-trip as
    integers. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}, onto a formatter. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for other constructors. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
