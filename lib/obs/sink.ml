type t = { emit : Event.t -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let memory () =
  let events = ref [] in
  ( {
      emit = (fun e -> events := e :: !events);
      close = (fun () -> ());
    },
    fun () -> List.rev !events )

let jsonl write =
  {
    emit =
      (fun e ->
        write (Json.to_string (Event.to_json e));
        write "\n");
    close = (fun () -> ());
  }

(* Metadata (ph "M") events naming the synthetic process/thread, so the
   trace opens pre-labeled in Perfetto / chrome://tracing instead of
   showing bare pid 1 / tid 1. Written once, ahead of the first real
   event; an empty trace stays the bare "[]". *)
let chrome_metadata =
  [
    {|{"name":"process_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"taqp"}}|};
    {|{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"query"}}|};
  ]

let chrome write =
  let first = ref true in
  {
    emit =
      (fun e ->
        if !first then begin
          write "[\n";
          List.iter
            (fun m ->
              write m;
              write ",\n")
            chrome_metadata;
          first := false
        end
        else write ",\n";
        write (Json.to_string (Event.to_chrome_json e)));
    close =
      (fun () ->
        if !first then write "[]\n" else write "\n]\n");
  }

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)

type open_span = { o_name : string; o_cat : string; o_ts : float }

type summary_state = {
  mutable stack : open_span list;
  totals : (string * string, float ref * int ref) Hashtbl.t;
      (** (cat, name) -> total seconds, count *)
  mutable stage_lines : string list;  (** newest first *)
  mutable instants : (float * string) list;  (** newest first *)
  counters : (string * string, float) Hashtbl.t;
      (** (cat, name) -> last sampled value *)
}

let arg_str args key =
  match List.assoc_opt key args with
  | Some (Event.String s) -> Some s
  | Some (Event.Int i) -> Some (string_of_int i)
  | Some (Event.Float f) -> Some (Printf.sprintf "%g" f)
  | Some (Event.Bool b) -> Some (string_of_bool b)
  | None -> None

let record st ~cat ~name dur =
  let key = (cat, name) in
  let total, count =
    match Hashtbl.find_opt st.totals key with
    | Some cell -> cell
    | None ->
        let cell = (ref 0.0, ref 0) in
        Hashtbl.replace st.totals key cell;
        cell
  in
  total := !total +. dur;
  incr count

let summary ppf =
  let st =
    {
      stack = [];
      totals = Hashtbl.create 32;
      stage_lines = [];
      instants = [];
      counters = Hashtbl.create 8;
    }
  in
  let emit (e : Event.t) =
    match e.phase with
    | Event.Begin ->
        st.stack <- { o_name = e.name; o_cat = e.cat; o_ts = e.ts } :: st.stack
    | Event.End -> (
        match st.stack with
        | [] -> ()
        | top :: rest ->
            st.stack <- rest;
            let dur = e.ts -. top.o_ts in
            record st ~cat:top.o_cat ~name:top.o_name dur;
            if top.o_cat = "stage" then begin
              let field key = Option.value ~default:"?" (arg_str e.args key) in
              st.stage_lines <-
                Printf.sprintf
                  "%-9s f=%-8s predicted=%ss actual=%.3fs estimate=%s %s"
                  top.o_name (field "fraction") (field "predicted") dur
                  (field "estimate") (field "decision")
                :: st.stage_lines
            end)
    | Event.Complete dur -> record st ~cat:e.cat ~name:e.name dur
    | Event.Instant ->
        st.instants <- (e.ts, e.cat ^ "/" ^ e.name) :: st.instants
    | Event.Counter v -> Hashtbl.replace st.counters (e.cat, e.name) v
  in
  let close () =
    Format.fprintf ppf "@[<v>--- trace summary ---@ ";
    List.iter
      (fun line -> Format.fprintf ppf "%s@ " line)
      (List.rev st.stage_lines);
    let rows =
      Hashtbl.fold
        (fun (cat, name) (total, count) acc ->
          (cat, name, !total, !count) :: acc)
        st.totals []
      |> List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare b a)
    in
    List.iter
      (fun (cat, name, total, count) ->
        Format.fprintf ppf "%-10s %-24s %4dx %9.4fs@ " cat name count total)
      rows;
    List.iter
      (fun (ts, label) -> Format.fprintf ppf "@%.4fs %s@ " ts label)
      (List.rev st.instants);
    (* Counters keep their last sampled value — totals, not durations
       (the cache emits cache.hits/misses/evictions/bytes this way). *)
    Hashtbl.fold (fun (cat, name) v acc -> (cat, name, v) :: acc) st.counters []
    |> List.sort compare
    |> List.iter (fun (cat, name, v) ->
           Format.fprintf ppf "%-10s %-24s       %11g@ " cat name v);
    Format.fprintf ppf "@]@."
  in
  { emit; close }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let to_channel oc s = output_string oc s
let to_buffer buf s = Buffer.add_string buf s
