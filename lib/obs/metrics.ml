module Counter = struct
  type t = { name : string; mutable v : int }

  let make name = { name; v = 0 }
  let name t = t.name
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let set t n = t.v <- n
end

module Gauge = struct
  type t = { name : string; mutable v : float }

  let make name = { name; v = 0.0 }
  let name t = t.name
  let set t v = t.v <- v
  let value t = t.v
end

module Histogram = struct
  type t = {
    name : string;
    bounds : float array;  (** strictly increasing upper bounds *)
    counts : int array;  (** length = Array.length bounds + 1 (overflow) *)
    mutable n : int;
    mutable total : float;
  }

  (* 1 ms .. ~100 s, roughly 1-2-5 per decade: the spread of stage
     costs and overspends on the paper's quotas. *)
  let default_buckets =
    [|
      0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
      10.0; 20.0; 50.0; 100.0;
    |]

  let make ?(buckets = default_buckets) name =
    if Array.length buckets = 0 then
      invalid_arg "Metrics.Histogram.make: empty buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Metrics.Histogram.make: buckets not increasing")
      buckets;
    {
      name;
      bounds = Array.copy buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      n = 0;
      total = 0.0;
    }

  let name t = t.name

  let bucket_index t v =
    (* First bound >= v; binary search is overkill for <= 32 buckets. *)
    let rec go i =
      if i >= Array.length t.bounds then Array.length t.bounds
      else if v <= t.bounds.(i) then i
      else go (i + 1)
    in
    go 0

  let observe t v =
    let i = bucket_index t v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.total <- t.total +. v

  let count t = t.n
  let sum t = t.total
  let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n

  let quantile t q =
    if t.n = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = q *. float_of_int t.n in
      let rec go i seen =
        if i >= Array.length t.counts then
          t.bounds.(Array.length t.bounds - 1)
        else
          let seen' = seen + t.counts.(i) in
          if float_of_int seen' >= rank && t.counts.(i) > 0 then
            if i >= Array.length t.bounds then
              (* overflow bucket: report the last finite bound *)
              t.bounds.(Array.length t.bounds - 1)
            else
              let lo = if i = 0 then 0.0 else t.bounds.(i - 1) in
              let hi = t.bounds.(i) in
              let within =
                (rank -. float_of_int seen) /. float_of_int t.counts.(i)
              in
              lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 within))
          else go (i + 1) seen'
      in
      go 0 0
    end

  let buckets t =
    List.init (Array.length t.counts) (fun i ->
        let bound =
          if i < Array.length t.bounds then t.bounds.(i) else infinity
        in
        (bound, t.counts.(i)))
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let find_or_add t name make match_existing =
  match Hashtbl.find_opt t.table name with
  | Some existing -> (
      match match_existing existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name existing)))
  | None ->
      let i, v = make () in
      Hashtbl.replace t.table name i;
      v

let counter t name =
  find_or_add t name
    (fun () ->
      let c = Counter.make name in
      (I_counter c, c))
    (function I_counter c -> Some c | _ -> None)

let gauge t name =
  find_or_add t name
    (fun () ->
      let g = Gauge.make name in
      (I_gauge g, g))
    (function I_gauge g -> Some g | _ -> None)

let histogram ?buckets t name =
  find_or_add t name
    (fun () ->
      let h = Histogram.make ?buckets name in
      (I_histogram h, h))
    (function I_histogram h -> Some h | _ -> None)

let sorted_fold t f =
  Hashtbl.fold (fun name i acc -> f name i acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  sorted_fold t (fun name i acc ->
      match i with
      | I_counter c -> (name, Counter.value c) :: acc
      | _ -> acc)

let gauges t =
  sorted_fold t (fun name i acc ->
      match i with I_gauge g -> (name, Gauge.value g) :: acc | _ -> acc)

let histograms t =
  sorted_fold t (fun name i acc ->
      match i with I_histogram h -> (name, h) :: acc | _ -> acc)

let histogram_to_json h =
  Json.Obj
    [
      ("count", Json.Num (float_of_int (Histogram.count h)));
      ("sum", Json.Num (Histogram.sum h));
      ("p50", Json.Num (Histogram.quantile h 0.5));
      ("p95", Json.Num (Histogram.quantile h 0.95));
      ("p99", Json.Num (Histogram.quantile h 0.99));
      ("p999", Json.Num (Histogram.quantile h 0.999));
      ( "buckets",
        Json.List
          (List.map
             (fun (bound, n) ->
               Json.Obj
                 [
                   ( "le",
                     if Float.is_finite bound then Json.Num bound
                     else Json.Str "inf" );
                   ("count", Json.Num (float_of_int n));
                 ])
             (Histogram.buckets h)) );
    ]

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) (counters t))
      );
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Num v)) (gauges t)));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, histogram_to_json h)) (histograms t))
      );
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-32s %12d@ " name v)
    (counters t);
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-32s %12.4f@ " name v)
    (gauges t);
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%-32s n=%d mean=%.4f p50=%.4f p95=%.4f@ " name
        (Histogram.count h) (Histogram.mean h)
        (Histogram.quantile h 0.5)
        (Histogram.quantile h 0.95))
    (histograms t);
  Format.fprintf ppf "@]"
