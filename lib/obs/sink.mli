(** Where trace events go.

    A sink is a pair of callbacks; the {!Tracer} never buffers, so a
    sink sees every event in emission order and can stream. All sinks
    are cheap enough for the virtual-clock experiments; the [null]
    sink is what a disabled tracer uses and costs nothing. *)

type t = { emit : Event.t -> unit; close : unit -> unit }

val null : t

val memory : unit -> t * (unit -> Event.t list)
(** Collects events; the thunk returns them in emission order. For
    tests and in-process consumers. *)

val jsonl : (string -> unit) -> t
(** One JSON object per line ({!Event.to_json}), written through the
    given string consumer. *)

val chrome : (string -> unit) -> t
(** Chrome [trace_event] JSON array ({!Event.to_chrome_json}); the
    array is only valid JSON after [close]. A non-empty trace opens
    with [process_name]/[thread_name] metadata (phase ["M"]) events so
    it loads pre-labeled in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

val summary : Format.formatter -> t
(** Human-readable end-of-run summary, printed on [close]: one line
    per stage span (predicted vs. actual cost, sample fraction,
    decision), then per-category/name aggregate durations, then the
    last sampled value of every counter event (e.g. the shared cache's
    [cache.hits]/[cache.misses]/[cache.hit_ratio]). This — not the
    [Report.trace] list — is the tracer-derived view of a run. *)

val tee : t list -> t
(** Fan out to several sinks; [close] closes all of them. *)

val to_channel : out_channel -> string -> unit
(** Writer over a channel, for [jsonl]/[chrome]. *)

val to_buffer : Buffer.t -> string -> unit
