(** A single observability event.

    Events are what the {!Tracer} emits and what {!Sink}s consume. The
    vocabulary is the useful subset of Chrome's [trace_event] model:
    begin/end span pairs, self-contained complete spans (with a
    duration), instants, and counter samples. Timestamps are seconds on
    the query clock — virtual or wall, whichever the tracer was built
    over — and are never charged back to that clock. *)

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type phase =
  | Begin  (** span opens at [ts] *)
  | End  (** innermost open span with this name closes at [ts] *)
  | Complete of float  (** span of the given duration ending the event *)
  | Instant
  | Counter of float  (** sampled value *)

type t = {
  name : string;
  cat : string;  (** layer: ["query"], ["stage"], ["operator"], ["scan"], ["storage"], ["clock"] *)
  ts : float;  (** seconds on the query clock *)
  phase : phase;
  args : (string * arg) list;
}

val arg_to_json : arg -> Json.t

val to_json : t -> Json.t
(** The JSONL schema: [{"ev":...,"name":...,"cat":...,"ts":...}] plus
    ["dur"] (complete), ["value"] (counter) and ["args"] when present. *)

val of_json : Json.t -> t option
(** Inverse of {!to_json} (argument payloads collapse to floats,
    strings and bools). *)

val to_chrome_json : t -> Json.t
(** One Chrome [trace_event] object; [ts]/[dur] are converted to the
    microseconds the viewer expects. *)

val of_chrome_json : Json.t -> t option
(** Inverse of {!to_chrome_json} for the phases this module emits
    (B, E, X, i, C). *)
