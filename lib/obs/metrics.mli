(** A process-local metrics registry: monotonic counters, gauges, and
    fixed-bucket histograms.

    Instruments are get-or-create by name, so independently
    instrumented layers sharing one registry converge on the same
    cells. An increment is a single unboxed mutation — the hot
    block-read path pays exactly what the old ad-hoc [Io_stats] record
    paid. Instruments can also be created {e detached} (registered
    nowhere) for snapshots and diffs. *)

type t

val create : unit -> t

module Counter : sig
  type t

  val make : string -> t
  (** A detached counter (not in any registry). *)

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val set : t -> int -> unit
  (** For snapshots/diffs; registered counters should only grow. *)
end

module Gauge : sig
  type t

  val make : string -> t
  val name : t -> string
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val make : ?buckets:float array -> string -> t
  (** [buckets] are upper bounds, strictly increasing; observations
      above the last bound land in a +inf overflow bucket. The default
      covers latencies/costs from 1 ms to ~100 s, log-spaced. *)

  val name : t -> string
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0,1]: linear interpolation within the
      winning bucket; 0 when empty. *)

  val buckets : t -> (float * int) list
  (** (upper-bound, count) pairs, overflow last as [(infinity, n)]. *)
end

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : ?buckets:float array -> t -> string -> Histogram.t

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * Histogram.t) list

val to_json : t -> Json.t
(** Full dump: counters, gauges, histograms with bucket counts and
    p50/p95/p99/p999. *)

val pp : Format.formatter -> t -> unit
(** Human-readable end-of-run dump. *)
