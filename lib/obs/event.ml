type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type phase =
  | Begin
  | End
  | Complete of float
  | Instant
  | Counter of float

type t = {
  name : string;
  cat : string;
  ts : float;
  phase : phase;
  args : (string * arg) list;
}

let arg_to_json = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | String s -> Json.Str s
  | Bool b -> Json.Bool b

let arg_of_json = function
  | Json.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Some (Int (int_of_float f))
      else Some (Float f)
  | Json.Str s -> Some (String s)
  | Json.Bool b -> Some (Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let args_to_json args =
  Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)

let args_of_json = function
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun a -> (k, a)) (arg_of_json v))
        fields
  | _ -> []

let phase_name = function
  | Begin -> "begin"
  | End -> "end"
  | Complete _ -> "complete"
  | Instant -> "instant"
  | Counter _ -> "counter"

let to_json e =
  let base =
    [
      ("ev", Json.Str (phase_name e.phase));
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ts", Json.Num e.ts);
    ]
  in
  let extra =
    match e.phase with
    | Complete dur -> [ ("dur", Json.Num dur) ]
    | Counter v -> [ ("value", Json.Num v) ]
    | Begin | End | Instant -> []
  in
  let args = match e.args with [] -> [] | a -> [ ("args", args_to_json a) ] in
  Json.Obj (base @ extra @ args)

let ( let* ) = Option.bind

let of_json j =
  let* ev = Option.bind (Json.member "ev" j) Json.to_str in
  let* name = Option.bind (Json.member "name" j) Json.to_str in
  let* cat = Option.bind (Json.member "cat" j) Json.to_str in
  let* ts = Option.bind (Json.member "ts" j) Json.to_float in
  let* phase =
    match ev with
    | "begin" -> Some Begin
    | "end" -> Some End
    | "instant" -> Some Instant
    | "complete" ->
        Option.map
          (fun d -> Complete d)
          (Option.bind (Json.member "dur" j) Json.to_float)
    | "counter" ->
        Option.map
          (fun v -> Counter v)
          (Option.bind (Json.member "value" j) Json.to_float)
    | _ -> None
  in
  Some { name; cat; ts; phase; args = args_of_json (Json.member "args" j) }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event                                                  *)

let us seconds = seconds *. 1e6

let to_chrome_json e =
  let ph, extra, args =
    match e.phase with
    | Begin -> ("B", [], e.args)
    | End -> ("E", [], e.args)
    | Complete dur -> ("X", [ ("dur", Json.Num (us dur)) ], e.args)
    | Instant -> ("i", [ ("s", Json.Str "t") ], e.args)
    | Counter v -> ("C", [], [ ("value", Float v) ])
  in
  let args = match args with [] -> [] | a -> [ ("args", args_to_json a) ] in
  Json.Obj
    ([
       ("name", Json.Str e.name);
       ("cat", Json.Str e.cat);
       ("ph", Json.Str ph);
       ("ts", Json.Num (us e.ts));
       ("pid", Json.Num 1.0);
       ("tid", Json.Num 1.0);
     ]
    @ extra @ args)

let of_chrome_json j =
  let* ph = Option.bind (Json.member "ph" j) Json.to_str in
  let* name = Option.bind (Json.member "name" j) Json.to_str in
  let* ts_us = Option.bind (Json.member "ts" j) Json.to_float in
  let cat =
    Option.value ~default:""
      (Option.bind (Json.member "cat" j) Json.to_str)
  in
  let ts = ts_us /. 1e6 in
  let* phase =
    match ph with
    | "B" -> Some Begin
    | "E" -> Some End
    | "i" | "I" -> Some Instant
    | "X" ->
        Option.map
          (fun d -> Complete (d /. 1e6))
          (Option.bind (Json.member "dur" j) Json.to_float)
    | "C" ->
        Option.map
          (fun v -> Counter v)
          (Option.bind (Json.member "args" j) (fun a ->
               Option.bind (Json.member "value" a) Json.to_float))
    | _ -> None
  in
  let args =
    match phase with
    | Counter _ -> []
    | _ -> args_of_json (Json.member "args" j)
  in
  Some { name; cat; ts; phase; args }
