type args = (string * Event.arg) list

type t = {
  enabled : bool;
  now : unit -> float;
  sink : Sink.t;
}

let disabled = { enabled = false; now = (fun () -> 0.0); sink = Sink.null }

let make ~now ~sink = { enabled = true; now; sink }

let enabled t = t.enabled
let now t = t.now ()

let emit t ~name ~cat ~ts ~phase ~args =
  t.sink.Sink.emit { Event.name; cat; ts; phase; args }

let span_begin t ?(cat = "") ?(args = []) name =
  if t.enabled then
    emit t ~name ~cat ~ts:(t.now ()) ~phase:Event.Begin ~args

let span_end t ?(cat = "") ?(args = []) name =
  if t.enabled then emit t ~name ~cat ~ts:(t.now ()) ~phase:Event.End ~args

let complete t ?(cat = "") ?(args = []) ~begin_ts name =
  if t.enabled then
    let now = t.now () in
    emit t ~name ~cat ~ts:now
      ~phase:(Event.Complete (Float.max 0.0 (now -. begin_ts)))
      ~args

let instant t ?(cat = "") ?(args = []) ?ts name =
  if t.enabled then
    let ts = match ts with Some ts -> ts | None -> t.now () in
    emit t ~name ~cat ~ts ~phase:Event.Instant ~args

let counter t ?(cat = "") name value =
  if t.enabled then
    emit t ~name ~cat ~ts:(t.now ()) ~phase:(Event.Counter value) ~args:[]

let with_span t ?(cat = "") ?(args = []) name f =
  if not t.enabled then f ()
  else begin
    span_begin t ~cat ~args name;
    match f () with
    | v ->
        span_end t ~cat name;
        v
    | exception e ->
        span_end t ~cat ~args:[ ("aborted", Event.Bool true) ] name;
        raise e
  end

let close t = if t.enabled then t.sink.Sink.close ()
