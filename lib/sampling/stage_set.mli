(** Per-dimension sample bookkeeping across stages.

    One [Stage_set.t] tracks which sample units (disk blocks under the
    cluster plan, tuples under simple random sampling) have been drawn
    from one operand relation, stage by stage, without replacement —
    the SAMPLE-SET / NEW-SAMPLE-SET variables of Figure 3.1. *)

type t

val create : n_units:int -> Taqp_rng.Prng.t -> t
(** A population of [n_units] units, none drawn yet. An empty
    population (0 units) is legal and immediately exhausted.
    @raise Invalid_argument if [n_units < 0]. *)

val n_units : t -> int

val draw_stage : t -> k:int -> int list
(** Draw [k] fresh units uniformly from those not yet drawn and record
    them as the next stage. [k] is clamped to the number remaining;
    the returned list (possibly shorter than [k]) is the NEW-SAMPLE-SET.
    @raise Invalid_argument if [k < 0]. *)

val record_stage : t -> int list -> unit
(** Record a stage whose units some other sampler chose — the shared
    cross-query sample prefix of {!Taqp_cache} — without consuming this
    set's own PRNG stream. The untouched stream is what makes a later
    fall back to {!draw_stage} (after a cache invalidation demotes the
    consumer) a valid without-replacement continuation.
    @raise Invalid_argument if a unit is out of range or already
    drawn. *)

val stages : t -> int
val drawn : t -> int
val remaining : t -> int
val exhausted : t -> bool

val stage_units : t -> int -> int list
(** Units drawn at stage [i] (1-based). @raise Invalid_argument if out
    of range. *)

val stage_size : t -> int -> int
val all_units : t -> int list
(** Every unit drawn so far, in draw order. *)

val cumulative_sizes : t -> int array
(** [cumulative_sizes t].(i) = units drawn in stages 1..i+1 — the
    N_{j,i} of the paper's cost formulas. *)

val fraction_drawn : t -> float

(** {2 Checkpointing}

    A {!dump} captures the whole mutable state — the per-stage drawn
    units and the sampling stream position — so a crash-safe checkpoint
    ({!Taqp_recover}) can restore the set and keep drawing exactly the
    units an uninterrupted run would have drawn. *)

type dump = {
  d_n_units : int;  (** recorded for the shape check on restore *)
  d_stages_rev : int list list;  (** newest stage first *)
  d_rng : Taqp_rng.Prng.state;
}

val dump : t -> dump

val restore : t -> dump -> unit
(** Overwrite [t]'s drawn history and stream position with the dump's.
    @raise Invalid_argument if the population sizes differ. *)
