(** Space-block accounting for full vs partial fulfillment.

    Under full fulfillment (Figure 4.5), stage [s] evaluates every
    combination of sample units across the dimensions that involves at
    least one stage-[s] unit; the cumulative evaluated subspace is the
    full cross product of everything drawn. Under partial fulfillment
    only same-stage combinations are evaluated. These functions give
    the evaluated-point counts both plans imply — the denominators of
    the sample selectivities and of the count estimator. *)

val full_cumulative : int array list -> float
(** [full_cumulative cums] where each element is one dimension's
    cumulative sizes: the product over dimensions of the latest
    cumulative size (0.0 if no stages yet). *)

val full_new_at_stage : int array list -> stage:int -> float
(** Combinations newly evaluated at 1-based [stage]:
    prod(cum_s) - prod(cum_{s-1}). For two dimensions this equals the
    paper's n1s*n2s + N1(s-1)*n2s + N2(s-1)*n1s. *)

val partial_cumulative : int array list -> float
(** Sum over stages of the product of that stage's new sizes. *)

val partial_new_at_stage : int array list -> stage:int -> float

val pairings_at_stage :
  stages_l:int -> stage:int -> [ `Full | `Partial ] -> (int * int) list
(** Which (left-stage, right-stage) file pairs a binary operator merges
    when the left side holds [stages_l] files and the right side
    [stage] files, the newest of each being this stage's (Figure 4.5):
    full fulfillment pairs the new left file with every right file and
    every old left file with the new right file —
    [stages_l + stage - 1] pairings ([2s - 1] in the symmetric case),
    tiling exactly the grid cells that involve a new file; partial
    fulfillment pairs only the two new files, [(stages_l, stage)].
    Asymmetric per-dimension stage counts (one relation exhausted
    early, or per-dimension stage plans) are supported by passing the
    two sides' file counts. @raise Invalid_argument if either count
    is < 1. *)
