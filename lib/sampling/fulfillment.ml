let cum_at dims stage =
  List.fold_left
    (fun acc cums ->
      let v =
        if stage <= 0 || Array.length cums = 0 then 0
        else cums.(Int.min stage (Array.length cums) - 1)
      in
      acc *. float_of_int v)
    1.0 dims

let full_cumulative dims =
  match dims with
  | [] -> 0.0
  | _ -> cum_at dims max_int

let full_new_at_stage dims ~stage =
  if stage < 1 then invalid_arg "Fulfillment.full_new_at_stage: stage < 1";
  cum_at dims stage -. cum_at dims (stage - 1)

let stage_size cums stage =
  if stage < 1 || stage > Array.length cums then 0
  else if stage = 1 then cums.(0)
  else cums.(stage - 1) - cums.(stage - 2)

let partial_new_at_stage dims ~stage =
  if stage < 1 then invalid_arg "Fulfillment.partial_new_at_stage: stage < 1";
  List.fold_left
    (fun acc cums -> acc *. float_of_int (stage_size cums stage))
    1.0 dims

let partial_cumulative dims =
  match dims with
  | [] -> 0.0
  | first :: _ ->
      let n_stages = Array.length first in
      let acc = ref 0.0 in
      for s = 1 to n_stages do
        acc := !acc +. partial_new_at_stage dims ~stage:s
      done;
      !acc

let pairings_at_stage ~stages_l ~stage plan =
  if stage < 1 then invalid_arg "Fulfillment.pairings_at_stage: stage < 1";
  if stages_l < 1 then invalid_arg "Fulfillment.pairings_at_stage: stages_l < 1";
  match plan with
  | `Partial -> [ (stages_l, stage) ]
  | `Full ->
      (* The new left file (#stages_l) against every right file, plus
         every old left file against the new right file (#stage): the
         [stages_l + stage - 1] pairings that tile exactly the grid
         cells involving at least one new file. *)
      let new_left = List.init stage (fun i -> (stages_l, i + 1)) in
      let old_left = List.init (stages_l - 1) (fun i -> (i + 1, stage)) in
      new_left @ old_left
