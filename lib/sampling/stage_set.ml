type t = {
  n_units : int;
  rng : Taqp_rng.Prng.t;
  mutable stages_rev : int list list;
  drawn_set : (int, unit) Hashtbl.t;
  mutable drawn : int;
}

let create ~n_units rng =
  if n_units < 0 then invalid_arg "Stage_set.create: n_units < 0";
  { n_units; rng; stages_rev = []; drawn_set = Hashtbl.create 64; drawn = 0 }

let n_units t = t.n_units
let drawn t = t.drawn
let remaining t = t.n_units - t.drawn
let exhausted t = t.drawn >= t.n_units
let stages t = List.length t.stages_rev

let draw_stage t ~k =
  if k < 0 then invalid_arg "Stage_set.draw_stage: k < 0";
  let k = Int.min k (remaining t) in
  let fresh =
    Taqp_rng.Sample.from_excluding t.rng ~k ~n:t.n_units
      ~excluded:(Hashtbl.mem t.drawn_set) ~excluded_count:t.drawn
  in
  List.iter (fun u -> Hashtbl.add t.drawn_set u ()) fresh;
  t.drawn <- t.drawn + k;
  t.stages_rev <- fresh :: t.stages_rev;
  fresh

(* Record units some *other* sampler chose — the shared-cache prefix
   stream — without touching this set's own PRNG. The membership and
   range checks keep the without-replacement invariant enforced here,
   not at the call site; the untouched [rng] is what makes a later
   fall back to [draw_stage] (after a cache invalidation) a valid SRS
   continuation. *)
let record_stage t units =
  List.iter
    (fun u ->
      if u < 0 || u >= t.n_units then
        invalid_arg "Stage_set.record_stage: unit out of range";
      if Hashtbl.mem t.drawn_set u then
        invalid_arg "Stage_set.record_stage: unit already drawn")
    units;
  List.iter (fun u -> Hashtbl.add t.drawn_set u ()) units;
  t.drawn <- t.drawn + List.length units;
  t.stages_rev <- units :: t.stages_rev

let stage_units t i =
  let n = stages t in
  if i < 1 || i > n then invalid_arg "Stage_set.stage_units: out of range";
  List.nth t.stages_rev (n - i)

let stage_size t i = List.length (stage_units t i)

let all_units t = List.concat (List.rev t.stages_rev)

let cumulative_sizes t =
  let sizes = List.rev_map List.length t.stages_rev in
  let acc = ref 0 in
  Array.of_list (List.map (fun s -> acc := !acc + s; !acc) sizes)

let fraction_drawn t =
  if t.n_units = 0 then 1.0
  else float_of_int t.drawn /. float_of_int t.n_units

(* ------------------------------------------------------------------ *)
(* Checkpointing: the drawn-unit history plus the PRNG stream position
   is the whole mutable state; [drawn_set] is a pure membership index
   over the history, so it is rebuilt rather than serialized. *)

type dump = {
  d_n_units : int;
  d_stages_rev : int list list;
  d_rng : Taqp_rng.Prng.state;
}

let dump t =
  { d_n_units = t.n_units; d_stages_rev = t.stages_rev; d_rng = Taqp_rng.Prng.state t.rng }

let restore t d =
  if d.d_n_units <> t.n_units then
    invalid_arg "Stage_set.restore: population size mismatch";
  Taqp_rng.Prng.set_state t.rng d.d_rng;
  t.stages_rev <- d.d_stages_rev;
  Hashtbl.reset t.drawn_set;
  List.iter
    (List.iter (fun u -> Hashtbl.replace t.drawn_set u ()))
    d.d_stages_rev;
  t.drawn <- List.fold_left (fun acc s -> acc + List.length s) 0 d.d_stages_rev
