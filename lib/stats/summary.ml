type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.total <- t.total +. x

let add_all t xs = List.iter (add t) xs

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let population_variance t = if t.n = 0 then 0.0 else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)
let min t = t.lo
let max t = t.hi
let total t = t.total

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fn = float_of_int n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. fn) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. fn)
    in
    {
      n;
      mean;
      m2;
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
      total = a.total +. b.total;
    }
  end

let of_list xs =
  let t = create () in
  add_all t xs;
  t

type dump = {
  d_n : int;
  d_mean : float;
  d_m2 : float;
  d_lo : float;
  d_hi : float;
  d_total : float;
}

let dump t =
  {
    d_n = t.n;
    d_mean = t.mean;
    d_m2 = t.m2;
    d_lo = t.lo;
    d_hi = t.hi;
    d_total = t.total;
  }

let restore t d =
  t.n <- d.d_n;
  t.mean <- d.d_mean;
  t.m2 <- d.d_m2;
  t.lo <- d.d_lo;
  t.hi <- d.d_hi;
  t.total <- d.d_total
