(** Streaming univariate summaries (Welford's algorithm): numerically
    stable running mean and variance, plus extrema. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_all : t -> float list -> unit

val count : t -> int
val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Unbiased sample variance (divides by n-1); 0.0 when n < 2. *)

val population_variance : t -> float
(** Divides by n; 0.0 when empty. *)

val stddev : t -> float
val min : t -> float
(** +infinity when empty. *)

val max : t -> float
(** -infinity when empty. *)

val total : t -> float

val merge : t -> t -> t
(** Summary of the union of both streams (Chan's parallel update). *)

val of_list : float list -> t

(** {2 Checkpointing} *)

type dump = {
  d_n : int;
  d_mean : float;
  d_m2 : float;
  d_lo : float;  (** +infinity when empty *)
  d_hi : float;  (** -infinity when empty *)
  d_total : float;
}

val dump : t -> dump

val restore : t -> dump -> unit
(** Overwrite [t]'s running state with the dump's; used by
    {!Taqp_recover} checkpoints. *)
