(** Least-squares fitting used by the adaptive time-cost formulas
    (Section 4): each operator step's cost is modeled as a linear form
    in known workload features (tuples read, pages written, n log n
    terms, ...), and the coefficients are re-fit at run time from the
    observed step timings. *)

type t
(** An exponentially weighted multivariate least-squares state for a
    model y = c . x (no intercept; include a constant feature of 1.0
    for one). *)

val create : ?forgetting:float -> init:float array -> unit -> t
(** [create ~init ()] starts from initial coefficients [init].
    [forgetting] in (0, 1] down-weights old observations (default 0.9);
    1.0 means ordinary recursive least squares.
    @raise Invalid_argument on empty [init] or forgetting outside (0,1]. *)

val dim : t -> int

val set_anchor_scale : t -> float -> unit
(** Scale the initial-coefficient anchor: the fit stays data-driven
    along observed feature directions, but degrades to
    [scale * init] elsewhere. Used for run-time level recalibration of
    designer constants. @raise Invalid_argument if [scale <= 0]. *)

val anchor_scale : t -> float

val observe : t -> x:float array -> y:float -> unit
(** Record one observation. @raise Invalid_argument on dimension
    mismatch or non-finite input. *)

val coefficients : t -> float array
(** Current coefficient estimates: the regularized exponentially
    weighted least-squares solution, anchored at the initial values
    until observations dominate. *)

val predict : t -> float array -> float
(** [predict t x] is coefficients . x. *)

val observations : t -> int

val simple_fit : (float * float) list -> float * float
(** Ordinary least squares for y = a + b x over (x, y) pairs; returns
    (a, b). @raise Invalid_argument with fewer than 2 distinct x. *)

(** {2 Checkpointing}

    The accumulated normal equations plus the anchor scale and
    observation count — everything that evolves at run time. The
    designer inputs ([init], [forgetting]) are reconstructed by the
    caller's re-registration, so they are not part of the dump. *)

type dump = {
  d_a : float array array;
  d_b : float array;
  d_anchor_scale : float;
  d_n : int;
}

val dump : t -> dump
(** Deep copy: mutating the fit afterwards does not alter the dump. *)

val restore : t -> dump -> unit
(** Overwrite the fit's accumulated state with the dump's.
    @raise Invalid_argument on a dimension mismatch. *)
