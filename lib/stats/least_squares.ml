type t = {
  k : int;
  init : float array;
  forgetting : float;
  (* Normal equations accumulated with exponential forgetting, plus a
     ridge anchor toward [init] so the estimate degrades gracefully to
     the designer-supplied constants when data is scarce. *)
  a : float array array;
  b : float array;
  ridge : float;
  mutable anchor_scale : float;
  mutable n : int;
  mutable cache : float array option;
}

let create ?(forgetting = 0.9) ~init () =
  let k = Array.length init in
  if k = 0 then invalid_arg "Least_squares.create: empty init";
  if forgetting <= 0.0 || forgetting > 1.0 then
    invalid_arg "Least_squares.create: forgetting outside (0,1]";
  {
    k;
    init = Array.copy init;
    forgetting;
    a = Array.make_matrix k k 0.0;
    b = Array.make k 0.0;
    ridge = 1e-6;
    anchor_scale = 1.0;
    n = 0;
    cache = None;
  }

let dim t = t.k

let set_anchor_scale t scale =
  if scale <= 0.0 then invalid_arg "Least_squares.set_anchor_scale: scale <= 0";
  t.anchor_scale <- scale;
  t.cache <- None

let anchor_scale t = t.anchor_scale

let observe t ~x ~y =
  if Array.length x <> t.k then
    invalid_arg "Least_squares.observe: dimension mismatch";
  if (not (Float.is_finite y)) || Array.exists (fun v -> not (Float.is_finite v)) x
  then invalid_arg "Least_squares.observe: non-finite input";
  let lambda = t.forgetting in
  for i = 0 to t.k - 1 do
    for j = 0 to t.k - 1 do
      t.a.(i).(j) <- (lambda *. t.a.(i).(j)) +. (x.(i) *. x.(j))
    done;
    t.b.(i) <- (lambda *. t.b.(i)) +. (x.(i) *. y)
  done;
  t.n <- t.n + 1;
  t.cache <- None

(* Gaussian elimination with partial pivoting; dimensions are tiny
   (<= 6) so O(k^3) per solve is irrelevant. *)
let solve a b k =
  let m = Array.init k (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  for col = 0 to k - 1 do
    let pivot = ref col in
    for row = col + 1 to k - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    let tmp = m.(col) in
    m.(col) <- m.(!pivot);
    m.(!pivot) <- tmp;
    let p = m.(col).(col) in
    if Float.abs p > 1e-12 then
      for row = 0 to k - 1 do
        if row <> col then begin
          let factor = m.(row).(col) /. p in
          for j = col to k do
            m.(row).(j) <- m.(row).(j) -. (factor *. m.(col).(j))
          done
        end
      done
  done;
  Array.init k (fun i ->
      let p = m.(i).(i) in
      if Float.abs p > 1e-12 then m.(i).(k) /. p else nan)

let coefficients t =
  match t.cache with
  | Some c -> Array.copy c
  | None ->
      let c =
        if t.n = 0 then Array.map (fun c -> c *. t.anchor_scale) t.init
        else begin
          (* Anchor strength shrinks as real observations accumulate. *)
          let anchor = Float.max t.ridge (1.0 /. (1.0 +. (5.0 *. float_of_int t.n))) in
          let a =
            Array.init t.k (fun i ->
                Array.init t.k (fun j ->
                    t.a.(i).(j) +. if i = j then anchor else 0.0))
          in
          let b = Array.init t.k (fun i -> t.b.(i) +. (anchor *. t.init.(i) *. t.anchor_scale)) in
          let sol = solve a b t.k in
          (* Any degenerate coordinate falls back to its initial value;
             negative cost coefficients are clamped to zero. *)
          Array.mapi
            (fun i v ->
              if Float.is_finite v then Float.max 0.0 v
              else t.init.(i) *. t.anchor_scale)
            sol
        end
      in
      t.cache <- Some c;
      Array.copy c

let predict t x =
  if Array.length x <> t.k then
    invalid_arg "Least_squares.predict: dimension mismatch";
  let c = coefficients t in
  let acc = ref 0.0 in
  for i = 0 to t.k - 1 do
    acc := !acc +. (c.(i) *. x.(i))
  done;
  !acc

let observations t = t.n

let simple_fit pairs =
  let n = List.length pairs in
  if n < 2 then invalid_arg "Least_squares.simple_fit: need >= 2 points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pairs in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pairs in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 pairs in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 pairs in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Least_squares.simple_fit: degenerate x values";
  let b = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. fn in
  (a, b)

type dump = {
  d_a : float array array;
  d_b : float array;
  d_anchor_scale : float;
  d_n : int;
}

let dump t =
  {
    d_a = Array.map Array.copy t.a;
    d_b = Array.copy t.b;
    d_anchor_scale = t.anchor_scale;
    d_n = t.n;
  }

let restore t d =
  if Array.length d.d_b <> t.k || Array.length d.d_a <> t.k then
    invalid_arg "Least_squares.restore: dimension mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> t.k then
        invalid_arg "Least_squares.restore: dimension mismatch";
      Array.blit row 0 t.a.(i) 0 t.k)
    d.d_a;
  Array.blit d.d_b 0 t.b 0 t.k;
  t.anchor_scale <- d.d_anchor_scale;
  t.n <- d.d_n;
  t.cache <- None
