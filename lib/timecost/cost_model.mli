(** The adaptive time-cost model of a query: one independently fitted
    linear model per (operator node, step), re-estimated at run time
    from the per-step timings the executor records — Section 4's
    "adaptive time cost formulas".

    QCOST of a stage is the sum over nodes of {!predict} on the node's
    predicted stage measures. *)

type t

val create : ?adaptive:bool -> ?initial_scale:float -> unit -> t
(** [adaptive] false freezes the initial coefficients (the fixed-form
    ablation). [initial_scale] multiplies the designer initial
    coefficients (misfit experiments); default 1.0. *)

val adaptive : t -> bool

val register : t -> id:int -> Formulas.op_kind -> unit
(** Declare operator node [id] of the given kind.
    @raise Invalid_argument if [id] is already registered. *)

val kind : t -> id:int -> Formulas.op_kind
val ids : t -> int list

val predict : t -> id:int -> Formulas.measures -> float
(** Predicted seconds for the node on one stage's measures: the sum of
    its steps' predictions (each >= 0). *)

val predict_step : t -> id:int -> step:Formulas.step -> Formulas.measures -> float

val observe_step :
  t -> id:int -> step:Formulas.step -> Formulas.measures -> seconds:float -> unit
(** Feed one observed (measures, elapsed) pair for one step; no-op when
    not adaptive (the drift observer still fires). @raise
    Invalid_argument for a step the node's kind does not have. *)

val set_observer :
  t ->
  (id:int -> step:Formulas.step -> predicted:float -> actual:float -> unit)
  option ->
  unit
(** Install (or clear) a drift observer called on every
    {!observe_step} with the prediction in force {e before} the fit
    updates — the predicted-vs-actual pair a calibration monitor needs.
    Fires whether or not the model is adaptive. Purely observational:
    registering one never changes a prediction, a fit, or any charge. *)

val step_coefficients : t -> id:int -> step:Formulas.step -> float array

val total : t -> (int * Formulas.measures) list -> float
(** Sum of predictions — QCOST for a stage plan. *)

(** {2 Checkpointing}

    The fitted coefficients, calibration levels and observation counts
    for every registered (node, step) — the run-time-learned state a
    {!Taqp_recover} checkpoint must carry across a crash. Steps are
    keyed by position within their node (a node's step list is a pure
    function of its kind), so a dump restores cleanly into a model
    whose nodes were re-registered by recompiling the same query. *)

type step_state = {
  ss_calibration : float;
  ss_fit : Taqp_stats.Least_squares.dump;
}

type dump = (int * step_state list) list
(** Per node id (ascending), the per-step fitted state in step order. *)

val dump : t -> dump

val restore : t -> dump -> unit
(** Restore into a model with the same registered nodes.
    @raise Invalid_argument if a dumped node id is not registered or
    its step count differs. *)
