type op_kind =
  | Scan
  | Select
  | Join
  | Intersect
  | Hash_join
  | Hash_intersect
  | Project
  | Overhead

type step =
  | Step_read
  | Step_check
  | Step_write_temp
  | Step_sort
  | Step_merge
  | Step_hash_build
  | Step_hash_probe
  | Step_output
  | Step_fixed

type measures = {
  blocks : float;
  n_input : float;
  comparisons : float;
  temp_pages : float;
  nlogn : float;
  merge_reads : float;
  build_tuples : float;
  probe_tuples : float;
  out_tuples : float;
  out_pages : float;
  pairings : float;
}

let zero_measures =
  {
    blocks = 0.0;
    n_input = 0.0;
    comparisons = 0.0;
    temp_pages = 0.0;
    nlogn = 0.0;
    merge_reads = 0.0;
    build_tuples = 0.0;
    probe_tuples = 0.0;
    out_tuples = 0.0;
    out_pages = 0.0;
    pairings = 0.0;
  }

let steps = function
  | Scan -> [ Step_read ]
  | Select -> [ Step_check; Step_output ]
  | Join | Intersect -> [ Step_write_temp; Step_sort; Step_merge; Step_output ]
  | Hash_join | Hash_intersect ->
      [ Step_hash_build; Step_hash_probe; Step_output ]
  | Project -> [ Step_write_temp; Step_sort; Step_check; Step_output ]
  | Overhead -> [ Step_fixed ]

let step_features step m =
  match step with
  | Step_read -> [| m.blocks; 1.0 |]
  | Step_check -> [| m.n_input; m.n_input *. m.comparisons |]
  | Step_write_temp -> [| m.n_input; m.temp_pages |]
  | Step_sort -> [| m.nlogn; m.n_input |]
  | Step_merge -> [| m.merge_reads; m.pairings |]
  | Step_hash_build -> [| m.build_tuples; 1.0 |]
  | Step_hash_probe -> [| m.probe_tuples; m.out_tuples |]
  | Step_output -> [| m.out_tuples; m.out_pages |]
  | Step_fixed -> [| 1.0 |]

let step_dim step = Array.length (step_features step zero_measures)

(* Designer constants, per Section 5 calibrated against the largest
   tuples (1 KB) and richest formulas the prototype supports - i.e.
   roughly 1.8x pessimistic for the default 200-byte workloads, so an
   untrained query is over-budgeted rather than overspent. The run-time
   per-step fit brings them down within a stage or two. *)
let step_initial = function
  | Step_read -> [| 0.065; 0.004 |]
  | Step_check -> [| 0.0036; 0.0022 |]
  | Step_write_temp -> [| 0.0009; 0.027 |]
  | Step_sort -> [| 0.00045; 0.0015 |]
  | Step_merge -> [| 0.0022; 0.014 |]
  | Step_hash_build -> [| 0.0020; 0.002 |]
  | Step_hash_probe -> [| 0.0017; 0.0015 |]
  | Step_output -> [| 0.0014; 0.027 |]
  | Step_fixed -> [| 0.220 |]

let kind_name = function
  | Scan -> "scan"
  | Select -> "select"
  | Join -> "join"
  | Intersect -> "intersect"
  | Hash_join -> "hash-join"
  | Hash_intersect -> "hash-intersect"
  | Project -> "project"
  | Overhead -> "overhead"

let step_name = function
  | Step_read -> "read"
  | Step_check -> "check"
  | Step_write_temp -> "write-temp"
  | Step_sort -> "sort"
  | Step_merge -> "merge"
  | Step_hash_build -> "hash-build"
  | Step_hash_probe -> "hash-probe"
  | Step_output -> "output"
  | Step_fixed -> "fixed"

let pp_measures ppf m =
  Format.fprintf ppf
    "blocks=%g n=%g cmp=%g tpages=%g nlogn=%g merge=%g build=%g probe=%g \
     out=%g pages=%g pairings=%g"
    m.blocks m.n_input m.comparisons m.temp_pages m.nlogn m.merge_reads
    m.build_tuples m.probe_tuples m.out_tuples m.out_pages m.pairings
