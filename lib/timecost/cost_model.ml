open Taqp_stats

type step_model = {
  step : Formulas.step;
  model : Least_squares.t;
  (* Run-time level recalibration: EWMA of observed/predicted applied
     to the designer-constant anchor of the fit, so observed feature
     directions stay purely data-driven while unobserved ones inherit
     the learned level. *)
  mutable calibration : float;
}

type node = { kind : Formulas.op_kind; steps : step_model list }

type t = {
  adaptive : bool;
  initial_scale : float;
  nodes : (int, node) Hashtbl.t;
  mutable observer :
    (id:int ->
    step:Formulas.step ->
    predicted:float ->
    actual:float ->
    unit)
    option;
}

let create ?(adaptive = true) ?(initial_scale = 1.0) () =
  if initial_scale <= 0.0 then
    invalid_arg "Cost_model.create: initial_scale <= 0";
  { adaptive; initial_scale; nodes = Hashtbl.create 16; observer = None }

let set_observer t f = t.observer <- f

let adaptive t = t.adaptive

let register t ~id kind =
  if Hashtbl.mem t.nodes id then
    invalid_arg "Cost_model.register: duplicate node id";
  let make_step step =
    let init =
      Array.map (fun c -> c *. t.initial_scale) (Formulas.step_initial step)
    in
    {
      step;
      model = Least_squares.create ~forgetting:0.95 ~init ();
      calibration = 1.0;
    }
  in
  Hashtbl.replace t.nodes id
    { kind; steps = List.map make_step (Formulas.steps kind) }

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg "Cost_model: unknown node id"

let step_model t id step =
  match List.find_opt (fun s -> s.step = step) (node t id).steps with
  | Some s -> s
  | None -> invalid_arg "Cost_model: node kind has no such step"

let kind t ~id = (node t id).kind

let ids t =
  List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [])

let predict_step t ~id ~step measures =
  let s = step_model t id step in
  Float.max 0.0 (Least_squares.predict s.model (Formulas.step_features step measures))

let predict t ~id measures =
  List.fold_left
    (fun acc s ->
      acc
      +. Float.max 0.0
           (Least_squares.predict s.model
              (Formulas.step_features s.step measures)))
    0.0 (node t id).steps

let observe_step t ~id ~step measures ~seconds =
  (* Drift observation happens before the fit updates, so [predicted]
     is the prediction the planner actually used for this stage. Pure
     float arithmetic on already-known values: no clock, no PRNG. *)
  (match t.observer with
  | None -> ()
  | Some f ->
      let s = step_model t id step in
      let x = Formulas.step_features step measures in
      f ~id ~step
        ~predicted:(Float.max 0.0 (Least_squares.predict s.model x))
        ~actual:seconds);
  if t.adaptive then begin
    let s = step_model t id step in
    let x = Formulas.step_features step measures in
    let prior = Least_squares.predict s.model x in
    if prior > 1e-9 && seconds > 0.0 then begin
      let ratio = seconds /. prior in
      s.calibration <-
        Float.max 0.3 (Float.min 3.0 (s.calibration *. ratio));
      Least_squares.set_anchor_scale s.model s.calibration
    end;
    Least_squares.observe s.model ~x ~y:seconds
  end

let step_coefficients t ~id ~step =
  Least_squares.coefficients (step_model t id step).model

let total t plan =
  List.fold_left (fun acc (id, m) -> acc +. predict t ~id m) 0.0 plan

(* ------------------------------------------------------------------ *)
(* Checkpointing: the fitted state per (node, step), keyed positionally
   within each node (a node's step list is a pure function of its
   kind), restored into a freshly re-registered model. *)

type step_state = { ss_calibration : float; ss_fit : Least_squares.dump }
type dump = (int * step_state list) list

let dump t =
  List.map
    (fun id ->
      ( id,
        List.map
          (fun s ->
            { ss_calibration = s.calibration; ss_fit = Least_squares.dump s.model })
          (node t id).steps ))
    (ids t)

let restore t d =
  List.iter
    (fun (id, states) ->
      let steps = (node t id).steps in
      if List.length steps <> List.length states then
        invalid_arg "Cost_model.restore: step count mismatch";
      List.iter2
        (fun s st ->
          s.calibration <- st.ss_calibration;
          Least_squares.restore s.model st.ss_fit)
        steps states)
    d
