(** Per-operator, per-step time-cost formulas (Section 4, equations
    4.1-4.5).

    The paper's adaptive approach: "identify the time-consuming steps
    of an RA operation and derive a cost formula for each such step;
    during execution, record the actual amount of time spent on each
    step and dynamically adjust the coefficients". Each operator kind
    is therefore a sum of {e steps}, each a small linear form over
    workload measures, fitted independently from that step's observed
    timings ({!Cost_model}):

    - Scan: read the stage's sample disk blocks.
    - Select (4.1): per-tuple check + output writing.
    - Join / Intersect (4.5): temp-file write (4.2), external sort
      (4.3), one merge pass per sorted-file pairing of the
      full-fulfillment plan (4.4), output writing. Union and
      Difference are rewritten to intersections before costing, so
      they share this shape (Section 4.2).
    - Hash_join / Hash_intersect: the incremental hash evaluation path
      — insert the stage's delta into retained per-side hash indexes
      (build) and probe each delta against the opposite index (probe),
      then output writing. No temp files, no sorts, no re-merging of
      old files: both steps are linear in the delta, which is what
      makes the path cheap at late stages.
    - Project (4.7): temp write, sort, duplicate-scan, output.
    - Overhead: the per-stage constant, "measured at run-time". *)

type op_kind =
  | Scan
  | Select
  | Join
  | Intersect
  | Hash_join
  | Hash_intersect
  | Project
  | Overhead

type step =
  | Step_read  (** fetch sample disk blocks *)
  | Step_check  (** per-tuple predicate/duplicate evaluation *)
  | Step_write_temp  (** write operand tuples to temp files (4.2) *)
  | Step_sort  (** external sort (4.3) *)
  | Step_merge  (** merge sorted files, one pass per pairing (4.4) *)
  | Step_hash_build  (** insert delta tuples into retained hash indexes *)
  | Step_hash_probe  (** probe delta tuples against the opposite index *)
  | Step_output  (** materialize result tuples and pages *)
  | Step_fixed  (** per-stage constant bookkeeping *)

(** Workload of one operator for one stage. Fill only the fields the
    kind uses; {!zero_measures} has everything 0. *)
type measures = {
  blocks : float;  (** disk blocks read (Scan) *)
  n_input : float;  (** new input tuples this stage (sum over operands) *)
  comparisons : float;  (** predicate comparisons per input tuple *)
  temp_pages : float;  (** temp-file pages written *)
  nlogn : float;  (** sum over operands of n * log2 n for new sorts *)
  merge_reads : float;  (** tuples re-read while merging sorted files *)
  build_tuples : float;
      (** tuples inserted into retained hash indexes this stage (deltas
          plus any catch-up after a sort->hash switch) *)
  probe_tuples : float;  (** delta tuples probed against the indexes *)
  out_tuples : float;  (** result tuples produced *)
  out_pages : float;  (** result pages written *)
  pairings : float;  (** sorted-file pairs merged (2s-1 full, 1 partial) *)
}

val zero_measures : measures

val steps : op_kind -> step list
(** The cost-bearing steps of the kind, in execution order. *)

val step_features : step -> measures -> float array
val step_dim : step -> int

val step_initial : step -> float array
(** Designer initial coefficients — per Section 5 deliberately
    calibrated on the largest tuples and richest formulas the
    prototype supports, i.e. pessimistic until adapted. *)

val kind_name : op_kind -> string
val step_name : step -> string
val pp_measures : Format.formatter -> measures -> unit
