(** The simulated disk device: the single point through which the
    evaluation engine pays for work. Each primitive charges the clock
    at the ground-truth {!Cost_params} rate (with jitter), bumps the
    matching {!Io_stats} counter (a {!Taqp_obs.Metrics} counter under
    the hood), and — when a tracer is attached — emits a
    storage-category span covering the charge.

    A {!Taqp_fault.Injector} may be installed at creation; every charge
    point then consults it (see docs/ROBUSTNESS.md): latency spikes
    inflate the charge, stalls append dead time, and transient read
    faults void the attempt and are retried with exponential backoff —
    all of it charged to the clock, counted ([io.retries], [fault.*])
    and traced ([fault.*] instant events). A transient fault that
    survives the plan's retry budget escalates to
    {!Taqp_fault.Injector.Unrecoverable}. Without an injector (or with
    {!Taqp_fault.Fault_plan.none}) the charge path is bit-for-bit the
    fault-free one. *)

type t

val create :
  ?params:Cost_params.t ->
  ?jitter_rng:Taqp_rng.Prng.t ->
  ?metrics:Taqp_obs.Metrics.t ->
  ?tracer:Taqp_obs.Tracer.t ->
  ?faults:Taqp_fault.Injector.t ->
  Clock.t ->
  t
(** [params] defaults to {!Cost_params.default}. Without [jitter_rng]
    charges are exact even if [params.jitter_sigma > 0]. [metrics]
    defaults to a fresh registry (the [io.*] counters always live in
    one). [tracer] defaults to the clock's attached tracer, or the
    disabled tracer; when enabled it is also attached to the clock so
    deadline aborts are recorded. Tracing is strictly read-only with
    respect to the clock: enabling it never changes a charge.
    [faults] installs a fault injector; one whose plan has no rules is
    normalized away and leaves the device untouched. *)

val clock : t -> Clock.t
val stats : t -> Io_stats.t
val params : t -> Cost_params.t
val metrics : t -> Taqp_obs.Metrics.t
val tracer : t -> Taqp_obs.Tracer.t

val faults_active : t -> bool
val fault_injector : t -> Taqp_fault.Injector.t option

val fault_log : t -> Taqp_fault.Injector.event list
(** Every fault injected so far, oldest first; empty without an
    installed injector. *)

val fault_time : t -> float
(** Total clock seconds that exist only because of injected faults:
    spike excess, stall time, retry backoff and re-read charges. *)

val read_block : t -> unit

val cache_probe : t -> unit
(** Serve one unit from the shared cross-query cache ({!Taqp_cache}):
    charges {!Cost_params.cache_probe} under the ["cache_probe"] spend
    label. Jittered like any charge but exempt from fault injection
    (the injector models the storage path the hit avoided) and not
    counted as a block read — {!Io_stats} keeps reporting real device
    IO, so [blocks_read] becomes the miss count on a cached run. *)

val check_tuples : t -> n:int -> comparisons:int -> unit
(** Fetch-and-test [n] tuples, each evaluating [comparisons]
    comparisons. *)

val write_pages : t -> n:int -> unit
val write_temp_tuples : t -> n:int -> unit

val sort : t -> n:int -> unit
(** External sort of [n] tuples: charges c*n*log2(n) + c'*n. *)

val merge_tuples : t -> n:int -> unit

val hash_build : t -> n:int -> unit
(** Insert [n] tuples into a retained hash index (the incremental
    evaluation path's build step); emits a [hash_build] storage span. *)

val hash_probe : t -> n:int -> unit
(** Probe [n] delta tuples against a retained hash index; emits a
    [hash_probe] storage span. Candidate checks are charged separately
    via {!check_tuples}. *)

val output_tuples : t -> n:int -> unit
val estimator_update : t -> n:int -> unit

val stage_overhead : t -> unit
(** The fixed per-stage bookkeeping charge; also counts a stage. *)

val misc : t -> float -> unit
(** Charge an arbitrary duration (no jitter, no counter, no span). *)

val planning : t -> float -> unit
(** Identical charge to {!misc}, but reported to a spend listener under
    the ["planning"] label so an audit ledger can attribute the
    planner's QCOST arithmetic separately from anonymous overhead. *)

val set_spend_listener : t -> (string -> float -> unit) option -> unit
(** Install (or clear) the audit spend hook: after every clock charge
    the device makes, the listener receives the charge's spend label
    and the clock seconds that actually elapsed — including the
    truncated remainder when an armed abort deadline fires mid-charge,
    reported just before the exception propagates. Labels are the
    storage span names ([read_block], [sort], [journal_write], ...)
    plus ["planning"], ["misc"] and the fault family ["fault.retry"],
    ["fault.spike"], ["fault.stall"], ["fault.backoff"]. The listener
    is strictly observational: it must not (and cannot, through this
    interface) touch the clock, the jitter stream or the fault PRNG —
    an audited run is bit-identical to an unaudited one. *)

val merge_setup : t -> unit
(** Fixed cost of opening one pairing of sorted files for a merge. *)

val measure : t -> float -> float
(** What the device's OS clock reports for a [seconds]-long interval:
    quantized to {!Cost_params.clock_tick} — the measurement the
    adaptive cost formulas are trained on. *)

val journal_write : t -> bytes:int -> unit
(** Append [bytes] of checkpoint payload to the crash-recovery stage
    journal: charges [bytes * journal_byte_write] seconds to the clock
    (an armed abort deadline can fire mid-checkpoint) and emits a
    [journal_write] storage span. The charge is sequential-log style —
    unjittered and exempt from fault injection — so enabling
    journaling perturbs neither the jitter nor the fault PRNG stream,
    and a resumed run's charge sequence matches the uninterrupted
    one's. No-op for [bytes <= 0]. *)

(** {2 Checkpointing}

    A {!dump} captures the device-side mutable state a
    {!Taqp_recover} checkpoint must carry: the [io.*] counters, the
    jitter stream position and the fault injector's state. The clock
    is deliberately not included — recovery restores it separately to
    the journaled checkpoint instant via {!Clock.restore}. A restore
    targets a device rebuilt with the same shape (same jitter
    presence, same fault plan). *)

type dump = {
  d_io : int list;
  d_jitter : Taqp_rng.Prng.state option;
  d_faults : Taqp_fault.Injector.dump option;
}

val dump : t -> dump

val restore : t -> dump -> unit
(** @raise Invalid_argument if the jitter or injector presence differs
    between the dump and the target device. *)
