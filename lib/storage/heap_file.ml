open Taqp_data

type t = {
  uid : int;
  schema : Schema.t;
  blocks : Tuple.t array array;
  n_tuples : int;
  blocking_factor : int;
  block_bytes : int;
  tuple_bytes : int;
}

(* Process-global creation-order counter: relation *names* collide
   across catalogs ("r1" in every Paper_setup workload), so the shared
   cross-query cache keys entries by this identity instead. *)
let next_uid = ref 0

exception Storage_error of string

let error fmt = Fmt.kstr (fun s -> raise (Storage_error s)) fmt

let check_tuple schema tuple_bytes t =
  if Tuple.arity t <> Schema.arity schema then
    error "tuple arity %d does not match schema arity %d" (Tuple.arity t)
      (Schema.arity schema);
  List.iteri
    (fun i (a : Schema.attribute) ->
      match Value.type_of (Tuple.get t i) with
      | None -> () (* nulls fit any column *)
      | Some ty ->
          if ty <> a.ty then
            error "attribute %s expects %s" a.name (Value.ty_name a.ty))
    (Schema.attrs schema);
  let sz = Tuple.byte_size t - Tuple.pad t in
  if sz > tuple_bytes then
    error "tuple of %d bytes exceeds the %d-byte slot" sz tuple_bytes

let repad tuple_bytes t =
  let fields_sz = Tuple.byte_size t - Tuple.pad t in
  Tuple.make ~pad:(tuple_bytes - fields_sz) (Tuple.fields t)

let create ?(block_bytes = 1024) ?(tuple_bytes = 200) ~schema tuples =
  if block_bytes <= 0 || tuple_bytes <= 0 then
    error "block and tuple sizes must be positive";
  let blocking_factor = block_bytes / tuple_bytes in
  if blocking_factor < 1 then error "tuple larger than a block";
  List.iter (check_tuple schema tuple_bytes) tuples;
  let tuples = Array.of_list (List.map (repad tuple_bytes) tuples) in
  let n = Array.length tuples in
  let n_blocks = (n + blocking_factor - 1) / blocking_factor in
  let blocks =
    Array.init n_blocks (fun b ->
        let lo = b * blocking_factor in
        let len = Int.min blocking_factor (n - lo) in
        Array.sub tuples lo len)
  in
  let uid = !next_uid in
  incr next_uid;
  { uid; schema; blocks; n_tuples = n; blocking_factor; block_bytes; tuple_bytes }

let uid t = t.uid
let schema t = t.schema
let n_tuples t = t.n_tuples
let n_blocks t = Array.length t.blocks
let blocking_factor t = t.blocking_factor
let block_bytes t = t.block_bytes
let tuple_bytes t = t.tuple_bytes

let block t i =
  if i < 0 || i >= Array.length t.blocks then
    invalid_arg "Heap_file.block: index out of range";
  Array.copy t.blocks.(i)

let read_block device t i =
  Device.read_block device;
  block t i

let iter f t = Array.iter (fun b -> Array.iter f b) t.blocks
let fold f acc t =
  Array.fold_left (fun acc b -> Array.fold_left f acc b) acc t.blocks

let to_list t =
  List.concat_map Array.to_list (Array.to_list t.blocks)

let pages_for t n = (n + t.blocking_factor - 1) / t.blocking_factor
