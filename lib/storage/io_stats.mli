(** Counters of simulated device activity, accumulated per query run.
    The "blocks" column of the paper's tables is [blocks_read].

    Since the observability refactor the cells are
    {!Taqp_obs.Metrics.Counter}s — when the stats are created over a
    metrics registry (as {!Device.create} does) the same cells are
    visible to metrics sinks under the [io.*] names, so there is a
    single source of truth for device activity. *)

type t

val create : ?metrics:Taqp_obs.Metrics.t -> unit -> t
(** With [metrics], the counters are registered as [io.blocks_read],
    [io.tuples_checked], ... in that registry; otherwise they are
    detached. *)

(** {2 Reading} *)

val blocks_read : t -> int

val retries : t -> int
(** I/O attempts repeated after a transient injected fault
    ({!Device} retry-with-backoff); [blocks_read] counts logical
    reads once however many attempts they took. *)

val tuples_checked : t -> int
val pages_written : t -> int
val temp_tuples_written : t -> int
val tuples_sorted : t -> int
val tuples_merged : t -> int
val tuples_hashed : t -> int
val tuples_probed : t -> int
val tuples_output : t -> int
val stages : t -> int

(** {2 Bumping (the device's side)} *)

val incr_blocks_read : t -> unit
val incr_retries : t -> unit
val add_tuples_checked : t -> int -> unit
val add_pages_written : t -> int -> unit
val add_temp_tuples_written : t -> int -> unit
val add_tuples_sorted : t -> int -> unit
val add_tuples_merged : t -> int -> unit
val add_tuples_hashed : t -> int -> unit
val add_tuples_probed : t -> int -> unit
val add_tuples_output : t -> int -> unit
val incr_stages : t -> unit

(** {2 Snapshots} *)

val reset : t -> unit

val copy : t -> t
(** A detached snapshot of the current values. *)

val diff : t -> t -> t
(** [diff later earlier]: activity between two snapshots (detached). *)

val pp : Format.formatter -> t -> unit

(** {2 Checkpointing} *)

val values : t -> int list
(** Every counter value in a fixed internal order, for the
    {!Taqp_recover} checkpoint codec. *)

val restore : t -> int list -> unit
(** Overwrite the counters with values from a previous {!values}.
    @raise Invalid_argument on a length mismatch. *)
