type t = {
  block_read : float;
  tuple_check_base : float;
  per_comparison : float;
  page_write : float;
  temp_tuple_write : float;
  sort_per_nlogn : float;
  sort_per_tuple : float;
  merge_per_tuple : float;
  merge_setup : float;
  hash_build_per_tuple : float;
  hash_probe_per_tuple : float;
  output_per_tuple : float;
  stage_overhead : float;
  estimator_per_tuple : float;
  jitter_sigma : float;
  clock_tick : float;
  journal_byte_write : float;
  cache_probe : float;
}

let default =
  {
    block_read = 0.035;
    tuple_check_base = 0.0020;
    per_comparison = 0.0012;
    page_write = 0.015;
    temp_tuple_write = 0.0005;
    sort_per_nlogn = 0.00025;
    sort_per_tuple = 0.0008;
    merge_per_tuple = 0.0012;
    merge_setup = 0.008;
    hash_build_per_tuple = 0.0011;
    hash_probe_per_tuple = 0.0009;
    output_per_tuple = 0.0008;
    stage_overhead = 0.120;
    estimator_per_tuple = 0.0002;
    jitter_sigma = 0.06;
    clock_tick = 0.080;
    (* sequential append to a write-ahead log: ~one page_write per
       KiB of journal payload *)
    journal_byte_write = 1.5e-5;
    (* serving a block from the shared cache: a hash lookup plus a
       memory copy, ~20x cheaper than the disk read it replaces *)
    cache_probe = 0.002;
  }

let no_jitter t = { t with jitter_sigma = 0.0 }

let scale k t =
  {
    block_read = k *. t.block_read;
    tuple_check_base = k *. t.tuple_check_base;
    per_comparison = k *. t.per_comparison;
    page_write = k *. t.page_write;
    temp_tuple_write = k *. t.temp_tuple_write;
    sort_per_nlogn = k *. t.sort_per_nlogn;
    sort_per_tuple = k *. t.sort_per_tuple;
    merge_per_tuple = k *. t.merge_per_tuple;
    merge_setup = k *. t.merge_setup;
    hash_build_per_tuple = k *. t.hash_build_per_tuple;
    hash_probe_per_tuple = k *. t.hash_probe_per_tuple;
    output_per_tuple = k *. t.output_per_tuple;
    stage_overhead = k *. t.stage_overhead;
    estimator_per_tuple = k *. t.estimator_per_tuple;
    jitter_sigma = t.jitter_sigma;
    clock_tick = k *. t.clock_tick;
    journal_byte_write = k *. t.journal_byte_write;
    cache_probe = k *. t.cache_probe;
  }

let fast = { (scale 0.01 default) with stage_overhead = 0.01 *. default.stage_overhead }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>block_read=%gs tuple_check=%gs+%gs/cmp page_write=%gs@ \
     temp_write=%gs/t sort=%g*nlogn+%g*n merge=%gs/t hash=%gs/t+%gs/probe \
     out=%gs/t@ stage_overhead=%gs estimator=%gs/t jitter=%g tick=%gs@]"
    t.block_read t.tuple_check_base t.per_comparison t.page_write
    t.temp_tuple_write t.sort_per_nlogn t.sort_per_tuple t.merge_per_tuple
    t.hash_build_per_tuple t.hash_probe_per_tuple
    t.output_per_tuple t.stage_overhead t.estimator_per_tuple t.jitter_sigma
    t.clock_tick
