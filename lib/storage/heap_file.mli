(** Heap files: relations stored as an array of fixed-capacity disk
    blocks, the paper's storage layout (Section 5: 1 KB blocks holding
    5 tuples of 200 bytes each). The disk block is the cluster-sampling
    unit, so block boundaries are semantically load-bearing here. *)

open Taqp_data

type t

exception Storage_error of string

val create :
  ?block_bytes:int -> ?tuple_bytes:int -> schema:Schema.t -> Tuple.t list -> t
(** Pack the tuples into blocks in order. [block_bytes] defaults to
    1024, [tuple_bytes] to 200; the blocking factor is
    [block_bytes / tuple_bytes]. Tuples are padded (via their [pad])
    to occupy exactly [tuple_bytes].
    @raise Storage_error if a tuple's fields exceed [tuple_bytes] or a
    tuple does not match [schema]. *)

val uid : t -> int
(** Process-global creation-order identity. Relation names collide
    across catalogs (every workload calls its relations ["r1"],
    ["r2"]), so cross-query consumers — the shared cache in
    {!Taqp_cache} — key on this instead. *)

val schema : t -> Schema.t
val n_tuples : t -> int
val n_blocks : t -> int
val blocking_factor : t -> int
val block_bytes : t -> int
val tuple_bytes : t -> int

val block : t -> int -> Tuple.t array
(** The tuples of block [i] (the last block may be short). This is the
    logical content; charging the device for the read is the engine's
    job. @raise Invalid_argument on an out-of-range index. *)

val read_block : Device.t -> t -> int -> Tuple.t array
(** {!block} plus the device charge for one block read. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Tuple.t list

val pages_for : t -> int -> int
(** Number of blocks/pages needed to hold [n] tuples of this relation's
    width: ceil(n / blocking_factor). *)
