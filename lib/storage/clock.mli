(** The query-processing clock.

    The paper's prototype (ERAM on a SUN 3/60) read the operating-system
    clock and armed a timer interrupt at the time quota. This module
    reproduces both faces of that mechanism behind one interface:

    - a {e virtual} clock advanced explicitly by the cost charges of the
      simulated storage engine — deterministic, fast, and the substrate
      for all experiments; and
    - a {e wall} clock backed by the host's monotonic time — for live
      use of the library on real workloads.

    A deadline may be armed on the clock; in [`Abort] mode, crossing it
    during a charge raises {!Deadline_exceeded}, simulating the timer
    interrupt service routine that flips the algorithm's
    Stopping-Criterion. In [`Observe] mode the crossing is recorded but
    execution continues — ERAM's experimental mode, which lets the
    overspend be measured (Section 5). *)

type t

exception Deadline_exceeded of { now : float; deadline : float }

val create_virtual : unit -> t
(** A virtual clock starting at time 0.0. *)

val create_wall : unit -> t
(** A wall clock; [now] is seconds since creation. [charge] only
    checks the deadline (wall time advances by itself). *)

val is_virtual : t -> bool

val now : t -> float
(** Seconds elapsed on this clock. *)

val charge : t -> float -> unit
(** [charge t dt] accounts [dt] seconds of work. On a virtual clock the
    time advances by [dt]; on a wall clock [dt] is ignored. If a
    deadline is armed in [`Abort] mode and the charge would cross it,
    the virtual clock stops exactly at the deadline (the timer
    interrupt fires mid-operation) and {!Deadline_exceeded} is raised;
    a wall clock raises on the first charge observed past the deadline.
    @raise Invalid_argument on negative [dt]. *)

type deadline_mode = [ `Abort | `Observe ]

val arm : t -> mode:deadline_mode -> at:float -> unit
(** Arm a deadline at absolute clock time [at], and record a
    [deadline.armed] instant on the attached tracer. At most one
    deadline is armed at a time: arming {e replaces} any previously
    armed deadline and mode — there is no deadline stack, and the
    replaced instant can never fire again.

    Recovery note ({!Taqp_recover}): a resumed run re-arms from the
    {e original} absolute deadline recorded in the journal, never from
    [now + quota] — crash downtime is lost quota, exactly as an
    absolute transaction deadline demands. It does so through
    {!restore_deadline} (silent), not [arm], so the resumed trace
    stream carries no second [deadline.armed] instant. This is what lets interleaved jobs share the clock — a
    job re-arms its own deadline at every stage boundary, and a
    finished job's deadline must be {!disarm}ed (the executor does this
    when it finalizes a report) so that a later [sleep_until] past the
    stale instant cannot raise on behalf of a job that no longer
    exists. *)

val disarm : t -> unit
(** Remove the armed deadline. After [disarm] (or after {!arm} with a
    new target), crossing the old instant never raises. *)

val deadline : t -> float option

val armed : t -> (deadline_mode * float) option
(** The currently armed deadline with its mode, if any — what a
    resumable executor compares against to re-arm only when another
    job's deadline (or none) is in place. *)

val remaining : t -> float option
(** Time left before the armed deadline (may be negative). *)

val expired : t -> bool
(** The armed deadline has passed (always [false] when disarmed). *)

val sleep_until : t -> float -> unit
(** Advance a virtual clock to an absolute time (no-op if already
    past); busy-waits a wall clock. Used to model idle waiting. If a
    deadline is armed in [`Abort] mode and the target time lies past
    it, the sleeper is interrupted: the clock stops at the deadline
    and {!Deadline_exceeded} is raised. If the deadline has already
    passed when [sleep_until] is called, the pending interrupt fires
    immediately — even for a zero-length sleep. *)

(** {2 Observability}

    A {!Taqp_obs.Tracer} may be attached to the clock; armed deadlines
    and timer-interrupt aborts are then recorded as instant events
    ([deadline.armed], [deadline.abort]) stamped at the exact clock
    value they occurred at. The tracer only ever {e reads} the clock —
    attaching one never changes the charge sequence. *)

val set_tracer : t -> Taqp_obs.Tracer.t -> unit
val tracer : t -> Taqp_obs.Tracer.t

(** {2 Recovery}

    Used only by {!Taqp_recover} when rebuilding a crashed process's
    device. Both are silent: they emit no trace events and perform no
    deadline checks, because resuming must be observationally neutral —
    the journal already contains everything the dead process emitted. *)

val restore : t -> now:float -> unit
(** Set a virtual clock to an absolute time (forwards or backwards —
    recovery lands exactly on the journaled instant).
    @raise Invalid_argument on a wall clock. *)

val restore_deadline : t -> mode:deadline_mode -> at:float -> unit
(** Exactly {!arm} minus the [deadline.armed] trace instant. *)
