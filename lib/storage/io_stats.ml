module Counter = Taqp_obs.Metrics.Counter

type t = {
  blocks_read : Counter.t;
  retries : Counter.t;
  tuples_checked : Counter.t;
  pages_written : Counter.t;
  temp_tuples_written : Counter.t;
  tuples_sorted : Counter.t;
  tuples_merged : Counter.t;
  tuples_hashed : Counter.t;
  tuples_probed : Counter.t;
  tuples_output : Counter.t;
  stages : Counter.t;
}

let create ?metrics () =
  let cell name =
    match metrics with
    | Some registry -> Taqp_obs.Metrics.counter registry ("io." ^ name)
    | None -> Counter.make ("io." ^ name)
  in
  {
    blocks_read = cell "blocks_read";
    retries = cell "retries";
    tuples_checked = cell "tuples_checked";
    pages_written = cell "pages_written";
    temp_tuples_written = cell "temp_tuples_written";
    tuples_sorted = cell "tuples_sorted";
    tuples_merged = cell "tuples_merged";
    tuples_hashed = cell "tuples_hashed";
    tuples_probed = cell "tuples_probed";
    tuples_output = cell "tuples_output";
    stages = cell "stages";
  }

let blocks_read t = Counter.value t.blocks_read
let retries t = Counter.value t.retries
let tuples_checked t = Counter.value t.tuples_checked
let pages_written t = Counter.value t.pages_written
let temp_tuples_written t = Counter.value t.temp_tuples_written
let tuples_sorted t = Counter.value t.tuples_sorted
let tuples_merged t = Counter.value t.tuples_merged
let tuples_hashed t = Counter.value t.tuples_hashed
let tuples_probed t = Counter.value t.tuples_probed
let tuples_output t = Counter.value t.tuples_output
let stages t = Counter.value t.stages

let incr_blocks_read t = Counter.incr t.blocks_read
let incr_retries t = Counter.incr t.retries
let add_tuples_checked t n = Counter.add t.tuples_checked n
let add_pages_written t n = Counter.add t.pages_written n
let add_temp_tuples_written t n = Counter.add t.temp_tuples_written n
let add_tuples_sorted t n = Counter.add t.tuples_sorted n
let add_tuples_merged t n = Counter.add t.tuples_merged n
let add_tuples_hashed t n = Counter.add t.tuples_hashed n
let add_tuples_probed t n = Counter.add t.tuples_probed n
let add_tuples_output t n = Counter.add t.tuples_output n
let incr_stages t = Counter.incr t.stages

let fields t =
  [
    t.blocks_read;
    t.retries;
    t.tuples_checked;
    t.pages_written;
    t.temp_tuples_written;
    t.tuples_sorted;
    t.tuples_merged;
    t.tuples_hashed;
    t.tuples_probed;
    t.tuples_output;
    t.stages;
  ]

let reset t = List.iter (fun c -> Counter.set c 0) (fields t)

let copy t =
  let snapshot = create () in
  List.iter2
    (fun dst src -> Counter.set dst (Counter.value src))
    (fields snapshot) (fields t);
  snapshot

let diff later earlier =
  let d = create () in
  List.iter2
    (fun dst (l, e) -> Counter.set dst (Counter.value l - Counter.value e))
    (fields d)
    (List.combine (fields later) (fields earlier));
  d

let pp ppf t =
  Format.fprintf ppf
    "blocks=%d retries=%d checked=%d pages_out=%d temp=%d sorted=%d merged=%d \
     hashed=%d probed=%d out=%d stages=%d"
    (blocks_read t) (retries t) (tuples_checked t) (pages_written t)
    (temp_tuples_written t) (tuples_sorted t) (tuples_merged t)
    (tuples_hashed t) (tuples_probed t) (tuples_output t) (stages t)

let values t = List.map Counter.value (fields t)

let restore t vs =
  let fs = fields t in
  if List.length vs <> List.length fs then
    invalid_arg "Io_stats.restore: field count mismatch";
  List.iter2 Counter.set fs vs
