(** The ground-truth device cost model.

    The simulated storage engine charges the {!Clock} according to these
    per-primitive rates (seconds). The time-control algorithm never sees
    them — it must fit its own adaptive cost-formula coefficients from
    observed stage times, exactly as the 1989 prototype had to fit a
    SUN 3/60. [jitter_sigma] adds per-charge multiplicative lognormal
    noise (mean 1), modeling OS and device variability.

    Defaults are calibrated so the paper's workloads behave at the
    paper's scale: a 2,000-block relation takes minutes to scan, so a
    10-second quota affords sampling a few dozen blocks. *)

type t = {
  block_read : float;  (** random read of one disk block *)
  tuple_check_base : float;  (** fetch a tuple from a read block *)
  per_comparison : float;  (** each comparison evaluated on a tuple *)
  page_write : float;  (** write one output/temp page *)
  temp_tuple_write : float;  (** append one tuple to a temp file *)
  sort_per_nlogn : float;  (** external-sort cost per n*log2(n) unit *)
  sort_per_tuple : float;  (** linear part of the sort cost *)
  merge_per_tuple : float;  (** read+compare one tuple during merge *)
  merge_setup : float;  (** fixed cost of opening one sorted-file pairing *)
  hash_build_per_tuple : float;
      (** insert one tuple into a retained hash index (key extraction,
          bucket chase, link) *)
  hash_probe_per_tuple : float;
      (** probe one delta tuple against a retained hash index (candidate
          residual checks are charged separately, per candidate) *)
  output_per_tuple : float;  (** materialize one result tuple *)
  stage_overhead : float;  (** fixed per-stage bookkeeping *)
  estimator_per_tuple : float;  (** fold one sample tuple into estimate *)
  jitter_sigma : float;  (** lognormal sigma of per-charge noise *)
  clock_tick : float;
      (** granularity of the OS clock the adaptive formulas read: observed
          step durations are quantized to this tick (the prototype noted
          its "system clock did not provide enough accuracy"); 0 = exact *)
  journal_byte_write : float;
      (** append one byte to the crash-recovery stage journal
          ({!Taqp_recover}): a sequential, unjittered log write. Only
          charged when journaling is enabled — with journaling off this
          rate is never consulted. *)
  cache_probe : float;
      (** serve one unit from the shared cross-query cache
          ({!Taqp_cache}): a hash lookup plus a memory copy, replacing
          the {!block_read} (or sort/build) the miss path would have
          charged. Priced so cache savings appear on the virtual clock,
          not just wall time. Only charged when a cache is attached —
          with caching off this rate is never consulted. *)
}

val default : t
(** The calibrated 1989-scale device. *)

val no_jitter : t -> t

val fast : t
(** A device two orders of magnitude faster: a "large main memory"
    setting (the paper's planned main-memory-only variant). *)

val scale : float -> t -> t
(** Multiply every rate (not the jitter) by a factor. *)

val pp : Format.formatter -> t -> unit
