module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Metrics = Taqp_obs.Metrics
module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector

(* The fault meters live in the shared registry only when an injector
   is installed, so a fault-free run's metrics dump is unchanged. *)
type fault_meters = {
  m_read_errors : Metrics.Counter.t;
  m_torn_blocks : Metrics.Counter.t;
  m_latency_spikes : Metrics.Counter.t;
  m_stalls : Metrics.Counter.t;
  m_unrecoverable : Metrics.Counter.t;
  m_crashes : Metrics.Counter.t;
}

type t = {
  clock : Clock.t;
  params : Cost_params.t;
  jitter_rng : Taqp_rng.Prng.t option;
  stats : Io_stats.t;
  metrics : Metrics.t;
  tracer : Tracer.t;
  faults : (Injector.t * fault_meters) option;
  mutable spend : (string -> float -> unit) option;
      (** audit hook: called with (label, clock seconds actually
          advanced) after every charge — including a truncated one
          when an armed deadline fires mid-charge. Strictly read-only
          with respect to the clock and every PRNG stream. *)
}

let create ?(params = Cost_params.default) ?jitter_rng ?metrics ?tracer ?faults
    clock =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let tracer =
    match tracer with
    | Some tr -> tr
    | None -> Clock.tracer clock
  in
  if Tracer.enabled tracer then Clock.set_tracer clock tracer;
  let faults =
    (* An injector with no rules is normalized away: the charge path is
       then bit-for-bit the uninstrumented one. *)
    match faults with
    | Some inj when Injector.active inj ->
        Some
          ( inj,
            {
              m_read_errors = Metrics.counter metrics "fault.read_errors";
              m_torn_blocks = Metrics.counter metrics "fault.torn_blocks";
              m_latency_spikes = Metrics.counter metrics "fault.latency_spikes";
              m_stalls = Metrics.counter metrics "fault.stalls";
              m_unrecoverable = Metrics.counter metrics "fault.unrecoverable";
              m_crashes = Metrics.counter metrics "fault.crashes";
            } )
    | Some _ | None -> None
  in
  {
    clock;
    params;
    jitter_rng;
    stats = Io_stats.create ~metrics ();
    metrics;
    tracer;
    faults;
    spend = None;
  }

let clock t = t.clock
let stats t = t.stats
let params t = t.params
let metrics t = t.metrics
let tracer t = t.tracer

let fault_injector t = Option.map fst t.faults
let faults_active t = Option.is_some t.faults

let fault_log t =
  match t.faults with None -> [] | Some (inj, _) -> Injector.events inj

let fault_time t =
  match t.faults with None -> 0.0 | Some (inj, _) -> Injector.injected_time inj

let set_spend_listener t f = t.spend <- f

let jitter t =
  match t.jitter_rng with
  | None -> 1.0
  | Some rng -> Taqp_rng.Prng.lognormal_factor rng t.params.jitter_sigma

(* Every clock advance the device makes funnels through [advance]: with
   no listener installed it is exactly [Clock.charge] (a single [match]
   on an immediate — the disabled path costs nothing); with one, the
   realized clock delta is reported under [label] after the charge.
   The delta is measured from the clock itself, so a charge truncated
   by an armed abort deadline reports only the seconds that actually
   elapsed before re-raising — which is what lets a ledger account for
   an aborted stage to the last tick. *)
let advance t label dt =
  match t.spend with
  | None -> Clock.charge t.clock dt
  | Some f -> (
      let before = Clock.now t.clock in
      match Clock.charge t.clock dt with
      | () -> f label (Clock.now t.clock -. before)
      | exception e ->
          f label (Clock.now t.clock -. before);
          raise e)

(* Charge with a storage-level span around it. The disabled path is a
   single branch — no closure, no allocation — so the hot block-read
   path costs exactly what it did before instrumentation existed. The
   charge itself is identical either way: tracing reads the clock, it
   never advances it. If the charge trips an armed deadline the
   exception propagates and the clock's own [deadline.abort] instant
   marks the spot (a dangling storage span is fine in both formats).

   [spend_label] defaults to the span name but is deliberately a
   separate concept: a fault retry re-pays the same span [name] (so
   the trace stream is bit-identical with or without a listener) while
   the ledger sees it as "fault.retry". *)
let plain_traced_charge ?spend_label t name cost =
  let label = match spend_label with Some l -> l | None -> name in
  if Tracer.enabled t.tracer then begin
    let begin_ts = Clock.now t.clock in
    advance t label (cost *. jitter t);
    Tracer.complete t.tracer ~cat:"storage" ~begin_ts name
  end
  else advance t label (cost *. jitter t)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let bump_meter meters = function
  | Fault_plan.Read_error -> Metrics.Counter.incr meters.m_read_errors
  | Fault_plan.Torn_block -> Metrics.Counter.incr meters.m_torn_blocks
  | Fault_plan.Latency_spike _ -> Metrics.Counter.incr meters.m_latency_spikes
  | Fault_plan.Stall _ -> Metrics.Counter.incr meters.m_stalls
  | Fault_plan.Crash -> Metrics.Counter.incr meters.m_crashes

let fault_instant t ~op ~attempt kind =
  if Tracer.enabled t.tracer then
    let extra =
      match kind with
      | Fault_plan.Latency_spike f -> [ ("factor", Event.Float f) ]
      | Fault_plan.Stall d -> [ ("duration", Event.Float d) ]
      | Fault_plan.Read_error | Fault_plan.Torn_block | Fault_plan.Crash -> []
    in
    Tracer.instant t.tracer ~cat:"fault"
      ~args:
        ([ ("op", Event.String op); ("attempt", Event.Int attempt) ] @ extra)
      ("fault." ^ Fault_plan.kind_name kind)

(* A charge point under an installed fault plan. Every attempt pays the
   nominal (jittered) charge; then the injector is consulted once:

   - [Latency_spike f] inflates the attempt by charging the excess
     [(f-1) * cost] on top — the operation completed, just slowly;
   - [Stall d] appends [d] seconds of dead time (no jitter: a stall is
     wall-time the device spends not working);
   - [Read_error]/[Torn_block] void the attempt: the device waits out
     an exponential backoff (charged) and retries, re-paying the
     nominal cost, until the plan's retry budget is spent — then the
     fault escalates to {!Injector.Unrecoverable}.

   All fault-induced time goes through the clock, so an armed abort
   deadline can fire mid-retry exactly like the paper's timer
   interrupt; the injected seconds are also accumulated on the
   injector for the report's degradation accounting. *)
let faulted_charge t inj meters name cost =
  let plan = Injector.plan inj in
  let rec attempt n =
    plain_traced_charge
      ?spend_label:(if n > 1 then Some "fault.retry" else None)
      t name cost;
    match Injector.draw inj ~op:name ~now:(Clock.now t.clock) with
    | None -> ()
    | Some (Fault_plan.Latency_spike factor as kind) ->
        bump_meter meters kind;
        Injector.record inj ~op:name ~kind ~at:(Clock.now t.clock) ~attempt:n
          ~recovered:true;
        fault_instant t ~op:name ~attempt:n kind;
        let extra = cost *. (factor -. 1.0) in
        Injector.add_injected_time inj extra;
        plain_traced_charge ~spend_label:"fault.spike" t (name ^ ".spike") extra
    | Some (Fault_plan.Stall d as kind) ->
        bump_meter meters kind;
        Injector.record inj ~op:name ~kind ~at:(Clock.now t.clock) ~attempt:n
          ~recovered:true;
        fault_instant t ~op:name ~attempt:n kind;
        Injector.add_injected_time inj d;
        advance t "fault.stall" d
    | Some (Fault_plan.Crash as kind) ->
        (* The process dies at the charge point. Nothing is degraded,
           nothing is retried — the exception escapes everything; only
           state journaled before this instant survives. *)
        bump_meter meters kind;
        Injector.record inj ~op:name ~kind ~at:(Clock.now t.clock) ~attempt:n
          ~recovered:false;
        fault_instant t ~op:name ~attempt:n kind;
        raise (Injector.Crashed { op = name; at = Clock.now t.clock })
    | Some ((Fault_plan.Read_error | Fault_plan.Torn_block) as kind) ->
        let recovered = n <= plan.Fault_plan.max_retries in
        bump_meter meters kind;
        Injector.record inj ~op:name ~kind ~at:(Clock.now t.clock) ~attempt:n
          ~recovered;
        fault_instant t ~op:name ~attempt:n kind;
        if not recovered then begin
          Metrics.Counter.incr meters.m_unrecoverable;
          raise
            (Injector.Unrecoverable
               { op = name; kind; attempts = n; at = Clock.now t.clock })
        end;
        Io_stats.incr_retries t.stats;
        let backoff =
          plan.Fault_plan.backoff
          *. (plan.Fault_plan.backoff_multiplier ** float_of_int (n - 1))
        in
        (* the voided attempt's cost was already charged above; the
           backoff and the re-read to come are all fault-induced *)
        Injector.add_injected_time inj (backoff +. cost);
        advance t "fault.backoff" backoff;
        attempt (n + 1)
  in
  attempt 1

let traced_charge t name cost =
  match t.faults with
  | None -> plain_traced_charge t name cost
  | Some (inj, meters) -> faulted_charge t inj meters name cost

let read_block t =
  Io_stats.incr_blocks_read t.stats;
  traced_charge t "read_block" t.params.block_read

(* A cache hit: the unit is served from memory instead of the disk, so
   the charge is jittered like any other work but exempt from fault
   injection — the injector models the storage path the hit just
   avoided. Not counted as a block read ([Io_stats] keeps reporting
   real device IO; the cache keeps its own hit/miss counters). *)
let cache_probe t = plain_traced_charge t "cache_probe" t.params.cache_probe

let check_tuples t ~n ~comparisons =
  if n > 0 then begin
    Io_stats.add_tuples_checked t.stats n;
    let per =
      t.params.tuple_check_base
      +. (float_of_int comparisons *. t.params.per_comparison)
    in
    traced_charge t "check_tuples" (float_of_int n *. per)
  end

let write_pages t ~n =
  if n > 0 then begin
    Io_stats.add_pages_written t.stats n;
    traced_charge t "write_pages" (float_of_int n *. t.params.page_write)
  end

let write_temp_tuples t ~n =
  if n > 0 then begin
    Io_stats.add_temp_tuples_written t.stats n;
    traced_charge t "write_temp" (float_of_int n *. t.params.temp_tuple_write)
  end

let sort t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_sorted t.stats n;
    let fn = float_of_int n in
    let logn = if n > 1 then log (float_of_int n) /. log 2.0 else 1.0 in
    traced_charge t "sort"
      ((t.params.sort_per_nlogn *. fn *. logn) +. (t.params.sort_per_tuple *. fn))
  end

let merge_tuples t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_merged t.stats n;
    traced_charge t "merge" (float_of_int n *. t.params.merge_per_tuple)
  end

let hash_build t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_hashed t.stats n;
    traced_charge t "hash_build" (float_of_int n *. t.params.hash_build_per_tuple)
  end

let hash_probe t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_probed t.stats n;
    traced_charge t "hash_probe" (float_of_int n *. t.params.hash_probe_per_tuple)
  end

let output_tuples t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_output t.stats n;
    traced_charge t "output" (float_of_int n *. t.params.output_per_tuple)
  end

let estimator_update t ~n =
  if n > 0 then
    traced_charge t "estimator_update" (float_of_int n *. t.params.estimator_per_tuple)

let stage_overhead t =
  Io_stats.incr_stages t.stats;
  traced_charge t "stage_overhead" t.params.stage_overhead

let misc t cost = advance t "misc" cost

(* Same unjittered charge as [misc], but labeled so a spend listener can
   attribute the planner's QCOST arithmetic separately from anonymous
   overhead. *)
let planning t cost = advance t "planning" cost

(* A checkpoint append to the write-ahead stage journal. Sequential,
   unjittered and exempt from fault injection: the journal is what
   recovery trusts, so modeling it on a separate, reliable log stream
   keeps the jitter and fault PRNG streams identical between a
   journaled and a plain run — and between the crashed run and its
   resumed continuation, which is what makes boundary-crash recovery
   bit-identical. The cost is still real clock time: an armed abort
   deadline can fire mid-checkpoint. *)
let journal_write t ~bytes =
  if bytes > 0 then begin
    let cost = float_of_int bytes *. t.params.journal_byte_write in
    if Tracer.enabled t.tracer then begin
      let begin_ts = Clock.now t.clock in
      advance t "journal_write" cost;
      Tracer.complete t.tracer ~cat:"storage" ~begin_ts "journal_write"
    end
    else advance t "journal_write" cost
  end

let merge_setup t = traced_charge t "merge_setup" t.params.merge_setup

let measure t seconds =
  let tick = t.params.clock_tick in
  if tick <= 0.0 then seconds
  else Float.max 0.0 (Float.round (seconds /. tick) *. tick)

(* ------------------------------------------------------------------ *)
(* Checkpointing: everything mutable behind the device except the clock
   itself, which recovery restores separately to the checkpoint's
   instant (the journal-append charge lands between the executor
   snapshot and the record write). *)

type dump = {
  d_io : int list;
  d_jitter : Taqp_rng.Prng.state option;
  d_faults : Injector.dump option;
}

let dump t =
  {
    d_io = Io_stats.values t.stats;
    d_jitter = Option.map Taqp_rng.Prng.state t.jitter_rng;
    d_faults = Option.map (fun (inj, _) -> Injector.dump inj) t.faults;
  }

let restore t d =
  Io_stats.restore t.stats d.d_io;
  (match (t.jitter_rng, d.d_jitter) with
  | None, None -> ()
  | Some rng, Some st -> Taqp_rng.Prng.set_state rng st
  | _ -> invalid_arg "Device.restore: jitter presence mismatch");
  match (t.faults, d.d_faults) with
  | None, None -> ()
  | Some (inj, _), Some idump -> Injector.restore inj idump
  | _ -> invalid_arg "Device.restore: fault-injector presence mismatch"
