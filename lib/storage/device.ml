module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Metrics = Taqp_obs.Metrics

type t = {
  clock : Clock.t;
  params : Cost_params.t;
  jitter_rng : Taqp_rng.Prng.t option;
  stats : Io_stats.t;
  metrics : Metrics.t;
  tracer : Tracer.t;
}

let create ?(params = Cost_params.default) ?jitter_rng ?metrics ?tracer clock =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let tracer =
    match tracer with
    | Some tr -> tr
    | None -> Clock.tracer clock
  in
  if Tracer.enabled tracer then Clock.set_tracer clock tracer;
  {
    clock;
    params;
    jitter_rng;
    stats = Io_stats.create ~metrics ();
    metrics;
    tracer;
  }

let clock t = t.clock
let stats t = t.stats
let params t = t.params
let metrics t = t.metrics
let tracer t = t.tracer

let jitter t =
  match t.jitter_rng with
  | None -> 1.0
  | Some rng -> Taqp_rng.Prng.lognormal_factor rng t.params.jitter_sigma

let charge t cost = Clock.charge t.clock (cost *. jitter t)

(* Charge with a storage-level span around it. The disabled path is a
   single branch — no closure, no allocation — so the hot block-read
   path costs exactly what it did before instrumentation existed. The
   charge itself is identical either way: tracing reads the clock, it
   never advances it. If the charge trips an armed deadline the
   exception propagates and the clock's own [deadline.abort] instant
   marks the spot (a dangling storage span is fine in both formats). *)
let traced_charge t name cost =
  if Tracer.enabled t.tracer then begin
    let begin_ts = Clock.now t.clock in
    charge t cost;
    Tracer.complete t.tracer ~cat:"storage" ~begin_ts name
  end
  else charge t cost

let read_block t =
  Io_stats.incr_blocks_read t.stats;
  traced_charge t "read_block" t.params.block_read

let check_tuples t ~n ~comparisons =
  if n > 0 then begin
    Io_stats.add_tuples_checked t.stats n;
    let per =
      t.params.tuple_check_base
      +. (float_of_int comparisons *. t.params.per_comparison)
    in
    traced_charge t "check_tuples" (float_of_int n *. per)
  end

let write_pages t ~n =
  if n > 0 then begin
    Io_stats.add_pages_written t.stats n;
    traced_charge t "write_pages" (float_of_int n *. t.params.page_write)
  end

let write_temp_tuples t ~n =
  if n > 0 then begin
    Io_stats.add_temp_tuples_written t.stats n;
    traced_charge t "write_temp" (float_of_int n *. t.params.temp_tuple_write)
  end

let sort t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_sorted t.stats n;
    let fn = float_of_int n in
    let logn = if n > 1 then log (float_of_int n) /. log 2.0 else 1.0 in
    traced_charge t "sort"
      ((t.params.sort_per_nlogn *. fn *. logn) +. (t.params.sort_per_tuple *. fn))
  end

let merge_tuples t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_merged t.stats n;
    traced_charge t "merge" (float_of_int n *. t.params.merge_per_tuple)
  end

let hash_build t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_hashed t.stats n;
    traced_charge t "hash_build" (float_of_int n *. t.params.hash_build_per_tuple)
  end

let hash_probe t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_probed t.stats n;
    traced_charge t "hash_probe" (float_of_int n *. t.params.hash_probe_per_tuple)
  end

let output_tuples t ~n =
  if n > 0 then begin
    Io_stats.add_tuples_output t.stats n;
    traced_charge t "output" (float_of_int n *. t.params.output_per_tuple)
  end

let estimator_update t ~n =
  if n > 0 then
    traced_charge t "estimator_update" (float_of_int n *. t.params.estimator_per_tuple)

let stage_overhead t =
  Io_stats.incr_stages t.stats;
  traced_charge t "stage_overhead" t.params.stage_overhead

let misc t cost = Clock.charge t.clock cost

let merge_setup t = traced_charge t "merge_setup" t.params.merge_setup

let measure t seconds =
  let tick = t.params.clock_tick in
  if tick <= 0.0 then seconds
  else Float.max 0.0 (Float.round (seconds /. tick) *. tick)
