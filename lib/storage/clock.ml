module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event

type deadline_mode = [ `Abort | `Observe ]

type kind = Virtual of { mutable t : float } | Wall of { start : float }

type t = {
  kind : kind;
  mutable deadline : float option;
  mutable mode : deadline_mode;
  mutable tracer : Tracer.t;
}

exception Deadline_exceeded of { now : float; deadline : float }

let monotonic () = Unix.gettimeofday ()

let create_virtual () =
  {
    kind = Virtual { t = 0.0 };
    deadline = None;
    mode = `Observe;
    tracer = Tracer.disabled;
  }

let create_wall () =
  {
    kind = Wall { start = monotonic () };
    deadline = None;
    mode = `Observe;
    tracer = Tracer.disabled;
  }

let set_tracer t tracer = t.tracer <- tracer
let tracer t = t.tracer

let is_virtual t = match t.kind with Virtual _ -> true | Wall _ -> false

let now t =
  match t.kind with
  | Virtual v -> v.t
  | Wall w -> monotonic () -. w.start

(* The timer-interrupt service routine: stamp the abort on the trace at
   the exact clock value it fired at, then raise. Reading the clock for
   the event does not charge it. *)
let abort t ~now ~deadline =
  Tracer.instant t.tracer ~cat:"clock" ~ts:now
    ~args:[ ("deadline", Event.Float deadline) ]
    "deadline.abort";
  raise (Deadline_exceeded { now; deadline })

let check_deadline t =
  match (t.deadline, t.mode) with
  | Some d, `Abort when now t > d -> abort t ~now:(now t) ~deadline:d
  | _, _ -> ()

let charge t dt =
  if dt < 0.0 then invalid_arg "Clock.charge: negative charge";
  match t.kind with
  | Virtual v -> (
      match (t.deadline, t.mode) with
      | Some d, `Abort when v.t +. dt > d ->
          (* The timer interrupt fires mid-operation, exactly at the
             deadline: the remainder of the charge is never performed. *)
          v.t <- d;
          abort t ~now:d ~deadline:d
      | _, _ -> v.t <- v.t +. dt)
  | Wall _ -> check_deadline t

let arm t ~mode ~at =
  t.deadline <- Some at;
  t.mode <- mode;
  Tracer.instant t.tracer ~cat:"clock"
    ~args:
      [
        ("at", Event.Float at);
        ( "mode",
          Event.String (match mode with `Abort -> "abort" | `Observe -> "observe")
        );
      ]
    "deadline.armed"

let disarm t = t.deadline <- None

let deadline t = t.deadline

let armed t =
  match t.deadline with None -> None | Some at -> Some (t.mode, at)

let remaining t =
  match t.deadline with None -> None | Some d -> Some (d -. now t)

let expired t = match t.deadline with None -> false | Some d -> now t > d

let sleep_until t at =
  match t.kind with
  | Virtual v -> (
      match (t.deadline, t.mode) with
      | Some d, `Abort when v.t > d ->
          (* The deadline had already passed when the sleeper called in:
             the interrupt is pending, so it fires immediately — even
             for a zero-length (or backwards) sleep target, which would
             otherwise return without ever recording [deadline.abort]. *)
          abort t ~now:v.t ~deadline:d
      | Some d, `Abort when at > d ->
          (* The interrupt fires while the process is asleep: wake at
             the deadline, not at [at]. *)
          if d > v.t then v.t <- d;
          abort t ~now:v.t ~deadline:d
      | _, _ -> if at > v.t then v.t <- at)
  | Wall _ ->
      while now t < at do
        ignore (Sys.opaque_identity ())
      done;
      check_deadline t

(* ------------------------------------------------------------------ *)
(* Recovery: both restore operations are deliberately silent — the
   resumed process replays nothing, so it must also emit nothing that
   an uninterrupted run would not have emitted at this point. *)

let restore t ~now:at =
  match t.kind with
  | Virtual v -> v.t <- at
  | Wall _ -> invalid_arg "Clock.restore: wall clock cannot be restored"

let restore_deadline t ~mode ~at =
  t.deadline <- Some at;
  t.mode <- mode
