module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Taqp = Taqp_core.Taqp
module Staged = Taqp_core.Staged
module Stopping = Taqp_timecontrol.Stopping
module Strategy = Taqp_timecontrol.Strategy
module Plan = Taqp_sampling.Plan
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Cost_model = Taqp_timecost.Cost_model
module Prng = Taqp_rng.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small_spec =
  { Generator.n_tuples = 500; tuple_bytes = 200; block_bytes = 1024 }

let small_selection = Paper_setup.selection ~spec:small_spec ~output:100 ~seed:5 ()

let observe_config =
  {
    Config.default with
    Config.stopping = Stopping.Soft_deadline { grace = 100.0 };
  }

(* ------------------------------------------------------------------ *)
(* End-to-end behaviour                                                *)

let test_selection_estimate_reasonable () =
  let wl = small_selection in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:2.0 wl.query in
  checkb "stages ran" true (r.Report.stages_completed >= 1);
  checkb "estimate in a sane band" true
    (r.Report.estimate > 20.0 && r.Report.estimate < 400.0);
  checkb "variance positive" true (r.Report.variance > 0.0);
  checkb "blocks sampled, not the full relation" true
    (r.Report.useful_blocks > 0 && r.Report.useful_blocks <= 100)

let test_estimates_concentrate_on_truth () =
  (* Across seeds, the mean estimate should be near the exact count
     (estimator unbiasedness through the full staged pipeline). *)
  let wl = small_selection in
  let s = Taqp_stats.Summary.create () in
  for seed = 1 to 40 do
    let r = Taqp.count_within ~config:observe_config ~seed wl.catalog ~quota:2.0 wl.query in
    Taqp_stats.Summary.add s r.Report.estimate
  done;
  let mean = Taqp_stats.Summary.mean s in
  checkb "mean near exact" true (Float.abs (mean -. float_of_int wl.exact) < 20.0)

let test_hard_abort_never_exceeds_quota () =
  let wl = small_selection in
  for seed = 1 to 20 do
    let config = { Config.default with Config.stopping = Stopping.Hard_deadline } in
    let r = Taqp.count_within ~config ~seed wl.catalog ~quota:1.0 wl.query in
    (* In abort mode the clock stops exactly at the deadline. *)
    checkb "never past the quota" true (r.Report.elapsed <= 1.0 +. 1e-9);
    checkb "overspend reported as zero" true (r.Report.overspend = 0.0)
  done

let test_exact_when_quota_huge () =
  let wl = small_selection in
  let r =
    Taqp.count_within ~config:observe_config ~seed:3 wl.catalog ~quota:1e6 wl.query
  in
  checkb "exact flag" true r.Report.exact;
  checkb "outcome exact" true (r.Report.outcome = Report.Exact);
  Alcotest.check (Alcotest.float 1e-6) "estimate equals exact"
    (float_of_int wl.exact) r.Report.estimate

let test_determinism () =
  let wl = small_selection in
  let run () = Taqp.count_within ~config:observe_config ~seed:9 wl.catalog ~quota:2.0 wl.query in
  let a = run () and b = run () in
  Alcotest.check (Alcotest.float 1e-12) "same estimate" a.Report.estimate b.Report.estimate;
  checki "same stages" a.Report.stages_completed b.Report.stages_completed;
  Alcotest.check (Alcotest.float 1e-12) "same elapsed" a.Report.elapsed b.Report.elapsed

let test_error_bound_stopping () =
  let wl = small_selection in
  let config =
    {
      observe_config with
      Config.stopping = Stopping.Error_bound { relative = 0.9; level = 0.95 };
    }
  in
  (* a quota that affords several stages but not the full relation *)
  let r = Taqp.count_within ~config ~seed:2 wl.catalog ~quota:3.0 wl.query in
  checkb "finished by error bound" true (r.Report.outcome = Report.Finished);
  checkb "did not consume everything" true (not r.Report.exact)

let test_max_stages_stopping () =
  let wl = small_selection in
  let config =
    { observe_config with Config.stopping = Stopping.Max_stages 1 }
  in
  let r = Taqp.count_within ~config ~seed:2 wl.catalog ~quota:1e5 wl.query in
  checki "exactly one stage" 1 r.Report.stages_completed

let test_report_accounting_invariants () =
  let wl = small_selection in
  for seed = 1 to 15 do
    let r = Taqp.count_within ~config:observe_config ~seed wl.catalog ~quota:1.5 wl.query in
    checkb "utilization in [0, 1.01]" true
      (r.Report.utilization >= 0.0 && r.Report.utilization <= 1.01);
    checkb "useful <= elapsed" true (r.Report.useful_time <= r.Report.elapsed +. 1e-9);
    checkb "waste nonnegative" true (r.Report.waste >= -1e-9);
    checkb "useful blocks <= total blocks" true
      (r.Report.useful_blocks <= r.Report.blocks_read);
    (match r.Report.outcome with
    | Report.Overspent ->
        checkb "overspend positive" true (r.Report.overspend > 0.0);
        checkb "flagged aborted" true r.Report.stage_aborted
    | Report.Quota_exhausted ->
        checkb "within quota" true (r.Report.elapsed <= r.Report.quota +. 1e-9)
    | Report.Finished | Report.Aborted_mid_stage | Report.Exact
    | Report.Faulted ->
        ());
    (* accounting identity: useful + waste + overspend covers the span *)
    let covered = r.Report.useful_time +. r.Report.waste +. r.Report.overspend in
    checkb "identity" true
      (Float.abs (covered -. Float.max r.Report.quota r.Report.elapsed) < 1e-6)
  done

let test_trace_consistency () =
  let wl = small_selection in
  let r = Taqp.count_within ~config:observe_config ~seed:4 wl.catalog ~quota:2.0 wl.query in
  checkb "trace nonempty" true (r.Report.trace <> []);
  List.iteri
    (fun i s ->
      checki "indices sequential" (i + 1) s.Report.index;
      checkb "positive fraction" true (s.Report.fraction > 0.0);
      checkb "monotone time" true (s.Report.finished_at >= s.Report.started_at);
      checkb "ops snapshots present" true (s.Report.ops <> []))
    r.Report.trace;
  let no_trace =
    Taqp.count_within
      ~config:{ observe_config with Config.trace = false }
      ~seed:4 wl.catalog ~quota:2.0 wl.query
  in
  checkb "trace disabled" true (no_trace.Report.trace = [])

(* ------------------------------------------------------------------ *)
(* Operator coverage                                                   *)

let test_join_runs () =
  let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:2.0 wl.query in
  checkb "ran" true (r.Report.stages_completed >= 1);
  checkb "sane" true (r.Report.estimate >= 0.0)

let test_intersection_runs () =
  let wl = Paper_setup.intersection ~spec:small_spec ~overlap:250 ~seed:5 () in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:3.0 wl.query in
  checkb "ran" true (r.Report.stages_completed >= 1)

let test_projection_runs () =
  let wl = Paper_setup.projection ~spec:small_spec ~groups:20 ~seed:5 () in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:3.0 wl.query in
  checkb "ran" true (r.Report.stages_completed >= 1);
  checkb "estimate bounded by population" true
    (r.Report.estimate <= float_of_int small_spec.Generator.n_tuples)

let test_projection_exact_when_exhausted () =
  let wl = Paper_setup.projection ~spec:small_spec ~groups:20 ~seed:5 () in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:1e6 wl.query in
  Alcotest.check (Alcotest.float 1e-6) "exact groups" 20.0 r.Report.estimate

let test_union_query_inclusion_exclusion () =
  let wl = Paper_setup.union_of_selects ~spec:small_spec ~seed:5 () in
  let r = Taqp.count_within ~config:observe_config ~seed:2 wl.catalog ~quota:1e6 wl.query in
  Alcotest.check (Alcotest.float 1e-6) "union exact via I-E"
    (float_of_int wl.exact) r.Report.estimate

let test_select_join_pipeline () =
  let wl = Paper_setup.select_join ~spec:small_spec ~target_output:2000 ~keep:100 ~seed:5 () in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:1e6 wl.query in
  Alcotest.check (Alcotest.float 1e-6) "pipeline exact"
    (float_of_int wl.exact) r.Report.estimate

(* ------------------------------------------------------------------ *)
(* Plans and strategies                                                *)

let run_with config seed =
  let wl = small_selection in
  Taqp.count_within ~config ~seed wl.catalog ~quota:2.0 wl.query

let test_simple_random_plan () =
  let config =
    {
      observe_config with
      Config.plan = { Plan.unit_kind = Plan.Simple_random; fulfillment = Plan.Full };
    }
  in
  let r = run_with config 1 in
  checkb "ran" true (r.Report.stages_completed >= 1);
  (* SRS pays one block read per tuple: far fewer tuples per second. *)
  let cluster = run_with observe_config 1 in
  checkb "cluster reads more tuples per unit time" true
    (Taqp_storage.Io_stats.tuples_checked cluster.Report.io
    > Taqp_storage.Io_stats.tuples_checked r.Report.io)

let test_partial_fulfillment () =
  let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
  let config =
    {
      observe_config with
      Config.plan = { Plan.unit_kind = Plan.Cluster; fulfillment = Plan.Partial };
    }
  in
  let r = Taqp.count_within ~config ~seed:1 wl.catalog ~quota:2.0 wl.query in
  checkb "ran" true (r.Report.stages_completed >= 1)

let test_strategies_run () =
  List.iter
    (fun strategy ->
      let r = run_with { observe_config with Config.strategy } 3 in
      checkb (Strategy.name strategy) true (r.Report.stages_completed >= 1))
    [
      Strategy.one_at_a_time ~d_beta:2.0 ();
      Strategy.single_interval ~d_alpha:2.0 ();
      Strategy.heuristic ~split:0.5;
    ]

let test_initial_selectivity_override () =
  let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
  let config =
    {
      observe_config with
      Config.initial_selectivities =
        { Config.no_initial_overrides with Config.join = Some 0.05 };
    }
  in
  let with_override = Taqp.count_within ~config ~seed:1 wl.catalog ~quota:2.0 wl.query in
  let without = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:2.0 wl.query in
  (* A lower assumed selectivity budgets cheaper stages -> at least as
     many blocks in the first stage. *)
  match (with_override.Report.trace, without.Report.trace) with
  | s1 :: _, s2 :: _ ->
      checkb "override affects stage 1 size" true (s1.Report.fraction >= s2.Report.fraction)
  | _ -> Alcotest.fail "expected traces"

(* ------------------------------------------------------------------ *)
(* Config validation and errors                                        *)

let test_config_validation () =
  let bad = { Config.default with Config.confidence_level = 1.5 } in
  checkb "bad confidence" true
    (match Config.validate bad with
    | () -> false
    | exception Invalid_argument _ -> true);
  let bad = { Config.default with Config.bisect_eps_frac = 0.0 } in
  checkb "bad eps" true
    (match Config.validate bad with
    | () -> false
    | exception Invalid_argument _ -> true);
  let bad =
    {
      Config.default with
      Config.initial_selectivities =
        { Config.no_initial_overrides with Config.join = Some 2.0 };
    }
  in
  checkb "bad selectivity" true
    (match Config.validate bad with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_run_errors () =
  let wl = small_selection in
  checkb "bad quota" true
    (match Taqp.count_within wl.catalog ~quota:0.0 wl.query with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "unknown relation" true
    (match
       Taqp.count_within wl.catalog ~quota:1.0 (Taqp_relational.Ra.relation "nope")
     with
    | _ -> false
    | exception Taqp_relational.Ra.Type_error _ -> true)

let test_parse_facade () =
  let e = Taqp.parse "select[sel < 100](r)" in
  checkb "parses" true (Taqp_relational.Ra.size e = 2)

let test_estimate_error_helper () =
  let wl = small_selection in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:1e6 wl.query in
  Alcotest.check (Alcotest.float 1e-9) "zero error when exact" 0.0
    (Taqp.estimate_error ~report:r ~exact:wl.exact)

(* ------------------------------------------------------------------ *)
(* Staged internals                                                    *)

let test_staged_plan_monotone () =
  let wl = small_selection in
  let cm = Cost_model.create () in
  let staged =
    Staged.compile ~catalog:wl.catalog ~config:Config.default ~rng:(Prng.create 1)
      ~cost_model:cm wl.query
  in
  let cost f = Staged.predicted_cost staged ~f ~mode:Staged.Plain in
  checkb "monotone in f" true (cost 0.01 < cost 0.1 && cost 0.1 < cost 0.5);
  let inflated =
    Staged.predicted_cost staged ~f:0.1
      ~mode:(Staged.Inflated { d_beta = 4.0; zero_beta = 0.05 })
  in
  checkb "inflation not cheaper" true (inflated >= cost 0.1);
  checki "one term" 1 (Staged.term_count staged);
  checkb "total points" true (Staged.total_points staged = 500.0)

let test_staged_plan_has_all_nodes () =
  let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
  let cm = Cost_model.create () in
  let staged =
    Staged.compile ~catalog:wl.catalog ~config:Config.default ~rng:(Prng.create 1)
      ~cost_model:cm wl.query
  in
  let plan = Staged.plan staged ~f:0.05 ~mode:Staged.Plain in
  (* 2 scans + 1 join + overhead *)
  checki "plan entries" 4 (List.length plan);
  checki "op ids" 1 (List.length (Staged.op_ids staged));
  checkb "overhead last" true
    ((List.nth plan 3).Staged.plan_kind = Taqp_timecost.Formulas.Overhead)

let main_suites =
    [
      ( "end-to-end",
        [
          Alcotest.test_case "selection estimate" `Quick test_selection_estimate_reasonable;
          Alcotest.test_case "estimates concentrate" `Slow
            test_estimates_concentrate_on_truth;
          Alcotest.test_case "hard abort honors quota" `Quick
            test_hard_abort_never_exceeds_quota;
          Alcotest.test_case "exact with huge quota" `Quick test_exact_when_quota_huge;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "error-bound stopping" `Quick test_error_bound_stopping;
          Alcotest.test_case "max-stages stopping" `Quick test_max_stages_stopping;
          Alcotest.test_case "report invariants" `Quick test_report_accounting_invariants;
          Alcotest.test_case "trace consistency" `Quick test_trace_consistency;
        ] );
      ( "operators",
        [
          Alcotest.test_case "join" `Quick test_join_runs;
          Alcotest.test_case "intersection" `Quick test_intersection_runs;
          Alcotest.test_case "projection" `Quick test_projection_runs;
          Alcotest.test_case "projection exact" `Quick test_projection_exact_when_exhausted;
          Alcotest.test_case "union via inclusion-exclusion" `Quick
            test_union_query_inclusion_exclusion;
          Alcotest.test_case "select over join" `Quick test_select_join_pipeline;
        ] );
      ( "plans-strategies",
        [
          Alcotest.test_case "simple random plan" `Quick test_simple_random_plan;
          Alcotest.test_case "partial fulfillment" `Quick test_partial_fulfillment;
          Alcotest.test_case "all strategies" `Quick test_strategies_run;
          Alcotest.test_case "initial selectivity override" `Quick
            test_initial_selectivity_override;
        ] );
      ( "config-errors",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "run errors" `Quick test_run_errors;
          Alcotest.test_case "parse facade" `Quick test_parse_facade;
          Alcotest.test_case "estimate error helper" `Quick test_estimate_error_helper;
        ] );
      ( "staged",
        [
          Alcotest.test_case "plan monotone" `Quick test_staged_plan_monotone;
          Alcotest.test_case "plan node coverage" `Quick test_staged_plan_has_all_nodes;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* SUM / AVG aggregates (the paper's "any aggregate" extension)        *)

module Aggregate = Taqp_core.Aggregate

let test_aggregate_parse () =
  checkb "count" true (Aggregate.parse "count" = Aggregate.Count);
  checkb "sum" true (Aggregate.parse "sum(sel)" = Aggregate.Sum "sel");
  checkb "avg spaces" true (Aggregate.parse " avg( sel ) " = Aggregate.Avg "sel");
  checkb "garbage" true
    (match Aggregate.parse "median(x)" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_sum_exact_when_exhausted () =
  let wl = small_selection in
  let agg = Aggregate.Sum "sel" in
  let r =
    Taqp.aggregate_within ~config:observe_config ~seed:1 ~aggregate:agg
      wl.catalog ~quota:1e6 wl.query
  in
  let truth = Taqp.aggregate_exact wl.catalog ~aggregate:agg wl.query in
  Alcotest.check (Alcotest.float 1e-6) "exact sum" truth r.Report.estimate;
  checkb "flagged exact" true r.Report.exact

let test_sum_estimates_concentrate () =
  let wl = small_selection in
  let agg = Aggregate.Sum "sel" in
  let truth = Taqp.aggregate_exact wl.catalog ~aggregate:agg wl.query in
  let s = Taqp_stats.Summary.create () in
  for seed = 1 to 30 do
    let r =
      Taqp.aggregate_within ~config:observe_config ~seed ~aggregate:agg
        wl.catalog ~quota:2.0 wl.query
    in
    checkb "variance positive" true (r.Report.variance > 0.0);
    Taqp_stats.Summary.add s r.Report.estimate
  done;
  checkb "mean near exact sum" true
    (Float.abs (Taqp_stats.Summary.mean s -. truth) < 0.25 *. truth)

let test_avg_estimate () =
  let wl = small_selection in
  let agg = Aggregate.Avg "sel" in
  let truth = Taqp.aggregate_exact wl.catalog ~aggregate:agg wl.query in
  (* sel < 100 selects sel values 0..99: true avg = 49.5 *)
  Alcotest.check (Alcotest.float 1e-6) "ground truth" 49.5 truth;
  let r =
    Taqp.aggregate_within ~config:observe_config ~seed:2 ~aggregate:agg
      wl.catalog ~quota:2.0 wl.query
  in
  checkb "avg in range" true (r.Report.estimate > 25.0 && r.Report.estimate < 75.0);
  let exact_run =
    Taqp.aggregate_within ~config:observe_config ~seed:2 ~aggregate:agg
      wl.catalog ~quota:1e6 wl.query
  in
  Alcotest.check (Alcotest.float 1e-6) "exact avg" 49.5 exact_run.Report.estimate

let test_sum_over_union () =
  let wl = Paper_setup.union_of_selects ~spec:small_spec ~seed:5 () in
  let agg = Aggregate.Sum "sel" in
  let truth = Taqp.aggregate_exact wl.catalog ~aggregate:agg wl.query in
  let r =
    Taqp.aggregate_within ~config:observe_config ~seed:1 ~aggregate:agg
      wl.catalog ~quota:1e6 wl.query
  in
  Alcotest.check (Alcotest.float 1e-6) "sum via inclusion-exclusion" truth
    r.Report.estimate

let test_aggregate_compile_errors () =
  let wl = small_selection in
  checkb "unknown attribute" true
    (match
       Taqp.aggregate_within ~aggregate:(Aggregate.Sum "nope") wl.catalog
         ~quota:1.0 wl.query
     with
    | _ -> false
    | exception Staged.Compile_error _ -> true);
  let proj = Paper_setup.projection ~spec:small_spec ~groups:10 ~seed:5 () in
  checkb "sum over projection rejected" true
    (match
       Taqp.aggregate_within ~aggregate:(Aggregate.Sum "grp") proj.catalog
         ~quota:1.0 proj.query
     with
    | _ -> false
    | exception Staged.Compile_error _ -> true)

let test_three_way_join_exact () =
  let wl =
    Paper_setup.three_way_join ~spec:{ small_spec with Generator.n_tuples = 120 }
      ~group_size:2 ~seed:5 ()
  in
  (* 60 groups of 2x2x2 = 480 output triples *)
  checki "ground truth" 480 wl.Paper_setup.exact;
  let r =
    Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:1e7
      wl.query
  in
  Alcotest.check (Alcotest.float 1e-6) "staged evaluation exact" 480.0
    r.Report.estimate;
  checkb "flagged exact" true r.Report.exact

let test_three_way_join_sampled () =
  let wl =
    Paper_setup.three_way_join ~spec:{ small_spec with Generator.n_tuples = 120 }
      ~group_size:2 ~seed:5 ()
  in
  let r =
    Taqp.count_within ~config:observe_config ~seed:2 wl.catalog ~quota:6.0
      wl.query
  in
  checkb "ran stages" true (r.Report.stages_completed >= 1);
  checkb "did not read everything" true (not r.Report.exact);
  checkb "estimate nonnegative" true (r.Report.estimate >= 0.0)

let test_partial_fulfillment_exhaustion_not_exact () =
  (* Under partial fulfillment, consuming the population over several
     stages does not make the estimate exact: only the diagonal
     stage combinations were evaluated. (A single stage that draws
     everything IS the full cross product, so force two stages.) *)
  let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
  let config =
    {
      observe_config with
      Config.plan = { Plan.unit_kind = Plan.Cluster; fulfillment = Plan.Partial };
    }
  in
  let cm = Cost_model.create () in
  let staged =
    Staged.compile ~catalog:wl.catalog ~config ~rng:(Prng.create 1)
      ~cost_model:cm wl.query
  in
  let clock = Taqp_storage.Clock.create_virtual () in
  let device = Taqp_storage.Device.create clock in
  checkb "first half" true (Staged.run_stage staged ~device ~f:0.5 <> None);
  checkb "second half" true (Staged.run_stage staged ~device ~f:1.0 <> None);
  checkb "population exhausted" true (Staged.exhausted staged);
  match Staged.current_estimate staged with
  | Some e ->
      checkb "estimate is still sampled" false
        e.Taqp_estimators.Count_estimator.is_exact
  | None -> Alcotest.fail "expected an estimate" 

(* ------------------------------------------------------------------ *)
(* Exact cluster variance (the Section 3.3 trade-off)                  *)

let clustered_selection () =
  let rng = Prng.create 61 in
  let file =
    Generator.relation ~spec:small_spec ~placement:`Clustered ~rng ()
  in
  let catalog = Taqp_storage.Catalog.of_list [ ("r", file) ] in
  let query = Taqp.parse "select[sel < 100](r)" in
  (catalog, query)

let run_variance_mode ~ve ~seed =
  let catalog, query = clustered_selection () in
  let config = { observe_config with Config.variance_estimator = ve } in
  Taqp.count_within ~config ~seed catalog ~quota:1.5 query

let test_cluster_variance_widens_ci () =
  (* Under clustered placement the exact cluster variance must report a
     (much) larger variance than the SRS approximation. *)
  let srs = ref 0.0 and cluster = ref 0.0 in
  for seed = 1 to 10 do
    srs := !srs +. (run_variance_mode ~ve:Config.Srs_approximation ~seed).Report.variance;
    cluster := !cluster +. (run_variance_mode ~ve:Config.Cluster_exact ~seed).Report.variance
  done;
  checkb "cluster variance larger" true (!cluster > 2.0 *. !srs)

let test_cluster_variance_costs_time () =
  (* The exact formula's bookkeeping is charged: same quota, at most the
     same number of sampled blocks. *)
  let srs = run_variance_mode ~ve:Config.Srs_approximation ~seed:3 in
  let cluster = run_variance_mode ~ve:Config.Cluster_exact ~seed:3 in
  checkb "charged for the sorting" true
    (cluster.Report.useful_blocks <= srs.Report.useful_blocks)

let test_cluster_variance_same_estimate_center () =
  let srs = run_variance_mode ~ve:Config.Srs_approximation ~seed:5 in
  let cluster = run_variance_mode ~ve:Config.Cluster_exact ~seed:5 in
  (* same seed, same draws until the extra charges diverge the staging;
     the estimator itself is unchanged, so both center near the truth *)
  checkb "both plausible" true
    (Float.abs (srs.Report.estimate -. 100.0) < 100.0
    && Float.abs (cluster.Report.estimate -. 100.0) < 100.0)

let test_cluster_variance_join_falls_back () =
  (* Unsupported shape: multi-relation terms silently keep the paper's
     approximation (documented fallback), and the run still works. *)
  let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
  let config = { observe_config with Config.variance_estimator = Config.Cluster_exact } in
  let r = Taqp.count_within ~config ~seed:1 wl.catalog ~quota:2.0 wl.query in
  checkb "ran" true (r.Report.stages_completed >= 1)

let multiway_suites =
  [
    ( "multi-way",
      [
        Alcotest.test_case "three-way join exact" `Quick test_three_way_join_exact;
        Alcotest.test_case "three-way join sampled" `Quick
          test_three_way_join_sampled;
        Alcotest.test_case "partial exhaustion not exact" `Quick
          test_partial_fulfillment_exhaustion_not_exact;
      ] );
  ]

let test_group_estimates () =
  let wl = Paper_setup.projection ~spec:small_spec ~groups:10 ~seed:5 () in
  (* exhaustive: per-group estimates equal the true group sizes (50) *)
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:1e7 wl.query in
  checki "all groups reported" 10 (List.length r.Report.groups);
  List.iter
    (fun (_, est) ->
      Alcotest.check (Alcotest.float 1e-6) "exact group size" 50.0 est)
    r.Report.groups;
  (* sampled: estimates sum to ~population, sorted descending *)
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:2.0 wl.query in
  let total = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 r.Report.groups in
  checkb "sum near population" true (Float.abs (total -. 500.0) < 1.0);
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  checkb "sorted descending" true (sorted r.Report.groups);
  (* not a projection: empty *)
  let sel = small_selection in
  let r = Taqp.count_within ~config:observe_config ~seed:1 sel.catalog ~quota:2.0 sel.query in
  checkb "no groups for selection" true (r.Report.groups = [])

let test_wall_clock_mode () =
  (* Live use: a wall clock and a real (tiny) budget. The designer cost
     constants must be rescaled to the actual machine, as on any new
     deployment. *)
  let wl = small_selection in
  let clock = Taqp_storage.Clock.create_wall () in
  let device =
    Taqp_storage.Device.create
      ~params:(Taqp_storage.Cost_params.no_jitter Taqp_storage.Cost_params.fast)
      clock
  in
  let config =
    {
      Config.default with
      Config.stopping = Stopping.Hard_deadline;
      initial_cost_scale = 1e-4;
      trace = false;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Taqp.count_within_device ~config ~device ~rng:(Prng.create 1) wl.catalog
      ~quota:0.5 wl.query
  in
  let real_elapsed = Unix.gettimeofday () -. t0 in
  checkb "returned promptly" true (real_elapsed < 2.0);
  checkb "produced an answer" true (r.Report.stages_completed >= 1);
  checkb "estimate sane" true (r.Report.estimate >= 0.0)

let test_soft_grace_allows_overrun_stage () =
  (* A finite grace lets a stage predicted to end within quota*(1+g)
     start; the overshoot is then reported, not aborted. *)
  let wl = small_selection in
  let config =
    { Config.default with Config.stopping = Stopping.Soft_deadline { grace = 0.5 } }
  in
  let r = Taqp.count_within ~config ~seed:11 wl.catalog ~quota:1.2 wl.query in
  checkb "never hard-aborted" true (r.Report.outcome <> Report.Aborted_mid_stage);
  checkb "bounded overrun" true (r.Report.elapsed <= 1.2 *. 1.6)

let test_empty_relation () =
  let schema = Taqp_workload.Generator.schema in
  let empty = Taqp_storage.Heap_file.create ~schema [] in
  let catalog = Taqp_storage.Catalog.of_list [ ("e", empty) ] in
  let q = Taqp.parse "select[sel < 5](e)" in
  let r = Taqp.count_within ~config:observe_config ~seed:1 catalog ~quota:2.0 q in
  Alcotest.check (Alcotest.float 1e-9) "empty relation counts zero" 0.0
    r.Report.estimate;
  checkb "population-exhausted outcome" true (r.Report.outcome = Report.Exact)

let test_empty_result_query () =
  (* A predicate nothing satisfies: estimate 0 with an honest interval. *)
  let wl = small_selection in
  let q = Taqp.parse "select[sel < 0](r)" in
  let r = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:2.0 q in
  Alcotest.check (Alcotest.float 1e-9) "zero estimate" 0.0 r.Report.estimate;
  checkb "nonzero variance (not exhaustive)" true (r.Report.variance > 0.0);
  let exhaustive = Taqp.count_within ~config:observe_config ~seed:1 wl.catalog ~quota:1e7 q in
  Alcotest.check (Alcotest.float 1e-9) "exact zero" 0.0 exhaustive.Report.estimate;
  checkb "exact flag" true exhaustive.Report.exact

let edge_suites =
  [
    ( "edge-cases",
      [
        Alcotest.test_case "empty relation" `Quick test_empty_relation;
        Alcotest.test_case "empty result" `Quick test_empty_result_query;
      ] );
  ]

let live_suites =
  [
    ( "live-modes",
      [
        Alcotest.test_case "wall clock" `Quick test_wall_clock_mode;
        Alcotest.test_case "soft grace" `Quick test_soft_grace_allows_overrun_stage;
      ] );
  ]

let group_suites =
  [
    ( "group-estimates",
      [ Alcotest.test_case "projection groups" `Quick test_group_estimates ] );
  ]

let variance_suites =
  [
    ( "cluster-variance",
      [
        Alcotest.test_case "widens CI under clustering" `Quick
          test_cluster_variance_widens_ci;
        Alcotest.test_case "costs time" `Quick test_cluster_variance_costs_time;
        Alcotest.test_case "estimate unchanged" `Quick
          test_cluster_variance_same_estimate_center;
        Alcotest.test_case "fallback on joins" `Quick
          test_cluster_variance_join_falls_back;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Resumable executor: run == start + step*                            *)

module Executor = Taqp_core.Executor

let resumable_workloads =
  lazy
    [
      ("selection", small_selection, 1.5);
      ("join", Paper_setup.join ~spec:small_spec ~seed:6 (), 2.0);
      ( "intersection",
        Paper_setup.intersection ~spec:small_spec ~overlap:120 ~seed:7 (),
        2.0 );
    ]

let step_fingerprint (r : Report.t) =
  Fmt.str "%a|%.17g|%.17g|%.17g|%.17g|%d|%a" Report.pp r r.Report.estimate
    r.Report.variance r.Report.confidence.Taqp_stats.Confidence.half_width
    r.Report.elapsed
    (List.length r.Report.trace)
    Taqp_storage.Io_stats.pp r.Report.io

let executor_env ~physical () =
  let clock = Taqp_storage.Clock.create_virtual () in
  let device =
    Taqp_storage.Device.create
      ~params:(Taqp_storage.Cost_params.no_jitter Taqp_storage.Cost_params.default)
      clock
  in
  let config = { Config.default with Config.physical } in
  (device, config)

(* The one-shot run must be bit-identical to driving the handle one
   stage at a time — for every fixture and both physical paths. The
   executor's [run] is literally the start/step loop, so this is a
   regression guard on the handle plumbing (deadline arming, histogram
   snapshots, finalization) rather than on the numerics. *)
let test_run_equals_stepped () =
  List.iter
    (fun (name, (wl : Paper_setup.t), quota) ->
      List.iter
        (fun physical ->
          let run_once () =
            let device, config = executor_env ~physical () in
            Executor.run ~config ~device ~catalog:wl.Paper_setup.catalog
              ~rng:(Prng.create 3) ~quota wl.Paper_setup.query
          in
          let stepped () =
            let device, config = executor_env ~physical () in
            let h =
              Executor.start ~config ~device ~catalog:wl.Paper_setup.catalog
                ~rng:(Prng.create 3) ~quota wl.Paper_setup.query
            in
            let steps = ref 0 in
            let rec go () =
              match Executor.step h with
              | `Continue ->
                  incr steps;
                  checkb "unfinished while stepping" false (Executor.finished h);
                  go ()
              | `Done r -> r
            in
            let r = go () in
            checkb "finished" true (Executor.finished h);
            checkb "report accessor agrees" true (Executor.report h = Some r);
            (r, !steps)
          in
          let direct = run_once () in
          let r, steps = stepped () in
          Alcotest.(check string)
            (Fmt.str "%s/%s run == stepped" name
               (match physical with
               | Config.Sort_merge -> "sort"
               | Config.Hash -> "hash"
               | Config.Adaptive -> "adaptive"))
            (step_fingerprint direct) (step_fingerprint r);
          checkb "took at least one step" true (steps >= 0))
        [ Config.Sort_merge; Config.Hash ])
    (Lazy.force resumable_workloads)

(* step after Done keeps returning the same report; finish before
   exhaustion finalizes as quota-exhausted exactly once. *)
let test_step_after_done_and_early_finish () =
  let wl = small_selection in
  let device, config = executor_env ~physical:Config.Sort_merge () in
  let h =
    Executor.start ~config ~device ~catalog:wl.Paper_setup.catalog
      ~rng:(Prng.create 3) ~quota:1.5 wl.Paper_setup.query
  in
  let rec drain () =
    match Executor.step h with `Continue -> drain () | `Done r -> r
  in
  let r = drain () in
  (match Executor.step h with
  | `Done r' -> checkb "step after done is stable" true (r == r')
  | `Continue -> Alcotest.fail "step after done must return the report");
  checkb "finish after done is stable" true (Executor.finish h == r);
  (* Early finish on a fresh handle. *)
  let device, config = executor_env ~physical:Config.Sort_merge () in
  let h2 =
    Executor.start ~config ~device ~catalog:wl.Paper_setup.catalog
      ~rng:(Prng.create 3) ~quota:1.5 wl.Paper_setup.query
  in
  (match Executor.step h2 with
  | `Continue -> ()
  | `Done _ -> Alcotest.fail "first stage should not finish this run");
  let r2 = Executor.finish h2 in
  checkb "early finish reports quota-exhausted" true
    (r2.Report.outcome = Report.Quota_exhausted);
  checkb "handle finished" true (Executor.finished h2);
  checkb "partial stages recorded" true (r2.Report.stages_completed >= 1)

(* Handle accessors expose the deadline bookkeeping the scheduler
   plans with. *)
let test_handle_accessors () =
  let wl = small_selection in
  let device, config = executor_env ~physical:Config.Sort_merge () in
  let h =
    Executor.start ~config ~device ~catalog:wl.Paper_setup.catalog
      ~rng:(Prng.create 3) ~quota:2.0 wl.Paper_setup.query
  in
  Alcotest.check (Alcotest.float 0.0) "quota" 2.0 (Executor.quota h);
  Alcotest.check (Alcotest.float 0.0) "started at 0" 0.0 (Executor.started_at h);
  Alcotest.check (Alcotest.float 0.0) "deadline = start + quota" 2.0
    (Executor.deadline_at h);
  checkb "remaining starts at quota" true (Executor.remaining h <= 2.0);
  checkb "min stage cost positive" true (Executor.min_stage_cost h > 0.0);
  (match Executor.step h with
  | `Continue ->
      checkb "remaining shrinks" true (Executor.remaining h < 2.0)
  | `Done _ -> Alcotest.fail "first stage should not finish");
  ignore (Executor.finish h)

let resumable_suites =
  [
    ( "resumable-executor",
      [
        Alcotest.test_case "run == start+step*" `Slow test_run_equals_stepped;
        Alcotest.test_case "step after done / early finish" `Quick
          test_step_after_done_and_early_finish;
        Alcotest.test_case "handle accessors" `Quick test_handle_accessors;
      ] );
  ]

let aggregate_suites =
  [
    ( "aggregates",
      [
        Alcotest.test_case "parse" `Quick test_aggregate_parse;
        Alcotest.test_case "sum exact" `Quick test_sum_exact_when_exhausted;
        Alcotest.test_case "sum concentrates" `Slow test_sum_estimates_concentrate;
        Alcotest.test_case "avg" `Quick test_avg_estimate;
        Alcotest.test_case "sum over union" `Quick test_sum_over_union;
        Alcotest.test_case "compile errors" `Quick test_aggregate_compile_errors;
      ] );
  ]

let () =
  Alcotest.run "core"
    (main_suites @ multiway_suites @ group_suites @ live_suites @ edge_suites
   @ variance_suites @ resumable_suites @ aggregate_suites)
