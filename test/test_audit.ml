(* taqp_audit: the deadline-accountability layer.

   The load-bearing properties:

   - reconciliation is exact by construction: for every audited run —
     all fixtures x both physical paths x fault/abort/journal/crash
     scenarios — the per-category sums plus the reassociation residual
     recover the charged total bit-for-bit, and charged spend plus
     unused slack recovers the quota bit-for-bit;

   - the ledger misses nothing: a solo run's charged total equals the
     report's elapsed clock time (everything the clock did came
     through the device);

   - auditing is bit-neutral: an audited run's report fingerprint and
     trace stream are identical to an unaudited one's;

   - forensics is total: every missed job gets a cause, no job that
     met its deadline gets one. *)

module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Executor = Taqp_core.Executor
module Aggregate = Taqp_core.Aggregate
module Io_stats = Taqp_storage.Io_stats
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Formulas = Taqp_timecost.Formulas
module Paper_setup = Taqp_workload.Paper_setup
module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector
module Tracer = Taqp_obs.Tracer
module Sink = Taqp_obs.Sink
module Event = Taqp_obs.Event
module Json = Taqp_obs.Json
module Prng = Taqp_rng.Prng
module Job = Taqp_sched.Job
module Policy = Taqp_sched.Policy
module Scheduler = Taqp_sched.Scheduler
module Ledger = Taqp_audit.Ledger
module Meter = Taqp_audit.Meter
module Drift = Taqp_audit.Drift
module Forensics = Taqp_audit.Forensics
module Slo = Taqp_audit.Slo

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf
let checkf_eps = Fixtures.checkf_eps
let checks = Alcotest.check Alcotest.string

let no_jitter = Cost_params.no_jitter Cost_params.default

let fingerprint (r : Report.t) =
  Fmt.str "%.17g|%.17g|%.17g|%.17g|%d|%b|%a" r.Report.estimate
    r.Report.variance r.Report.confidence.Taqp_stats.Confidence.half_width
    r.Report.elapsed r.Report.stages_completed r.Report.degraded Io_stats.pp
    r.Report.io

let fixtures =
  lazy
    [
      ("selection", Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed:5 (), 1.5);
      ("join", Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 (), 2.0);
      ( "intersection",
        Paper_setup.intersection ~spec:(Fixtures.spec ()) ~overlap:120 ~seed:7 (),
        2.0 );
    ]

let physicals = [ ("sort_merge", Config.Sort_merge); ("hash", Config.Hash) ]

(* A solo audited run: fresh clock/device, optional ledger attached as
   the spend listener, optional drift monitor on the handle, optional
   per-boundary journal charge, run to the final report (a crash
   escapes as [Injector.Crashed]). *)
let solo_run ?faults ?(config = Fixtures.observe_config) ?(quota = 2.0)
    ?(seed = 3) ?ledger ?sink ?drift ?(journal_bytes = 0)
    (wl : Paper_setup.t) =
  let rng = Prng.create seed in
  let clock = Clock.create_virtual () in
  let tracer =
    Option.map
      (fun sink -> Tracer.make ~now:(fun () -> Clock.now clock) ~sink)
      sink
  in
  let device = Device.create ~params:no_jitter ?tracer ?faults clock in
  Option.iter
    (fun l -> Device.set_spend_listener device (Some (Ledger.on_spend l)))
    ledger;
  let h =
    Executor.start ~config ~aggregate:Aggregate.Count ~device
      ~catalog:wl.Paper_setup.catalog ~rng ~quota wl.Paper_setup.query
  in
  Option.iter (fun d -> Executor.on_cost_observation h (Drift.observer d)) drift;
  let rec loop () =
    match Executor.step h with
    | `Continue ->
        if journal_bytes > 0 then
          Device.journal_write device ~bytes:journal_bytes;
        loop ()
    | `Done r -> r
  in
  let r = loop () in
  (r, clock, device)

let check_reconciliation ~ctx ?quota (ledger : Ledger.t) =
  let r = Ledger.reconcile ?quota ledger in
  checkb (ctx ^ ": closure is bit-exact") true r.Ledger.r_exact;
  (* explicit re-statement of what r_exact certifies, so a failure
     pinpoints which side broke *)
  let s =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.Ledger.r_by_category
  in
  checkf (ctx ^ ": categories + residual = charged") r.Ledger.r_charged
    (s +. r.Ledger.r_unattributed);
  (match (quota, r.Ledger.r_unused_slack) with
  | Some q, Some u -> checkf (ctx ^ ": charged + slack = quota") q
      (r.Ledger.r_charged +. u)
  | _ -> ());
  r

(* ------------------------------------------------------------------ *)
(* Ledger unit behaviour                                               *)

let test_ledger_label_routing () =
  let l = Ledger.create () in
  List.iter
    (fun (label, cat) ->
      checkb ("label " ^ label) true (Ledger.category_of_label label = cat))
    [
      ("planning", Ledger.Planning);
      ("read_block", Ledger.Sample_io);
      ("check_tuples", Ledger.Check);
      ("write_pages", Ledger.Write_temp);
      ("write_temp", Ledger.Write_temp);
      ("sort", Ledger.Sort);
      ("merge", Ledger.Merge);
      ("merge_setup", Ledger.Merge);
      ("hash_build", Ledger.Hash_build);
      ("hash_probe", Ledger.Hash_probe);
      ("output", Ledger.Output);
      ("estimator_update", Ledger.Estimator);
      ("stage_overhead", Ledger.Stage_overhead);
      ("journal_write", Ledger.Journal);
      ("fault.retry", Ledger.Fault);
      ("fault.spike", Ledger.Fault);
      ("fault.stall", Ledger.Fault);
      ("fault.backoff", Ledger.Fault);
      ("misc", Ledger.Misc);
      ("something_new", Ledger.Misc);
    ];
  Ledger.on_spend l "read_block" 0.25;
  Ledger.on_spend l "read_block" 0.5;
  Ledger.on_spend l "sort" 1.0;
  checkf "sample_io accumulates" 0.75 (Ledger.spend l Ledger.Sample_io);
  checkf "charged totals everything" 1.75 (Ledger.charged l);
  ignore (check_reconciliation ~ctx:"unit" ~quota:2.0 l)

let test_ledger_adversarial_sums () =
  (* many tiny deltas across categories: reassociation noise is real
     here, and the closure must still be bit-exact *)
  let l = Ledger.create () in
  let labels =
    [| "read_block"; "check_tuples"; "sort"; "merge"; "output"; "planning" |]
  in
  let x = ref 0.1 in
  for i = 0 to 9999 do
    (* irregular magnitudes spanning ~9 orders *)
    x := !x *. 1.0061;
    if !x > 1e4 then x := 1e-5 +. (!x -. 1e4);
    Ledger.on_spend l labels.(i mod Array.length labels) !x
  done;
  let r = check_reconciliation ~ctx:"adversarial" ~quota:(Ledger.charged l) l in
  checkb "residual is tiny" true
    (Float.abs r.Ledger.r_unattributed
    <= 1e-9 *. Float.max 1.0 r.Ledger.r_charged)

(* ------------------------------------------------------------------ *)
(* Solo-run reconciliation across fixtures, paths and scenarios        *)

let scenarios =
  [
    ("plain", None, 0);
    ( "transient-faults",
      Some (fun seed -> Injector.create ~seed (Option.get (Fault_plan.preset "transient"))),
      0 );
    ( "latency-faults",
      Some (fun seed -> Injector.create ~seed (Option.get (Fault_plan.preset "latency"))),
      0 );
    ("journaled", None, 256);
  ]

let test_solo_reconciliation () =
  List.iter
    (fun (fname, wl, quota) ->
      List.iter
        (fun (pname, physical) ->
          List.iter
            (fun (sname, faults, journal_bytes) ->
              let ctx = Printf.sprintf "%s/%s/%s" fname pname sname in
              let config =
                { Fixtures.observe_config with Config.physical }
              in
              let ledger = Ledger.create () in
              let faults = Option.map (fun f -> f 11) faults in
              let r, clock, _device =
                solo_run ?faults ~config ~quota ~ledger ~journal_bytes wl
              in
              let rec_ = check_reconciliation ~ctx ~quota ledger in
              (* the ledger saw everything the clock did *)
              checkf_eps 1e-9 (ctx ^ ": charged = clock")
                (Clock.now clock) (Ledger.charged ledger);
              checkb (ctx ^ ": ran") true (r.Report.stages_completed >= 1);
              if journal_bytes > 0 then
                checkb (ctx ^ ": journal attributed") true
                  (Ledger.spend ledger Ledger.Journal > 0.0);
              checkb (ctx ^ ": planning attributed") true
                (Ledger.spend ledger Ledger.Planning > 0.0);
              ignore rec_)
            scenarios)
        physicals)
    (Lazy.force fixtures)

let test_hard_deadline_abort_reconciles () =
  (* a hard deadline interrupts a charge mid-flight: the listener must
     still see the truncated delta, pinning charged to the quota *)
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 () in
  let ledger = Ledger.create () in
  let r, clock, _ =
    solo_run ~config:Config.default ~quota:0.9 ~ledger wl
  in
  ignore (check_reconciliation ~ctx:"abort" ~quota:0.9 ledger);
  checkf_eps 1e-9 "charged = clock" (Clock.now clock) (Ledger.charged ledger);
  checkf_eps 1e-9 "charged = elapsed" r.Report.elapsed (Ledger.charged ledger)

let test_fault_spend_matches_injected_time () =
  (* probability-1 faults so the test is seed-independent: every read
     spikes. Mild factor — the executor shrinks stage budgets by the
     planned fault load, and a heavy certain plan would starve the
     first stage out of the quota entirely *)
  let wl = Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed:5 () in
  let plan =
    Fault_plan.make
      [
        Fault_plan.rule ~op:"read_block" ~probability:1.0
          (Fault_plan.Latency_spike 1.5);
      ]
  in
  let inj = Injector.create ~seed:11 plan in
  let ledger = Ledger.create () in
  let _, _, device = solo_run ~faults:inj ~quota:2.0 ~ledger wl in
  checkb "faults fired" true (Device.fault_time device > 0.0);
  checkf_eps 1e-9 "fault category = injected time"
    (Device.fault_time device)
    (Ledger.spend ledger Ledger.Fault)

let test_crash_reconciles_to_last_tick () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 () in
  let plan = Fault_plan.make [ Fault_plan.crash_at 0.7 ] in
  let inj = Injector.create ~seed:11 plan in
  let ledger = Ledger.create () in
  match solo_run ~faults:inj ~quota:5.0 ~ledger wl with
  | exception Injector.Crashed { at; _ } ->
      (* everything charged before the death instant is attributed *)
      ignore (check_reconciliation ~ctx:"crash" ledger);
      checkf_eps 1e-9 "charged = crash instant" at (Ledger.charged ledger)
  | _ -> Alcotest.fail "expected the crash to escape"

(* ------------------------------------------------------------------ *)
(* Bit-neutrality                                                      *)

let test_audited_run_bit_identical () =
  List.iter
    (fun (fname, wl, quota) ->
      let run ~audit =
        let sink, events = Sink.memory () in
        let ledger = if audit then Some (Ledger.create ()) else None in
        let drift = if audit then Some (Drift.create ()) else None in
        let r, _, _ = solo_run ~quota ~sink ?ledger ?drift wl in
        (fingerprint r, events ())
      in
      let plain_fp, plain_tr = run ~audit:false in
      let audited_fp, audited_tr = run ~audit:true in
      checks (fname ^ ": report fingerprint identical") plain_fp audited_fp;
      checki
        (fname ^ ": same trace length")
        (List.length plain_tr) (List.length audited_tr);
      checkb (fname ^ ": trace stream identical") true
        (List.for_all2 (fun (a : Event.t) b -> a = b) plain_tr audited_tr))
    (Lazy.force fixtures)

let test_audited_faulted_run_bit_identical () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 () in
  let run ~audit =
    let sink, events = Sink.memory () in
    let inj =
      Injector.create ~seed:11 (Option.get (Fault_plan.preset "transient"))
    in
    let ledger = if audit then Some (Ledger.create ()) else None in
    let r, _, _ = solo_run ~faults:inj ~quota:2.0 ~sink ?ledger wl in
    (fingerprint r, events ())
  in
  let plain_fp, plain_tr = run ~audit:false in
  let audited_fp, audited_tr = run ~audit:true in
  checks "faulted fingerprint identical" plain_fp audited_fp;
  checki "faulted trace length" (List.length plain_tr)
    (List.length audited_tr);
  checkb "faulted trace identical" true
    (List.for_all2 (fun (a : Event.t) b -> a = b) plain_tr audited_tr)

(* ------------------------------------------------------------------ *)
(* Meter + scheduler integration                                       *)

let sched_jobs ?(n = 12) ?(gap = 0.4) ?(trace = false) () =
  let sel = Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed:5 () in
  let join = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 () in
  let config = { Fixtures.observe_config with Config.trace } in
  List.init n (fun i ->
      let wl = if i mod 2 = 0 then sel else join in
      let arrival = float_of_int i *. gap in
      Job.make ~label:(Printf.sprintf "job-%d" i) ~config ~seed:(100 + i)
        ~id:i ~catalog:wl.Paper_setup.catalog ~arrival
        ~deadline:(arrival +. 3.0) wl.Paper_setup.query)

let test_metered_schedule_reconciles () =
  let meter = Meter.create () in
  let jobs = sched_jobs () in
  let result =
    Scheduler.run ~policy:Policy.Fifo
      ~on_device:(Meter.attach meter)
      ~account:(Meter.set_account meter)
      jobs
  in
  checkb "all jobs accounted" true
    (List.length (Meter.job_ids meter) > 0);
  (* every job's ledger reconciles bit-exactly against its grant *)
  List.iter
    (fun (jr : Scheduler.job_report) ->
      match jr.Scheduler.quota with
      | Some q when jr.Scheduler.admitted ->
          let l = Meter.ledger meter jr.Scheduler.job.Job.id in
          ignore
            (check_reconciliation
               ~ctx:("job " ^ jr.Scheduler.job.Job.label)
               ~quota:q l)
      | _ -> ())
    result.Scheduler.reports;
  (* and nothing the device charged escaped the accounts: the clock
     also slept between arrivals, so metered spend <= makespan *)
  checkb "metered spend within makespan" true
    (Meter.total_charged meter <= result.Scheduler.summary.Scheduler.makespan +. 1e-9)

let test_metered_schedule_bit_neutral () =
  let jobs () = sched_jobs () in
  let plain = Scheduler.run ~policy:Policy.Edf (jobs ()) in
  let meter = Meter.create () in
  let audited =
    Scheduler.run ~policy:Policy.Edf
      ~on_device:(Meter.attach meter)
      ~account:(Meter.set_account meter)
      ~on_dispatch:(fun _ _ -> ())
      (jobs ())
  in
  checki "same report count"
    (List.length plain.Scheduler.reports)
    (List.length audited.Scheduler.reports);
  List.iter2
    (fun (a : Scheduler.job_report) (b : Scheduler.job_report) ->
      checks "same outcome" (Scheduler.outcome_name a) (Scheduler.outcome_name b);
      checkf "same finish" a.Scheduler.finished_at b.Scheduler.finished_at;
      checkf "same service" a.Scheduler.service b.Scheduler.service;
      match (Scheduler.completed_report a, Scheduler.completed_report b) with
      | Some ra, Some rb ->
          checks "same report" (fingerprint ra) (fingerprint rb)
      | None, None -> ()
      | _ -> Alcotest.fail "outcome shape diverged")
    plain.Scheduler.reports audited.Scheduler.reports

(* ------------------------------------------------------------------ *)
(* Forensics                                                           *)

let test_forensics_total_over_hot_workload () =
  (* FIFO without admission at a tight gap: plenty of misses of mixed
     shapes. Every missed job must get a cause; no un-missed job may. *)
  let jobs = sched_jobs ~n:16 ~gap:0.15 ~trace:true () in
  let result = Scheduler.run ~policy:Policy.Fifo jobs in
  let missed =
    List.filter (fun (r : Scheduler.job_report) -> r.Scheduler.missed)
      result.Scheduler.reports
  in
  checkb "workload produced misses" true (List.length missed >= 2);
  List.iter
    (fun (jr : Scheduler.job_report) ->
      match (Forensics.classify jr, jr.Scheduler.missed) with
      | Some v, true ->
          checkb
            ("cause named for " ^ jr.Scheduler.job.Job.label)
            true
            (List.mem v.Forensics.v_cause Forensics.causes)
      | None, false -> ()
      | Some _, false ->
          Alcotest.fail
            ("verdict for un-missed " ^ jr.Scheduler.job.Job.label)
      | None, true ->
          Alcotest.fail ("no cause for missed " ^ jr.Scheduler.job.Job.label))
    result.Scheduler.reports;
  let verdicts =
    List.filter_map Forensics.classify result.Scheduler.reports
  in
  let b = Forensics.breakdown verdicts in
  checki "breakdown counts every miss" (List.length missed)
    b.Forensics.b_missed;
  checki "breakdown partitions" (List.length missed)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 b.Forensics.b_by_cause)

let test_forensics_fault_inflation () =
  (* a solo job with heavy injected faults that misses: fault time
     dominates and names the cause *)
  let wl = Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed:5 () in
  let config = { Fixtures.observe_config with Config.trace = true } in
  let job =
    Job.make ~config ~seed:3 ~id:0 ~catalog:wl.Paper_setup.catalog
      ~arrival:0.0 ~deadline:1.2 wl.Paper_setup.query
  in
  let inj =
    Injector.create ~seed:11
      (Fault_plan.make
         [
           Fault_plan.rule ~op:"read_block" ~probability:1.0
             (Fault_plan.Latency_spike 1.5);
         ])
  in
  let result = Scheduler.run ~policy:Policy.Edf ~faults:inj [ job ] in
  match result.Scheduler.reports with
  | [ jr ] when jr.Scheduler.missed -> (
      match Forensics.classify jr with
      | Some v ->
          checks "fault inflation named" "fault_inflation"
            (Forensics.cause_name v.Forensics.v_cause)
      | None -> Alcotest.fail "missed job got no cause")
  | [ _ ] ->
      (* the preset was absorbed within quota on this seed — the
         classification contract (totality) still held trivially *)
      ()
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let test_forensics_crash_downtime () =
  let wl = Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed:5 () in
  let job =
    Job.make ~seed:3 ~id:7 ~catalog:wl.Paper_setup.catalog ~arrival:1.0
      ~deadline:2.0 wl.Paper_setup.query
  in
  let jr =
    {
      Scheduler.job;
      outcome = Scheduler.Expired;
      admitted = true;
      degraded = false;
      quota = None;
      started_at = None;
      finished_at = 4.0;
      queue_wait = 3.0;
      lateness = 2.0;
      missed = true;
      steps = 0;
      preemptions = 0;
      service = 0.0;
    }
  in
  (match Forensics.classify ~downtime:(0.5, 3.5) jr with
  | Some v ->
      checks "outage swallowed the window" "crash_downtime"
        (Forensics.cause_name v.Forensics.v_cause)
  | None -> Alcotest.fail "expired job got no cause");
  match Forensics.classify jr with
  | Some v ->
      checks "without an outage it starved" "queue_starvation"
        (Forensics.cause_name v.Forensics.v_cause)
  | None -> Alcotest.fail "expired job got no cause"

(* ------------------------------------------------------------------ *)
(* Drift monitor                                                       *)

let test_drift_flags_synthetic_bias () =
  let d = Drift.create ~alpha:0.5 ~threshold:0.25 ~min_obs:5 () in
  (* read: consistently 2x the prediction; sort: calibrated *)
  for _ = 1 to 10 do
    Drift.observe d ~step:Formulas.Step_read ~predicted:0.1 ~actual:0.2;
    Drift.observe d ~step:Formulas.Step_sort ~predicted:0.05 ~actual:0.05
  done;
  (* fixed: too few observations to flag, however biased *)
  Drift.observe d ~step:Formulas.Step_fixed ~predicted:0.2 ~actual:1.0;
  let r = Drift.report d in
  checki "three steps observed" 3 (List.length r.Drift.steps);
  let by_step step =
    List.find (fun (s : Drift.step_report) -> s.Drift.d_step = step) r.Drift.steps
  in
  checkb "read drifted" true (by_step Formulas.Step_read).Drift.d_drifted;
  checkb "sort calibrated" false (by_step Formulas.Step_sort).Drift.d_drifted;
  checkb "fixed below min_obs" false
    (by_step Formulas.Step_fixed).Drift.d_drifted;
  checkf_eps 1e-9 "read ewma converges to 2" 2.0
    (by_step Formulas.Step_read).Drift.d_ewma_ratio;
  Alcotest.check
    Alcotest.(list string)
    "read names its rate" [ "block_read" ]
    (by_step Formulas.Step_read).Drift.d_rates;
  checki "drifted list is the flagged subset" 1 (List.length r.Drift.drifted)

let test_drift_observer_on_live_run () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 () in
  let drift = Drift.create () in
  let r, _, _ = solo_run ~quota:2.0 ~drift wl in
  checkb "ran stages" true (r.Report.stages_completed >= 1);
  let rep = Drift.report drift in
  checkb "observations flowed" true
    (List.exists
       (fun (s : Drift.step_report) -> s.Drift.d_observations > 0)
       rep.Drift.steps);
  List.iter
    (fun (s : Drift.step_report) ->
      checkb "ratios finite" true
        (Float.is_finite s.Drift.d_ewma_ratio
        && Float.is_finite s.Drift.d_mean_ratio))
    rep.Drift.steps

(* ------------------------------------------------------------------ *)
(* SLO monitor                                                         *)

let test_slo_window_and_burn () =
  let s = Slo.create ~window:4 ~target_miss_rate:0.25 () in
  checkf "empty miss rate" 0.0 (Slo.miss_rate s);
  checkb "empty is healthy" true (Slo.healthy s);
  Slo.observe s ~missed:false ~lateness:(-0.5);
  Slo.observe s ~missed:true ~lateness:1.0;
  Slo.observe s ~missed:false ~lateness:0.0;
  Slo.observe s ~missed:false ~lateness:0.2;
  checkf "miss rate over window" 0.25 (Slo.miss_rate s);
  checkf "burn at budget" 1.0 (Slo.burn_rate s);
  checkb "at-budget is healthy" true (Slo.healthy s);
  (* the ring slides one slot per observation: after one more clean
     job the miss (observation 2 of 4-slot window) is still in view,
     after two it has aged out *)
  Slo.observe s ~missed:false ~lateness:0.0;
  checkf "miss still in window" 0.25 (Slo.miss_rate s);
  Slo.observe s ~missed:false ~lateness:0.0;
  checkf "miss aged out" 0.0 (Slo.miss_rate s);
  (* two fresh misses burn at 2x *)
  Slo.observe s ~missed:true ~lateness:2.0;
  Slo.observe s ~missed:true ~lateness:3.0;
  checkf "burn rate 2x" 2.0 (Slo.burn_rate s);
  checkb "over budget" false (Slo.healthy s);
  checki "lifetime total" 8 (Slo.total s);
  checki "window count" 4 (Slo.count s)

let test_slo_zero_target () =
  let s = Slo.create ~window:3 ~target_miss_rate:0.0 () in
  Slo.observe s ~missed:false ~lateness:0.0;
  checkf "clean hard slo burns 0" 0.0 (Slo.burn_rate s);
  Slo.observe s ~missed:true ~lateness:0.5;
  checkb "any miss on a hard slo is infinite burn" true
    (Slo.burn_rate s = infinity);
  checkb "json stays finite" true
    (match Slo.to_json s with
    | Json.Obj fields -> List.assoc "burn_rate" fields = Json.Str "inf"
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Scheduler summary satellites                                        *)

let test_summary_p999 () =
  let jobs = sched_jobs ~n:10 ~gap:0.2 () in
  let result = Scheduler.run ~policy:Policy.Fifo jobs in
  let s = result.Scheduler.summary in
  checkb "p999 >= p99" true
    (s.Scheduler.lateness_p999 >= s.Scheduler.lateness_p99);
  checkb "p999 <= max" true
    (s.Scheduler.lateness_p999 <= s.Scheduler.max_lateness);
  match Scheduler.summary_json s with
  | Json.Obj fields ->
      checkb "summary_json carries p999" true
        (List.mem_assoc "lateness_p999" fields)
  | _ -> Alcotest.fail "summary_json not an object"

let () =
  Alcotest.run "taqp_audit"
    [
      ( "ledger",
        [
          Alcotest.test_case "label routing" `Quick test_ledger_label_routing;
          Alcotest.test_case "adversarial sums reconcile" `Quick
            test_ledger_adversarial_sums;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "fixtures x paths x scenarios" `Quick
            test_solo_reconciliation;
          Alcotest.test_case "hard-deadline abort" `Quick
            test_hard_deadline_abort_reconciles;
          Alcotest.test_case "fault spend = injected time" `Quick
            test_fault_spend_matches_injected_time;
          Alcotest.test_case "crash charges to last tick" `Quick
            test_crash_reconciles_to_last_tick;
        ] );
      ( "bit-neutrality",
        [
          Alcotest.test_case "audited solo run identical" `Quick
            test_audited_run_bit_identical;
          Alcotest.test_case "audited faulted run identical" `Quick
            test_audited_faulted_run_bit_identical;
          Alcotest.test_case "metered schedule identical" `Quick
            test_metered_schedule_bit_neutral;
        ] );
      ( "meter",
        [
          Alcotest.test_case "per-job ledgers reconcile" `Quick
            test_metered_schedule_reconciles;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "total over a hot workload" `Quick
            test_forensics_total_over_hot_workload;
          Alcotest.test_case "fault inflation" `Quick
            test_forensics_fault_inflation;
          Alcotest.test_case "crash downtime vs starvation" `Quick
            test_forensics_crash_downtime;
        ] );
      ( "drift",
        [
          Alcotest.test_case "flags synthetic bias" `Quick
            test_drift_flags_synthetic_bias;
          Alcotest.test_case "observer on a live run" `Quick
            test_drift_observer_on_live_run;
        ] );
      ( "slo",
        [
          Alcotest.test_case "window and burn" `Quick test_slo_window_and_burn;
          Alcotest.test_case "zero target" `Quick test_slo_zero_target;
        ] );
      ( "summary",
        [ Alcotest.test_case "p999" `Quick test_summary_p999 ] );
    ]
