(* taqp_net: the socket front door.

   The load-bearing property mirrors test_sched's: a drain-gated
   server fed a job schedule over real sockets must produce reports
   bit-identical to Scheduler.run over the same job list — the wire is
   transport, never semantics. On top of that anchor: total decoding
   (garbage closes connections, never crashes), door-level quota and
   depth rejection pricing, and kill-and-recover replaying journaled
   completions byte-for-byte. *)

module Wire = Taqp_net.Wire
module Token_bucket = Taqp_net.Token_bucket
module Backpressure = Taqp_net.Backpressure
module Server = Taqp_net.Server
module Client = Taqp_net.Client
module Load = Taqp_net.Load
module Job = Taqp_sched.Job
module Admission = Taqp_sched.Admission
module Scheduler = Taqp_sched.Scheduler
module Engine = Taqp_sched.Engine
module Sched_journal = Taqp_sched.Sched_journal
module Journal = Taqp_recover.Journal
module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector
module Paper_setup = Taqp_workload.Paper_setup
module Arrivals = Taqp_workload.Arrivals
module Ra = Taqp_relational.Ra

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf
let checks = Alcotest.check Alcotest.string

let tmp stem =
  Filename.temp_file ("taqp_net_" ^ stem) ".journal"

let cleanup paths =
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)

let sample_done =
  {
    Sched_journal.d_id = 7;
    d_label = "q7";
    d_outcome = "completed";
    d_admitted = true;
    d_degraded = false;
    d_missed = false;
    d_lateness = -0.75;
    d_queue_wait = 0.125;
    d_finished_at = 3.25;
    d_service = 1.5;
    d_steps = 12;
    d_preemptions = 2;
    d_estimate = Some 421.0;
    d_now = 3.25;
  }

let sample_summary =
  {
    Engine.submitted = 9;
    admitted = 7;
    degraded = 1;
    rejected = 2;
    expired = 1;
    completed = 6;
    missed = 2;
    miss_rate = 2.0 /. 9.0;
    lateness_p50 = 0.0;
    lateness_p99 = 1.5;
    lateness_p999 = 1.5;
    max_lateness = 1.5;
    mean_queue_wait = 0.25;
    makespan = 17.5;
    busy_time = 12.0;
    preemptions = 4;
  }

let every_message =
  [
    Wire.Submit { line = "0.5 | 3 | count(select(r, sel < 10)) | seed=3" };
    Wire.Status;
    Wire.Fetch { job_id = 42 };
    Wire.Cancel { job_id = 0 };
    Wire.Drain;
    Wire.Hello { now = 1.5; max_pending = 4096; draining = false };
    Wire.Queued { job_id = 3; arrival = 1.0; deadline = 2.5 };
    Wire.Rejected { job_id = None; reason = "quota"; retry_after = 0.25 };
    Wire.Rejected
      { job_id = Some 9; reason = "queue_full"; retry_after = 1.75 };
    Wire.Result sample_done;
    Wire.Status_ok
      {
        now = 2.0;
        live = 3;
        pending = 4;
        backlog = 6.5;
        terminal = 11;
        draining = true;
      };
    Wire.Cancelled { job_id = 5; state = "pending" };
    Wire.Pending { job_id = 6; state = "queued" };
    Wire.Drain_done sample_summary;
    Wire.Error { message = "unexpected message" };
  ]

let test_wire_roundtrip_every_tag () =
  List.iter
    (fun msg ->
      match Wire.decode (Wire.encode msg) with
      | Ok msg' ->
          checkb (Wire.tag_name msg ^ " round-trips") true (msg = msg')
      | Error e -> Alcotest.failf "%s failed: %s" (Wire.tag_name msg) e)
    every_message

let test_wire_decode_total () =
  List.iter
    (fun s ->
      match Wire.decode s with
      | Error _ -> ()
      | Ok m ->
          Alcotest.failf "garbage decoded to %s" (Wire.tag_name m))
    [ ""; "\x00"; "\xff\xff\xff\xff"; String.make 64 '\xAB' ];
  (* truncating any strict prefix of a valid payload must error, never
     raise *)
  let payload = Wire.encode (Wire.Result sample_done) in
  for len = 0 to String.length payload - 1 do
    match Wire.decode (String.sub payload 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at %d decoded" len
  done

let test_wire_qcheck_submit_roundtrip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"submit lines round-trip"
       QCheck.(string_of_size Gen.(0 -- 512))
       (fun line ->
         Wire.decode (Wire.encode (Wire.Submit { line }))
         = Ok (Wire.Submit { line })))

(* Feed a multi-frame stream through the reader at every chunk size:
   reassembly must be insensitive to packet boundaries. *)
let test_reader_reassembly () =
  let payloads = List.map Wire.encode every_message in
  let stream = String.concat "" (List.map Wire.frame payloads) in
  List.iter
    (fun chunk ->
      let rd = Wire.reader () in
      let got = ref [] in
      let off = ref 0 in
      while !off < String.length stream do
        let n = Int.min chunk (String.length stream - !off) in
        Wire.feed rd (Bytes.of_string (String.sub stream !off n)) n;
        off := !off + n;
        let rec drain () =
          match Wire.next rd with
          | Ok (Some p) ->
              got := p :: !got;
              drain ()
          | Ok None -> ()
          | Error e -> Alcotest.failf "chunk %d: framing error %s" chunk e
        in
        drain ()
      done;
      checkb
        (Printf.sprintf "chunk size %d reassembles" chunk)
        true
        (List.rev !got = payloads))
    [ 1; 2; 3; 7; 16; 4096 ]

let test_reader_torn_and_corrupt () =
  let payload = Wire.encode Wire.Status in
  let frame = Wire.frame payload in
  (* torn: all but the last byte pends, never errors *)
  let rd = Wire.reader () in
  let torn = String.sub frame 0 (String.length frame - 1) in
  Wire.feed rd (Bytes.of_string torn) (String.length torn);
  checkb "torn frame pends" true (Wire.next rd = Ok None);
  Wire.feed rd (Bytes.of_string (String.sub frame (String.length frame - 1) 1)) 1;
  checkb "completed frame pops" true (Wire.next rd = Ok (Some payload));
  (* corrupt payload byte: CRC must catch it *)
  let corrupt = Bytes.of_string frame in
  Bytes.set corrupt (String.length frame - 1)
    (Char.chr (Char.code (Bytes.get corrupt (String.length frame - 1)) lxor 1));
  let rd = Wire.reader () in
  Wire.feed rd corrupt (Bytes.length corrupt);
  checkb "corrupt frame errors" true
    (match Wire.next rd with Error _ -> true | Ok _ -> false);
  (* an oversized length header is rejected before buffering the body *)
  let big = Bytes.create 8 in
  Bytes.set_int32_le big 0 (Int32.of_int (Wire.max_frame + 1));
  Bytes.set_int32_le big 4 0l;
  let rd = Wire.reader () in
  Wire.feed rd big 8;
  checkb "oversized length errors" true
    (match Wire.next rd with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Token bucket and pricing                                            *)

let test_token_bucket () =
  let b = Token_bucket.create ~capacity:2.0 ~refill:0.5 ~now:0.0 in
  checkb "starts full" true (Token_bucket.take b ~now:0.0 ~cost:1.0 = `Ok);
  checkb "second take ok" true (Token_bucket.take b ~now:0.0 ~cost:1.0 = `Ok);
  (match Token_bucket.take b ~now:0.0 ~cost:1.0 with
  | `Ok -> Alcotest.fail "empty bucket granted a token"
  | `Wait w -> checkf "wait prices the refill shortfall" 2.0 w);
  (* virtual time refills lazily *)
  checkb "refilled after 2s" true (Token_bucket.take b ~now:2.0 ~cost:1.0 = `Ok);
  (* refill never exceeds capacity *)
  let b = Token_bucket.create ~capacity:2.0 ~refill:0.5 ~now:0.0 in
  checkf "level capped" 2.0 (Token_bucket.level b ~now:1000.0);
  let frozen = Token_bucket.create ~capacity:1.0 ~refill:0.0 ~now:0.0 in
  ignore (Token_bucket.take frozen ~now:0.0 ~cost:1.0);
  checkb "zero refill waits forever" true
    (match Token_bucket.take frozen ~now:0.0 ~cost:1.0 with
    | `Wait w -> w = infinity
    | `Ok -> false)

let test_backpressure_pricing () =
  checkf "draining is free to retry" 0.0 Backpressure.draining;
  checkf "quota reject prices the refill wait" 0.25
    (Backpressure.quota ~wait:0.25);
  checkf "queue-full prices one backlog slot, scaled by headroom" 4.5
    (Backpressure.admission
       ~reason:(Admission.Queue_full { limit = 4 })
       ~backlog:12.0 ~queue_len:4 ~headroom:1.5);
  checkf "infeasible prices the missing slack" 2.25
    (Backpressure.admission
       ~reason:(Admission.Infeasible { needed = 2.5; available = 1.0 })
       ~backlog:0.0 ~queue_len:0 ~headroom:1.5);
  checkf "zero-slack is free to retry" 0.0
    (Backpressure.admission ~reason:Admission.Zero_slack ~backlog:9.0
       ~queue_len:3 ~headroom:1.0)

(* ------------------------------------------------------------------ *)
(* Socket end-to-end                                                   *)

let wl = lazy (Paper_setup.selection ~spec:(Fixtures.spec ~n_tuples:300 ()) ~seed:5 ())

(* A small schedule with enough contention that EDF has to preempt;
   offsets are what goes on the wire, the absolute job list is what
   the batch anchor runs. *)
let job_lines =
  lazy
    (let wl = Lazy.force wl in
     let q = Ra.to_string wl.Paper_setup.query in
     List.mapi
       (fun i (arr, dl) ->
         Printf.sprintf "%g | %g | %s | seed=%d,label=net%d" arr dl q (i + 3) i)
       [ (0.0, 2.5); (0.1, 1.2); (0.2, 4.0); (0.35, 1.5); (0.5, 6.0) ])

let batch_jobs () =
  let wl = Lazy.force wl in
  List.mapi
    (fun id line ->
      match Job.of_line ~catalog:wl.Paper_setup.catalog ~id line with
      | Ok (Some j) -> j
      | Ok None | Error _ -> Alcotest.failf "fixture line %d unparseable" id)
    (Lazy.force job_lines)

let spawn_server ?journal_path ?faults ?recover ?downtime ?admission
    ?(gate = `Drain) ?max_pending ?quota_capacity ?quota_refill () =
  let wl = Lazy.force wl in
  let server =
    Server.create ?journal_path ?faults ?recover ?downtime ?admission
      ?max_pending ?quota_capacity ?quota_refill ~gate
      ~catalog:wl.Paper_setup.catalog ~config:Taqp_core.Config.default ~port:0
      ()
  in
  let domain =
    Domain.spawn (fun () ->
        match Server.run server with
        | stats -> Ok stats
        | exception Injector.Crashed { at; _ } ->
            Server.shutdown server;
            Error at
        | exception e ->
            (* leave no fds behind even on an unexpected death, or the
               in-process client blocks instead of failing the test *)
            Server.shutdown server;
            raise e)
  in
  (server, domain)

let summary_fingerprint (s : Engine.summary) =
  Fmt.str "%d/%d/%d/%d/%d/%d/%d|%.17g|%.17g %.17g %.17g %.17g|%.17g|%.17g %.17g|%d"
    s.Engine.submitted s.Engine.admitted s.Engine.degraded s.Engine.rejected
    s.Engine.expired s.Engine.completed s.Engine.missed s.Engine.miss_rate
    s.Engine.lateness_p50 s.Engine.lateness_p99 s.Engine.lateness_p999
    s.Engine.max_lateness s.Engine.mean_queue_wait s.Engine.makespan
    s.Engine.busy_time s.Engine.preemptions

(* The anchor: submitting the schedule over sockets against a
   drain-gated server reproduces Scheduler.run bit-for-bit — summary
   and every per-job terminal record. *)
let test_socket_matches_batch () =
  let batch = Scheduler.run (batch_jobs ()) in
  let server, domain = spawn_server () in
  let c = Client.connect ~port:(Server.port server) () in
  let now, max_pending, draining = Client.hello c in
  checkf "virtual clock frozen at connect" 0.0 now;
  checki "hello advertises max_pending" 4096 max_pending;
  checkb "not draining at connect" false draining;
  List.iteri
    (fun i line ->
      match Client.submit c line with
      | `Queued (id, _, _) -> checki "ids assigned in submit order" i id
      | `Rejected (reason, _) -> Alcotest.failf "fixture rejected: %s" reason)
    (Lazy.force job_lines);
  let summary = Client.drain c in
  let pushes = Client.pushes c in
  checks "socket summary == batch summary"
    (summary_fingerprint batch.Scheduler.summary)
    (summary_fingerprint summary);
  let batch_records =
    List.map Engine.to_done_record batch.Scheduler.reports
  in
  let socket_records =
    List.filter_map
      (function Client.Finished d -> Some d | Client.Refused _ -> None)
      pushes
    |> List.sort (fun (a : Sched_journal.done_record) b ->
           compare a.Sched_journal.d_id b.Sched_journal.d_id)
  in
  checki "every job pushed a terminal record" (List.length batch_records)
    (List.length socket_records);
  List.iter2
    (fun (b : Sched_journal.done_record) s ->
      checks
        (Printf.sprintf "job %d record is wire-identical" b.Sched_journal.d_id)
        (Wire.frame_message (Wire.Result b))
        (Wire.frame_message (Wire.Result s)))
    batch_records socket_records;
  Client.close c;
  match Domain.join domain with
  | Ok stats ->
      checks "server-side summary agrees"
        (summary_fingerprint batch.Scheduler.summary)
        (summary_fingerprint stats.Server.summary);
      checki "no door rejects" 0 stats.Server.door_rejects
  | Error _ -> Alcotest.fail "server crashed"

(* Admission rejections surface as priced REJECT pushes carrying the
   engine-assigned id, and max_live respects the admission queue bound. *)
let test_socket_admission_rejects () =
  let admission = { Admission.max_queue = Some 1; headroom = 1.0 } in
  let batch = Scheduler.run ~admission (batch_jobs ()) in
  let rejected_batch =
    List.filter
      (fun (r : Engine.job_report) ->
        match r.Engine.outcome with Engine.Rejected _ -> true | _ -> false)
      batch.Scheduler.reports
  in
  checkb "fixture provokes admission rejects" true (rejected_batch <> []);
  let server, domain = spawn_server ~admission () in
  let c = Client.connect ~port:(Server.port server) () in
  List.iter
    (fun line ->
      match Client.submit c line with
      | `Queued _ -> ()
      | `Rejected (reason, _) ->
          Alcotest.failf "door rejected what admission should rule on: %s"
            reason)
    (Lazy.force job_lines);
  ignore (Client.drain c);
  let refused =
    List.filter_map
      (function
        | Client.Refused { job_id; retry_after; _ } ->
            Some (job_id, retry_after)
        | Client.Finished _ -> None)
      (Client.pushes c)
  in
  checki "wire rejects == batch rejects" (List.length rejected_batch)
    (List.length refused);
  List.iter
    (fun (_, retry_after) ->
      (* zero is an honest price — the live job has consumed its whole
         reservation, so the slot is about to free *)
      checkb "queue-full retry_after is finite and non-negative" true
        (retry_after >= 0.0 && retry_after < infinity))
    refused;
  Client.close c;
  match Domain.join domain with
  | Ok stats ->
      checkb "live set never exceeded max_queue" true (stats.Server.max_live <= 1)
  | Error _ -> Alcotest.fail "server crashed"

let test_quota_exhaustion () =
  (* capacity 2, no refill, and the clock is frozen pre-drain: the
     third submit must bounce with the priced infinite backoff. *)
  let server, domain =
    spawn_server ~quota_capacity:2.0 ~quota_refill:0.0 ()
  in
  let c = Client.connect ~port:(Server.port server) () in
  let lines = Lazy.force job_lines in
  let submit i = Client.submit c (List.nth lines i) in
  (match (submit 0, submit 1) with
  | `Queued _, `Queued _ -> ()
  | _ -> Alcotest.fail "quota capacity not honoured");
  (match submit 2 with
  | `Rejected (reason, retry_after) ->
      checks "door names the quota" "quota" reason;
      checkb "zero refill prices an infinite backoff" true
        (retry_after = infinity)
  | `Queued _ -> Alcotest.fail "third submit slipped past the quota");
  ignore (Client.drain c);
  Client.close c;
  match Domain.join domain with
  | Ok stats ->
      checki "exactly one door reject" 1 stats.Server.door_rejects;
      checki "engine only saw the admitted two" 2
        stats.Server.summary.Engine.submitted
  | Error _ -> Alcotest.fail "server crashed"

let test_depth_overload () =
  let server, domain = spawn_server ~max_pending:2 () in
  let c = Client.connect ~port:(Server.port server) () in
  let lines = Lazy.force job_lines in
  ignore (Client.submit c (List.nth lines 0));
  ignore (Client.submit c (List.nth lines 1));
  (match Client.submit c (List.nth lines 2) with
  | `Rejected (reason, retry_after) ->
      checks "door names the overload" "overloaded" reason;
      checkb "overload backoff is non-negative" true (retry_after >= 0.0)
  | `Queued _ -> Alcotest.fail "submit slipped past --max-pending");
  ignore (Client.drain c);
  Client.close c;
  ignore (Domain.join domain)

let test_parse_reject_and_status () =
  let server, domain = spawn_server () in
  let c = Client.connect ~port:(Server.port server) () in
  (match Client.submit c "not a job line at all" with
  | `Rejected (reason, _) ->
      checkb "parse failures name the parser" true
        (String.length reason >= 6 && String.sub reason 0 6 = "parse:")
  | `Queued _ -> Alcotest.fail "garbage line queued");
  (match Client.submit c (List.nth (Lazy.force job_lines) 0) with
  | `Queued (id, _, _) ->
      let _, live, pending, _, _, _ = Client.status c in
      checki "submitted job is pending behind the gate" 1 (live + pending);
      checks "cancel pending" "pending" (Client.cancel c ~job_id:id);
      checks "cancel unknown id" "unknown" (Client.cancel c ~job_id:999)
  | `Rejected _ -> Alcotest.fail "fixture line rejected");
  ignore (Client.drain c);
  Client.close c;
  ignore (Domain.join domain)

let test_garbage_closes_connection () =
  let server, domain = spawn_server () in
  (* a valid handshake followed by framing garbage: the server answers
     ERROR and hangs up; the next client is unaffected *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  let garbage = Wire.magic ^ String.make 64 '\xFF' in
  ignore (Unix.write_substring fd garbage 0 (String.length garbage));
  let buf = Bytes.create 4096 in
  let rec read_to_eof saw =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> saw
    | n -> read_to_eof (saw ^ Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> saw
  in
  let answer = read_to_eof "" in
  checkb "server answered before hanging up" true (String.length answer > 0);
  Unix.close fd;
  (* bad magic: closed without ceremony *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  ignore (Unix.write_substring fd "NOTMAGIC" 0 8);
  checki "bad magic closed" 0
    (try Unix.read fd buf 0 (Bytes.length buf)
     with Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0);
  Unix.close fd;
  (* the server is still serving *)
  let c = Client.connect ~port:(Server.port server) () in
  ignore (Client.drain c);
  Client.close c;
  ignore (Domain.join domain)

(* Kill-and-recover across the wire: journaled completions replay
   byte-identically to the no-crash run, the remainder re-runs, and
   the merged DRAIN_DONE covers every job exactly once. *)
let test_crash_recover_replay () =
  (* the baseline must journal too: journal writes are charged to the
     shared clock, so a journal-free run has different timings *)
  let j0 = tmp "baseline" and j1 = tmp "crash" and j2 = tmp "rerun" in
  let w = Journal.create j0 in
  let batch = Scheduler.run ~journal:w (batch_jobs ()) in
  Journal.close w;
  let crash_at = 0.6 *. batch.Scheduler.summary.Engine.makespan in
  let faults =
    Injector.create ~seed:3 (Fault_plan.make [ Fault_plan.crash_at crash_at ])
  in
  let server, domain = spawn_server ~journal_path:j1 ~faults () in
  let c = Client.connect ~port:(Server.port server) () in
  List.iter
    (fun line -> ignore (Client.submit c line))
    (Lazy.force job_lines);
  (match Client.drain c with
  | _ -> Alcotest.fail "the crash fault never fired"
  | exception (Client.Server_closed | Client.Protocol_error _) -> ());
  Client.close c;
  (match Domain.join domain with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "server survived its kill");
  let { Sched_journal.records; torn } =
    match Sched_journal.load j1 with Ok l -> l | Error m -> failwith m
  in
  checkb "crash journal readable" true (torn = None);
  let journaled_ids =
    List.filter_map
      (function
        | Sched_journal.Done d -> Some d.Sched_journal.d_id | _ -> None)
      records
  in
  checkb "some jobs finished before the kill" true (journaled_ids <> []);
  checkb "some jobs were still open at the kill" true
    (List.length journaled_ids < List.length (Lazy.force job_lines));
  let server, domain =
    spawn_server ~journal_path:j2 ~recover:records ~downtime:1.0 ()
  in
  let c = Client.connect ~port:(Server.port server) () in
  (* journaled completions answer immediately and verbatim *)
  let batch_records = List.map Engine.to_done_record batch.Scheduler.reports in
  List.iter
    (fun id ->
      match Client.fetch c ~job_id:id with
      | `Result d ->
          let b = List.find (fun r -> r.Sched_journal.d_id = id) batch_records in
          checks
            (Printf.sprintf "journaled job %d replays byte-identically" id)
            (Wire.frame_message (Wire.Result b))
            (Wire.frame_message (Wire.Result d))
      | `Pending s ->
          Alcotest.failf "journaled job %d still %s after recovery" id s)
    journaled_ids;
  (* re-admitted jobs belong to the dead connection, so their terminal
     records are not pushed to the reconnecting client — but the
     recovered server runs them eagerly, and each answers FETCH once
     its virtual run completes *)
  let remaining =
    List.filter
      (fun id -> not (List.mem id journaled_ids))
      (List.init (List.length (Lazy.force job_lines)) Fun.id)
  in
  List.iter
    (fun id ->
      let rec poll tries =
        match Client.fetch c ~job_id:id with
        | `Result _ -> ()
        | `Pending _ when tries > 0 ->
            Unix.sleepf 0.01;
            poll (tries - 1)
        | `Pending s ->
            Alcotest.failf "re-admitted job %d still %s after recovery" id s
      in
      poll 500)
    remaining;
  let summary = Client.drain c in
  checki "merged summary covers every job"
    (List.length (Lazy.force job_lines))
    summary.Engine.submitted;
  Client.close c;
  (match Domain.join domain with
  | Ok stats ->
      checki "stats carry the journaled records"
        (List.length journaled_ids)
        (List.length stats.Server.journaled)
  | Error _ -> Alcotest.fail "recovered server crashed");
  cleanup [ j0; j1; j2 ]

(* The open-loop harness against a drain-gated server is the same
   anchor one level up: schedule in, batch-identical accounting out. *)
let test_load_harness_matches_batch () =
  let wl = Lazy.force wl in
  let q = Ra.to_string wl.Paper_setup.query in
  let process = Arrivals.Poisson and rate = 2.0 and n = 8 and seed = 11 in
  let offsets = Arrivals.arrivals process ~rate ~n ~seed in
  let make_line ~index ~offset =
    Printf.sprintf "%.17g | %.17g | %s | seed=%d,label=load%d" offset
      (offset +. 1.5) q (index + 1) index
  in
  let jobs =
    Array.to_list
      (Array.mapi
         (fun id offset ->
           match
             Job.of_line ~catalog:wl.Paper_setup.catalog ~id
               (make_line ~index:id ~offset)
           with
           | Ok (Some j) -> j
           | _ -> Alcotest.fail "harness line unparseable")
         offsets)
  in
  let batch = Scheduler.run jobs in
  let server, domain = spawn_server ~quota_capacity:(float_of_int n) () in
  let out =
    Load.run ~port:(Server.port server) ~process ~rate ~n ~seed ~clients:3
      ~make_line ()
  in
  checks "harness summary == batch summary"
    (summary_fingerprint batch.Scheduler.summary)
    (summary_fingerprint out.Load.summary);
  checki "every submission queued" n
    (List.length
       (List.filter
          (fun s ->
            match s.Load.disposition with
            | Load.Queued _ -> true
            | Load.Door_rejected _ -> false)
          out.Load.submissions));
  checki "every job finished" n (List.length out.Load.finished);
  ignore (Domain.join domain)

(* ------------------------------------------------------------------ *)
(* Hardened framing: forged lengths and buffer bounds                  *)

(* A forged huge length prefix must error the moment its 4 bytes are
   buffered — before any of the claimed payload arrives, so a hostile
   peer cannot make the reader await (or allocate) gigabytes. *)
let test_forged_length_rejected_early () =
  let forged len =
    let b = Bytes.create 8 in
    Bytes.set_int32_le b 0 (Int32.of_int len);
    Bytes.set_int32_le b 4 0l;
    Bytes.to_string b
  in
  List.iter
    (fun len ->
      let rd = Wire.reader () in
      (* only the 4 length bytes — none of the claimed payload *)
      let hdr = String.sub (forged len) 0 4 in
      Wire.feed rd (Bytes.of_string hdr) 4;
      match Wire.next rd with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "length %d accepted with only the prefix buffered"
            len)
    [ Wire.max_frame + 1; 0x10_000_000; -1; Int32.to_int Int32.max_int ];
  (* and a length exactly at the bound is still fine *)
  let rd = Wire.reader () in
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int Wire.max_frame);
  Wire.feed rd b 4;
  checkb "max_frame length awaits its payload" true (Wire.next rd = Ok None)

let test_reader_overflow_poisons () =
  let rd = Wire.reader () in
  (* never consume: pour raw bytes in until the bound trips *)
  let chunk = Bytes.make 65536 'Z' in
  let fed = ref 0 in
  while !fed <= Wire.max_buffer do
    Wire.feed rd chunk (Bytes.length chunk);
    fed := !fed + Bytes.length chunk
  done;
  (match Wire.next rd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overflowed reader still serving");
  checkb "buffered bytes stay bounded" true
    (Wire.available rd <= Wire.max_buffer);
  (* poisoned is forever: feeding more neither grows nor revives it *)
  let before = Wire.available rd in
  Wire.feed rd chunk (Bytes.length chunk);
  checkb "poisoned reader drops input" true (Wire.available rd = before);
  match Wire.next rd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned reader revived"

(* ------------------------------------------------------------------ *)
(* Backpressure pricing properties                                     *)

let test_backpressure_qcheck () =
  let reason_gen =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map
          (fun l -> Admission.Queue_full { limit = 1 + abs l })
          QCheck.Gen.small_int;
        QCheck.Gen.return Admission.Zero_slack;
        QCheck.Gen.map2
          (fun a b ->
            Admission.Infeasible
              { needed = Float.abs a; available = Float.abs b })
          (QCheck.Gen.float_bound_inclusive 1e6)
          (QCheck.Gen.float_bound_inclusive 1e6);
      ]
  in
  let arb =
    QCheck.make
      QCheck.Gen.(
        quad reason_gen
          (float_bound_inclusive 1e9)
          (0 -- 10_000)
          (map (fun h -> 1.0 +. h) (float_bound_inclusive 4.0)))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500
       ~name:"admission retry_after is finite and non-negative" arb
       (fun (reason, backlog, queue_len, headroom) ->
         let r = Backpressure.admission ~reason ~backlog ~queue_len ~headroom in
         Float.is_finite r && r >= 0.0));
  (* deeper backlog at equal queue length never lowers the Queue_full
     price: the quote is monotone in the work ahead of you *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"Queue_full price monotone in backlog"
       (QCheck.make
          QCheck.Gen.(
            quad
              (float_bound_inclusive 1e6)
              (float_bound_inclusive 1e6)
              (1 -- 10_000)
              (map (fun h -> 1.0 +. h) (float_bound_inclusive 4.0))))
       (fun (b1, db, queue_len, headroom) ->
         let reason = Admission.Queue_full { limit = queue_len } in
         let p1 = Backpressure.admission ~reason ~backlog:b1 ~queue_len ~headroom in
         let p2 =
           Backpressure.admission ~reason ~backlog:(b1 +. Float.abs db)
             ~queue_len ~headroom
         in
         p2 >= p1))

(* ------------------------------------------------------------------ *)
(* Client timeouts                                                     *)

let test_client_connect_retry_gives_up () =
  (* grab a port with no listener: bind without listen, then close *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  let t0 = Unix.gettimeofday () in
  (match Client.connect_retry ~attempts:3 ~pause:0.01 ~port () with
  | _ -> Alcotest.fail "connected to a dead port"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  (* three attempts with doubling pause: the retries actually waited *)
  checkb "retries paused between dials" true
    (Unix.gettimeofday () -. t0 >= 0.03)

let test_client_read_timeout () =
  (* a listener that accepts and then says nothing: the bounded client
     must surface Timed_out instead of blocking on HELLO forever *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 1;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (match Client.connect ~connect_timeout:1.0 ~read_timeout:0.1 ~port () with
  | _ -> Alcotest.fail "HELLO from a silent listener"
  | exception Client.Timed_out phase -> checks "phase" "read" phase);
  Unix.close fd

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "every tag round-trips" `Quick
            test_wire_roundtrip_every_tag;
          Alcotest.test_case "decoding is total" `Quick test_wire_decode_total;
          Alcotest.test_case "qcheck submit round-trip" `Quick
            test_wire_qcheck_submit_roundtrip;
          Alcotest.test_case "reader reassembles at any boundary" `Quick
            test_reader_reassembly;
          Alcotest.test_case "torn and corrupt frames" `Quick
            test_reader_torn_and_corrupt;
          Alcotest.test_case "forged length rejected at the prefix" `Quick
            test_forged_length_rejected_early;
          Alcotest.test_case "receive buffer overflow poisons" `Quick
            test_reader_overflow_poisons;
        ] );
      ( "door",
        [
          Alcotest.test_case "token bucket" `Quick test_token_bucket;
          Alcotest.test_case "backpressure pricing" `Quick
            test_backpressure_pricing;
          Alcotest.test_case "qcheck pricing properties" `Quick
            test_backpressure_qcheck;
        ] );
      ( "socket",
        [
          Alcotest.test_case "drain-gated run == Scheduler.run" `Quick
            test_socket_matches_batch;
          Alcotest.test_case "admission rejects priced over the wire" `Quick
            test_socket_admission_rejects;
          Alcotest.test_case "quota exhaustion" `Quick test_quota_exhaustion;
          Alcotest.test_case "depth overload" `Quick test_depth_overload;
          Alcotest.test_case "parse reject, status, cancel" `Quick
            test_parse_reject_and_status;
          Alcotest.test_case "garbage closes the connection" `Quick
            test_garbage_closes_connection;
          Alcotest.test_case "kill and recover replays verbatim" `Quick
            test_crash_recover_replay;
          Alcotest.test_case "load harness == Scheduler.run" `Quick
            test_load_harness_matches_batch;
          Alcotest.test_case "connect_retry gives up on a dead port" `Quick
            test_client_connect_retry_gives_up;
          Alcotest.test_case "read timeout on a silent listener" `Quick
            test_client_read_timeout;
        ] );
    ]
