(* The observability subsystem: JSON kernel, metrics registry, tracer
   semantics, sink formats, and — end to end — the span structure a
   real staged query run emits, plus the guarantee that all of it is
   inert when disabled. *)

module Json = Taqp_obs.Json
module Event = Taqp_obs.Event
module Metrics = Taqp_obs.Metrics
module Sink = Taqp_obs.Sink
module Tracer = Taqp_obs.Tracer
module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Taqp = Taqp_core.Taqp
module Stopping = Taqp_timecontrol.Stopping
module Generator = Taqp_workload.Generator
module Paper_setup = Taqp_workload.Paper_setup

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf eps = Alcotest.check (Alcotest.float eps)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "read_block");
        ("ts", Json.Num 1.5);
        ("n", Json.Num 42.0);
        ("ok", Json.Bool true);
        ("none", Json.Null);
        ("xs", Json.List [ Json.Num 1.0; Json.Str "a\"b\n"; Json.Bool false ]);
      ]
  in
  let s = Json.to_string v in
  checkb "round-trips" true (Json.of_string s = v);
  (* integral doubles print without a fractional part *)
  checkb "integer rendering" true
    (String.length s > 0 && Json.to_string (Json.Num 42.0) = "42")

let test_json_parser_errors () =
  let bad s =
    match Json.of_string s with
    | _ -> false
    | exception Json.Parse_error _ -> true
  in
  checkb "empty" true (bad "");
  checkb "trailing garbage" true (bad "{} x");
  checkb "trailing comma" true (bad "[1,]");
  checkb "bare word" true (bad "flase");
  checkb "unterminated string" true (bad "\"abc");
  checkb "valid escapes ok" true
    (Json.of_string "\"a\\u0041\\n\"" = Json.Str "aA\n")

(* Property: print -> parse is the identity over the whole value space
   the printer can emit — including strings full of control characters
   (escaped as \u00XX), quotes and backslashes, and deeply nested
   containers. Non-finite floats are the one deliberate exception: the
   printer rejects them down to [null] (JSON has no NaN/inf), checked
   separately below. *)

let gen_json =
  let open QCheck.Gen in
  (* strings biased toward the troublesome range: control characters,
     the two mandatory escapes, and some multi-byte UTF-8 *)
  let tricky_char =
    frequency
      [
        (4, char_range 'a' 'z');
        (2, map Char.chr (int_range 0 0x1f));
        (1, return '"');
        (1, return '\\');
        (1, return '\xc3');
        (1, return '\xa9');
      ]
  in
  let gen_string = string_size ~gen:tricky_char (int_range 0 12) in
  let gen_num =
    frequency
      [
        (3, map float_of_int (int_range (-1_000_000) 1_000_000));
        (2, float_range (-1e9) 1e9);
        (1, return 0.0);
        (1, return 1e-7);
      ]
  in
  let leaf =
    frequency
      [
        (1, return Json.Null);
        (1, map (fun b -> Json.Bool b) bool);
        (2, map (fun n -> Json.Num n) gen_num);
        (2, map (fun s -> Json.Str s) gen_string);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (3, leaf);
               ( 1,
                 map
                   (fun xs -> Json.List xs)
                   (list_size (int_range 0 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_range 0 4)
                      (pair gen_string (self (n / 2)))) );
             ])

let prop_json_print_parse_id =
  QCheck.Test.make ~name:"print -> parse is the identity" ~count:500
    (QCheck.make ~print:Json.to_string gen_json)
    (fun v -> Json.of_string (Json.to_string v) = v)

let prop_json_string_escapes =
  QCheck.Test.make ~name:"every byte string round-trips as Str" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s -> Json.of_string (Json.to_string (Json.Str s)) = Json.Str s)

let test_json_control_chars_and_unicode () =
  (* all 32 control characters escape to something the parser undoes *)
  for c = 0 to 0x1f do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    checkb
      (Printf.sprintf "control 0x%02x round-trips" c)
      true
      (Json.of_string (Json.to_string (Json.Str s)) = Json.Str s)
  done;
  (* \u escapes decode to UTF-8, including multi-byte code points *)
  checkb "BMP escape" true
    (Json.of_string "\"\\u00e9\"" = Json.Str "\xc3\xa9");
  checkb "CJK escape" true
    (Json.of_string "\"\\u4e2d\"" = Json.Str "\xe4\xb8\xad");
  checkb "escaped controls parse" true
    (Json.of_string "\"\\u0000\\u001f\"" = Json.Str "\x00\x1f")

let test_json_non_finite_rejected () =
  (* the printer refuses to emit NaN/inf (invalid JSON): they collapse
     to null, and the output always re-parses *)
  List.iter
    (fun x ->
      checks "non-finite prints null" "null" (Json.to_string (Json.Num x));
      checkb "embedded stays parseable" true
        (Json.of_string (Json.to_string (Json.List [ Json.Num x ]))
        = Json.List [ Json.Null ]))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* and the parser refuses the bare tokens *)
  List.iter
    (fun s ->
      checkb (s ^ " rejected") true
        (match Json.of_string s with
        | _ -> false
        | exception Json.Parse_error _ -> true))
    [ "NaN"; "nan"; "Infinity"; "-Infinity"; "inf" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "io.blocks_read" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  (* get-or-create converges on the same cell *)
  let c' = Metrics.counter m "io.blocks_read" in
  Metrics.Counter.incr c';
  checki "shared cell" 6 (Metrics.Counter.value c);
  let g = Metrics.gauge m "query.estimate" in
  Metrics.Gauge.set g 880.0;
  checkf 1e-12 "gauge" 880.0 (Metrics.Gauge.value g);
  checkb "kind clash raises" true
    (match Metrics.gauge m "io.blocks_read" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.check
    Alcotest.(list (pair string int))
    "sorted dump"
    [ ("io.blocks_read", 6) ]
    (Metrics.counters m)

let test_metrics_histogram_quantiles () =
  let h = Metrics.Histogram.make ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] "t" in
  for _ = 1 to 50 do
    Metrics.Histogram.observe h 0.5
  done;
  for _ = 1 to 50 do
    Metrics.Histogram.observe h 3.0
  done;
  checki "count" 100 (Metrics.Histogram.count h);
  checkf 1e-9 "sum" 175.0 (Metrics.Histogram.sum h);
  let p50 = Metrics.Histogram.quantile h 0.5 in
  checkb "p50 in first bucket" true (p50 > 0.0 && p50 <= 1.0);
  let p95 = Metrics.Histogram.quantile h 0.95 in
  checkb "p95 in the (2,4] bucket" true (p95 > 2.0 && p95 <= 4.0);
  (* overflow bucket *)
  Metrics.Histogram.observe h 1e9;
  checkb "overflow counted" true (Metrics.Histogram.count h = 101)

(* ------------------------------------------------------------------ *)
(* Event serialization                                                 *)

let sample_events =
  [
    {
      Event.name = "query";
      cat = "query";
      ts = 0.0;
      phase = Event.Begin;
      args = [ ("quota", Event.Float 10.0) ];
    };
    {
      Event.name = "read_block";
      cat = "storage";
      ts = 0.25;
      phase = Event.Complete 0.015;
      args = [];
    };
    {
      Event.name = "deadline.abort";
      cat = "clock";
      ts = 10.0;
      phase = Event.Instant;
      args = [ ("deadline", Event.Float 10.0) ];
    };
    {
      Event.name = "io.blocks_read";
      cat = "metrics";
      ts = 1.0;
      phase = Event.Counter 180.0;
      args = [];
    };
    {
      Event.name = "query";
      cat = "query";
      ts = 10.0;
      phase = Event.End;
      args = [ ("outcome", Event.String "aborted"); ("ok", Event.Bool false) ];
    };
  ]

(* JSONL arguments collapse Int to Float on the way back; normalize
   for comparison. *)
let norm (e : Event.t) =
  {
    e with
    Event.args =
      List.map
        (fun (k, a) ->
          ( k,
            match a with
            | Event.Int i -> Event.Float (float_of_int i)
            | a -> a ))
        e.args;
  }

let test_event_jsonl_roundtrip () =
  List.iter
    (fun e ->
      match Event.of_json (Json.of_string (Json.to_string (Event.to_json e))) with
      | None -> Alcotest.fail ("no parse: " ^ e.Event.name)
      | Some e' -> checkb ("round-trip " ^ e.Event.name) true (norm e = norm e'))
    sample_events

let test_event_chrome_roundtrip () =
  List.iter
    (fun e ->
      match
        Event.of_chrome_json
          (Json.of_string (Json.to_string (Event.to_chrome_json e)))
      with
      | None -> Alcotest.fail ("no parse: " ^ e.Event.name)
      | Some e' ->
          checks "name" e.Event.name e'.Event.name;
          checks "cat" e.Event.cat e'.Event.cat;
          checkf 1e-9 "ts survives the microsecond conversion" e.Event.ts
            e'.Event.ts;
          checkb "phase" true
            (match (e.Event.phase, e'.Event.phase) with
            | Event.Begin, Event.Begin
            | Event.End, Event.End
            | Event.Instant, Event.Instant ->
                true
            | Event.Complete a, Event.Complete b
            | Event.Counter a, Event.Counter b ->
                Float.abs (a -. b) < 1e-9
            | _ -> false))
    sample_events

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)

let test_tracer_spans_and_disabled () =
  let sink, events = Sink.memory () in
  let t = ref 0.0 in
  let tr = Tracer.make ~now:(fun () -> !t) ~sink in
  checkb "enabled" true (Tracer.enabled tr);
  let r =
    Tracer.with_span tr ~cat:"stage" "stage-1" (fun () ->
        t := 1.0;
        Tracer.instant tr ~cat:"clock" "tick";
        17)
  in
  checki "with_span returns" 17 r;
  (match events () with
  | [ b; i; e ] ->
      checkb "begin" true (b.Event.phase = Event.Begin && b.Event.ts = 0.0);
      checkb "instant" true (i.Event.phase = Event.Instant);
      checkb "end" true (e.Event.phase = Event.End && e.Event.ts = 1.0)
  | evs -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length evs)));
  checkb "disabled tracer is disabled" false (Tracer.enabled Tracer.disabled);
  (* the disabled tracer must be emission-free (its sink is null) *)
  Tracer.span_begin Tracer.disabled "x";
  Tracer.span_end Tracer.disabled "x";
  checki "no new events" 3 (List.length (events ()))

let test_tracer_with_span_aborted () =
  let sink, events = Sink.memory () in
  let tr = Tracer.make ~now:(fun () -> 0.0) ~sink in
  (match
     Tracer.with_span tr ~cat:"stage" "s" (fun () -> failwith "boom")
   with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  match events () with
  | [ _; e ] ->
      checkb "end flagged aborted" true
        (List.assoc_opt "aborted" e.Event.args = Some (Event.Bool true))
  | _ -> Alcotest.fail "expected begin+end"

(* ------------------------------------------------------------------ *)
(* Clock deadline interrupts                                           *)

module Clock = Taqp_storage.Clock

let test_sleep_until_expired_deadline_aborts () =
  (* Regression: a sleeper calling in after an armed Abort deadline has
     already passed must take the pending interrupt immediately — even
     when the sleep target itself lies before the deadline (a
     zero-length or backwards sleep), which used to return silently
     without recording [deadline.abort]. *)
  let sink, events = Sink.memory () in
  let clock = Clock.create_virtual () in
  Clock.set_tracer clock (Tracer.make ~now:(fun () -> Clock.now clock) ~sink);
  Clock.charge clock 1.0;
  Clock.arm clock ~mode:`Abort ~at:0.5;
  (match Clock.sleep_until clock 0.4 with
  | () -> Alcotest.fail "expected the pending interrupt to fire"
  | exception Clock.Deadline_exceeded { now; deadline } ->
      checkf 0.0 "raised at the current time" 1.0 now;
      checkf 0.0 "with the armed deadline" 0.5 deadline);
  checkf 0.0 "clock did not move" 1.0 (Clock.now clock);
  match
    List.filter (fun e -> e.Event.name = "deadline.abort") (events ())
  with
  | [ e ] ->
      checkf 0.0 "abort stamped at fire time" 1.0 e.Event.ts;
      checkb "carries the deadline" true
        (List.assoc_opt "deadline" e.Event.args = Some (Event.Float 0.5))
  | es -> Alcotest.failf "expected exactly one deadline.abort, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* End-to-end: a real staged run                                       *)

let small_spec =
  { Generator.n_tuples = 400; tuple_bytes = 200; block_bytes = 1024 }

let observe_config =
  {
    Config.default with
    Config.stopping = Stopping.Soft_deadline { grace = 100.0 };
  }

let run_traced ?(quota = 2.0) ~sink wl =
  Taqp.count_within ~config:observe_config ~seed:3 ~sink wl.Paper_setup.catalog
    ~quota wl.Paper_setup.query

(* Chrome export of a 2-join (three-relation) query: parseable JSON
   whose B/E events nest at least 3 deep (query -> stage -> operator),
   with storage-layer X events inside. *)
let test_chrome_export_nesting () =
  let buf = Buffer.create 4096 in
  let wl = Paper_setup.three_way_join ~spec:small_spec ~seed:1 () in
  let r = run_traced ~quota:20.0 ~sink:(Sink.chrome (Sink.to_buffer buf)) wl in
  checkb "ran stages" true (r.Report.stages_completed >= 1);
  let json = Json.of_string (Buffer.contents buf) in
  let items = Option.get (Json.to_list json) in
  checkb "non-empty trace" true (List.length items > 10);
  (* the stream opens with process/thread metadata (ph "M") naming the
     synthetic pid/tid; everything after is a real event *)
  let phase_of item =
    match item with
    | Json.Obj fields -> (
        match List.assoc_opt "ph" fields with
        | Some (Json.Str p) -> p
        | _ -> "?")
    | _ -> "?"
  in
  let metadata, real = List.partition (fun i -> phase_of i = "M") items in
  let meta_name item =
    match item with
    | Json.Obj fields -> (
        match List.assoc_opt "name" fields with
        | Some (Json.Str n) -> n
        | _ -> "?")
    | _ -> "?"
  in
  checki "two metadata events" 2 (List.length metadata);
  Alcotest.check
    Alcotest.(list string)
    "metadata names"
    [ "process_name"; "thread_name" ]
    (List.map meta_name metadata);
  let events = List.filter_map Event.of_chrome_json real in
  checki "every event parses back" (List.length real) (List.length events);
  let depth = ref 0 and max_depth = ref 0 in
  let cats_at_depth = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.phase with
      | Event.Begin ->
          incr depth;
          Hashtbl.replace cats_at_depth !depth e.Event.cat;
          if !depth > !max_depth then max_depth := !depth
      | Event.End -> decr depth
      | Event.Complete _ | Event.Instant | Event.Counter _ -> ())
    events;
  checki "balanced spans" 0 !depth;
  checkb "at least 3 nested span levels" true (!max_depth >= 3);
  checks "level 1 is the query" "query"
    (Option.value ~default:"?" (Hashtbl.find_opt cats_at_depth 1));
  checks "level 2 is a stage" "stage"
    (Option.value ~default:"?" (Hashtbl.find_opt cats_at_depth 2));
  checks "level 3 is an operator" "operator"
    (Option.value ~default:"?" (Hashtbl.find_opt cats_at_depth 3));
  (* the operator layer is a real tree: joins appear below the stage *)
  checkb "join operators present" true
    (List.exists
       (fun (e : Event.t) -> e.Event.cat = "operator" && e.Event.name = "join")
       events);
  checkb "storage spans present" true
    (List.exists
       (fun (e : Event.t) ->
         e.Event.cat = "storage"
         && match e.Event.phase with Event.Complete _ -> true | _ -> false)
       events)

(* The JSONL stream carries exactly the events the tracer emitted. *)
let test_jsonl_stream_matches_memory () =
  let buf = Buffer.create 4096 in
  let mem, events = Sink.memory () in
  let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
  let _ = run_traced ~sink:(Sink.tee [ Sink.jsonl (Sink.to_buffer buf); mem ]) wl in
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> String.trim l <> "")
  in
  let expected = events () in
  checki "one line per event" (List.length expected) (List.length lines);
  List.iter2
    (fun line e ->
      match Event.of_json (Json.of_string line) with
      | None -> Alcotest.fail "unparseable JSONL line"
      | Some e' -> checkb "line matches event" true (norm e = norm e'))
    lines expected;
  (* span structure is balanced per category too *)
  let opens cat =
    List.length
      (List.filter
         (fun (e : Event.t) -> e.Event.cat = cat && e.Event.phase = Event.Begin)
         expected)
  and closes cat =
    List.length
      (List.filter
         (fun (e : Event.t) -> e.Event.cat = cat && e.Event.phase = Event.End)
         expected)
  in
  List.iter
    (fun cat -> checki ("balanced " ^ cat) (opens cat) (closes cat))
    [ "query"; "stage"; "operator" ]

(* Tracing must be inert: the same run with and without a sink returns
   bit-identical results — same estimate, same clock, same IO. *)
let test_disabled_path_zero_drift () =
  let run sink =
    let wl = Paper_setup.join ~spec:small_spec ~target_output:2000 ~seed:5 () in
    match sink with
    | None ->
        Taqp.count_within ~config:observe_config ~seed:3 wl.Paper_setup.catalog
          ~quota:2.0 wl.Paper_setup.query
    | Some sink -> run_traced ~sink wl
  in
  let plain = run None in
  let traced = run (Some (fst (Sink.memory ()))) in
  checkf 1e-15 "same estimate" plain.Report.estimate traced.Report.estimate;
  checkf 1e-15 "same elapsed" plain.Report.elapsed traced.Report.elapsed;
  checki "same blocks_read" plain.Report.blocks_read traced.Report.blocks_read;
  checki "same stages" plain.Report.stages_completed
    traced.Report.stages_completed;
  checkf 1e-15 "same variance" plain.Report.variance traced.Report.variance

(* The summary sink renders per-stage lines from the span stream. *)
let test_summary_sink () =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let wl = Paper_setup.selection ~spec:small_spec ~output:100 ~seed:5 () in
  let _ = run_traced ~sink:(Sink.summary ppf) wl in
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains sub =
    let n = String.length sub and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = sub || go (i + 1)) in
    go 0
  in
  checkb "has header" true (contains "trace summary");
  checkb "has stage line" true (contains "stage-1");
  checkb "has storage totals" true (contains "storage");
  checkb "records the armed deadline" true (contains "deadline.armed")

let () =
  Alcotest.run "taqp_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser errors" `Quick test_json_parser_errors;
          Alcotest.test_case "control chars and unicode" `Quick
            test_json_control_chars_and_unicode;
          Alcotest.test_case "non-finite floats" `Quick
            test_json_non_finite_rejected;
          QCheck_alcotest.to_alcotest prop_json_print_parse_id;
          QCheck_alcotest.to_alcotest prop_json_string_escapes;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "histogram quantiles" `Quick
            test_metrics_histogram_quantiles;
        ] );
      ( "events",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_event_jsonl_roundtrip;
          Alcotest.test_case "chrome roundtrip" `Quick
            test_event_chrome_roundtrip;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "spans" `Quick test_tracer_spans_and_disabled;
          Alcotest.test_case "aborted span" `Quick test_tracer_with_span_aborted;
        ] );
      ( "clock",
        [
          Alcotest.test_case "expired deadline aborts sleep" `Quick
            test_sleep_until_expired_deadline_aborts;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "chrome export nesting" `Quick
            test_chrome_export_nesting;
          Alcotest.test_case "jsonl stream" `Quick
            test_jsonl_stream_matches_memory;
          Alcotest.test_case "disabled path zero drift" `Quick
            test_disabled_path_zero_drift;
          Alcotest.test_case "summary sink" `Quick test_summary_sink;
        ] );
    ]
