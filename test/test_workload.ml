module Generator = Taqp_workload.Generator
module Paper_setup = Taqp_workload.Paper_setup
module Heap_file = Taqp_storage.Heap_file
module Eval = Taqp_relational.Eval
module Prng = Taqp_rng.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small = { Generator.n_tuples = 200; tuple_bytes = 200; block_bytes = 1024 }

let test_paper_spec () =
  checki "tuples" 10_000 Generator.paper_spec.Generator.n_tuples;
  checki "tuple bytes" 200 Generator.paper_spec.Generator.tuple_bytes;
  let r = Generator.relation ~spec:small ~rng:(Prng.create 1) () in
  checki "blocking factor 5" 5 (Heap_file.blocking_factor r);
  checki "blocks" 40 (Heap_file.n_blocks r);
  checki "tuples stored" 200 (Heap_file.n_tuples r)

let test_sel_column_is_permutation () =
  let r = Generator.relation ~spec:small ~rng:(Prng.create 2) () in
  let sels =
    List.filter_map
      (fun t -> Taqp_data.Value.to_int (Taqp_data.Tuple.get t 1))
      (Heap_file.to_list r)
  in
  Alcotest.check
    Alcotest.(list int)
    "permutation of 0..n-1"
    (List.init 200 (fun i -> i))
    (List.sort Int.compare sels)

let test_selection_workload_exact () =
  let wl = Paper_setup.selection ~spec:small ~output:37 ~seed:3 () in
  checki "exact equals requested output" 37 wl.Paper_setup.exact;
  checki "agrees with evaluator" 37 (Eval.count wl.catalog wl.query)

let test_join_workload () =
  let wl = Paper_setup.join ~spec:small ~target_output:1000 ~seed:3 () in
  (* group size c = round(1000/200) = 5; 40 groups of 5x5 = 1000 *)
  checki "exact output" 1000 wl.Paper_setup.exact;
  checki "group size" 5 (Generator.join_group_size ~n:200 ~target_output:1000)

let test_join_group_size_bounds () =
  checki "clamped low" 1 (Generator.join_group_size ~n:100 ~target_output:0);
  checki "clamped high" 100 (Generator.join_group_size ~n:100 ~target_output:100_000_000);
  checkb "invalid n" true
    (match Generator.join_group_size ~n:0 ~target_output:10 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_intersection_full_overlap () =
  let wl = Paper_setup.intersection ~spec:small ~seed:4 () in
  checki "full overlap" 200 wl.Paper_setup.exact

let test_intersection_partial_overlap () =
  let wl = Paper_setup.intersection ~spec:small ~overlap:50 ~seed:4 () in
  checki "partial overlap" 50 wl.Paper_setup.exact

let test_partial_copy_bounds () =
  let r = Generator.relation ~spec:small ~rng:(Prng.create 5) () in
  checkb "bad keep" true
    (match Generator.partial_copy ~rng:(Prng.create 1) ~keep:201 ~fresh_ids_from:1000 r with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let c = Generator.partial_copy ~rng:(Prng.create 1) ~keep:0 ~fresh_ids_from:1000 r in
  checki "cardinality preserved" 200 (Heap_file.n_tuples c)

let test_shuffled_copy_same_set () =
  let r = Generator.relation ~spec:small ~rng:(Prng.create 6) () in
  let c = Generator.shuffled_copy ~rng:(Prng.create 7) r in
  let key f =
    List.sort Taqp_data.Tuple.compare (Heap_file.to_list f)
  in
  checkb "same tuple set" true
    (List.for_all2 Taqp_data.Tuple.equal (key r) (key c));
  (* physically different placement with overwhelming probability *)
  checkb "different order" true
    (not (List.for_all2 Taqp_data.Tuple.equal (Heap_file.to_list r) (Heap_file.to_list c)))

let test_projection_workload () =
  let wl = Paper_setup.projection ~spec:small ~groups:13 ~seed:8 () in
  checki "distinct groups" 13 wl.Paper_setup.exact

let test_select_join_workload () =
  let wl = Paper_setup.select_join ~spec:small ~target_output:1000 ~keep:40 ~seed:8 () in
  checkb "filtered below join size" true (wl.Paper_setup.exact < 1000);
  checki "agrees with evaluator" wl.Paper_setup.exact (Eval.count wl.catalog wl.query)

let test_projection_skewed_workload () =
  let wl = Paper_setup.projection_skewed ~spec:small ~groups:30 ~zipf_s:1.5 ~seed:9 () in
  checkb "realized groups bounded" true (wl.Paper_setup.exact <= 30);
  checkb "some groups realized" true (wl.Paper_setup.exact >= 5);
  checki "agrees with evaluator" wl.Paper_setup.exact
    (Eval.count wl.catalog wl.query)

let test_union_workload () =
  let wl = Paper_setup.union_of_selects ~spec:small ~seed:8 () in
  (* sel < 60 plus sel >= 160: 60 + 40 = 100 *)
  checki "disjoint union" 100 wl.Paper_setup.exact

(* ------------------------------------------------------------------ *)
(* Arrival processes (the open-loop serving harness)                   *)

module Arrivals = Taqp_workload.Arrivals

let checkf = Fixtures.checkf

let test_arrivals_deterministic_per_seed () =
  List.iter
    (fun process ->
      let a = Arrivals.interarrivals process ~rate:3.0 ~n:64 ~seed:9 in
      let b = Arrivals.interarrivals process ~rate:3.0 ~n:64 ~seed:9 in
      checkb (Arrivals.name process ^ " replays per seed") true (a = b);
      let c = Arrivals.interarrivals process ~rate:3.0 ~n:64 ~seed:10 in
      checkb (Arrivals.name process ^ " differs across seeds") true (a <> c))
    [ Arrivals.Poisson; Arrivals.Pareto { alpha = 1.5 } ]

(* Both processes are normalized to mean 1/rate; across seeds the
   grand sample mean must land near it. Pareto at alpha=2.5 has finite
   variance, so the bound can stay reasonably tight. *)
let test_arrivals_mean_sanity () =
  List.iter
    (fun process ->
      let total = ref 0.0 and count = ref 0 in
      for seed = 1 to 30 do
        let gaps = Arrivals.interarrivals process ~rate:4.0 ~n:400 ~seed in
        Array.iter (fun g -> total := !total +. g) gaps;
        count := !count + Array.length gaps
      done;
      let mean = !total /. float_of_int !count in
      checkb
        (Printf.sprintf "%s grand mean %.4f within 10%% of 0.25"
           (Arrivals.name process) mean)
        true
        (Float.abs (mean -. 0.25) < 0.025))
    [ Arrivals.Poisson; Arrivals.Pareto { alpha = 2.5 } ]

(* Heavy tails must actually show up: the median tail_ratio of Pareto
   (alpha 1.2) schedules dominates the exponential's by a wide margin. *)
let test_arrivals_tail_separation () =
  let median_tail process =
    let ratios =
      List.init 20 (fun seed ->
          Arrivals.tail_ratio
            (Arrivals.interarrivals process ~rate:1.0 ~n:500 ~seed:(seed + 1)))
      |> List.sort compare
    in
    List.nth ratios 10
  in
  let poisson = median_tail Arrivals.Poisson in
  let pareto = median_tail (Arrivals.Pareto { alpha = 1.2 }) in
  checkb
    (Printf.sprintf "pareto median tail %.1f >> poisson %.1f" pareto poisson)
    true
    (pareto > 3.0 *. poisson)

let test_arrivals_cumsum_and_parse () =
  let gaps = Arrivals.interarrivals Arrivals.Poisson ~rate:2.0 ~n:16 ~seed:3 in
  let times = Arrivals.arrivals Arrivals.Poisson ~rate:2.0 ~n:16 ~seed:3 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i g ->
      acc := !acc +. g;
      checkf (Printf.sprintf "cumsum at %d" i) !acc times.(i))
    gaps;
  checkb "strictly increasing" true
    (Array.for_all Fun.id
       (Array.mapi (fun i t -> i = 0 || t > times.(i - 1)) times));
  checkb "poisson parses" true (Arrivals.of_string "poisson" = Ok Arrivals.Poisson);
  checkb "pareto defaults alpha" true
    (match Arrivals.of_string "pareto" with
    | Ok (Arrivals.Pareto { alpha }) -> alpha = 1.5
    | _ -> false);
  checkb "pareto takes alpha" true
    (match Arrivals.of_string "pareto(1.25)" with
    | Ok (Arrivals.Pareto { alpha }) -> alpha = 1.25
    | _ -> false);
  checkb "name round-trips" true
    (Arrivals.of_string (Arrivals.name (Arrivals.Pareto { alpha = 1.75 }))
    = Ok (Arrivals.Pareto { alpha = 1.75 }));
  checkb "alpha at 1 refused" true
    (match Arrivals.of_string "pareto(1.0)" with Error _ -> true | Ok _ -> false);
  checkb "bad rate raises" true
    (match Arrivals.interarrivals Arrivals.Poisson ~rate:0.0 ~n:4 ~seed:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "paper spec" `Quick test_paper_spec;
          Alcotest.test_case "sel permutation" `Quick test_sel_column_is_permutation;
          Alcotest.test_case "join group size" `Quick test_join_group_size_bounds;
          Alcotest.test_case "partial copy" `Quick test_partial_copy_bounds;
          Alcotest.test_case "shuffled copy" `Quick test_shuffled_copy_same_set;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "selection exact" `Quick test_selection_workload_exact;
          Alcotest.test_case "join" `Quick test_join_workload;
          Alcotest.test_case "intersection full" `Quick test_intersection_full_overlap;
          Alcotest.test_case "intersection partial" `Quick
            test_intersection_partial_overlap;
          Alcotest.test_case "projection" `Quick test_projection_workload;
          Alcotest.test_case "skewed projection" `Quick test_projection_skewed_workload;
          Alcotest.test_case "select-join" `Quick test_select_join_workload;
          Alcotest.test_case "union" `Quick test_union_workload;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_arrivals_deterministic_per_seed;
          Alcotest.test_case "mean sanity" `Quick test_arrivals_mean_sanity;
          Alcotest.test_case "heavy-tail separation" `Quick
            test_arrivals_tail_separation;
          Alcotest.test_case "cumsum and parsing" `Quick
            test_arrivals_cumsum_and_parse;
        ] );
    ]
