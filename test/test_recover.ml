(* taqp_recover: journal codec, torn-tail handling, and the recovery
   guarantees of docs/RECOVERY.md.

   The load-bearing suite is "boundary": a journaled run killed at a
   stage boundary and resumed from its newest checkpoint must
   reproduce the uninterrupted run bit-for-bit — same report
   fingerprint AND same trace stream (crashed prefix ++ resumed tail =
   uninterrupted stream) — across every fixture x physical path x
   seed cell. CI sweeps extra cells via TAQP_RECOVER_SEED and
   TAQP_PHYSICAL. *)

module Taqp = Taqp_core.Taqp
module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Aggregate = Taqp_core.Aggregate
module Executor = Taqp_core.Executor
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Io_stats = Taqp_storage.Io_stats
module Paper_setup = Taqp_workload.Paper_setup
module Prng = Taqp_rng.Prng
module Value = Taqp_data.Value
module Tuple = Taqp_data.Tuple
module Sink = Taqp_obs.Sink
module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Json = Taqp_obs.Json
module Metrics = Taqp_obs.Metrics
module Strategy = Taqp_timecontrol.Strategy
module Stopping = Taqp_timecontrol.Stopping
module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector
module Job = Taqp_sched.Job
module Scheduler = Taqp_sched.Scheduler
module Sched_journal = Taqp_sched.Sched_journal
module Crc32 = Taqp_recover.Crc32
module Codec = Taqp_recover.Codec
module Journal = Taqp_recover.Journal
module Checkpoint = Taqp_recover.Checkpoint
module Query_journal = Taqp_recover.Query_journal

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf

(* CI sweeps one cell per matrix job; the default covers the whole
   grid in one process. *)
let seeds =
  match Sys.getenv_opt "TAQP_RECOVER_SEED" with
  | Some s -> [ int_of_string s ]
  | None -> [ 3; 5; 11; 23 ]

let physicals =
  match Sys.getenv_opt "TAQP_PHYSICAL" with
  | Some "sort_merge" -> [ Config.Sort_merge ]
  | Some "hash" -> [ Config.Hash ]
  | Some other -> failwith ("TAQP_PHYSICAL: unknown path " ^ other)
  | None -> [ Config.Sort_merge; Config.Hash ]

let physical_name = function
  | Config.Sort_merge -> "sort_merge"
  | Config.Hash -> "hash"
  | Config.Adaptive -> "adaptive"

let fingerprint (r : Report.t) =
  Fmt.str "%.17g|%.17g|%.17g|%.17g|%d|%b|%a" r.Report.estimate
    r.Report.variance r.Report.confidence.Taqp_stats.Confidence.half_width
    r.Report.elapsed r.Report.stages_completed r.Report.degraded Io_stats.pp
    r.Report.io

let tmp tag = Filename.temp_file ("taqp_test_" ^ tag) ".jrn"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Flip one byte of a journal file in place. *)
let corrupt path pos =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0xff));
  write_file path (Bytes.to_string s)

let truncate_file path keep =
  let s = read_file path in
  write_file path (String.sub s 0 keep)

(* ------------------------------------------------------------------ *)
(* A journaled evaluation loop mirroring the CLI's --journal path, and
   the matching resume loop with continuation journaling (the resumed
   run keeps paying the same per-boundary checkpoint charge, so its
   [elapsed] matches the uninterrupted journaled run's). *)

let journaled_run ?sink ?metrics ?(params = Cost_params.default)
    ?(config = Config.default) ?(stop_after = max_int) ~path ~wl ~quota ~seed
    () =
  let rng = Prng.create seed in
  let clock = Clock.create_virtual () in
  let tracer =
    Option.map
      (fun sink -> Tracer.make ~now:(fun () -> Clock.now clock) ~sink)
      sink
  in
  let device =
    Device.create ~params ~jitter_rng:(Prng.split rng) ?metrics ?tracer clock
  in
  let catalog = wl.Paper_setup.catalog and expr = wl.Paper_setup.query in
  let h =
    Executor.start ~config ~aggregate:Aggregate.Count ~device ~catalog ~rng
      ~quota expr
  in
  let journal =
    Query_journal.create ~path ~device
      {
        Checkpoint.m_query = expr;
        m_aggregate = Aggregate.Count;
        m_config = config;
        m_quota = quota;
        m_seed = seed;
        m_params = params;
        m_fault_plan = Fault_plan.none;
        m_fault_seed = seed;
      }
  in
  Query_journal.checkpoint journal h;
  let rec loop n =
    if n >= stop_after then `Abandoned
    else
      match Executor.step h with
      | `Continue ->
          Query_journal.checkpoint journal h;
          loop (n + 1)
      | `Done r -> `Done r
  in
  let out = loop 0 in
  Query_journal.close journal;
  out

let resume_run ?sink ?now ?continue_to ~catalog loaded =
  match Query_journal.resume_last ?sink ?now ~catalog loaded with
  | Error m -> failwith m
  | Ok (device, h) ->
      let continuation =
        Option.map
          (fun path ->
            Query_journal.create ~path ~device loaded.Query_journal.l_meta)
          continue_to
      in
      let rec loop () =
        match Executor.step h with
        | `Continue ->
            Option.iter (fun j -> Query_journal.checkpoint j h) continuation;
            loop ()
        | `Done r -> r
      in
      let r = loop () in
      Option.iter Query_journal.close continuation;
      r

let cleanup paths = List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)

let test_crc32_vector () =
  Alcotest.check Alcotest.int32 "IEEE test vector" 0xCBF43926l
    (Crc32.string "123456789");
  Alcotest.check Alcotest.int32 "empty" 0l (Crc32.string "")

let test_crc32_incremental () =
  let s = "the journal torn-tail rule" in
  let n = String.length s in
  for cut = 0 to n do
    let inc = Crc32.update (Crc32.update 0l s 0 cut) s cut (n - cut) in
    Alcotest.check Alcotest.int32
      (Printf.sprintf "split at %d" cut)
      (Crc32.string s) inc
  done;
  checkb "out-of-range slice raises" true
    (match Crc32.update 0l s 0 (n + 1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let test_codec_primitives () =
  let rt enc dec v = Codec.of_string dec (Codec.to_string enc v) in
  List.iter
    (fun i -> checki "int" i (rt Codec.int Codec.read_int i))
    [ 0; 1; -1; 42; max_int; min_int ];
  List.iter
    (fun f ->
      checkb
        (Printf.sprintf "float %h bit-exact" f)
        true
        (Int64.bits_of_float (rt Codec.float Codec.read_float f)
        = Int64.bits_of_float f))
    [ 0.0; -0.0; 1.5; -3.25e300; infinity; neg_infinity; nan; epsilon_float ];
  checkb "bool" true (rt Codec.bool Codec.read_bool true);
  checkb "bool" false (rt Codec.bool Codec.read_bool false);
  Alcotest.check Alcotest.string "string" "déjà\x00vu"
    (rt Codec.string Codec.read_string "déjà\x00vu");
  checkb "option none" true
    (rt (Codec.option Codec.int) (Codec.read_option Codec.read_int) None
    = None);
  checkb "list" true
    (rt (Codec.list Codec.int) (Codec.read_list Codec.read_int)
       [ 7; -9; 0 ]
    = [ 7; -9; 0 ])

let test_codec_domain () =
  let rt enc dec v = Codec.of_string dec (Codec.to_string enc v) in
  let values =
    [ Value.Int (-7); Value.Float 2.5; Value.String "x"; Value.Bool false;
      Value.Null ]
  in
  List.iter
    (fun v -> checkb "value" true (rt Codec.value Codec.read_value v = v))
    values;
  let t = Tuple.of_list ~pad:13 values in
  let t' = rt Codec.tuple Codec.read_tuple t in
  checkb "tuple fields" true (Tuple.fields t' = Tuple.fields t);
  checki "tuple pad" (Tuple.pad t) (Tuple.pad t');
  let rng = Prng.create 99 in
  let st = Prng.state rng in
  checkb "rng state" true (rt Codec.rng_state Codec.read_rng_state st = st)

let test_codec_errors () =
  let payload = Codec.to_string Codec.string "hello" in
  checkb "truncated payload raises Decode_error" true
    (match
       Codec.of_string Codec.read_string
         (String.sub payload 0 (String.length payload - 1))
     with
    | _ -> false
    | exception Codec.Decode_error _ -> true);
  checkb "trailing bytes raise Decode_error" true
    (match Codec.of_string Codec.read_string (payload ^ "x") with
    | _ -> false
    | exception Codec.Decode_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Journal framing and the torn-tail rule                              *)

let test_journal_roundtrip () =
  checki "frame overhead" 8 Journal.frame_overhead;
  let path = tmp "frames" in
  let w = Journal.create path in
  List.iter (Journal.append w) [ "alpha"; "bravo!"; "charlie" ];
  Journal.close w;
  (match Journal.load path with
  | Error m -> Alcotest.fail m
  | Ok { records; tail } ->
      checkb "records back in order" true
        (records = [ "alpha"; "bravo!"; "charlie" ]);
      checkb "clean tail" true (tail = Journal.Clean));
  cleanup [ path ]

let test_journal_torn_tail () =
  let write3 path =
    let w = Journal.create path in
    List.iter (Journal.append w) [ "alpha"; "bravo!"; "charlie" ];
    Journal.close w
  in
  let magic = String.length Journal.magic in
  let frame s = Journal.frame_overhead + String.length s in
  (* Kill mid-write: the torn final frame is discarded, the rest kept. *)
  let path = tmp "torn" in
  write3 path;
  truncate_file path (magic + frame "alpha" + frame "bravo!" + 3);
  (match Journal.load path with
  | Error m -> Alcotest.fail m
  | Ok { records; tail } ->
      checkb "prefix survives" true (records = [ "alpha"; "bravo!" ]);
      checkb "tail reported torn" true
        (match tail with Journal.Torn _ -> true | Journal.Clean -> false));
  (* Bit rot in the last payload: CRC catches it. *)
  write3 path;
  let len = String.length (read_file path) in
  corrupt path (len - 1);
  (match Journal.load path with
  | Error m -> Alcotest.fail m
  | Ok { records; tail } ->
      checkb "crc drops the bad frame" true (records = [ "alpha"; "bravo!" ]);
      checkb "crc mismatch is torn, not fatal" true
        (match tail with Journal.Torn _ -> true | Journal.Clean -> false));
  (* A bad middle frame ends the usable journal there — everything
     after it is unreachable (frame lengths can no longer be trusted). *)
  write3 path;
  corrupt path (magic + frame "alpha" + Journal.frame_overhead);
  (match Journal.load path with
  | Error m -> Alcotest.fail m
  | Ok { records; tail } ->
      checkb "only the prefix before the damage" true (records = [ "alpha" ]);
      checkb "torn at the damaged frame" true
        (match tail with
        | Journal.Torn { at; _ } -> at = magic + frame "alpha"
        | Journal.Clean -> false));
  (* A wrong magic is not a journal at all. *)
  write_file path ("NOTAJRNL" ^ String.make 32 '\x00');
  checkb "bad magic is an error" true
    (match Journal.load path with Error _ -> true | Ok _ -> false);
  cleanup [ path ]

(* ------------------------------------------------------------------ *)
(* Meta record round-trip                                              *)

let test_meta_roundtrip () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:21 () in
  let configs =
    [
      Config.default;
      {
        Config.default with
        Config.strategy = Strategy.Single_interval { d_alpha = 0.1; zero_beta = 0.02 };
        stopping = Stopping.Soft_deadline { grace = 0.25 };
        physical = Config.Hash;
        trace = false;
      };
      {
        Config.default with
        Config.strategy = Strategy.Heuristic { split = 0.5 };
        stopping = Stopping.Error_bound { relative = 0.1; level = 0.9 };
        adaptive_cost = false;
      };
      {
        Config.default with
        Config.stopping = Stopping.Stagnation { epsilon = 0.01; window = 4 };
        selectivity_oracle = Some (fun _ -> 0.5);
      };
    ]
  in
  List.iteri
    (fun i config ->
      let m =
        {
          Checkpoint.m_query = wl.Paper_setup.query;
          m_aggregate = Aggregate.Count;
          m_config = config;
          m_quota = 2.5;
          m_seed = 17;
          m_params = Cost_params.default;
          m_fault_plan =
            (if i mod 2 = 0 then Fault_plan.none
             else Fault_plan.make [ Fault_plan.crash_at 1.0 ]);
          m_fault_seed = 9;
        }
      in
      let m' = Codec.of_string Checkpoint.read_meta
          (Codec.to_string Checkpoint.meta m)
      in
      let tag s = Printf.sprintf "config %d: %s" i s in
      Alcotest.check Alcotest.string (tag "query")
        (Taqp_relational.Ra.to_string m.Checkpoint.m_query)
        (Taqp_relational.Ra.to_string m'.Checkpoint.m_query);
      checkb (tag "aggregate") true
        (m'.Checkpoint.m_aggregate = m.Checkpoint.m_aggregate);
      (* The oracle closure is deliberately dropped on encode. *)
      checkb (tag "config less oracle") true
        (m'.Checkpoint.m_config
        = { config with Config.selectivity_oracle = None });
      checkf (tag "quota") m.Checkpoint.m_quota m'.Checkpoint.m_quota;
      checki (tag "seed") m.Checkpoint.m_seed m'.Checkpoint.m_seed;
      checkb (tag "params") true
        (m'.Checkpoint.m_params = m.Checkpoint.m_params);
      checkb (tag "fault plan") true
        (m'.Checkpoint.m_fault_plan = m.Checkpoint.m_fault_plan);
      checki (tag "fault seed") m.Checkpoint.m_fault_seed
        m'.Checkpoint.m_fault_seed)
    configs

(* ------------------------------------------------------------------ *)
(* Boundary-crash bit-identity: the tentpole guarantee                 *)

let boundary_cell ~wl_name ~physical ~seed wl quota =
  let cell = Printf.sprintf "%s/%s/seed=%d" wl_name (physical_name physical) seed in
  let config = { Config.default with Config.physical } in
  let full_path = tmp "full" and crash_path = tmp "crash" and cont = tmp "cont" in
  (* The uninterrupted journaled run, trace captured. *)
  let full_sink, full_events = Sink.memory () in
  let full =
    match
      journaled_run ~sink:full_sink ~config ~path:full_path ~wl ~quota ~seed ()
    with
    | `Done r -> r
    | `Abandoned -> assert false
  in
  checkb (cell ^ ": fixture is multi-stage") true
    (full.Report.stages_completed >= 2);
  (* The same run killed right after its first stage boundary... *)
  let crash_sink, crash_events = Sink.memory () in
  (match
     journaled_run ~sink:crash_sink ~config ~path:crash_path ~wl ~quota ~seed
       ~stop_after:1 ()
   with
  | `Abandoned -> ()
  | `Done _ -> Alcotest.fail (cell ^ ": finished before the kill point"));
  (* ...and resumed from its newest checkpoint, continuation-journaled
     so it keeps paying the per-boundary charge. *)
  let loaded =
    match Query_journal.load crash_path with
    | Ok l -> l
    | Error m -> Alcotest.fail (cell ^ ": " ^ m)
  in
  checkb (cell ^ ": crash journal not torn") true
    (loaded.Query_journal.l_torn = None);
  let resume_sink, resume_events = Sink.memory () in
  let resumed =
    resume_run ~sink:resume_sink ~continue_to:cont
      ~catalog:wl.Paper_setup.catalog loaded
  in
  Alcotest.check Alcotest.string (cell ^ ": report fingerprint")
    (fingerprint full) (fingerprint resumed);
  (* Trace-stream identity: the resumed stream is the exact
     continuation of the crashed one. *)
  let show es = List.map (fun e -> Json.to_string (Event.to_json e)) es in
  Alcotest.check
    Alcotest.(list string)
    (cell ^ ": crashed prefix ++ resumed tail = uninterrupted trace")
    (show (full_events ()))
    (show (crash_events ()) @ show (resume_events ()));
  cleanup [ full_path; crash_path; cont ]

let boundary_case ~wl_name ~make_wl ~quota () =
  List.iter
    (fun physical ->
      List.iter
        (fun seed ->
          boundary_cell ~wl_name ~physical ~seed (make_wl ~seed ()) quota)
        seeds)
    physicals

let test_boundary_selection =
  boundary_case ~wl_name:"selection"
    ~make_wl:(fun ~seed () -> Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed ())
    ~quota:1.5

let test_boundary_join =
  (* The join needs a bigger relation to stay multi-stage across every
     seed on both physical paths. *)
  boundary_case ~wl_name:"join"
    ~make_wl:(fun ~seed () ->
      Paper_setup.join
        ~spec:(Fixtures.spec ~n_tuples:2000 ~tuple_bytes:200 ())
        ~seed ())
    ~quota:5.0

let test_boundary_intersection =
  boundary_case ~wl_name:"intersection"
    ~make_wl:(fun ~seed () -> Paper_setup.intersection ~spec:(Fixtures.spec ()) ~seed ())
    ~quota:2.0

(* ------------------------------------------------------------------ *)
(* Zero cost when off                                                  *)

let test_zero_rate_matches_plain () =
  (* With the journal charge rated at zero, a journaled run is
     bit-identical to the plain evaluator on the same params — the
     journal machinery itself perturbs nothing (jitter and sampling
     streams are untouched by journal writes). *)
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:77 () in
  let params = { Cost_params.default with Cost_params.journal_byte_write = 0.0 } in
  let quota = 2.5 and seed = 13 in
  let plain =
    Taqp.count_within ~params ~seed wl.Paper_setup.catalog ~quota
      wl.Paper_setup.query
  in
  let path = tmp "zero" in
  let journaled =
    match journaled_run ~params ~path ~wl ~quota ~seed () with
    | `Done r -> r
    | `Abandoned -> assert false
  in
  Alcotest.check Alcotest.string "zero-rate journaled = plain"
    (fingerprint plain) (fingerprint journaled);
  cleanup [ path ]

(* ------------------------------------------------------------------ *)
(* Mid-stage crash: degraded, widened, never narrowed                  *)

let test_mid_stage_crash_degrades () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:31 () in
  let quota = 2.5 and seed = 5 in
  let path = tmp "dirty" in
  (match journaled_run ~path ~wl ~quota ~seed ~stop_after:1 () with
  | `Abandoned -> ()
  | `Done _ -> Alcotest.fail "finished before the kill point");
  let loaded =
    match Query_journal.load path with Ok l -> l | Error m -> failwith m
  in
  let last =
    List.hd (List.rev loaded.Query_journal.l_checkpoints)
  in
  let c_at = last.Checkpoint.c_at in
  (* Boundary-exact resume as the baseline... *)
  let exact = resume_run ~catalog:wl.Paper_setup.catalog loaded in
  checkb "boundary-exact resume is not degraded" false
    exact.Report.degraded;
  (* ...vs a crash that landed mid-stage: the progress between the
     checkpoint and the crash instant is gone, so the resumed report
     is degraded with a widened — never narrowed — interval. *)
  let loaded =
    match Query_journal.load path with Ok l -> l | Error m -> failwith m
  in
  let dirty =
    resume_run ~now:(c_at +. 0.05) ~catalog:wl.Paper_setup.catalog loaded
  in
  checkb "mid-stage resume is degraded" true dirty.Report.degraded;
  let hw r = r.Report.confidence.Taqp_stats.Confidence.half_width in
  checkb "never narrows the interval" true (hw dirty >= hw exact -. 1e-12);
  checkb "widens at most 2x" true (hw dirty <= (2.0 *. hw exact) +. 1e-12);
  (* Rewinding before the checkpoint instant is refused. *)
  let loaded =
    match Query_journal.load path with Ok l -> l | Error m -> failwith m
  in
  checkb "resume before the checkpoint is an error" true
    (match
       Query_journal.resume_last ~now:(c_at -. 0.1)
         ~catalog:wl.Paper_setup.catalog loaded
     with
    | Error _ -> true
    | Ok _ -> false);
  cleanup [ path ]

let test_empty_journal_is_error () =
  let path = tmp "empty" in
  let w = Journal.create path in
  Journal.close w;
  checkb "meta-less journal refused" true
    (match Query_journal.load path with Error _ -> true | Ok _ -> false);
  cleanup [ path ]

(* ------------------------------------------------------------------ *)
(* Executor snapshot/resume in memory (no file in the loop)            *)

let test_executor_snapshot_resume () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:51 () in
  let quota = 2.5 and seed = 19 in
  let params = Cost_params.default in
  let rng = Prng.create seed in
  let clock = Clock.create_virtual () in
  let device = Device.create ~params ~jitter_rng:(Prng.split rng) clock in
  let h =
    Executor.start ~aggregate:Aggregate.Count ~device
      ~catalog:wl.Paper_setup.catalog ~rng ~quota wl.Paper_setup.query
  in
  (match Executor.step h with
  | `Continue -> ()
  | `Done _ -> Alcotest.fail "fixture finished in one stage");
  let snap = Executor.snapshot h in
  let dump = Device.dump device in
  let t = Clock.now clock in
  let rec drive h =
    match Executor.step h with `Continue -> drive h | `Done r -> r
  in
  let a = drive h in
  (* Rebuild on a fresh device: restore counters, stream positions and
     the clock, then resume and drive to completion. *)
  let clock2 = Clock.create_virtual () in
  let device2 =
    Device.create ~params ~jitter_rng:(Prng.split (Prng.create 999)) clock2
  in
  Device.restore device2 dump;
  Clock.restore clock2 ~now:t;
  let h2 =
    Executor.resume ~device:device2 ~catalog:wl.Paper_setup.catalog snap
  in
  let b = drive h2 in
  Alcotest.check Alcotest.string "resumed handle completes identically"
    (fingerprint a) (fingerprint b);
  checkb "snapshot after finalization raises" true
    (match Executor.snapshot h with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Scheduler journal and job-level recovery                            *)

let sched_fixture () =
  let wl = Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed:42 () in
  List.init 6 (fun i ->
      Job.make ~id:i
        ~label:(Printf.sprintf "j%d" i)
        ~seed:(100 + i) ~catalog:wl.Paper_setup.catalog
        ~arrival:(0.5 *. float_of_int i)
        ~deadline:((0.5 *. float_of_int i) +. 4.0)
        wl.Paper_setup.query)

let test_sched_record_roundtrip () =
  let path = tmp "schedrt" in
  let records =
    [
      Sched_journal.Admitted
        { a_id = 3; a_label = "j3"; a_granted = 1.25; a_degraded = true; a_now = 0.5 };
      Sched_journal.Progress { p_id = 3; p_steps = 7; p_now = 1.75 };
      Sched_journal.Done
        {
          Sched_journal.d_id = 3;
          d_label = "j3";
          d_outcome = "finished";
          d_admitted = true;
          d_degraded = false;
          d_missed = false;
          d_lateness = -0.5;
          d_queue_wait = 0.25;
          d_finished_at = 3.5;
          d_service = 1.0;
          d_steps = 9;
          d_preemptions = 2;
          d_estimate = Some 123.5;
          d_now = 3.5;
        };
      Sched_journal.Done
        {
          Sched_journal.d_id = 4;
          d_label = "j4";
          d_outcome = "expired";
          d_admitted = true;
          d_degraded = false;
          d_missed = true;
          d_lateness = 0.75;
          d_queue_wait = 1.0;
          d_finished_at = 5.0;
          d_service = 0.0;
          d_steps = 0;
          d_preemptions = 0;
          d_estimate = None;
          d_now = 5.0;
        };
    ]
  in
  let w = Journal.create path in
  List.iter (fun r -> Journal.append w (Sched_journal.encode r)) records;
  Journal.close w;
  (match Sched_journal.load path with
  | Error m -> Alcotest.fail m
  | Ok { Sched_journal.records = back; torn } ->
      checkb "clean tail" true (torn = None);
      checkb "all records round-trip" true (back = records));
  cleanup [ path ]

let test_sched_journaled_run_complete () =
  let jobs = sched_fixture () in
  let path = tmp "schedrun" in
  let w = Journal.create path in
  let result = Scheduler.run ~journal:w jobs in
  Journal.close w;
  match Sched_journal.load path with
  | Error m -> Alcotest.fail m
  | Ok { Sched_journal.records; torn } ->
      checkb "clean tail" true (torn = None);
      let done_ids =
        List.filter_map
          (function
            | Sched_journal.Done d -> Some d.Sched_journal.d_id
            | Sched_journal.Admitted _ | Sched_journal.Progress _
            | Sched_journal.Submitted _ ->
                None)
          records
      in
      List.iter
        (fun (r : Scheduler.job_report) ->
          let id = r.Scheduler.job.Job.id in
          checkb
            (Printf.sprintf "job %d has a Done record" id)
            true (List.mem id done_ids);
          let d =
            List.find_map
              (function
                | Sched_journal.Done d when d.Sched_journal.d_id = id -> Some d
                | _ -> None)
              records
            |> Option.get
          in
          checkb
            (Printf.sprintf "job %d journaled accounting agrees" id)
            true
            (d.Sched_journal.d_missed = r.Scheduler.missed
            && d.Sched_journal.d_admitted = r.Scheduler.admitted
            && d.Sched_journal.d_steps = r.Scheduler.steps))
        result.Scheduler.reports;
      cleanup [ path ]

let test_sched_crash_recover_accounting () =
  let jobs = sched_fixture () in
  (* Place a deterministic kill mid-makespan. *)
  let clean = Scheduler.run jobs in
  (* Late enough that some jobs have journaled Done records, early
     enough that others are still queued or running. *)
  let crash_at = 0.7 *. clean.Scheduler.summary.Scheduler.makespan in
  let path = tmp "schedcrash" in
  let w = Journal.create path in
  let faults =
    Injector.create ~seed:3 (Fault_plan.make [ Fault_plan.crash_at crash_at ])
  in
  (match Scheduler.run ~journal:w ~faults jobs with
  | _ -> Alcotest.fail "the crash fault never fired"
  | exception Injector.Crashed _ -> ());
  Journal.close w;
  let { Sched_journal.records; torn } =
    match Sched_journal.load path with
    | Ok l -> l
    | Error m -> failwith m
  in
  checkb "crash journal readable" true (torn = None);
  let recovery = Scheduler.recover ~downtime:1.0 ~records jobs in
  let journaled_ids =
    List.map (fun d -> d.Sched_journal.d_id) recovery.Scheduler.r_journaled
  in
  checkb "something was journaled before the crash" true
    (journaled_ids <> []);
  let rerun_ids =
    List.map
      (fun (r : Scheduler.job_report) -> r.Scheduler.job.Job.id)
      recovery.Scheduler.r_run.Scheduler.reports
  in
  (* Every job is accounted for exactly once: reported from the
     journal or re-run, never both, never dropped. *)
  let all = List.sort compare (journaled_ids @ rerun_ids) in
  checkb "journal and re-run partition the job file" true
    (all = List.init (List.length jobs) Fun.id);
  let s = recovery.Scheduler.r_summary in
  checki "combined summary covers every job" (List.length jobs)
    s.Scheduler.submitted;
  let journal_missed =
    List.length
      (List.filter
         (fun d -> d.Sched_journal.d_missed)
         recovery.Scheduler.r_journaled)
  in
  let rerun_missed =
    List.length
      (List.filter
         (fun (r : Scheduler.job_report) -> r.Scheduler.missed)
         recovery.Scheduler.r_run.Scheduler.reports)
  in
  checki "combined miss count = journaled + re-run"
    (journal_missed + rerun_missed) s.Scheduler.missed;
  cleanup [ path ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "recover"
    [
      ( "crc32",
        [
          Alcotest.test_case "IEEE vector" `Quick test_crc32_vector;
          Alcotest.test_case "incremental = one-shot" `Quick
            test_crc32_incremental;
        ] );
      ( "codec",
        [
          Alcotest.test_case "primitives round-trip" `Quick
            test_codec_primitives;
          Alcotest.test_case "domain values round-trip" `Quick
            test_codec_domain;
          Alcotest.test_case "corruption raises Decode_error" `Quick
            test_codec_errors;
        ] );
      ( "journal",
        [
          Alcotest.test_case "frames round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn-tail rule" `Quick test_journal_torn_tail;
          Alcotest.test_case "meta-less journal refused" `Quick
            test_empty_journal_is_error;
        ] );
      ( "meta",
        [ Alcotest.test_case "meta round-trip" `Quick test_meta_roundtrip ] );
      ( "boundary",
        [
          Alcotest.test_case "selection bit-identical" `Quick
            test_boundary_selection;
          Alcotest.test_case "join bit-identical" `Quick test_boundary_join;
          Alcotest.test_case "intersection bit-identical" `Quick
            test_boundary_intersection;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "zero-rate journaled = plain" `Quick
            test_zero_rate_matches_plain;
          Alcotest.test_case "mid-stage crash degrades, never narrows" `Quick
            test_mid_stage_crash_degrades;
        ] );
      ( "executor",
        [
          Alcotest.test_case "snapshot/resume completes identically" `Quick
            test_executor_snapshot_resume;
        ] );
      ( "sched",
        [
          Alcotest.test_case "record round-trip" `Quick
            test_sched_record_roundtrip;
          Alcotest.test_case "journaled run is complete" `Quick
            test_sched_journaled_run_complete;
          Alcotest.test_case "crash recovery partitions the job file" `Quick
            test_sched_crash_recover_accounting;
        ] );
    ]
