(* Shared test fixtures. The (tests) stanza links this module into
   every test executable, so suites can say [Fixtures.checkb] or build
   a standard jitter-free device without re-declaring the same helpers.
   Keep this dependency-light: only what at least two suites use. *)

module Config = Taqp_core.Config
module Staged = Taqp_core.Staged
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Cost_model = Taqp_timecost.Cost_model
module Stopping = Taqp_timecontrol.Stopping
module Prng = Taqp_rng.Prng
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params

(* Alcotest check shorthands. [checkf] is exact equality — the
   bit-identity suites depend on that; use [checkf_eps] for numeric
   comparisons with tolerance. *)
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 0.0)
let checkf_eps eps = Alcotest.check (Alcotest.float eps)

(* The standard small workload spec: big enough for a few stages,
   small enough that a property test over many seeds stays fast. *)
let spec ?(n_tuples = 400) ?(tuple_bytes = 100) ?(block_bytes = 1024) () =
  { Generator.n_tuples; tuple_bytes; block_bytes }

(* A deterministic device: virtual clock, no cost jitter. [faults]
   installs a seeded injector (fault tests); omitted, the device is
   exactly the pre-fault-layer one. *)
let quiet_device ?faults () =
  let clock = Clock.create_virtual () in
  let device =
    Device.create
      ~params:(Cost_params.no_jitter Cost_params.default)
      ?faults clock
  in
  (clock, device)

let compile ?(seed = 7) ?(config = Config.default) (wl : Paper_setup.t) =
  let cost_model = Cost_model.create () in
  Staged.compile ~catalog:wl.Paper_setup.catalog ~config ~rng:(Prng.create seed)
    ~cost_model wl.Paper_setup.query

(* Drive a compiled query for a fixed number of equal-fraction stages
   outside the time-control loop; returns the completed stage results
   (oldest first) and the final clock reading. *)
let run_fixed_stages ?seed ?faults ~physical ~stages ~f (wl : Paper_setup.t) =
  let config = { Config.default with Config.physical } in
  let staged = compile ?seed ~config wl in
  let clock, device = quiet_device ?faults () in
  let results = ref [] in
  for _ = 1 to stages do
    match Staged.run_stage staged ~device ~f with
    | Some r -> results := r :: !results
    | None -> ()
  done;
  (List.rev !results, Clock.now clock)

(* ERAM's measurement mode: never abort the final stage, report the
   overspend instead — what the risk-bound experiments run under. *)
let observe_config =
  {
    Config.default with
    Config.stopping = Stopping.Soft_deadline { grace = 1e9 };
  }

(* Domain counts for the 1-vs-N bit-identity matrices. TAQP_DOMAINS
   restricts the sweep to {1, N} (mirroring how TAQP_PHYSICAL selects
   matrix cells); unset, the whole {1, 2, 4} grid runs in one
   process. *)
let domains_matrix =
  match Sys.getenv_opt "TAQP_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 1 -> [ 1 ]
      | Some d when d > 1 -> [ 1; d ]
      | _ -> failwith ("TAQP_DOMAINS: bad value " ^ s))

(* The sharded-relation fixture (controllable shard count and
   qualifying-density skew) shared by test_parallel and
   bench --parallel — both go through Paper_setup.sharded_selection so
   they sweep the same layouts. *)
let sharded ?(shards = 4) ?(skew = 1.0) ?(n_tuples = 400) ?output ~seed () =
  Paper_setup.sharded_selection ~spec:(spec ~n_tuples ()) ~shards ~skew
    ?output ~seed ()
