(* taqp_parallel: the 1-vs-N bit-identity contract of
   docs/PARALLELISM.md, plus the building blocks it rests on.

   The load-bearing suite is "identity": a full time-constrained run at
   domains ∈ {1,2,4} must produce the SAME report fingerprint, the SAME
   trace event stream, and the SAME budget-ledger reconciliation as the
   sequential engine — for the three standard fixtures × both physical
   paths × 4 seeds, with the parallel threshold forced to 1 so every
   region actually fans out. CI sweeps extra cells via TAQP_DOMAINS and
   TAQP_PHYSICAL. The qcheck suites pin the statistical side (the
   stratified shard merge stays unbiased with nominal CI coverage under
   shard-count and skew sweeps; Prng stream splits are deterministic and
   non-overlapping), and the vclock suite pins the deterministic
   max-merge semantics at stage barriers. *)

module Taqp = Taqp_core.Taqp
module Config = Taqp_core.Config
module Staged = Taqp_core.Staged
module Report = Taqp_core.Report
module Aggregate = Taqp_core.Aggregate
module Executor = Taqp_core.Executor
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Io_stats = Taqp_storage.Io_stats
module Paper_setup = Taqp_workload.Paper_setup
module Prng = Taqp_rng.Prng
module Sample = Taqp_rng.Sample
module Sink = Taqp_obs.Sink
module Tracer = Taqp_obs.Tracer
module Event = Taqp_obs.Event
module Ledger = Taqp_audit.Ledger
module Pool = Taqp_parallel.Pool
module Shard = Taqp_parallel.Shard
module Vclock = Taqp_parallel.Vclock
module Merge = Taqp_parallel.Merge

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf
let checks = Alcotest.check Alcotest.string

let seeds = [ 3; 5; 11; 23 ]

let physicals =
  match Sys.getenv_opt "TAQP_PHYSICAL" with
  | Some "sort_merge" -> [ Config.Sort_merge ]
  | Some "hash" -> [ Config.Hash ]
  | Some other -> failwith ("TAQP_PHYSICAL: unknown path " ^ other)
  | None -> [ Config.Sort_merge; Config.Hash ]

let physical_name = function
  | Config.Sort_merge -> "sort_merge"
  | Config.Hash -> "hash"
  | Config.Adaptive -> "adaptive"

let fingerprint (r : Report.t) =
  Fmt.str "%.17g|%.17g|%.17g|%.17g|%d|%b|%a" r.Report.estimate
    r.Report.variance r.Report.confidence.Taqp_stats.Confidence.half_width
    r.Report.elapsed r.Report.stages_completed r.Report.degraded Io_stats.pp
    r.Report.io

(* ------------------------------------------------------------------ *)
(* The full observable surface of one run: report fingerprint, trace
   stream, ledger reconciliation. Jittered device (the default params),
   so the test also covers the jitter-draw ordering. *)

let full_run ~domains ~physical ~seed ~quota (wl : Paper_setup.t) =
  let config = { Fixtures.observe_config with Config.physical; domains } in
  let sink, events = Sink.memory () in
  let rng = Prng.create seed in
  let clock = Clock.create_virtual () in
  let tracer = Tracer.make ~now:(fun () -> Clock.now clock) ~sink in
  let device =
    Device.create ~params:Cost_params.default ~jitter_rng:(Prng.split rng)
      ~tracer clock
  in
  let ledger = Ledger.create () in
  Device.set_spend_listener device (Some (Ledger.on_spend ledger));
  let report =
    Executor.run ~config ~aggregate:Aggregate.Count ~device
      ~catalog:wl.Paper_setup.catalog ~rng ~quota wl.Paper_setup.query
  in
  Tracer.close tracer;
  (fingerprint report, events (), Ledger.reconcile ~quota ledger)

let check_same_run ~ctx (fp1, tr1, rec1) (fpn, trn, recn) =
  checks (ctx ^ ": report fingerprint") fp1 fpn;
  checki (ctx ^ ": trace length") (List.length tr1) (List.length trn);
  checkb (ctx ^ ": trace stream") true
    (List.for_all2 (fun (a : Event.t) b -> a = b) tr1 trn);
  checkf (ctx ^ ": ledger charged") rec1.Ledger.r_charged recn.Ledger.r_charged;
  checkf
    (ctx ^ ": ledger unattributed")
    rec1.Ledger.r_unattributed recn.Ledger.r_unattributed;
  checkb (ctx ^ ": ledger exact") rec1.Ledger.r_exact recn.Ledger.r_exact;
  List.iter2
    (fun (c1, v1) (cn, vn) ->
      checks
        (ctx ^ ": ledger category order")
        (Ledger.category_name c1) (Ledger.category_name cn);
      checkf (ctx ^ ": ledger " ^ Ledger.category_name c1) v1 vn)
    rec1.Ledger.r_by_category recn.Ledger.r_by_category

(* The three standard fixtures, sized so several stages run and the
   binary paths accumulate real pairing/probe work. *)
let matrix_fixtures seed =
  [
    ("join", Paper_setup.join ~spec:(Fixtures.spec ()) ~seed (), 2.0);
    ( "intersection",
      Paper_setup.intersection ~spec:(Fixtures.spec ()) ~overlap:120 ~seed (),
      2.0 );
    ( "three_way_join",
      Paper_setup.three_way_join
        ~spec:(Fixtures.spec ~n_tuples:200 ())
        ~group_size:3 ~seed (),
      2.5 );
  ]

let test_identity_matrix () =
  (* Force every parallel region on, whatever the delta size. *)
  Staged.set_parallel_threshold 1;
  Fun.protect
    ~finally:(fun () -> Staged.set_parallel_threshold 2048)
    (fun () ->
      List.iter
        (fun seed ->
          List.iter
            (fun physical ->
              List.iter
                (fun (fname, wl, quota) ->
                  let base = full_run ~domains:1 ~physical ~seed ~quota wl in
                  List.iter
                    (fun domains ->
                      if domains > 1 then
                        let ctx =
                          Fmt.str "%s/%s/seed=%d/domains=%d" fname
                            (physical_name physical) seed domains
                        in
                        check_same_run ~ctx base
                          (full_run ~domains ~physical ~seed ~quota wl))
                    Fixtures.domains_matrix)
                (matrix_fixtures seed))
            physicals)
        seeds)

let test_identity_sharded_skew () =
  (* The shared sharded fixture, maximally skewed: qualifying density
     concentrated in the last shard. *)
  Staged.set_parallel_threshold 1;
  Fun.protect
    ~finally:(fun () -> Staged.set_parallel_threshold 2048)
    (fun () ->
      List.iter
        (fun skew ->
          let wl = Fixtures.sharded ~shards:4 ~skew ~seed:9 () in
          let base =
            full_run ~domains:1 ~physical:Config.Sort_merge ~seed:9 ~quota:1.5
              wl
          in
          List.iter
            (fun domains ->
              if domains > 1 then
                check_same_run
                  ~ctx:(Fmt.str "sharded/skew=%g/domains=%d" skew domains)
                  base
                  (full_run ~domains ~physical:Config.Sort_merge ~seed:9
                     ~quota:1.5 wl))
            Fixtures.domains_matrix)
        [ 1.0; 3.0 ])

let test_cli_env_default () =
  (* Config.default.domains mirrors TAQP_DOMAINS (parsed in-process at
     startup); whatever it is, it is >= 1 and validates. *)
  checkb "default domains >= 1" true (Config.default.Config.domains >= 1);
  Config.validate Config.default;
  (match Sys.getenv_opt "TAQP_DOMAINS" with
  | Some s when int_of_string_opt (String.trim s) <> None ->
      let d = int_of_string (String.trim s) in
      if d >= 1 then checki "TAQP_DOMAINS honored" d Config.default.Config.domains
  | _ -> ());
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Config: domains < 1") (fun () ->
      Config.validate { Config.default with Config.domains = 0 })

(* ------------------------------------------------------------------ *)
(* Shard partitioning *)

let test_shard_ranges () =
  let rs = Shard.ranges ~n:10 ~k:4 in
  checki "4 ranges" 4 (Array.length rs);
  checki "covers 0" 0 rs.(0).Shard.lo;
  checki "covers n" 10 rs.(3).Shard.hi;
  Array.iteri
    (fun i r ->
      if i > 0 then checki "contiguous" rs.(i - 1).Shard.hi r.Shard.lo)
    rs;
  let sizes = Array.map Shard.size rs in
  checki "balanced max" 3 (Array.fold_left Int.max 0 sizes);
  checki "balanced min" 2 (Array.fold_left Int.min 10 sizes);
  checki "k > n clamps" 3 (Array.length (Shard.ranges ~n:3 ~k:8));
  checki "n = 0 empty" 0 (Array.length (Shard.ranges ~n:0 ~k:4));
  (* owner/partition agree with the layout *)
  let rs = Shard.ranges ~n:100 ~k:7 in
  for u = 0 to 99 do
    let j = Shard.owner ~ranges:rs u in
    checkb "owner in range" true (u >= rs.(j).Shard.lo && u < rs.(j).Shard.hi)
  done;
  let parts = Shard.partition ~ranges:rs [ 99; 0; 50; 1 ] in
  checki "partition preserves order" 0 (List.nth parts.(0) 0);
  checki "partition preserves order'" 1 (List.nth parts.(0) 1)

let test_shard_weighted () =
  (* Heavy tail: the greedy sweep closes early ranges fast, never emits
     an empty range, and always covers [0, n). *)
  let weights = Array.init 20 (fun i -> if i < 2 then 100.0 else 1.0) in
  let rs = Shard.weighted ~weights ~k:4 in
  checkb "at most k" true (Array.length rs <= 4);
  checki "covers 0" 0 rs.(0).Shard.lo;
  checki "covers n" 20 rs.(Array.length rs - 1).Shard.hi;
  Array.iter (fun r -> checkb "non-empty" true (Shard.size r > 0)) rs;
  Array.iteri
    (fun i r ->
      if i > 0 then checki "contiguous" rs.(i - 1).Shard.hi r.Shard.lo)
    rs

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_order_and_errors () =
  let pool = Pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let tasks = Array.init 100 (fun i () -> i * i) in
      let out = Pool.run pool tasks in
      Array.iteri (fun i v -> checki "task order" (i * i) v) out;
      (* lowest-index exception wins, regardless of which domain ran
         what *)
      let boom i = Failure (Fmt.str "boom %d" i) in
      (try
         ignore
           (Pool.run pool
              (Array.init 64 (fun i () ->
                   if i = 7 || i = 41 then raise (boom i) else i)));
         Alcotest.fail "expected an exception"
       with Failure m -> checks "lowest index re-raised" "boom 7" m);
      (* the pool survives a failed batch *)
      checki "pool still works" 2016
        (Array.fold_left ( + ) 0 (Pool.run pool (Array.init 64 (fun i () -> i))));
      checki "empty batch" 0 (Array.length (Pool.run pool [||])))

let test_pool_single_domain () =
  let pool = Pool.create ~domains:1 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      checki "size" 1 (Pool.size pool);
      let out = Pool.run pool (Array.init 10 (fun i () -> i + 1)) in
      checki "sequential degenerate" 10 out.(9))

let test_pool_global_cache () =
  let p1 = Pool.global ~domains:2 in
  let p2 = Pool.global ~domains:2 in
  checkb "same pool cached" true (p1 == p2);
  let p3 = Pool.global ~domains:3 in
  checkb "resized pool is fresh" true (p3 != p2);
  checki "resized size" 3 (Pool.size p3)

(* ------------------------------------------------------------------ *)
(* Vclock: deterministic max-merge at stage barriers *)

let test_vclock_merge_max () =
  let g = Vclock.fork ~now:10.0 ~shards:3 () in
  Vclock.charge (Vclock.worker g 0) 1.0;
  Vclock.charge (Vclock.worker g 1) 5.0;
  Vclock.charge (Vclock.worker g 2) 2.5;
  checkf "merge is max" 15.0 (Vclock.merge g);
  (* interleaving-independent: the same per-worker totals charged in a
     different order (and different chunkings) merge identically *)
  let h = Vclock.fork ~now:10.0 ~shards:3 () in
  Vclock.charge (Vclock.worker h 2) 2.5;
  Vclock.charge (Vclock.worker h 1) 2.0;
  Vclock.charge (Vclock.worker h 0) 0.5;
  Vclock.charge (Vclock.worker h 1) 3.0;
  Vclock.charge (Vclock.worker h 0) 0.5;
  checkf "merge order-independent" (Vclock.merge g) (Vclock.merge h);
  (* no work: merge = fork origin *)
  let idle = Vclock.fork ~now:7.0 ~shards:2 () in
  checkf "idle merge" 7.0 (Vclock.merge idle)

let test_vclock_deadline_abort () =
  let g = Vclock.fork ~now:0.0 ~deadline:(10.0, `Abort) ~shards:2 () in
  Vclock.charge (Vclock.worker g 0) 9.0;
  (* the worker that crosses stops exactly at the deadline *)
  (try
     Vclock.charge (Vclock.worker g 0) 5.0;
     Alcotest.fail "expected Deadline_exceeded"
   with Vclock.Deadline_exceeded { shard; at } ->
     checki "crossing shard" 0 shard;
     checkf "stops exactly at deadline" 10.0 at);
  checkf "clock pinned at deadline" 10.0 (Vclock.now (Vclock.worker g 0));
  (* the other worker continues; merge still reflects the max *)
  Vclock.charge (Vclock.worker g 1) 3.0;
  checkf "merge after abort" 10.0 (Vclock.merge g);
  (* armed deadline preserved verbatim across the merge *)
  (match Vclock.armed g with
  | Some (at, `Abort) -> checkf "deadline preserved" 10.0 at
  | _ -> Alcotest.fail "deadline lost");
  match Vclock.first_crossing g with
  | Some (shard, at) ->
      checki "first crossing is lowest shard" 0 shard;
      checkf "crossing instant" 10.0 at
  | None -> Alcotest.fail "crossing lost"

let test_vclock_first_crossing_tiebreak () =
  (* Two workers cross in different wall orders across runs; the
     reported first crossing is the lowest shard index — the
     documented deterministic tie-break. *)
  let run order =
    let g = Vclock.fork ~now:0.0 ~deadline:(1.0, `Observe) ~shards:3 () in
    List.iter (fun i -> Vclock.charge (Vclock.worker g i) 2.0) order;
    (Vclock.first_crossing g, Vclock.crossings g)
  in
  let f1, c1 = run [ 2; 1 ] in
  let f2, c2 = run [ 1; 2 ] in
  (match (f1, f2) with
  | Some (s1, _), Some (s2, _) ->
      checki "tie-break lowest shard" 1 s1;
      checki "tie-break order-independent" s1 s2
  | _ -> Alcotest.fail "missing crossing");
  checki "crossings sorted by shard" 1 (fst (List.nth c1 0));
  checki "crossings sorted by shard'" 2 (fst (List.nth c1 1));
  checki "same crossing set" (List.length c1) (List.length c2)

let test_vclock_observe_mode () =
  let g = Vclock.fork ~now:0.0 ~deadline:(5.0, `Observe) ~shards:1 () in
  let w = Vclock.worker g 0 in
  Vclock.charge w 7.0;
  (* observe: crossing recorded, clock keeps advancing *)
  checkf "observe keeps advancing" 7.0 (Vclock.now w);
  Vclock.charge w 1.0;
  checkf "still advancing" 8.0 (Vclock.now w);
  checki "one crossing" 1 (List.length (Vclock.crossings g));
  (* trace-instant ordering stability: merged instants of successive
     barriers are monotone *)
  let m1 = Vclock.merge g in
  Vclock.charge w 0.5;
  let m2 = Vclock.merge g in
  checkb "barrier instants monotone" true (m2 >= m1)

(* ------------------------------------------------------------------ *)
(* Stratified shard-merge estimator: qcheck properties *)

(* A synthetic block population with a known total; per-block counts
   drawn i.i.d. uniform so the stratified math is exercised without a
   full engine run. *)
let population rng ~blocks =
  Array.init blocks (fun _ -> float_of_int (Prng.int rng 20))

let shard_sample rng ~counts ~(range : Shard.range) ~fraction =
  let nj = Shard.size range in
  let draw = Int.max 2 (int_of_float (fraction *. float_of_int nj)) in
  let draw = Int.min draw nj in
  let units = Sample.without_replacement rng ~k:draw ~n:nj in
  let obs =
    Array.of_list (List.map (fun u -> counts.(range.Shard.lo + u)) units)
  in
  Merge.of_counts ~population:nj obs

let combined_of rng ~counts ~ranges ~fraction =
  Merge.combine
    (Array.to_list
       (Array.map (fun r -> shard_sample rng ~counts ~range:r ~fraction) ranges))

let prop_merge_unbiased =
  QCheck.Test.make ~name:"stratified shard merge is unbiased" ~count:30
    QCheck.(
      triple (int_range 1 8) (int_range 0 1000000) (bool))
    (fun (shards, seed, skewed) ->
      let rng = Prng.create (seed + 17) in
      let counts = population rng ~blocks:240 in
      let truth = Array.fold_left ( +. ) 0.0 counts in
      let ranges =
        if skewed then
          (* skewed shard sizes: geometric weights *)
          Shard.weighted
            ~weights:(Array.init 240 (fun i -> 1.0 +. (float_of_int i /. 40.0)))
            ~k:shards
        else Shard.ranges ~n:240 ~k:shards
      in
      (* average many replicated estimates: the mean must approach the
         truth (CLT: tolerance ~4 sigma of the mean) *)
      let reps = 300 in
      let sum = ref 0.0 and var_sum = ref 0.0 in
      for _ = 1 to reps do
        let c = combined_of rng ~counts ~ranges ~fraction:0.2 in
        sum := !sum +. c.Merge.total_hat;
        var_sum := !var_sum +. c.Merge.var_hat
      done;
      let mean = !sum /. float_of_int reps in
      let sigma_mean =
        sqrt (Float.max 1e-9 (!var_sum /. float_of_int reps))
        /. sqrt (float_of_int reps)
      in
      Float.abs (mean -. truth) <= Float.max (4.0 *. sigma_mean) (0.02 *. truth))

let prop_merge_ci_coverage =
  QCheck.Test.make ~name:"stratified merge CI has ~nominal coverage" ~count:12
    QCheck.(pair (int_range 2 6) (int_range 0 1000000))
    (fun (shards, seed) ->
      let rng = Prng.create (seed + 23) in
      let counts = population rng ~blocks:300 in
      let truth = Array.fold_left ( +. ) 0.0 counts in
      let ranges = Shard.ranges ~n:300 ~k:shards in
      let reps = 200 in
      let hits = ref 0 in
      for _ = 1 to reps do
        let c = combined_of rng ~counts ~ranges ~fraction:0.25 in
        let ci = Merge.interval c ~level:0.95 in
        if Taqp_stats.Confidence.contains ci truth then incr hits
      done;
      (* 95% nominal; allow sampling noise and mild small-sample
         anti-conservatism: require at least 85% *)
      float_of_int !hits /. float_of_int reps >= 0.85)

let prop_merge_matches_unstratified =
  QCheck.Test.make
    ~name:"one shard at full draw reproduces the exact total" ~count:50
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let counts = population rng ~blocks:64 in
      let truth = Array.fold_left ( +. ) 0.0 counts in
      let m = Merge.of_counts ~population:64 counts in
      let c = Merge.combine [ m ] in
      c.Merge.total_hat = truth && c.Merge.var_hat = 0.0)

(* ------------------------------------------------------------------ *)
(* Prng stream splitting: deterministic and non-overlapping *)

let prop_split_deterministic =
  QCheck.Test.make ~name:"Prng.split streams are deterministic" ~count:50
    QCheck.(pair (int_range 0 1000000) (int_range 1 8))
    (fun (seed, shards) ->
      let streams_of () =
        let root = Prng.create seed in
        List.init shards (fun _ -> Prng.split root)
      in
      let a = streams_of () and b = streams_of () in
      List.for_all2
        (fun sa sb ->
          List.init 64 (fun _ -> Prng.bits64 sa)
          = List.init 64 (fun _ -> Prng.bits64 sb))
        a b)

let prop_split_non_overlapping =
  QCheck.Test.make
    ~name:"per-shard split streams do not overlap" ~count:20
    QCheck.(pair (int_range 0 1000000) (int_range 2 8))
    (fun (seed, shards) ->
      (* 64-bit draws from distinct xoshiro streams collide with
         probability ~ (k*h)^2 / 2^64 — any repeat across shard streams
         would mean the splits share stream positions. *)
      let root = Prng.create seed in
      let streams = List.init shards (fun _ -> Prng.split root) in
      let horizon = 512 in
      let seen = Hashtbl.create (shards * horizon) in
      List.for_all
        (fun s ->
          let ok = ref true in
          for _ = 1 to horizon do
            let v = Prng.bits64 s in
            if Hashtbl.mem seen v then ok := false
            else Hashtbl.add seen v ()
          done;
          !ok)
        streams)

let prop_split_draws_disjoint_blocks =
  QCheck.Test.make
    ~name:"split streams drive disjoint without-replacement draws"
    ~count:30
    QCheck.(int_range 0 1000000)
    (fun seed ->
      (* The engine's per-shard usage: each shard samples its own block
         range with its own split stream; the global draw sets stay
         disjoint because the ranges are. *)
      let root = Prng.create seed in
      let ranges = Shard.ranges ~n:200 ~k:4 in
      let all = Hashtbl.create 64 in
      Array.for_all
        (fun (r : Shard.range) ->
          let s = Prng.split root in
          let units = Sample.without_replacement s ~k:10 ~n:(Shard.size r) in
          List.for_all
            (fun u ->
              let g = r.Shard.lo + u in
              if Hashtbl.mem all g then false
              else begin
                Hashtbl.add all g ();
                true
              end)
            units)
        ranges)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [
      ( "identity",
        [
          Alcotest.test_case "1-vs-N bit-identity matrix" `Slow
            test_identity_matrix;
          Alcotest.test_case "sharded fixture, skewed density" `Quick
            test_identity_sharded_skew;
          Alcotest.test_case "TAQP_DOMAINS config default" `Quick
            test_cli_env_default;
        ] );
      ( "shard",
        [
          Alcotest.test_case "ranges partition [0,n)" `Quick test_shard_ranges;
          Alcotest.test_case "weighted ranges absorb skew" `Quick
            test_shard_weighted;
        ] );
      ( "pool",
        [
          Alcotest.test_case "task order and lowest-index raise" `Quick
            test_pool_order_and_errors;
          Alcotest.test_case "domains=1 degenerates" `Quick
            test_pool_single_domain;
          Alcotest.test_case "global pool cached by size" `Quick
            test_pool_global_cache;
        ] );
      ( "vclock",
        [
          Alcotest.test_case "barrier merge is deterministic max" `Quick
            test_vclock_merge_max;
          Alcotest.test_case "abort stops exactly at the deadline" `Quick
            test_vclock_deadline_abort;
          Alcotest.test_case "first-crossing tie-break is by shard" `Quick
            test_vclock_first_crossing_tiebreak;
          Alcotest.test_case "observe mode records and continues" `Quick
            test_vclock_observe_mode;
        ] );
      ( "estimator",
        [
          qc prop_merge_unbiased;
          qc prop_merge_ci_coverage;
          qc prop_merge_matches_unstratified;
        ] );
      ( "prng",
        [
          qc prop_split_deterministic;
          qc prop_split_non_overlapping;
          qc prop_split_draws_disjoint_blocks;
        ] );
    ]
