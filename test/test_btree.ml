open Taqp_data
open Taqp_relational
module Heap_file = Taqp_storage.Heap_file
module Device = Taqp_storage.Device
module Clock = Taqp_storage.Clock
module Cost_params = Taqp_storage.Cost_params
module Io_stats = Taqp_storage.Io_stats
module Prng = Taqp_rng.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let schema =
  Schema.make
    [ { Schema.name = "id"; ty = Value.Tint }; { Schema.name = "k"; ty = Value.Tint } ]

let file_of ks =
  Heap_file.create ~block_bytes:64 ~tuple_bytes:16 ~schema
    (List.mapi (fun i k -> Tuple.of_list [ Value.Int i; Value.Int k ]) ks)

let keys_from_positions file positions =
  List.map
    (fun (b, s) ->
      match Value.to_int (Tuple.get (Heap_file.block file b).(s) 1) with
      | Some v -> v
      | None -> Alcotest.fail "non-int key")
    positions

let test_build_and_lookup () =
  let ks = [ 5; 3; 9; 3; 7; 1; 9; 9 ] in
  let file = file_of ks in
  let t = Btree.build ~fanout:2 ~attr:"k" file in
  checki "distinct keys" 5 (Btree.n_keys t);
  Alcotest.check Alcotest.string "attr" "k" (Btree.attr t);
  checkb "height grows with fanout 2" true (Btree.height t >= 2);
  checki "triple key" 3 (List.length (Btree.lookup t (Value.Int 9)));
  checki "double key" 2 (List.length (Btree.lookup t (Value.Int 3)));
  checki "single" 1 (List.length (Btree.lookup t (Value.Int 1)));
  checki "absent" 0 (List.length (Btree.lookup t (Value.Int 42)))

let test_range () =
  let file = file_of [ 5; 3; 9; 3; 7; 1; 9; 9 ] in
  let t = Btree.build ~fanout:2 ~attr:"k" file in
  let got = keys_from_positions file (Btree.range t ~lo:(Value.Int 3) ~hi:(Value.Int 7) ()) in
  Alcotest.check Alcotest.(list int) "sorted keys in range" [ 3; 3; 5; 7 ]
    (List.sort Int.compare got);
  checki "open lower bound" 5
    (List.length (Btree.range t ~hi:(Value.Int 7) ()));
  checki "open upper bound" 8 (List.length (Btree.range t ()));
  checki "empty range" 0
    (List.length (Btree.range t ~lo:(Value.Int 100) ()))

let test_empty_file () =
  let file = file_of [] in
  let t = Btree.build ~attr:"k" file in
  checki "no keys" 0 (Btree.n_keys t);
  checki "height 0" 0 (Btree.height t);
  checki "lookup empty" 0 (List.length (Btree.lookup t (Value.Int 1)));
  checki "range empty" 0 (List.length (Btree.range t ()))

let test_select_fetches () =
  let file = file_of (List.init 40 (fun i -> i mod 10)) in
  let t = Btree.build ~fanout:4 ~attr:"k" file in
  let out = Btree.select t file ~lo:(Value.Int 2) ~hi:(Value.Int 3) () in
  checki "eight matches" 8 (Array.length out);
  Array.iter
    (fun tp ->
      match Value.to_int (Tuple.get tp 1) with
      | Some v -> checkb "in range" true (v >= 2 && v <= 3)
      | None -> Alcotest.fail "non-int")
    out

let test_charging () =
  let file = file_of (List.init 200 (fun i -> i)) in
  let t = Btree.build ~fanout:8 ~attr:"k" file in
  let clock = Clock.create_virtual () in
  let device = Device.create ~params:(Cost_params.no_jitter Cost_params.default) clock in
  ignore (Btree.lookup ~device t (Value.Int 77));
  checki "one node read per level" (Btree.height t)
    (Io_stats.blocks_read (Device.stats device));
  (* A narrow indexed select touches far fewer blocks than a scan. *)
  let before = Io_stats.blocks_read (Device.stats device) in
  ignore (Btree.select ~device t file ~lo:(Value.Int 10) ~hi:(Value.Int 13) ());
  let touched = Io_stats.blocks_read (Device.stats device) - before in
  checkb "indexed select cheap" true (touched < Heap_file.n_blocks file / 2)

let prop_lookup_matches_scan =
  QCheck.Test.make ~name:"Btree lookup/range = brute force" ~count:150
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 60) (int_range 0 15))
        (pair (int_range 0 15) (int_range 0 15)))
    (fun (ks, (a, b)) ->
      let lo = Int.min a b and hi = Int.max a b in
      let file = file_of ks in
      let t = Btree.build ~fanout:3 ~attr:"k" file in
      let eq_count k = List.length (List.filter (fun x -> x = k) ks) in
      let range_count =
        List.length (List.filter (fun x -> x >= lo && x <= hi) ks)
      in
      List.length (Btree.lookup t (Value.Int a)) = eq_count a
      && List.length (Btree.range t ~lo:(Value.Int lo) ~hi:(Value.Int hi) ())
         = range_count
      && Array.length (Btree.select t file ~lo:(Value.Int lo) ~hi:(Value.Int hi) ())
         = range_count)

let prop_range_keys_sorted_by_key =
  QCheck.Test.make ~name:"Btree range returns keys in key order" ~count:150
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 0 20))
    (fun ks ->
      let file = file_of ks in
      let t = Btree.build ~fanout:4 ~attr:"k" file in
      let got = keys_from_positions file (Btree.range t ()) in
      got = List.sort Int.compare got
      && List.length got = List.length ks)

let test_errors () =
  let file = file_of [ 1 ] in
  checkb "unknown attr" true
    (match Btree.build ~attr:"zzz" file with
    | _ -> false
    | exception Schema.Schema_error _ -> true);
  checkb "bad fanout" true
    (match Btree.build ~fanout:1 ~attr:"k" file with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "btree"
    [
      ( "btree",
        [
          Alcotest.test_case "build and lookup" `Quick test_build_and_lookup;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "empty file" `Quick test_empty_file;
          Alcotest.test_case "select fetches" `Quick test_select_fetches;
          Alcotest.test_case "device charging" `Quick test_charging;
          Alcotest.test_case "errors" `Quick test_errors;
          QCheck_alcotest.to_alcotest prop_lookup_matches_scan;
          QCheck_alcotest.to_alcotest prop_range_keys_sorted_by_key;
        ] );
    ]
