module Stage_set = Taqp_sampling.Stage_set
module Fulfillment = Taqp_sampling.Fulfillment
module Plan = Taqp_sampling.Plan
module Prng = Taqp_rng.Prng

(* Check helpers shared with the other suites via Fixtures. *)
let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf_eps

let test_stage_set_basic () =
  let s = Stage_set.create ~n_units:100 (Prng.create 1) in
  checki "n_units" 100 (Stage_set.n_units s);
  checki "nothing drawn" 0 (Stage_set.drawn s);
  let u1 = Stage_set.draw_stage s ~k:10 in
  checki "stage size" 10 (List.length u1);
  checki "stages" 1 (Stage_set.stages s);
  checki "remaining" 90 (Stage_set.remaining s);
  checkf 1e-9 "fraction" 0.1 (Stage_set.fraction_drawn s)

let test_stage_set_without_replacement () =
  let s = Stage_set.create ~n_units:50 (Prng.create 2) in
  let u1 = Stage_set.draw_stage s ~k:20 in
  let u2 = Stage_set.draw_stage s ~k:20 in
  let u3 = Stage_set.draw_stage s ~k:20 in
  checki "clamped final stage" 10 (List.length u3);
  let all = u1 @ u2 @ u3 in
  checki "covers population" 50 (List.length (List.sort_uniq Int.compare all));
  checkb "exhausted" true (Stage_set.exhausted s);
  checki "further draws empty" 0 (List.length (Stage_set.draw_stage s ~k:5))

let test_stage_set_accessors () =
  let s = Stage_set.create ~n_units:100 (Prng.create 3) in
  let u1 = Stage_set.draw_stage s ~k:5 in
  let u2 = Stage_set.draw_stage s ~k:7 in
  Alcotest.check Alcotest.(list int) "stage 1 units" u1 (Stage_set.stage_units s 1);
  Alcotest.check Alcotest.(list int) "stage 2 units" u2 (Stage_set.stage_units s 2);
  checki "stage sizes" 7 (Stage_set.stage_size s 2);
  Alcotest.check Alcotest.(list int) "all units in draw order" (u1 @ u2)
    (Stage_set.all_units s);
  Alcotest.check Alcotest.(array int) "cumulative" [| 5; 12 |]
    (Stage_set.cumulative_sizes s);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stage_set.stage_units: out of range") (fun () ->
      ignore (Stage_set.stage_units s 3))

let test_stage_set_empty_population () =
  let s = Stage_set.create ~n_units:0 (Prng.create 1) in
  checkb "immediately exhausted" true (Stage_set.exhausted s);
  checki "draws nothing" 0 (List.length (Stage_set.draw_stage s ~k:5));
  checkf 1e-9 "fraction" 1.0 (Stage_set.fraction_drawn s)

let test_stage_set_errors () =
  Alcotest.check_raises "n_units" (Invalid_argument "Stage_set.create: n_units < 0")
    (fun () -> ignore (Stage_set.create ~n_units:(-1) (Prng.create 1)));
  let s = Stage_set.create ~n_units:10 (Prng.create 1) in
  Alcotest.check_raises "negative k"
    (Invalid_argument "Stage_set.draw_stage: k < 0") (fun () ->
      ignore (Stage_set.draw_stage s ~k:(-1)))

(* ------------------------------------------------------------------ *)
(* Fulfillment accounting                                              *)

let dims2 = [ [| 10; 30; 45 |]; [| 20; 50; 80 |] ]

let test_full_cumulative () =
  checkf 1e-9 "product of latest" (45.0 *. 80.0) (Fulfillment.full_cumulative dims2);
  checkf 1e-9 "single dim" 45.0 (Fulfillment.full_cumulative [ [| 10; 30; 45 |] ]);
  checkf 1e-9 "empty" 0.0 (Fulfillment.full_cumulative [])

let test_full_new_matches_paper_formula () =
  (* Stage 2: n1=20, n2=30 new; N1(1)=10, N2(1)=20 cumulative before.
     Paper: n1s*n2s + N1(s-1)*n2s + N2(s-1)*n1s. *)
  let expected = (20.0 *. 30.0) +. (10.0 *. 30.0) +. (20.0 *. 20.0) in
  checkf 1e-9 "2-dim identity" expected (Fulfillment.full_new_at_stage dims2 ~stage:2);
  (* news across all stages telescope to the cumulative product *)
  let total =
    Fulfillment.full_new_at_stage dims2 ~stage:1
    +. Fulfillment.full_new_at_stage dims2 ~stage:2
    +. Fulfillment.full_new_at_stage dims2 ~stage:3
  in
  checkf 1e-9 "telescoping" (Fulfillment.full_cumulative dims2) total

let test_partial () =
  (* per-stage new sizes: dim1 10,20,15; dim2 20,30,30 *)
  checkf 1e-9 "stage 1 diag" 200.0 (Fulfillment.partial_new_at_stage dims2 ~stage:1);
  checkf 1e-9 "stage 2 diag" 600.0 (Fulfillment.partial_new_at_stage dims2 ~stage:2);
  checkf 1e-9 "stage 3 diag" 450.0 (Fulfillment.partial_new_at_stage dims2 ~stage:3);
  checkf 1e-9 "cumulative sum" 1250.0 (Fulfillment.partial_cumulative dims2);
  checkb "partial smaller than full" true
    (Fulfillment.partial_cumulative dims2 < Fulfillment.full_cumulative dims2)

let test_pairings () =
  checki "stage 1 full" 1
    (List.length (Fulfillment.pairings_at_stage ~stages_l:1 ~stage:1 `Full));
  let p3 = Fulfillment.pairings_at_stage ~stages_l:3 ~stage:3 `Full in
  checki "stage 3 full count" 5 (List.length p3);
  checkb "every pairing touches stage 3" true
    (List.for_all (fun (i, j) -> i = 3 || j = 3) p3);
  checki "distinct" 5 (List.length (List.sort_uniq compare p3));
  Alcotest.check
    Alcotest.(list (pair int int))
    "partial is the diagonal" [ (4, 4) ]
    (Fulfillment.pairings_at_stage ~stages_l:4 ~stage:4 `Partial)

let test_pairings_asymmetric () =
  (* stages_l <> stage: a side with fewer files pairs its newest file
     against every right file, and each of its older files against the
     newest right file. *)
  Alcotest.check
    Alcotest.(list (pair int int))
    "full, 2 left files x 4 right files"
    [ (2, 1); (2, 2); (2, 3); (2, 4); (1, 4) ]
    (Fulfillment.pairings_at_stage ~stages_l:2 ~stage:4 `Full);
  Alcotest.check
    Alcotest.(list (pair int int))
    "full, 1 left file x 3 right files"
    [ (1, 1); (1, 2); (1, 3) ]
    (Fulfillment.pairings_at_stage ~stages_l:1 ~stage:3 `Full);
  Alcotest.check
    Alcotest.(list (pair int int))
    "partial pairs the two newest" [ (2, 5) ]
    (Fulfillment.pairings_at_stage ~stages_l:2 ~stage:5 `Partial);
  checki "count is stages_l + stage - 1" 6
    (List.length (Fulfillment.pairings_at_stage ~stages_l:3 ~stage:4 `Full));
  Alcotest.check_raises "stages_l < 1 rejected"
    (Invalid_argument "Fulfillment.pairings_at_stage: stages_l < 1")
    (fun () ->
      ignore (Fulfillment.pairings_at_stage ~stages_l:0 ~stage:2 `Full))

let prop_pairings_cover_new_combinations =
  (* Full-fulfillment pairings at stage s are exactly the (i,j) pairs
     not already merged at earlier stages with max(i,j) = s. *)
  QCheck.Test.make ~name:"pairings tile the stage grid" ~count:50
    QCheck.(int_range 1 12)
    (fun s ->
      let all =
        List.concat
          (List.init s (fun k ->
               Fulfillment.pairings_at_stage ~stages_l:(k + 1) ~stage:(k + 1) `Full))
      in
      List.length all = s * s
      && List.length (List.sort_uniq compare all) = s * s)

let test_plan_defaults () =
  checkb "default cluster" true (Plan.default.Plan.unit_kind = Plan.Cluster);
  checkb "default full" true (Plan.default.Plan.fulfillment = Plan.Full)

let () =
  Alcotest.run "sampling"
    [
      ( "stage-set",
        [
          Alcotest.test_case "basics" `Quick test_stage_set_basic;
          Alcotest.test_case "without replacement" `Quick
            test_stage_set_without_replacement;
          Alcotest.test_case "accessors" `Quick test_stage_set_accessors;
          Alcotest.test_case "empty population" `Quick
            test_stage_set_empty_population;
          Alcotest.test_case "errors" `Quick test_stage_set_errors;
        ] );
      ( "fulfillment",
        [
          Alcotest.test_case "full cumulative" `Quick test_full_cumulative;
          Alcotest.test_case "paper formula identity" `Quick
            test_full_new_matches_paper_formula;
          Alcotest.test_case "partial plan" `Quick test_partial;
          Alcotest.test_case "pairings" `Quick test_pairings;
          Alcotest.test_case "pairings asymmetric" `Quick
            test_pairings_asymmetric;
          QCheck_alcotest.to_alcotest prop_pairings_cover_new_combinations;
        ] );
      ("plan", [ Alcotest.test_case "defaults" `Quick test_plan_defaults ]);
    ]
